//! Workspace-level cross-check property test.
//!
//! For every one of the fourteen §5 families:
//!
//! 1. **κ ≥ δ machine-verification** — the Theorem-1 hypothesis is checked
//!    two ways: the claimed connectivity of the diagnosed instance must
//!    cover its `driver_fault_bound`, and on a small probe instance of the
//!    same family the claimed connectivity is recomputed exactly with the
//!    Menger max-flow from `topology::algorithms`.
//! 2. **Six-way agreement** — random fault sets of size
//!    `≤ driver_fault_bound()` under every faulty-tester behaviour:
//!    `diagnose`, `diagnose_parallel`, the pooled backend
//!    (`diagnose_with` on the shared executor pool), the size-directed
//!    `diagnose_auto`, the naive baseline and the event-level distributed
//!    simulator (unit latencies, static timeline) must all return exactly
//!    the planted set — with the pooled/auto legs additionally
//!    bit-identical to the sequential driver (certified part, healthy
//!    count, spanning tree); the simulator's observed (rounds, messages)
//!    must reproduce the `distsim::plan` cost model per part.

use mmdiag::baselines::diagnose_baseline;
use mmdiag::diagnosis::{
    diagnose, diagnose_auto, diagnose_parallel, diagnose_with, ExecutionBackend,
};
use mmdiag::distsim::{plan, simulate, FaultTimeline, LatencyModel};
use mmdiag::implicit::ImplicitTopology;
use mmdiag::syndrome::{
    behavior_sweep, FaultSet, OnDemandOracle, OracleSyndrome, SyndromeSource, TesterBehavior,
};
use mmdiag::topology::algorithms::vertex_connectivity;
use mmdiag::topology::families::{
    Arrangement, AugmentedCube, AugmentedKAryNCube, CrossedCube, EnhancedHypercube,
    FoldedHypercube, Hypercube, KAryNCube, NKStar, Pancake, ShuffleCube, StarGraph, TwistedCube,
    TwistedNCube,
};
use mmdiag::topology::Cached;
use mmdiag::topology::{Partitionable, Topology};
use mmdiag::Diagnoser;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The two regimes only the event simulator can express: latency skew
/// (virtual time stretches, a static diagnosis never changes) and a fault
/// whose onset lands after the probe phase (every probe certified, yet the
/// growth-phase tests see the new fault and the diagnosis reports it).
#[test]
fn simulator_scenarios_latency_skew_and_mid_injection() {
    let g = Hypercube::new(7);
    let n = g.node_count();
    let faults = FaultSet::new(n, &[5, 40, 99]);
    let timeline = FaultTimeline::static_faults(faults.clone(), TesterBehavior::AllZero);
    let unit = simulate(&g, &timeline, &LatencyModel::Unit).unwrap();
    let skewed = simulate(
        &g,
        &timeline,
        &LatencyModel::SeededRandom {
            seed: 7,
            min: 1,
            max: 9,
        },
    )
    .unwrap();
    assert_eq!(skewed.faults, faults.members());
    assert_eq!(skewed.faults, unit.faults);
    assert!(
        skewed.total_time > unit.total_time,
        "skew must stretch time"
    );

    let victim = 77;
    let injected = FaultTimeline::with_onsets(
        faults.clone(),
        &[(unit.growth.started + 1, victim)],
        TesterBehavior::AllZero,
    );
    let report = simulate(&g, &injected, &LatencyModel::Unit).unwrap();
    assert_eq!(report.faults, injected.final_faults().members());
    assert!(report.faults.contains(&victim), "mid-protocol fault caught");
    assert_eq!(
        report.probes.iter().filter(|p| p.certified).count(),
        unit.probes.iter().filter(|p| p.certified).count(),
        "probes completed before the onset and certified identically"
    );
}

struct FamilyCase {
    /// The instance the algorithms diagnose (canonical constructor).
    main: Box<dyn Partitionable + Sync>,
    /// A small same-family instance whose claimed connectivity is recomputed
    /// exactly (Menger max-flow is only tractable on small graphs).
    kappa_probe: Box<dyn Topology>,
}

fn cases() -> Vec<FamilyCase> {
    vec![
        FamilyCase {
            main: Box::new(Hypercube::new(7)),
            kappa_probe: Box::new(Hypercube::with_partition_dim(5, 3)),
        },
        FamilyCase {
            main: Box::new(CrossedCube::new(7)),
            kappa_probe: Box::new(CrossedCube::with_partition_dim(5, 3)),
        },
        FamilyCase {
            main: Box::new(TwistedCube::new(7)),
            kappa_probe: Box::new(TwistedCube::with_partition_dim(5, 3)),
        },
        FamilyCase {
            main: Box::new(TwistedNCube::new(7)),
            kappa_probe: Box::new(TwistedNCube::with_partition_dim(5, 3)),
        },
        FamilyCase {
            main: Box::new(FoldedHypercube::new(8)),
            kappa_probe: Box::new(FoldedHypercube::with_partition_dim(5, 3)),
        },
        FamilyCase {
            main: Box::new(EnhancedHypercube::new(8, 3)),
            kappa_probe: Box::new(EnhancedHypercube::with_partition_dim(5, 4, 3)),
        },
        FamilyCase {
            main: Box::new(AugmentedCube::new(10)),
            kappa_probe: Box::new(AugmentedCube::with_partition_dim(5, 3)),
        },
        FamilyCase {
            main: Box::new(ShuffleCube::new(10)),
            kappa_probe: Box::new(ShuffleCube::with_partition_dim(6, 2)),
        },
        FamilyCase {
            main: Box::new(KAryNCube::new(3, 6)),
            kappa_probe: Box::new(KAryNCube::with_partition_dim(3, 3, 1)),
        },
        FamilyCase {
            main: Box::new(AugmentedKAryNCube::new(4, 4)),
            kappa_probe: Box::new(AugmentedKAryNCube::with_partition_dim(3, 3, 1)),
        },
        FamilyCase {
            main: Box::new(StarGraph::new(6)),
            kappa_probe: Box::new(StarGraph::new(5)),
        },
        FamilyCase {
            main: Box::new(NKStar::new(6, 3)),
            kappa_probe: Box::new(NKStar::new(5, 2)),
        },
        FamilyCase {
            main: Box::new(Pancake::new(6)),
            kappa_probe: Box::new(Pancake::new(5)),
        },
        FamilyCase {
            main: Box::new(Arrangement::new(6, 3)),
            kappa_probe: Box::new(Arrangement::new(5, 2)),
        },
    ]
}

/// One (materialised, implicit) pair per family at the cross-check sizes.
fn representation_pairs() -> Vec<(Cached, Box<dyn Partitionable + Sync>)> {
    fn pair<T: Partitionable + Clone + Sync + 'static>(
        fam: T,
    ) -> (Cached, Box<dyn Partitionable + Sync>) {
        (Cached::new(&fam), Box::new(ImplicitTopology::new(fam)))
    }
    vec![
        pair(Hypercube::new(7)),
        pair(CrossedCube::new(7)),
        pair(TwistedCube::new(7)),
        pair(TwistedNCube::new(7)),
        pair(FoldedHypercube::new(8)),
        pair(EnhancedHypercube::new(8, 3)),
        pair(AugmentedCube::new(10)),
        pair(ShuffleCube::new(10)),
        pair(KAryNCube::new(3, 6)),
        pair(AugmentedKAryNCube::new(4, 4)),
        pair(StarGraph::new(6)),
        pair(NKStar::new(6, 3)),
        pair(Pancake::new(6)),
        pair(Arrangement::new(6, 3)),
    ]
}

/// The ISSUE-4 scale contract: CSR-free implicit adjacency must be
/// **bit-identical** to the materialised `Cached` path on every family —
/// same fault set, same certified part, same probe count, same healthy
/// set, same spanning tree, and (because both present sorted neighbour
/// lists, hence the same lookup sequence) the same lookup accounting.
/// Additionally the `O(|F|)`-state streaming oracle must be
/// interchangeable with the bitmap oracle on both representations.
#[test]
fn implicit_and_cached_diagnoses_are_bit_identical_on_every_family() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x1111_5EED);
    for (cached, implicit) in representation_pairs() {
        let g = implicit.as_ref();
        let n = g.node_count();
        let bound = g.driver_fault_bound();
        for trial in 0..2u64 {
            let size = if trial == 0 {
                bound
            } else {
                rng.gen_below(bound as u64 + 1) as usize
            };
            let faults = FaultSet::random(n, size, &mut rng);
            for b in [
                TesterBehavior::AllZero,
                TesterBehavior::Random { seed: trial },
            ] {
                let dense = OracleSyndrome::new(faults.clone(), b);
                let on_cached = diagnose(&cached, &dense)
                    .unwrap_or_else(|e| panic!("{}: cached: {e} ({b:?})", g.name()));
                dense.reset_lookups();
                let on_implicit = diagnose(&g, &dense)
                    .unwrap_or_else(|e| panic!("{}: implicit: {e} ({b:?})", g.name()));
                assert_eq!(on_implicit.faults, faults.members(), "{} {b:?}", g.name());
                assert_eq!(on_implicit.faults, on_cached.faults, "{} {b:?}", g.name());
                assert_eq!(
                    on_implicit.certified_part,
                    on_cached.certified_part,
                    "{} {b:?}",
                    g.name()
                );
                assert_eq!(on_implicit.probes, on_cached.probes, "{} {b:?}", g.name());
                assert_eq!(
                    on_implicit.healthy_count,
                    on_cached.healthy_count,
                    "{} {b:?}",
                    g.name()
                );
                assert_eq!(
                    on_implicit.tree.edges(),
                    on_cached.tree.edges(),
                    "{} {b:?}",
                    g.name()
                );
                assert_eq!(
                    on_implicit.lookups_used,
                    on_cached.lookups_used,
                    "{}: identical scan order implies identical lookups {b:?}",
                    g.name()
                );

                // Streaming oracle: same outcomes from O(|F|) state.
                let sparse = OnDemandOracle::new(n, faults.members(), b);
                let streamed = diagnose(&g, &sparse)
                    .unwrap_or_else(|e| panic!("{}: streaming: {e} ({b:?})", g.name()));
                assert_eq!(streamed.faults, on_implicit.faults, "{} {b:?}", g.name());
                assert_eq!(
                    streamed.tree.edges(),
                    on_implicit.tree.edges(),
                    "{} {b:?}",
                    g.name()
                );
                assert_eq!(
                    streamed.lookups_used,
                    on_implicit.lookups_used,
                    "{} {b:?}",
                    g.name()
                );
            }
        }
    }
}

/// The event simulator's static-timeline leg must accept an implicit
/// topology unchanged: same diagnosis, same certified part, same cost
/// trace as over the materialised view.
#[test]
fn simulator_accepts_implicit_topologies() {
    let fam = Hypercube::new(7);
    let cached = Cached::new(&fam);
    let implicit = ImplicitTopology::new(fam);
    let faults = FaultSet::new(128, &[5, 40, 99]);
    let timeline = FaultTimeline::static_faults(faults.clone(), TesterBehavior::AllZero);
    let on_implicit = simulate(&implicit, &timeline, &LatencyModel::Unit).unwrap();
    let on_cached = simulate(&cached, &timeline, &LatencyModel::Unit).unwrap();
    assert_eq!(on_implicit.faults, faults.members());
    assert_eq!(on_implicit.faults, on_cached.faults);
    assert_eq!(on_implicit.certified_part, on_cached.certified_part);
    assert_eq!(on_implicit.total_time, on_cached.total_time);
    assert_eq!(on_implicit.events_delivered, on_cached.events_delivered);
    on_implicit
        .check_against_plan(&plan(&implicit))
        .expect("implicit cost trace matches the plan");
    // And the driver agrees with the simulated diagnosis.
    let s = OracleSyndrome::new(faults, TesterBehavior::AllZero);
    let drv = diagnose(&implicit, &s).unwrap();
    assert_eq!(on_implicit.faults, drv.faults);
    assert_eq!(on_implicit.probes_until_certificate, drv.probes);
}

/// The ISSUE-8 tentpole contract: with the grow cutover forced to 1 so
/// every pooled run takes the frontier-parallel sweep, the pooled
/// diagnosis on 1/2/4/8 workers must be bit-identical to the sequential
/// tail on every family and both representations — same faults, same
/// certified part, same spanning tree, same healthy set, and the same
/// growth-phase *lookup count* (the frontier engine consults the same
/// witnesses in the same per-candidate order). The implicit leg must
/// additionally materialise nothing.
#[test]
fn frontier_parallel_growth_is_bit_identical_on_every_family() {
    use mmdiag::diagnosis::session::run_with;
    use mmdiag::diagnosis::{set_grow_cutover, BackendPolicy, SessionOptions};
    use mmdiag::exec::Pool;
    use mmdiag::implicit::MaterialisationGuard;

    let prev = mmdiag::diagnosis::grow_cutover();
    set_grow_cutover(1);
    let pools: Vec<Pool> = [1usize, 2, 4, 8].into_iter().map(Pool::new).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(0xF207_71E6);
    let opts = SessionOptions::default();
    let mut parallel_rounds_seen = 0usize;
    for (cached, implicit) in representation_pairs() {
        let g = implicit.as_ref();
        let n = g.node_count();
        let bound = g.driver_fault_bound();
        let faults = FaultSet::random(n, bound, &mut rng);
        for b in [TesterBehavior::AllZero, TesterBehavior::Random { seed: 8 }] {
            let s = OracleSyndrome::new(faults.clone(), b);
            let seq = run_with(&cached, &s, BackendPolicy::Sequential, &opts, None)
                .unwrap_or_else(|e| panic!("{}: sequential: {e} ({b:?})", g.name()));
            assert_eq!(seq.diagnosis.faults, faults.members(), "{} {b:?}", g.name());
            for pool in &pools {
                for (label, par) in [
                    (
                        "cached",
                        run_with(&cached, &s, BackendPolicy::Pooled(pool), &opts, None),
                    ),
                    ("implicit", {
                        let guard = MaterialisationGuard::begin();
                        let r = run_with(g, &s, BackendPolicy::Pooled(pool), &opts, None);
                        guard.assert_unchanged(&format!("{} frontier growth", g.name()));
                        r
                    }),
                ] {
                    let par = par.unwrap_or_else(|e| {
                        panic!("{} {label} x{}: {e} ({b:?})", g.name(), pool.threads())
                    });
                    let ctx = format!("{} {label} x{} {b:?}", g.name(), pool.threads());
                    assert_eq!(par.diagnosis.faults, seq.diagnosis.faults, "{ctx}");
                    assert_eq!(
                        par.diagnosis.certified_part, seq.diagnosis.certified_part,
                        "{ctx}"
                    );
                    assert_eq!(
                        par.diagnosis.healthy_count, seq.diagnosis.healthy_count,
                        "{ctx}"
                    );
                    assert_eq!(
                        par.diagnosis.tree.edges(),
                        seq.diagnosis.tree.edges(),
                        "{ctx}"
                    );
                    assert_eq!(
                        par.telemetry.grow_lookups, seq.telemetry.grow_lookups,
                        "{ctx}: growth lookups are deterministic"
                    );
                    let rounds = &par.telemetry.grow_rounds;
                    assert!(!rounds.is_empty(), "{ctx}: frontier engine records rounds");
                    assert_eq!(
                        rounds.iter().map(|r| r.lookups).sum::<u64>(),
                        par.telemetry.grow_lookups,
                        "{ctx}: round lookups partition the phase total"
                    );
                    assert_eq!(
                        rounds.iter().map(|r| r.accepted).sum::<usize>() + 1,
                        par.diagnosis.healthy_count,
                        "{ctx}: accepted-per-round sums to |U_r|"
                    );
                    parallel_rounds_seen += rounds.iter().filter(|r| r.parallel).count();
                }
            }
        }
    }
    set_grow_cutover(prev);
    assert!(
        parallel_rounds_seen > 0,
        "at least some growth layers must actually run on the pool"
    );
}

#[test]
fn kappa_at_least_delta_machine_verified() {
    for case in cases() {
        let g = case.main.as_ref();
        // Claim-level Theorem-1 hypothesis on the diagnosed instance.
        assert!(
            g.connectivity() >= g.driver_fault_bound(),
            "{}: claimed κ = {} below the driver fault bound {}",
            g.name(),
            g.connectivity(),
            g.driver_fault_bound()
        );
        // Exact Menger verification of the claim on the small probe.
        let probe = case.kappa_probe.as_ref();
        let measured = vertex_connectivity(probe);
        assert_eq!(
            measured,
            probe.connectivity(),
            "{}: measured κ = {measured}, claimed {}",
            probe.name(),
            probe.connectivity()
        );
    }
}

#[test]
fn driver_parallel_pooled_auto_baseline_and_simulator_agree_on_every_family() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5EED_2026);
    for case in cases() {
        let g = case.main.as_ref();
        g.check_partition_preconditions()
            .unwrap_or_else(|e| panic!("{e}"));
        let model = plan(g);
        let n = g.node_count();
        let bound = g.driver_fault_bound();
        for trial in 0..2u64 {
            // One fault load pinned to the bound, one drawn below it.
            let size = if trial == 0 {
                bound
            } else {
                rng.gen_below(bound as u64 + 1) as usize
            };
            let faults = FaultSet::random(n, size, &mut rng);
            // The full behaviour sweep is quadratic-ish in table size for
            // the baseline; restrict the largest instances to the two most
            // adversarial behaviours to keep debug-mode runtime sane.
            let behaviors: Vec<TesterBehavior> = if n <= 512 {
                behavior_sweep(trial).to_vec()
            } else {
                vec![
                    TesterBehavior::AllZero,
                    TesterBehavior::Random { seed: trial },
                ]
            };
            for b in behaviors {
                let s = OracleSyndrome::new(faults.clone(), b);
                let drv =
                    diagnose(g, &s).unwrap_or_else(|e| panic!("{}: driver: {e} ({b:?})", g.name()));
                assert_eq!(drv.faults, faults.members(), "{} driver {b:?}", g.name());

                let par = diagnose_parallel(g, &s, 4)
                    .unwrap_or_else(|e| panic!("{}: parallel: {e} ({b:?})", g.name()));
                assert_eq!(par.faults, drv.faults, "{} parallel {b:?}", g.name());
                assert_eq!(
                    par.certified_part,
                    drv.certified_part,
                    "{} parallel must certify the same part {b:?}",
                    g.name()
                );

                // Executor backends: pooled (shared pool) and size-directed
                // auto must be bit-identical to the sequential driver on
                // every semantic field.
                for (label, res) in [
                    (
                        "pooled",
                        diagnose_with(g, &s, &ExecutionBackend::Pooled(mmdiag::exec::global())),
                    ),
                    ("auto", diagnose_auto(g, &s)),
                ] {
                    let d = res.unwrap_or_else(|e| panic!("{}: {label}: {e} ({b:?})", g.name()));
                    assert_eq!(d.faults, drv.faults, "{} {label} {b:?}", g.name());
                    assert_eq!(
                        d.certified_part,
                        drv.certified_part,
                        "{} {label} part {b:?}",
                        g.name()
                    );
                    assert_eq!(
                        d.healthy_count,
                        drv.healthy_count,
                        "{} {label} healthy count {b:?}",
                        g.name()
                    );
                    assert_eq!(
                        d.tree.edges(),
                        drv.tree.edges(),
                        "{} {label} spanning tree {b:?}",
                        g.name()
                    );
                }

                let base = diagnose_baseline(g, &s)
                    .unwrap_or_else(|e| panic!("{}: baseline: {e} ({b:?})", g.name()));
                assert_eq!(base.faults, drv.faults, "{} baseline {b:?}", g.name());

                // The one front door: a verified session run must agree
                // with the driver bit for bit *and* carry an agreeing
                // sampled verdict (legacy-vs-session equivalence in depth
                // is tests/diagnoser_equivalence.rs's job).
                let report = Diagnoser::new(g)
                    .verify_sampled(2, trial)
                    .run(&s)
                    .unwrap_or_else(|e| panic!("{}: session: {e} ({b:?})", g.name()));
                assert_eq!(
                    report.diagnosis.faults,
                    drv.faults,
                    "{} session {b:?}",
                    g.name()
                );
                assert_eq!(
                    report.diagnosis.certified_part,
                    drv.certified_part,
                    "{} session part {b:?}",
                    g.name()
                );
                assert!(
                    report.verification.agreed_or_unverified(),
                    "{} session verification {b:?}: {:?}",
                    g.name(),
                    report.verification
                );

                // Fourth implementation: the event-level simulator, driven
                // through the session's simulation door (`simulate` is the
                // thin legacy wrapper over the same engine). Static
                // timeline + unit latencies must be bit-identical to the
                // driver and reproduce the cost model's trace exactly.
                let timeline = FaultTimeline::static_faults(faults.clone(), b);
                let sim = Diagnoser::new(g)
                    .simulated(LatencyModel::Unit)
                    .simulate(&timeline)
                    .unwrap_or_else(|e| panic!("{}: simulator: {e} ({b:?})", g.name()));
                assert_eq!(sim.faults, drv.faults, "{} simulator {b:?}", g.name());
                assert_eq!(
                    sim.certified_part,
                    drv.certified_part,
                    "{} simulator must certify the same part {b:?}",
                    g.name()
                );
                assert_eq!(
                    sim.probes_until_certificate,
                    drv.probes,
                    "{} simulator probe count {b:?}",
                    g.name()
                );
                sim.check_against_plan(&model)
                    .unwrap_or_else(|e| panic!("{}: sim vs cost model: {e} ({b:?})", g.name()));

                // §6's economy claim, instance-level: the driver must beat
                // the full table the baseline paid for.
                assert!(
                    drv.lookups_used < base.lookups_used,
                    "{}: driver used {} lookups vs table {}",
                    g.name(),
                    drv.lookups_used,
                    base.lookups_used
                );
            }
        }
    }
}

/// The online-monitoring contract across every family: replay a Poisson
/// fault timeline through `Diagnoser::monitor()` and assert that each
/// epoch's incremental labelling is **bit-identical** to a from-scratch
/// `diagnose` on the same instantaneous fault set, under both the
/// all-zero and the seeded-random faulty-tester behaviours — while the
/// sweep as a whole actually exercises the cache (some epoch on some
/// family must reuse probes and come in strictly under from-scratch).
#[test]
fn online_monitor_epochs_are_bit_identical_to_from_scratch_on_every_family() {
    use mmdiag::distsim::EpochTimeline;
    let mut reused_somewhere = 0usize;
    let mut cheaper_somewhere = 0usize;
    for (fi, case) in cases().iter().enumerate() {
        let g = case.main.as_ref();
        let n = g.node_count();
        let bound = g.driver_fault_bound();
        for b in [
            TesterBehavior::AllZero,
            TesterBehavior::Random {
                seed: 0xE0 + fi as u64,
            },
        ] {
            let timeline = EpochTimeline::poisson(n, 8, 0.9, 0.5, bound, 0xA1 ^ fi as u64, b);
            let session = Diagnoser::new(g);
            let mut monitor = session
                .monitor()
                .unwrap_or_else(|e| panic!("{}: monitor(): {e}", g.name()));
            for e in 0..timeline.epoch_count() {
                let faults = timeline.faults_at(e);
                let s = OracleSyndrome::new(faults.clone(), b);
                let report = monitor
                    .ingest(&s, &timeline.delta_at(e))
                    .unwrap_or_else(|err| panic!("{} epoch {e}: {err} ({b:?})", g.name()));
                let want = diagnose(g, &OracleSyndrome::new(faults.clone(), b))
                    .unwrap_or_else(|err| panic!("{} epoch {e} scratch: {err} ({b:?})", g.name()));
                assert_eq!(
                    report.diagnosis.faults,
                    want.faults,
                    "{} epoch {e} {b:?}",
                    g.name()
                );
                assert_eq!(
                    report.diagnosis.certified_part,
                    want.certified_part,
                    "{} epoch {e} part {b:?}",
                    g.name()
                );
                assert_eq!(
                    report.diagnosis.probes,
                    want.probes,
                    "{} epoch {e} probes {b:?}",
                    g.name()
                );
                assert_eq!(
                    report.diagnosis.healthy_count,
                    want.healthy_count,
                    "{} epoch {e} healthy {b:?}",
                    g.name()
                );
                assert_eq!(
                    report.diagnosis.tree.edges(),
                    want.tree.edges(),
                    "{} epoch {e} tree {b:?}",
                    g.name()
                );
                if report.parts_reused > 0 {
                    reused_somewhere += 1;
                    if report.escalation.is_none() && !report.quiescent {
                        assert!(
                            report.lookups < want.lookups_used,
                            "{} epoch {e} {b:?}: cache-served epoch not cheaper",
                            g.name()
                        );
                        cheaper_somewhere += 1;
                    }
                }
            }
        }
    }
    assert!(reused_somewhere > 0, "the sweep never exercised the cache");
    assert!(cheaper_somewhere > 0, "no epoch beat from-scratch");
}
