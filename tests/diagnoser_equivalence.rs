//! The ISSUE-5 equivalence suite: every legacy entry point is a thin
//! wrapper over the session, and the [`Diagnoser`] front door is
//! bit-identical to each of them.
//!
//! For every one of the fourteen §5 families, on fault loads at the bound
//! and below it under two tester behaviours:
//!
//! * **Sequential** — `Diagnoser::new(&g).run(&s)` vs `diagnose` /
//!   `diagnose_with(Sequential)`: *every* field must match — faults,
//!   certified part, probes, healthy count, spanning tree, and the exact
//!   lookup count (the scan orders are identical by construction).
//! * **Pooled** — `.pooled()` vs `diagnose_with(Pooled(global))` and
//!   `.lanes(w)` vs `diagnose_parallel(g, s, w)`: all semantic fields
//!   (faults, certified part, healthy count, tree) must match; the
//!   accounting is scheduling-dependent by design and is not compared.
//! * **Auto** — `.auto()` vs `diagnose_auto`: semantic fields always;
//!   full accounting when the instance resolves sequential (sub-cutover),
//!   where the code path is literally the same scan.
//! * **Unchecked** — `.unchecked_bound(b)` vs `diagnose_unchecked`.
//! * **Batch** — `.submit_batch(Source jobs)` vs `diagnose_batch` on both
//!   backends: in-order, accounting included (batched scans are in-order
//!   on every backend).
//!
//! Plus the certificate contract: the report's certificate sits at the
//! diagnosis's certified part, its restricted tree is rooted at that
//! part's representative, validates, and certifies (> bound distinct
//! contributors).

use mmdiag::diagnosis::{
    diagnose, diagnose_auto, diagnose_batch, diagnose_parallel, diagnose_unchecked, diagnose_with,
    sequential_cutover, Diagnosis, DiagnosisReport, ExecutionBackend,
};
use mmdiag::syndrome::{FaultSet, OracleSyndrome, SyndromeSource, TesterBehavior};
use mmdiag::topology::families::{
    Arrangement, AugmentedCube, AugmentedKAryNCube, CrossedCube, EnhancedHypercube,
    FoldedHypercube, Hypercube, KAryNCube, NKStar, Pancake, ShuffleCube, StarGraph, TwistedCube,
    TwistedNCube,
};
use mmdiag::topology::Partitionable;
use mmdiag::{BatchJob, Diagnoser};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn families() -> Vec<Box<dyn Partitionable + Sync>> {
    vec![
        Box::new(Hypercube::new(7)),
        Box::new(CrossedCube::new(7)),
        Box::new(TwistedCube::new(7)),
        Box::new(TwistedNCube::new(7)),
        Box::new(FoldedHypercube::new(8)),
        Box::new(EnhancedHypercube::new(8, 3)),
        Box::new(AugmentedCube::new(10)),
        Box::new(ShuffleCube::new(10)),
        Box::new(KAryNCube::new(3, 6)),
        Box::new(AugmentedKAryNCube::new(4, 4)),
        Box::new(StarGraph::new(6)),
        Box::new(NKStar::new(6, 3)),
        Box::new(Pancake::new(6)),
        Box::new(Arrangement::new(6, 3)),
    ]
}

/// Exact equality on every field, accounting included.
fn assert_bit_identical(report: &DiagnosisReport, legacy: &Diagnosis, ctx: &str) {
    let d = &report.diagnosis;
    assert_eq!(d.faults, legacy.faults, "{ctx}: faults");
    assert_eq!(d.certified_part, legacy.certified_part, "{ctx}: part");
    assert_eq!(d.probes, legacy.probes, "{ctx}: probes");
    assert_eq!(d.healthy_count, legacy.healthy_count, "{ctx}: healthy");
    assert_eq!(d.tree.root(), legacy.tree.root(), "{ctx}: tree root");
    assert_eq!(d.tree.edges(), legacy.tree.edges(), "{ctx}: tree edges");
    assert_eq!(d.lookups_used, legacy.lookups_used, "{ctx}: lookups");
    // And the telemetry's lookup split accounts for the exact total.
    assert_eq!(
        report.telemetry.probe_lookups + report.telemetry.grow_lookups,
        legacy.lookups_used,
        "{ctx}: phase lookup split"
    );
}

/// The deterministic semantic contract (accounting excluded).
fn assert_semantically_equal(report: &DiagnosisReport, legacy: &Diagnosis, ctx: &str) {
    let d = &report.diagnosis;
    assert_eq!(d.faults, legacy.faults, "{ctx}: faults");
    assert_eq!(d.certified_part, legacy.certified_part, "{ctx}: part");
    assert_eq!(d.healthy_count, legacy.healthy_count, "{ctx}: healthy");
    assert_eq!(d.tree.edges(), legacy.tree.edges(), "{ctx}: tree edges");
}

/// The certificate rides the report and actually certifies.
fn assert_certificate_sound(report: &DiagnosisReport, g: &(dyn Partitionable + Sync), ctx: &str) {
    let cert = &report.certificate;
    assert_eq!(
        cert.part, report.diagnosis.certified_part,
        "{ctx}: cert part"
    );
    assert_eq!(
        cert.representative,
        g.representative(cert.part),
        "{ctx}: cert representative"
    );
    assert!(
        cert.contributors > g.driver_fault_bound(),
        "{ctx}: certificate must exceed the bound ({} <= {})",
        cert.contributors,
        g.driver_fault_bound()
    );
    assert_eq!(cert.tree.root(), cert.representative, "{ctx}: cert root");
    cert.tree
        .validate()
        .unwrap_or_else(|e| panic!("{ctx}: certificate tree invalid: {e}"));
    // The restricted tree never leaves the certified part.
    assert!(
        cert.tree
            .edges()
            .iter()
            .all(|&(u, v)| g.part_of(u) == cert.part && g.part_of(v) == cert.part),
        "{ctx}: certificate tree crosses the part boundary"
    );
}

#[test]
fn diagnoser_is_bit_identical_to_every_legacy_entry_point_on_all_families() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x0D1A_6005);
    let pool = mmdiag::exec::global();
    for g in families() {
        let g = g.as_ref();
        let n = g.node_count();
        let bound = g.driver_fault_bound();
        let session = Diagnoser::new(g);
        let pooled_session = Diagnoser::new(g).pooled();
        let auto_session = Diagnoser::new(g).auto();
        for (trial, load) in [bound, bound / 2].into_iter().enumerate() {
            let faults = FaultSet::random(n, load, &mut rng);
            for behavior in [
                TesterBehavior::AllZero,
                TesterBehavior::Random { seed: trial as u64 },
            ] {
                let s = OracleSyndrome::new(faults.clone(), behavior);
                let ctx = format!("{} {behavior:?} load {load}", g.name());

                // --- Sequential: the default builder vs `diagnose`.
                let legacy = diagnose(g, &s).unwrap();
                s.reset_lookups();
                let report = session.run(&s).unwrap();
                assert_bit_identical(&report, &legacy, &format!("{ctx} [sequential]"));
                assert_certificate_sound(&report, g, &ctx);
                assert_eq!(report.backend, "sequential", "{ctx}");

                // And vs the explicit sequential backend entry point.
                s.reset_lookups();
                let with_seq = diagnose_with(g, &s, &ExecutionBackend::Sequential).unwrap();
                s.reset_lookups();
                let report2 = session.run(&s).unwrap();
                assert_bit_identical(&report2, &with_seq, &format!("{ctx} [with-seq]"));

                // --- Unchecked wrapper.
                s.reset_lookups();
                let legacy_unchecked = diagnose_unchecked(g, &s, bound).unwrap();
                s.reset_lookups();
                let report = Diagnoser::new(g).unchecked_bound(bound).run(&s).unwrap();
                assert_bit_identical(&report, &legacy_unchecked, &format!("{ctx} [unchecked]"));

                // --- Pooled: semantic equality (accounting is
                // scheduling-dependent on both sides by design).
                let legacy_pooled = diagnose_with(g, &s, &ExecutionBackend::Pooled(pool)).unwrap();
                let report = pooled_session.run(&s).unwrap();
                assert_semantically_equal(&report, &legacy_pooled, &format!("{ctx} [pooled]"));
                assert_certificate_sound(&report, g, &ctx);
                assert_eq!(report.backend, "pooled", "{ctx}");

                // --- Strided lanes vs diagnose_parallel.
                for width in [1usize, 4] {
                    let legacy_par = diagnose_parallel(g, &s, width).unwrap();
                    let report = Diagnoser::new(g).lanes(width).run(&s).unwrap();
                    assert_semantically_equal(
                        &report,
                        &legacy_par,
                        &format!("{ctx} [lanes {width}]"),
                    );
                }

                // --- Auto: bit-identical when it resolves sequential.
                s.reset_lookups();
                let legacy_auto = diagnose_auto(g, &s).unwrap();
                s.reset_lookups();
                let report = auto_session.run(&s).unwrap();
                if n < sequential_cutover() {
                    assert_bit_identical(&report, &legacy_auto, &format!("{ctx} [auto-seq]"));
                    assert_eq!(report.backend, "sequential", "{ctx}");
                } else {
                    assert_semantically_equal(&report, &legacy_auto, &format!("{ctx} [auto]"));
                    assert_eq!(report.backend, "pooled", "{ctx}");
                }
            }
        }
    }
}

#[test]
fn builder_default_equals_diagnose_exactly() {
    // The acceptance-criterion spelling: `Diagnoser::new(g).run(s)` ==
    // `diagnose(g, s)` on a fresh instance, every field.
    let g = Hypercube::new(8);
    let s = OracleSyndrome::new(
        FaultSet::new(256, &[17, 200, 255]),
        TesterBehavior::Random { seed: 2 },
    );
    let legacy = diagnose(&g, &s).unwrap();
    s.reset_lookups();
    let report = Diagnoser::new(&g).run(&s).unwrap();
    assert_bit_identical(&report, &legacy, "builder default");
}

#[test]
fn submit_batch_matches_diagnose_batch_on_both_backends() {
    let g = Hypercube::new(7);
    let pool = mmdiag::exec::global();
    let syndromes: Vec<OracleSyndrome> = (0..6)
        .map(|i| {
            OracleSyndrome::new(
                FaultSet::new(128, &[i, 2 * i + 40]),
                TesterBehavior::Random { seed: i as u64 },
            )
        })
        .collect();
    for backend in [ExecutionBackend::Sequential, ExecutionBackend::Pooled(pool)] {
        for s in &syndromes {
            s.reset_lookups();
        }
        let legacy = diagnose_batch(&g, &syndromes, &backend);
        for s in &syndromes {
            s.reset_lookups();
        }
        let session = match backend {
            ExecutionBackend::Sequential => Diagnoser::new(&g),
            ExecutionBackend::Pooled(_) => Diagnoser::new(&g).pooled(),
        };
        let jobs: Vec<BatchJob> = syndromes
            .iter()
            .map(|s| BatchJob::Source(s as &(dyn SyndromeSource + Sync)))
            .collect();
        let outcomes = session.submit_batch(&jobs);
        assert_eq!(outcomes.len(), legacy.len());
        for (i, (outcome, want)) in outcomes.iter().zip(&legacy).enumerate() {
            let report = outcome.as_ref().unwrap().report().expect("in-process");
            let want = want.as_ref().unwrap();
            // Batched scans are in-order on every backend: the accounting
            // must match too.
            assert_bit_identical(
                report,
                want,
                &format!("batch job {i} [{}]", backend.label()),
            );
        }
    }
}

#[test]
fn implicit_and_cached_sessions_agree_bit_for_bit() {
    // The one-front-door spelling of the ISSUE-4 scale contract.
    let fam = Hypercube::new(7);
    let cached = Diagnoser::cached(&fam);
    let implicit = Diagnoser::implicit(fam);
    let mut rng = ChaCha8Rng::seed_from_u64(0x1_5EED);
    let faults = FaultSet::random(128, 5, &mut rng);
    let s = OracleSyndrome::new(faults.clone(), TesterBehavior::Random { seed: 3 });
    let on_cached = cached.run(&s).unwrap();
    s.reset_lookups();
    let on_implicit = implicit.run(&s).unwrap();
    assert_bit_identical(&on_implicit, &on_cached.diagnosis, "implicit vs cached");
    assert_eq!(
        on_implicit.certificate.tree.edges(),
        on_cached.certificate.tree.edges()
    );
    // Streaming oracle through the same session.
    let streamed = implicit
        .run_streaming(faults.members(), TesterBehavior::Random { seed: 3 })
        .unwrap();
    assert_eq!(streamed.faults(), on_cached.diagnosis.faults.as_slice());
}
