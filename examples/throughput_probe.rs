//! Fleet observability in ~60 lines: several [`mmdiag::Diagnoser`]
//! sessions on separate threads, each attached to the process-wide
//! [`MetricsHub`] via [`Diagnoser::stats`], with the sync-layer
//! contention profiler on and the `mmdiag-stats` sampler streaming
//! merged hub deltas to stderr while the fleet runs.
//!
//! ```text
//! cargo run --example throughput_probe
//! ```
//!
//! The same machinery at bench scale: `mmdiag-bench --throughput`
//! (optionally `MMDIAG_STATS=<ms>` to pick the sampling interval).

use mmdiag::syndrome::{OracleSyndrome, SyndromeSource, TesterBehavior};
use mmdiag::topology::families::Hypercube;
use mmdiag::trace::{MetricValue, MetricsHub};
use mmdiag::{exec, Diagnoser};
use std::time::Duration;

fn main() {
    // Lock-wait / condvar-park / queue-depth cells fill only while this
    // is on (one relaxed atomic load per acquire when off).
    exec::set_contention_profiling(true);

    // Periodic JSON-lines deltas of everything attached to the hub —
    // the MMDIAG_STATS knob picks this interval for the bench binary.
    let reporter = exec::start_stats_reporter(
        MetricsHub::global(),
        Duration::from_millis(100),
        std::io::stderr(),
    )
    .expect("spawn stats sampler");

    let fleet: Vec<_> = (0..3u64)
        .map(|i| {
            exec::sync::thread::spawn_named(format!("probe-{i}"), move || {
                let g = Hypercube::new(7);
                // `.stats()` implies tracing and registers this session's
                // metrics (oracle lookups included) on the hub until drop.
                let session = Diagnoser::cached(&g).pooled().stats(&format!("probe-{i}"));
                let s = OracleSyndrome::new(
                    mmdiag::syndrome::FaultSet::new(128, &[3, 64, 90 + i as usize]),
                    TesterBehavior::Random { seed: 9 + i },
                );
                for _ in 0..4 {
                    session.run(&s).expect("diagnosis succeeds");
                }
                // The fleet view below reads the registries while the
                // sessions are still attached.
                std::thread::sleep(Duration::from_millis(250));
                s.lookups()
            })
            .expect("spawn fleet thread")
        })
        .collect();

    // A cross-session snapshot while the fleet is live: per-session
    // registries, then the merged fleet view (counters summed,
    // histograms bucket-merged).
    std::thread::sleep(Duration::from_millis(150));
    let sessions = MetricsHub::global().snapshot_sessions();
    println!("{} sessions attached to the hub:", sessions.len());
    for (name, metrics) in &sessions {
        println!("  {name}: {} metrics", metrics.len());
    }
    for m in MetricsHub::global().merged_snapshot() {
        match m.value {
            MetricValue::Counter(v) => println!("  fleet {} = {v}", m.name),
            MetricValue::Gauge(v, peak) => {
                println!("  fleet {} = {v} (gauge, peak {peak})", m.name)
            }
            MetricValue::Histogram(h) => {
                println!(
                    "  fleet {}: count {} p50 {} p99 {}",
                    m.name,
                    h.count,
                    h.p50(),
                    h.p99()
                )
            }
        }
    }

    let total: u64 = fleet.into_iter().map(|h| h.join().unwrap()).sum();
    println!("fleet total oracle lookups: {total}");
    reporter.stop(); // joins the sampler; it writes one final delta line
}
