//! One front door, every policy: the same `Diagnoser` session diagnosing
//! one instance in-process (sequential / auto), with verification riding
//! the call, and as timestamped messages in the event simulator.
//!
//! Run: `cargo run --release --example front_door`

use mmdiag::distsim::LatencyModel;
use mmdiag::syndrome::{FaultSet, OracleSyndrome, SyndromeSource, TesterBehavior};
use mmdiag::topology::families::Hypercube;
use mmdiag::topology::Topology;
use mmdiag::{Diagnoser, VerificationVerdict};

fn main() {
    // Q_10 needs the capacity-aware partition (16-node subcubes cannot
    // certify fault bound 10 — see `certified_partition_dim`).
    let g = Hypercube::new_certified(10);
    let n = g.node_count();
    let faults = FaultSet::new(n, &[3, 64, 90, 500, 1001]);
    let behavior = TesterBehavior::Random { seed: 7 };
    let s = OracleSyndrome::new(faults.clone(), behavior);

    // 1. The default session is the legacy `diagnose`.
    let report = Diagnoser::new(&g).run(&s).unwrap();
    println!(
        "sequential: {} faults in {} probes, {} lookups \
         (probe {:.1} µs / certify {:.1} µs / grow {:.1} µs)",
        report.diagnosis.faults.len(),
        report.diagnosis.probes,
        report.diagnosis.lookups_used,
        report.telemetry.probe_nanos as f64 / 1e3,
        report.telemetry.certify_nanos as f64 / 1e3,
        report.telemetry.grow_nanos as f64 / 1e3,
    );
    println!(
        "certificate: part {} rooted at {}, {} contributors, {} tree edges",
        report.certificate.part,
        report.certificate.representative,
        report.certificate.contributors,
        report.certificate.tree.edges().len(),
    );

    // 2. One builder call turns on the size-directed backend and the
    //    sampled verification policy.
    s.reset_lookups();
    let verified = Diagnoser::new(&g)
        .auto()
        .verify_sampled(3, 0xC0FFEE)
        .run(&s)
        .unwrap();
    match &verified.verification {
        VerificationVerdict::Sampled {
            samples,
            checked_tests,
            agree,
            ..
        } => println!(
            "auto ({}): sampled verification over {samples} nodes / {checked_tests} tests: \
             agree = {agree}",
            verified.backend
        ),
        other => println!("unexpected verdict: {other:?}"),
    }
    assert_eq!(verified.diagnosis.faults, report.diagnosis.faults);

    // 3. The same session shape replays the protocol as timestamped
    //    messages under a skewed latency model.
    let outcome = Diagnoser::new(&g)
        .simulated(LatencyModel::SeededRandom {
            seed: 11,
            min: 1,
            max: 6,
        })
        .run_planted(&faults, behavior)
        .unwrap();
    let sim = outcome.sim().unwrap();
    println!(
        "simulated: same {} faults, virtual time {}, {} events delivered",
        outcome.faults().len(),
        sim.total_time,
        sim.events_delivered,
    );
    assert_eq!(outcome.faults(), report.diagnosis.faults.as_slice());
}
