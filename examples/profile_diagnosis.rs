//! Trace one Q_17 diagnosis end-to-end: an enabled session tracer, an
//! instrumented pool, and the drained trace rolled back up into the same
//! numbers the report carries — then the per-worker executor stats.
//!
//! Run: `cargo run --release --example profile_diagnosis`

use mmdiag::exec::Pool;
use mmdiag::syndrome::{FaultSet, OracleSyndrome, SyndromeSource, TesterBehavior};
use mmdiag::topology::families::Hypercube;
use mmdiag::topology::Topology;
use mmdiag::trace::{MetricValue, TraceConfig, TraceSummary};
use mmdiag::{Diagnoser, VerificationVerdict};

fn main() {
    // Q_17: 131 072 nodes, the bench driver tier's hypercube cell.
    let g = Hypercube::new(17);
    let n = g.node_count();
    let faults = FaultSet::new(n, &[3, 6_400, 90_000, 120_001]);
    let s = OracleSyndrome::new(faults, TesterBehavior::Random { seed: 17 });

    // An instrumented pool counts per-worker tasks / steals / parks and
    // buckets task run times regardless of MMDIAG_TRACE.
    let pool = Pool::new_instrumented(4);
    let session = Diagnoser::new(&g)
        .pooled_on(&pool)
        .trace(TraceConfig::default())
        .verify_sampled(2, 7);

    let report = session.run(&s).unwrap();
    println!(
        "Q_17 ({} nodes): {} faults, certified part {}, backend {}",
        n,
        report.diagnosis.faults.len(),
        report.diagnosis.certified_part,
        report.backend,
    );

    // --- Phase summary from the drained trace. ---------------------------
    let tracer = session.tracer();
    let summary = TraceSummary::from_events(&tracer.drain(), tracer.dropped());
    println!("\nphases (from the trace — identical to the report telemetry):");
    for (name, nanos, lookups) in [
        ("probe", summary.probe_nanos, summary.probe_lookups),
        ("certify", summary.certify_nanos, 0),
        ("grow", summary.grow_nanos, summary.grow_lookups),
    ] {
        println!(
            "  {name:<8} {:>10.1} µs  {lookups:>8} lookups",
            nanos as f64 / 1e3
        );
    }
    // The trace *is* the telemetry — exact, not approximately equal.
    assert_eq!(summary.probe_nanos, report.telemetry.probe_nanos);
    assert_eq!(summary.certify_nanos, report.telemetry.certify_nanos);
    assert_eq!(summary.grow_nanos, report.telemetry.grow_nanos);
    assert_eq!(summary.probe_lookups, report.telemetry.probe_lookups);
    assert_eq!(summary.grow_lookups, report.telemetry.grow_lookups);
    if let VerificationVerdict::Sampled { nanos, agree, .. } = report.verification {
        println!(
            "  {:<8} {:>10.1} µs  agree = {agree}",
            "verify",
            nanos as f64 / 1e3
        );
    }

    // --- The oracle's counter doubles as the exported metric. ------------
    for m in tracer.metrics().expect("tracing session").snapshot() {
        if let MetricValue::Counter(v) = m.value {
            println!("\nmetric {} = {v}", m.name);
            if m.name == "oracle.lookups" {
                assert_eq!(v, s.lookups(), "one cell, not two tallies");
            }
        }
    }

    // --- Per-worker executor stats. --------------------------------------
    let stats = pool.stats().expect("instrumented pool");
    println!("\nworkers (tasks / steals / injector pops / parks):");
    for (i, w) in stats.workers.iter().enumerate() {
        println!(
            "  w{i}: {:>4} tasks  {:>4} steals  {:>4} pops  {:>4} parks  \
             run p50 {} ns  p99 {} ns",
            w.tasks,
            w.steals,
            w.injector_pops,
            w.parks,
            w.run_ns.p50(),
            w.run_ns.p99(),
        );
    }
    let totals = stats.totals();
    println!(
        "  total: {} tasks, run-time histogram count {}",
        totals.tasks, totals.run_ns.count
    );
    assert_eq!(totals.tasks, totals.run_ns.count, "every task timed");
}
