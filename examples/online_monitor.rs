//! The online diagnosis loop in ~50 lines: a long-lived
//! [`mmdiag::MonitorSession`] (opened via [`mmdiag::Diagnoser::monitor`])
//! replaying a seeded Poisson fault timeline from
//! [`mmdiag::distsim::EpochTimeline`]. Each epoch the service ingests
//! only the *delta* — the nodes whose fault status moved — and
//! re-diagnoses incrementally: certified-healthy probe outcomes from
//! clean parts are reused across epochs, and the session escalates to an
//! honest from-scratch walk only when the delta invalidates the standing
//! certificate.
//!
//! ```text
//! cargo run --example online_monitor
//! ```
//!
//! The same loop at bench scale: `mmdiag-bench --online` (optionally
//! `MMDIAG_EPOCHS=<n>` to pick the epoch budget).

use mmdiag::distsim::EpochTimeline;
use mmdiag::syndrome::{OracleSyndrome, TesterBehavior};
use mmdiag::topology::{Partitionable, Topology};
use mmdiag::Diagnoser;

fn main() {
    let g = mmdiag::topology::families::Hypercube::new(8);
    let behavior = TesterBehavior::Random { seed: 0xB0B };

    // A seeded Poisson schedule of fault onsets and recoveries: ~0.7
    // expected onsets and ~0.5 expected repairs per epoch, capped under
    // the driver's fault bound so every epoch stays diagnosable.
    let timeline = EpochTimeline::poisson(
        g.node_count(),
        12,
        0.7,
        0.5,
        g.driver_fault_bound(),
        42,
        behavior,
    );

    // `monitor()` hands the session's topology view, fault bound and
    // tracer to a long-lived MonitorSession that owns the epoch state.
    let session = Diagnoser::new(&g);
    let mut monitor = session.monitor().expect("in-process session");

    println!("epoch  faults  delta  lookups  reused  mode");
    for e in 0..timeline.epoch_count() {
        let faults = timeline.faults_at(e);
        let delta = timeline.delta_at(e);
        let s = OracleSyndrome::new(faults.clone(), behavior);
        let report = monitor.ingest(&s, &delta).expect("epoch diagnoses");
        let mode = match report.escalation {
            Some(reason) => format!("escalated ({reason:?})"),
            None if report.quiescent => "quiescent (labelling reused)".into(),
            None => format!(
                "incremental ({} of {} parts re-probed)",
                report.parts_reprobed,
                g.part_count()
            ),
        };
        println!(
            "{:>5}  {:>6}  {:>5}  {:>7}  {:>6}  {mode}",
            report.epoch,
            report.diagnosis.faults.len(),
            delta.len(),
            report.lookups,
            report.parts_reused,
        );
    }

    let last = monitor.last_faults().expect("timeline replayed");
    println!(
        "final labelling after {} epochs: {last:?} (certified part {})",
        monitor.epochs_run(),
        monitor.certificate().expect("standing certificate").part,
    );
}
