//! One front door: the [`Diagnoser`] session API.
//!
//! Five generations of entry points grew around the Theorem-1 driver —
//! `diagnose` / `diagnose_unchecked` / `diagnose_parallel` /
//! `diagnose_with` / `diagnose_auto` / `diagnose_batch`, plus disjoint
//! doors for verification (`diagnose_baseline`, `sampled_check`) and
//! event-level simulation (`mmdiag_distsim::simulate`). Each had its own
//! topology, backend and workspace plumbing. A [`Diagnoser`] owns all of
//! it behind one builder:
//!
//! * **topology** — borrowed, materialised ([`mmdiag_topology::Cached`])
//!   or CSR-free ([`mmdiag_implicit::ImplicitTopology`]), behind the one
//!   [`TopologySource`] abstraction;
//! * **syndrome** — any live [`SyndromeSource`] (bitmap
//!   [`OracleSyndrome`] or streaming
//!   [`mmdiag_syndrome::OnDemandOracle`]) through [`Diagnoser::run`], or
//!   planted fault sets through [`Diagnoser::run_planted`] /
//!   [`Diagnoser::run_streaming`];
//! * **execution backend** — a [`BackendPolicy`]: sequential, a pool at
//!   full or explicit lane width, or size-directed auto with the live or
//!   an explicit cutover;
//! * **verification** — a [`VerificationPolicy`]: none, the seeded
//!   sampled spot-check, or the full-table baseline — run as part of the
//!   same call, its [`VerificationVerdict`] riding on the report;
//! * **run mode** — [`RunMode::InProcess`] or
//!   [`RunMode::Simulated`] event-level execution under a
//!   [`LatencyModel`];
//! * **batching** — [`Diagnoser::submit_batch`] unifies the historical
//!   `diagnose_batch` / `simulate_batch` pair and reuses the session's
//!   own workspace pool across submissions.
//!
//! Every legacy free function is a thin wrapper over the same session
//! machinery ([`mmdiag_core::session`]), so
//! `Diagnoser::new(&g).run(&s)` is bit-identical to `diagnose(&g, &s)` —
//! the workspace equivalence suite asserts exactly that across all
//! fourteen families and every backend.
//!
//! ```
//! use mmdiag::Diagnoser;
//! use mmdiag::syndrome::{FaultSet, OracleSyndrome, TesterBehavior};
//! use mmdiag::topology::families::Hypercube;
//!
//! let g = Hypercube::new(7);
//! let s = OracleSyndrome::new(
//!     FaultSet::new(128, &[3, 64, 90]),
//!     TesterBehavior::Random { seed: 1 },
//! );
//! let report = Diagnoser::new(&g).verify_full().run(&s).unwrap();
//! assert_eq!(report.diagnosis.faults, vec![3, 64, 90]);
//! assert!(report.verification.agreed_or_unverified());
//! assert_eq!(report.certificate.part, report.diagnosis.certified_part);
//! ```

use mmdiag_baselines::{diagnose_naive, sampled_check};
use mmdiag_core::session::{self, SessionOptions};
use mmdiag_core::{
    BackendPolicy, DiagnosisError, DiagnosisReport, VerificationVerdict, WorkspacePool,
};
use mmdiag_distsim::{simulate_unchecked, FaultTimeline, LatencyModel, SimError, SimReport};
use mmdiag_implicit::ImplicitTopology;
use mmdiag_monitor::MonitorSession;
use mmdiag_syndrome::{FaultSet, OnDemandOracle, OracleSyndrome, SyndromeSource, TesterBehavior};
use mmdiag_topology::{Cached, NodeId, Partitionable};
use mmdiag_trace::{HubSession, MetricsHub, MetricsRegistry, TraceConfig, Tracer};
use std::sync::OnceLock;

/// Where a session's topology comes from: a caller-borrowed instance, or
/// an owned materialised / implicit representation. One abstraction in
/// front of the `Cached`-CSR and generator-math paths, so every session
/// call is representation-agnostic (the scale contract: implicit and
/// cached diagnoses are bit-identical).
pub enum TopologySource<'g> {
    /// A borrowed instance (any `Partitionable + Sync`, trait object or
    /// concrete family).
    Borrowed(&'g (dyn Partitionable + Sync)),
    /// An owned instance — built by [`TopologySource::cached`] /
    /// [`TopologySource::implicit`], or any boxed custom topology.
    Owned(Box<dyn Partitionable + Sync>),
}

impl<'g> TopologySource<'g> {
    /// Materialise `fam` into a CSR ([`Cached`]) the session owns.
    pub fn cached<T: Partitionable + ?Sized>(fam: &T) -> TopologySource<'static> {
        TopologySource::Owned(Box::new(Cached::new(fam)))
    }

    /// Serve `fam` CSR-free from its generator math
    /// ([`ImplicitTopology`]) — the 10⁶–10⁷-node scale path.
    pub fn implicit<T: Partitionable + Sync + 'static>(fam: T) -> TopologySource<'static> {
        TopologySource::Owned(Box::new(ImplicitTopology::new(fam)))
    }

    /// The topology view every session call runs against.
    pub fn view(&self) -> &(dyn Partitionable + Sync) {
        match self {
            TopologySource::Borrowed(g) => *g,
            TopologySource::Owned(g) => g.as_ref(),
        }
    }
}

/// How (and whether) a finished diagnosis is independently verified
/// within the same session call.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub enum VerificationPolicy {
    /// No verification; the report carries
    /// [`VerificationVerdict::Unverified`].
    None,
    /// The seeded sampled spot-check
    /// ([`mmdiag_baselines::sampled_check`]): certificate re-derivation
    /// plus per-part label samples. One-sided error, `O(parts·k·Δ²)`
    /// lookups — the verification that scales to 10⁷ nodes.
    Sampled {
        /// Samples per part (the bench default is 2).
        samples_per_part: usize,
        /// Seed of the label-independent sampling walks.
        seed: u64,
    },
    /// The full-table baseline re-diagnosis
    /// ([`mmdiag_baselines::diagnose_naive`]): reads every syndrome
    /// entry — the strongest check, infeasible beyond ~10⁵ nodes.
    FullBaseline,
}

/// Whether a session executes in-process or as timestamped messages in
/// the event-level simulator.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum RunMode {
    /// The centralised driver on the configured execution backend.
    InProcess,
    /// The distributed protocol replayed event-by-event under the given
    /// latency model ([`mmdiag_distsim::simulate`]). Requires planted
    /// syndromes ([`Diagnoser::run_planted`], [`BatchJob::Planted`],
    /// [`BatchJob::Timeline`]) — an opaque [`SyndromeSource`] cannot be
    /// replayed as messages.
    Simulated(LatencyModel),
}

/// What one unified session call produced, by run mode.
#[derive(Clone, Debug)]
pub enum RunOutcome {
    /// In-process: the full [`DiagnosisReport`] (verification verdict
    /// included).
    InProcess(DiagnosisReport),
    /// Simulated: the event-level [`SimReport`], plus the verification
    /// verdict obtained by replaying the planted syndrome against the
    /// simulated diagnosis.
    Simulated {
        /// The simulator's report (traces, virtual times, diagnosis).
        report: SimReport,
        /// The session verification policy's conclusion about the
        /// simulated diagnosis.
        verification: VerificationVerdict,
    },
}

impl RunOutcome {
    /// The diagnosed fault set, ascending — whichever mode produced it.
    pub fn faults(&self) -> &[NodeId] {
        match self {
            RunOutcome::InProcess(r) => &r.diagnosis.faults,
            RunOutcome::Simulated { report, .. } => &report.faults,
        }
    }

    /// The certified part, whichever mode produced it.
    pub fn certified_part(&self) -> usize {
        match self {
            RunOutcome::InProcess(r) => r.diagnosis.certified_part,
            RunOutcome::Simulated { report, .. } => report.certified_part,
        }
    }

    /// The in-process report, if this outcome is one.
    pub fn report(&self) -> Option<&DiagnosisReport> {
        match self {
            RunOutcome::InProcess(r) => Some(r),
            RunOutcome::Simulated { .. } => None,
        }
    }

    /// The simulator report, if this outcome is one.
    pub fn sim(&self) -> Option<&SimReport> {
        match self {
            RunOutcome::InProcess(_) => None,
            RunOutcome::Simulated { report, .. } => Some(report),
        }
    }

    /// The verification verdict, whichever mode produced it.
    pub fn verification(&self) -> &VerificationVerdict {
        match self {
            RunOutcome::InProcess(r) => &r.verification,
            RunOutcome::Simulated { verification, .. } => verification,
        }
    }
}

/// Why a unified session call failed — in-process and simulated failure
/// modes under one type, so batch submissions mixing both have a single
/// error channel.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum RunError {
    /// The in-process driver failed.
    Diagnosis(DiagnosisError),
    /// The event-level simulation failed.
    Sim(SimError),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Diagnosis(e) => write!(f, "diagnosis: {e}"),
            RunError::Sim(e) => write!(f, "simulation: {e}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Diagnosis(e) => Some(e),
            RunError::Sim(e) => Some(e),
        }
    }
}

impl From<DiagnosisError> for RunError {
    fn from(e: DiagnosisError) -> Self {
        RunError::Diagnosis(e)
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

/// One job of a [`Diagnoser::submit_batch`] submission.
pub enum BatchJob<'a> {
    /// A live syndrome source (in-process sessions only — an opaque
    /// source cannot be replayed as messages).
    Source(&'a (dyn SyndromeSource + Sync)),
    /// A planted fault set under a tester behaviour — runs in either
    /// mode (in-process via an [`OracleSyndrome`], simulated via a
    /// static [`FaultTimeline`]).
    Planted {
        /// The planted fault set.
        faults: FaultSet,
        /// The faulty-tester behaviour.
        behavior: TesterBehavior,
    },
    /// A full fault timeline (mid-protocol onsets included). Simulated
    /// sessions replay it as-is; in-process sessions accept it only when
    /// static (the centralised driver has no notion of time).
    Timeline(FaultTimeline),
}

/// The builder-configured session: one front door over diagnosis,
/// verification and simulation. See the [module docs](self) for the full
/// policy axes; the default session (`Diagnoser::new(&g)`) is
/// sequential, unverified, in-process — exactly the legacy
/// `diagnose(&g, &s)`.
pub struct Diagnoser<'g> {
    topology: TopologySource<'g>,
    backend: BackendPolicy<'g>,
    verification: VerificationPolicy,
    mode: RunMode,
    fault_bound: Option<usize>,
    check_preconditions: bool,
    /// The session's trace handle: disabled by default (recording costs
    /// one `Option` check), enabled by [`Diagnoser::trace`] or
    /// process-wide by the `MMDIAG_TRACE` knob.
    tracer: Tracer,
    /// Lazily-built workspace pool shared by every call on this session —
    /// the amortisation `diagnose_batch` used to rebuild per call.
    ws: OnceLock<WorkspacePool>,
    /// The session's registration on the process-wide [`MetricsHub`],
    /// held so dropping the session detaches it ([`Diagnoser::stats`]).
    hub_session: Option<HubSession<'static>>,
}

impl<'g> Diagnoser<'g> {
    /// A session over a borrowed topology, with defaults equivalent to
    /// the legacy `diagnose`: sequential backend, preconditions checked,
    /// family fault bound, no verification, in-process.
    pub fn new(g: &'g (dyn Partitionable + Sync)) -> Self {
        Diagnoser::from_source(TopologySource::Borrowed(g))
    }

    /// A session over an owned [`TopologySource`].
    pub fn from_source(topology: TopologySource<'g>) -> Self {
        // The MMDIAG_TRACE knob (read once through the exec config door)
        // turns tracing on for every session in the process.
        let tracer = if mmdiag_exec::config::knobs().trace {
            Tracer::new(TraceConfig::default())
        } else {
            Tracer::disabled()
        };
        Diagnoser {
            topology,
            backend: BackendPolicy::Sequential,
            verification: VerificationPolicy::None,
            mode: RunMode::InProcess,
            fault_bound: None,
            check_preconditions: true,
            tracer,
            ws: OnceLock::new(),
            hub_session: None,
        }
    }

    /// A session that materialises `fam` into an owned CSR.
    pub fn cached<T: Partitionable + ?Sized>(fam: &T) -> Diagnoser<'static> {
        Diagnoser::from_source(TopologySource::cached(fam))
    }

    /// A session serving `fam` CSR-free from its generator math.
    pub fn implicit<T: Partitionable + Sync + 'static>(fam: T) -> Diagnoser<'static> {
        Diagnoser::from_source(TopologySource::implicit(fam))
    }

    /// The topology every call on this session runs against.
    pub fn topology(&self) -> &(dyn Partitionable + Sync) {
        self.topology.view()
    }

    // --- backend policy -------------------------------------------------

    /// Set the execution backend policy explicitly.
    pub fn backend(mut self, policy: BackendPolicy<'g>) -> Self {
        self.backend = policy;
        self
    }

    /// Sequential in-order scan (the default).
    pub fn sequential(self) -> Self {
        self.backend(BackendPolicy::Sequential)
    }

    /// Probe search on the process-wide global pool at full width.
    pub fn pooled(self) -> Self {
        self.backend(BackendPolicy::Pooled(mmdiag_exec::global()))
    }

    /// Probe search on a caller-owned pool at full width.
    pub fn pooled_on(self, pool: &'g mmdiag_exec::Pool) -> Self {
        self.backend(BackendPolicy::Pooled(pool))
    }

    /// The legacy `diagnose_parallel` strategy: `width` strided probe
    /// lanes on the global pool.
    pub fn lanes(self, width: usize) -> Self {
        self.backend(BackendPolicy::PooledWidth(mmdiag_exec::global(), width))
    }

    /// Size-directed: sequential below the live
    /// [`mmdiag_core::sequential_cutover`], pooled above it.
    pub fn auto(self) -> Self {
        self.backend(BackendPolicy::Auto)
    }

    /// [`Diagnoser::auto`] with an explicit cutover.
    pub fn auto_with_cutover(self, cutover: usize) -> Self {
        self.backend(BackendPolicy::AutoWithCutover(cutover))
    }

    // --- verification policy --------------------------------------------

    /// Set the verification policy explicitly.
    pub fn verification(mut self, policy: VerificationPolicy) -> Self {
        self.verification = policy;
        self
    }

    /// Verify every diagnosis with the seeded sampled spot-check.
    pub fn verify_sampled(self, samples_per_part: usize, seed: u64) -> Self {
        self.verification(VerificationPolicy::Sampled {
            samples_per_part,
            seed,
        })
    }

    /// Verify every diagnosis against the full-table baseline.
    pub fn verify_full(self) -> Self {
        self.verification(VerificationPolicy::FullBaseline)
    }

    // --- run mode -------------------------------------------------------

    /// Set the run mode explicitly.
    pub fn run_mode(mut self, mode: RunMode) -> Self {
        self.mode = mode;
        self
    }

    /// Execute as timestamped messages in the event-level simulator
    /// under `latency`.
    pub fn simulated(self, latency: LatencyModel) -> Self {
        self.run_mode(RunMode::Simulated(latency))
    }

    // --- tracing --------------------------------------------------------

    /// Record a structured trace of every call on this session: one span
    /// per diagnosis phase (probe / certify / grow) plus verification
    /// spans, buffered in ring buffers sized by `cfg`. Drain through
    /// [`Diagnoser::tracer`] (`drain()` + `mmdiag_trace::export`) —
    /// the recorded phase durations and lookup counts are exactly the
    /// report's [`PhaseTelemetry`](mmdiag_core::PhaseTelemetry) values.
    pub fn trace(mut self, cfg: TraceConfig) -> Self {
        self.tracer = Tracer::new(cfg);
        self
    }

    /// The session's trace handle (clone to keep draining after the
    /// session is dropped). Disabled unless [`Diagnoser::trace`] was
    /// called or `MMDIAG_TRACE` is set.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Attach this session's metrics registry to the process-wide
    /// [`MetricsHub`] under `name`: fleet snapshots
    /// ([`MetricsHub::merged_snapshot`]) and the `MMDIAG_STATS` reporter
    /// stream (`mmdiag_exec::stats`) then include this session's
    /// counters alongside every other attached session's. Implies
    /// tracing — a disabled tracer is upgraded to a default-config one,
    /// since the metrics registry lives on the trace sink. The
    /// registration is dropped (and the hub forgets the session) when
    /// the `Diagnoser` is dropped.
    ///
    /// The first `stats` call in a process also attaches the executor's
    /// contention cells (`sync.lock_wait_ns`, `sync.park_ns`,
    /// `sync.injector_depth`, `sync.deque_depth`) to the hub as one
    /// process-level `"sync"` pseudo-session — once, not per session,
    /// so hub merges never double-count the shared cells. The cells
    /// only fill while `mmdiag_exec::set_contention_profiling(true)`
    /// (or the `MMDIAG_TRACE` knob) has profiling on.
    ///
    /// Call `stats` *after* [`Diagnoser::trace`]: `trace` replaces the
    /// tracer (and its registry), which would strand an earlier
    /// attachment on the abandoned registry.
    pub fn stats(mut self, name: &str) -> Self {
        if self.tracer.metrics_handle().is_none() {
            self.tracer = Tracer::new(TraceConfig::default());
        }
        attach_sync_cells_once();
        let registry = self
            .tracer
            .metrics_handle()
            .expect("the tracer was just enabled");
        self.hub_session = Some(MetricsHub::global().attach(name, registry));
        self
    }

    // --- bound / preconditions ------------------------------------------

    /// Override the family's canonical fault bound.
    pub fn fault_bound(mut self, bound: usize) -> Self {
        self.fault_bound = Some(bound);
        self
    }

    /// The legacy `*_unchecked` semantics: explicit fault bound, §5
    /// precondition check skipped.
    pub fn unchecked_bound(mut self, bound: usize) -> Self {
        self.fault_bound = Some(bound);
        self.check_preconditions = false;
        self
    }

    fn opts(&self) -> SessionOptions {
        let mut opts = SessionOptions::default();
        opts.fault_bound = self.fault_bound;
        opts.check_preconditions = self.check_preconditions;
        opts.tracer = self.tracer.clone();
        opts
    }

    /// When tracing, adopt the syndrome's own lookup counter as the
    /// session's `oracle.lookups` metric — the exported metric and the
    /// report's `lookups_used` then read the *same* atomic cell.
    fn adopt_lookup_counter<S>(&self, s: &S)
    where
        S: SyndromeSource + ?Sized,
    {
        if let (Some(metrics), Some(counter)) = (self.tracer.metrics(), s.lookup_counter()) {
            metrics.register_counter("oracle.lookups", counter);
        }
    }

    fn bound(&self) -> usize {
        self.fault_bound
            .unwrap_or_else(|| self.topology.view().driver_fault_bound())
    }

    fn ws_pool(&self) -> &WorkspacePool {
        self.ws.get_or_init(|| {
            // Size by the configured pool; for Sequential/Auto sessions use
            // the would-be global worker count *without* spawning the
            // global pool — a purely sequential session must stay as
            // thread-free as the legacy `diagnose` it replaces (slots are
            // lazy, so oversizing costs nothing).
            let workers = match self.backend {
                BackendPolicy::Pooled(pool) | BackendPolicy::PooledWidth(pool, _) => pool.threads(),
                _ => mmdiag_exec::default_threads(),
            };
            WorkspacePool::new(self.topology.view().node_count(), workers)
        })
    }

    fn pool(&self) -> &mmdiag_exec::Pool {
        match self.backend {
            BackendPolicy::Pooled(pool) | BackendPolicy::PooledWidth(pool, _) => pool,
            _ => mmdiag_exec::global(),
        }
    }

    // --- running --------------------------------------------------------

    /// Diagnose a live syndrome source in-process, honouring the
    /// session's backend and verification policies. Bit-identical to the
    /// legacy entry point the backend policy corresponds to.
    ///
    /// Errors with [`DiagnosisError::Unsupported`] on a
    /// [`RunMode::Simulated`] session — an opaque source cannot be
    /// replayed as messages; use [`Diagnoser::run_planted`] or
    /// [`Diagnoser::simulate`] there.
    pub fn run<S>(&self, s: &S) -> Result<DiagnosisReport, DiagnosisError>
    where
        S: SyndromeSource + Sync + ?Sized,
    {
        if let RunMode::Simulated(_) = self.mode {
            return Err(DiagnosisError::Unsupported(
                "simulated sessions replay planted syndromes; use run_planted / \
                 simulate / submit_batch for one-shot runs, or an in-process \
                 session's monitor() for live epoch loops"
                    .into(),
            ));
        }
        let g = self.topology.view();
        self.adopt_lookup_counter(s);
        let mut report = session::run_with(g, s, self.backend, &self.opts(), Some(self.ws_pool()))?;
        report.verification =
            self.verify_claim(s, &report.diagnosis.faults, report.diagnosis.certified_part);
        Ok(report)
    }

    /// Open a long-lived monitoring session over this session's
    /// topology: the epoch-based incremental re-diagnosis loop
    /// ([`MonitorSession`]). Each
    /// [`ingest`](MonitorSession::ingest) takes the current syndrome
    /// plus the delta of nodes whose status changed and re-diagnoses
    /// incrementally — cached part probes, certified-seed reuse,
    /// escalation to a full walk when the certificate is invalidated —
    /// with every epoch's labelling bit-identical to a from-scratch
    /// [`run`](Diagnoser::run) on the same instantaneous fault set.
    ///
    /// The monitor borrows the session's topology, shares its tracer
    /// (epoch spans and `monitor.*` counters land in the same sink and
    /// any [`stats`](Diagnoser::stats) hub attachment) and honours its
    /// fault bound and precondition policy. The epoch loop itself is
    /// sequential — the monitor's whole point is to skip probes, not to
    /// fan them out — so the backend policy does not apply.
    ///
    /// Errors with [`DiagnosisError::Unsupported`] on a
    /// [`RunMode::Simulated`] session: the monitor consults a live
    /// syndrome each epoch, which an event-level replay cannot serve.
    pub fn monitor(&self) -> Result<MonitorSession<'_>, DiagnosisError> {
        if let RunMode::Simulated(_) = self.mode {
            return Err(DiagnosisError::Unsupported(
                "simulated sessions replay planted syndromes and have no live \
                 epoch loop; monitor() needs an in-process session"
                    .into(),
            ));
        }
        let g = self.topology.view();
        if self.check_preconditions {
            g.check_partition_preconditions()
                .map_err(DiagnosisError::Preconditions)?;
        }
        Ok(MonitorSession::new(g, self.bound(), self.tracer.clone()))
    }

    /// Diagnose a planted fault set under a tester behaviour, honouring
    /// the session's **run mode**: in-process sessions evaluate a bitmap
    /// [`OracleSyndrome`], simulated sessions replay a static
    /// [`FaultTimeline`] under the session's latency model. Verification
    /// applies in both modes.
    pub fn run_planted(
        &self,
        faults: &FaultSet,
        behavior: TesterBehavior,
    ) -> Result<RunOutcome, RunError> {
        match &self.mode {
            RunMode::InProcess => {
                let s = OracleSyndrome::new(faults.clone(), behavior);
                self.run(&s)
                    .map(RunOutcome::InProcess)
                    .map_err(RunError::from)
            }
            RunMode::Simulated(latency) => {
                let timeline = FaultTimeline::static_faults(faults.clone(), behavior);
                let report = self.sim_one(&timeline, latency)?;
                let s = OracleSyndrome::new(faults.clone(), behavior);
                let verification = self.verify_claim(&s, &report.faults, report.certified_part);
                Ok(RunOutcome::Simulated {
                    report,
                    verification,
                })
            }
        }
    }

    /// [`Diagnoser::run_planted`] for the `O(|F|)`-state streaming
    /// oracle: in-process sessions stream outcomes from an
    /// [`OnDemandOracle`] (no bitmap — the 10⁶–10⁷-node path), simulated
    /// sessions fall back to the planted replay.
    pub fn run_streaming(
        &self,
        members: &[NodeId],
        behavior: TesterBehavior,
    ) -> Result<RunOutcome, RunError> {
        match &self.mode {
            RunMode::InProcess => {
                let s = OnDemandOracle::new(self.topology.view().node_count(), members, behavior);
                self.run(&s)
                    .map(RunOutcome::InProcess)
                    .map_err(RunError::from)
            }
            RunMode::Simulated(_) => {
                let faults = FaultSet::new(self.topology.view().node_count(), members);
                self.run_planted(&faults, behavior)
            }
        }
    }

    /// Replay a fault timeline in the event-level simulator, regardless
    /// of the session's run mode (an in-process session simulates under
    /// unit latencies; a simulated session uses its configured model).
    /// Honours the session's fault bound and precondition policy.
    pub fn simulate(&self, timeline: &FaultTimeline) -> Result<SimReport, SimError> {
        let latency = match &self.mode {
            RunMode::Simulated(latency) => latency.clone(),
            RunMode::InProcess => LatencyModel::Unit,
        };
        self.sim_one(timeline, &latency)
    }

    fn sim_one(
        &self,
        timeline: &FaultTimeline,
        latency: &LatencyModel,
    ) -> Result<SimReport, SimError> {
        let g = self.topology.view();
        if self.check_preconditions {
            g.check_partition_preconditions()
                .map_err(SimError::Preconditions)?;
        }
        simulate_unchecked(g, timeline, latency, self.bound())
    }

    /// Evaluate many jobs against this session's instance in one
    /// submission — the unified replacement for the historical
    /// `diagnose_batch` / `simulate_batch` pair. In-process sessions fan
    /// the convertible jobs out through the session backend (reusing the
    /// session's workspace pool, so `k` jobs allocate `O(workers)`
    /// scratch); simulated sessions replay each job's timeline on the
    /// session pool. The verification policy applies wherever a live
    /// syndrome exists to check against: every in-process job, and
    /// planted / **static**-timeline jobs under simulation. A timeline
    /// with mid-protocol onsets has no single post-hoc syndrome (tests
    /// were graded at their reply instants), so its outcome carries
    /// [`VerificationVerdict::Unverified`]. Results come back in input
    /// order.
    pub fn submit_batch(&self, jobs: &[BatchJob<'_>]) -> Vec<Result<RunOutcome, RunError>> {
        match &self.mode {
            RunMode::InProcess => self.submit_batch_in_process(jobs),
            RunMode::Simulated(latency) => {
                let latency = latency.clone();
                self.pool().map(jobs, |_, job| match job {
                    BatchJob::Source(_) => Err(RunError::Diagnosis(DiagnosisError::Unsupported(
                        "a live syndrome source cannot be replayed as messages".into(),
                    ))),
                    BatchJob::Planted { faults, behavior } => self
                        .run_planted_simulated(faults, *behavior, &latency)
                        .map_err(RunError::from),
                    BatchJob::Timeline(timeline) if timeline.is_static() => self
                        .run_planted_simulated(
                            timeline.final_faults(),
                            timeline.behavior(),
                            &latency,
                        )
                        .map_err(RunError::from),
                    BatchJob::Timeline(timeline) => match self.sim_one(timeline, &latency) {
                        Ok(report) => Ok(RunOutcome::Simulated {
                            report,
                            // Mid-protocol onsets: no single replayable
                            // syndrome exists to verify against.
                            verification: VerificationVerdict::Unverified,
                        }),
                        Err(e) => Err(RunError::Sim(e)),
                    },
                })
            }
        }
    }

    fn run_planted_simulated(
        &self,
        faults: &FaultSet,
        behavior: TesterBehavior,
        latency: &LatencyModel,
    ) -> Result<RunOutcome, SimError> {
        let timeline = FaultTimeline::static_faults(faults.clone(), behavior);
        let report = self.sim_one(&timeline, latency)?;
        let s = OracleSyndrome::new(faults.clone(), behavior);
        let verification = self.verify_claim(&s, &report.faults, report.certified_part);
        Ok(RunOutcome::Simulated {
            report,
            verification,
        })
    }

    fn submit_batch_in_process(&self, jobs: &[BatchJob<'_>]) -> Vec<Result<RunOutcome, RunError>> {
        /// How one job enters the batch: borrowing the caller's source,
        /// an index into the session-built oracles, or a per-job error.
        enum Slot<'a> {
            Live(&'a (dyn SyndromeSource + Sync)),
            OwnedIdx(usize),
            Unsupported,
        }
        // One classification pass: build the owned oracles (planted fault
        // sets, static timelines) and remember how each job resolves.
        let mut owned: Vec<OracleSyndrome> = Vec::new();
        let plan: Vec<Slot> = jobs
            .iter()
            .map(|job| match job {
                BatchJob::Source(s) => Slot::Live(*s),
                BatchJob::Planted { faults, behavior } => {
                    owned.push(OracleSyndrome::new(faults.clone(), *behavior));
                    Slot::OwnedIdx(owned.len() - 1)
                }
                BatchJob::Timeline(timeline) if timeline.is_static() => {
                    owned.push(OracleSyndrome::new(
                        timeline.final_faults().clone(),
                        timeline.behavior(),
                    ));
                    Slot::OwnedIdx(owned.len() - 1)
                }
                BatchJob::Timeline(_) => Slot::Unsupported,
            })
            .collect();
        fn resolve<'x>(
            slot: &Slot<'x>,
            owned: &'x [OracleSyndrome],
        ) -> Option<&'x (dyn SyndromeSource + Sync)> {
            match *slot {
                Slot::Live(s) => Some(s),
                Slot::OwnedIdx(i) => Some(&owned[i]),
                Slot::Unsupported => None,
            }
        }
        let sources: Vec<&(dyn SyndromeSource + Sync)> =
            plan.iter().filter_map(|s| resolve(s, &owned)).collect();

        let reports = session::run_batch(
            self.topology.view(),
            &sources,
            self.backend,
            &self.opts(),
            Some(self.ws_pool()),
        );
        let mut reports = reports.into_iter();
        plan.iter()
            .map(|slot| match resolve(slot, &owned) {
                None => Err(RunError::Diagnosis(DiagnosisError::Unsupported(
                    "a timeline with mid-protocol onsets needs a simulated session".into(),
                ))),
                Some(s) => {
                    let mut report = reports
                        .next()
                        .expect("one session result per convertible job")?;
                    report.verification = self.verify_claim(
                        s,
                        &report.diagnosis.faults,
                        report.diagnosis.certified_part,
                    );
                    Ok(RunOutcome::InProcess(report))
                }
            })
            .collect()
    }

    // --- verification ---------------------------------------------------

    /// Run the session's verification policy against a claimed diagnosis
    /// (fault set + certified part) over the live syndrome `s`. Called by
    /// every run path; public so harnesses can verify without re-running
    /// the diagnosis.
    pub fn verify_claim<S>(
        &self,
        s: &S,
        claimed_faults: &[NodeId],
        certified_part: usize,
    ) -> VerificationVerdict
    where
        S: SyndromeSource + ?Sized,
    {
        let g = self.topology.view();
        match self.verification {
            VerificationPolicy::None => VerificationVerdict::Unverified,
            VerificationPolicy::Sampled {
                samples_per_part,
                seed,
            } => {
                let span = self.tracer.span("verify", "sampled");
                let check = sampled_check(
                    g,
                    s,
                    claimed_faults,
                    certified_part,
                    self.bound(),
                    samples_per_part,
                    seed,
                );
                VerificationVerdict::Sampled {
                    samples: check.samples.len(),
                    checked_tests: check.checked_tests,
                    disagreements: check.disagreements.len(),
                    certificate_ok: check.certificate_ok,
                    agree: check.agree,
                    nanos: u128::from(span.finish_with_value(check.checked_tests)),
                }
            }
            VerificationPolicy::FullBaseline => {
                let span = self.tracer.span("verify", "full_baseline");
                match diagnose_naive(g, s, self.bound()) {
                    Ok(base) => VerificationVerdict::FullBaseline {
                        lookups: base.lookups_used,
                        agree: base.faults == claimed_faults,
                        nanos: u128::from(span.finish_with_value(base.lookups_used)),
                    },
                    // An erroring baseline is "could not check", not a
                    // refutation — keep the two distinguishable.
                    Err(e) => VerificationVerdict::Failed {
                        method: "full_baseline",
                        error: e.to_string(),
                    },
                }
            }
        }
    }
}

/// Attach the executor's shared contention cells to the hub exactly once,
/// as a `"sync"` pseudo-session. The cells are process-wide singletons
/// ([`mmdiag_exec::sync_stats`]); registering them into each session's
/// registry instead would make [`MetricsHub::merged_snapshot`] count every
/// lock-wait N times for N attached sessions.
fn attach_sync_cells_once() {
    use std::sync::OnceLock;
    static SYNC_ATTACHMENT: OnceLock<HubSession<'static>> = OnceLock::new();
    SYNC_ATTACHMENT.get_or_init(|| {
        let registry = std::sync::Arc::new(MetricsRegistry::new());
        mmdiag_exec::sync_stats().register_into(&registry);
        MetricsHub::global().attach("sync", registry)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdiag_core::diagnose;
    use mmdiag_topology::families::Hypercube;

    #[test]
    fn builder_default_equals_legacy_diagnose() {
        let g = Hypercube::new(7);
        let s = OracleSyndrome::new(
            FaultSet::new(128, &[3, 64, 90]),
            TesterBehavior::Random { seed: 9 },
        );
        let legacy = diagnose(&g, &s).unwrap();
        s.reset_lookups();
        let report = Diagnoser::new(&g).run(&s).unwrap();
        assert_eq!(report.diagnosis.faults, legacy.faults);
        assert_eq!(report.diagnosis.certified_part, legacy.certified_part);
        assert_eq!(report.diagnosis.probes, legacy.probes);
        assert_eq!(report.diagnosis.lookups_used, legacy.lookups_used);
        assert_eq!(report.diagnosis.tree.edges(), legacy.tree.edges());
        assert!(matches!(
            report.verification,
            VerificationVerdict::Unverified
        ));
    }

    #[test]
    fn traced_session_trace_matches_report_telemetry_exactly() {
        use mmdiag_trace::{MetricValue, TraceSummary};
        let g = Hypercube::new(7);
        let s = OracleSyndrome::new(
            FaultSet::new(128, &[3, 64, 90]),
            TesterBehavior::Random { seed: 5 },
        );
        let session = Diagnoser::new(&g)
            .trace(TraceConfig::default())
            .verify_sampled(2, 11);
        let report = session.run(&s).unwrap();
        let tracer = session.tracer().clone();
        let events = tracer.drain();
        let summary = TraceSummary::from_events(&events, tracer.dropped());
        // Exact agreement, not approximate: the phase spans *are* the
        // telemetry.
        assert_eq!(summary.probe_nanos, report.telemetry.probe_nanos);
        assert_eq!(summary.certify_nanos, report.telemetry.certify_nanos);
        assert_eq!(summary.grow_nanos, report.telemetry.grow_nanos);
        assert_eq!(summary.probe_lookups, report.telemetry.probe_lookups);
        assert_eq!(summary.grow_lookups, report.telemetry.grow_lookups);
        // The verification span rode along.
        match report.verification {
            VerificationVerdict::Sampled {
                nanos,
                checked_tests,
                ..
            } => {
                assert_eq!(summary.total_ns("sampled"), nanos);
                assert_eq!(summary.value_sum("sampled"), checked_tests);
            }
            ref other => panic!("expected a sampled verdict, got {other:?}"),
        }
        // The oracle's own lookup counter is the exported metric — one
        // cell, not two tallies.
        let metrics = tracer.metrics().unwrap().snapshot();
        let oracle = metrics
            .iter()
            .find(|m| m.name == "oracle.lookups")
            .expect("counting source registered");
        assert_eq!(oracle.value, MetricValue::Counter(s.lookups()));
    }

    #[test]
    fn untraced_session_records_nothing() {
        let g = Hypercube::new(7);
        let s = OracleSyndrome::new(FaultSet::new(128, &[5]), TesterBehavior::AllZero);
        let session = Diagnoser::new(&g);
        let report = session.run(&s).unwrap();
        assert!(report.telemetry.probe_nanos > 0, "telemetry still measured");
        // The default session honours the process-wide MMDIAG_TRACE knob.
        assert_eq!(
            session.tracer().is_enabled(),
            mmdiag_exec::config::knobs().trace
        );
        if !session.tracer().is_enabled() {
            assert!(session.tracer().drain().is_empty());
        }
    }

    #[test]
    fn hub_merged_snapshot_equals_sum_of_concurrent_session_registries() {
        use mmdiag_trace::{merge_snapshots, MetricSnapshot, MetricValue, MetricsHub};
        // Four sessions on four threads, each attached to the hub under a
        // recognisable name; every run accumulates into the session's
        // adopted `oracle.lookups` cell. A `Diagnoser` is not `Send`
        // (boxed `dyn Partitionable + Sync` topology), so the sessions
        // stay on their threads: `ready` holds them alive while the main
        // thread snapshots, `release` lets them drop.
        use std::sync::{Arc, Barrier};
        let ready = Arc::new(Barrier::new(5));
        let release = Arc::new(Barrier::new(5));
        let mut handles = Vec::new();
        for i in 0..4u64 {
            let (ready, release) = (Arc::clone(&ready), Arc::clone(&release));
            handles.push(
                mmdiag_exec::sync::thread::spawn_named(format!("hubtest-worker-{i}"), move || {
                    let g = Hypercube::new(7);
                    let session = Diagnoser::cached(&g)
                        .pooled()
                        .stats(&format!("hubtest-{i}"));
                    let s = OracleSyndrome::new(
                        FaultSet::new(128, &[1 + i as usize, 64, 90]),
                        TesterBehavior::Random { seed: 7 + i },
                    );
                    // No unwraps before `ready` — a panic here would strand
                    // the barrier; failures surface through the join below.
                    let runs_ok = (0..3).all(|_| session.run(&s).is_ok());
                    let lookups = s.lookups();
                    ready.wait();
                    release.wait();
                    drop(session);
                    (runs_ok, lookups)
                })
                .unwrap(),
            );
        }
        ready.wait();
        // Other tests (and the process-level "sync" attachment) may be on
        // the hub concurrently — restrict to our own attachments.
        let per_session: Vec<Vec<MetricSnapshot>> = MetricsHub::global()
            .snapshot_sessions()
            .into_iter()
            .filter(|(name, _)| name.starts_with("hubtest-"))
            .map(|(_, snap)| snap)
            .collect();
        assert_eq!(per_session.len(), 4, "all four sessions attached");
        let merged = merge_snapshots(&per_session);
        let lookups = merged
            .iter()
            .find(|m| m.name == "oracle.lookups")
            .expect("every session adopted the oracle counter");
        release.wait();
        let results: Vec<(bool, u64)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(results.iter().all(|(ok, _)| *ok), "every run diagnosed");
        let expected: u64 = results.iter().map(|(_, n)| n).sum();
        assert_eq!(
            lookups.value,
            MetricValue::Counter(expected),
            "hub merge is exactly the sum of the live registries"
        );
        // The threads dropped their sessions after `release` — the hub
        // forgets the names.
        assert!(
            MetricsHub::global()
                .snapshot_sessions()
                .iter()
                .all(|(name, _)| !name.starts_with("hubtest-")),
            "detach on drop"
        );
    }

    #[test]
    fn simulated_session_rejects_opaque_sources_and_replays_planted() {
        let g = Hypercube::new(7);
        let session = Diagnoser::new(&g).simulated(LatencyModel::Unit);
        let s = OracleSyndrome::new(FaultSet::new(128, &[5]), TesterBehavior::AllZero);
        assert!(matches!(
            session.run(&s),
            Err(DiagnosisError::Unsupported(_))
        ));
        let faults = FaultSet::new(128, &[5, 40, 99]);
        let outcome = session
            .run_planted(&faults, TesterBehavior::AllZero)
            .unwrap();
        assert_eq!(outcome.faults(), faults.members());
        assert!(outcome.sim().is_some());
        // The in-process session diagnoses the same set.
        let in_proc = Diagnoser::new(&g)
            .run_planted(&faults, TesterBehavior::AllZero)
            .unwrap();
        assert_eq!(in_proc.faults(), outcome.faults());
        assert_eq!(in_proc.certified_part(), outcome.certified_part());
    }

    #[test]
    fn submit_batch_mixes_job_kinds_in_order() {
        let g = Hypercube::new(7);
        let session = Diagnoser::new(&g).verify_sampled(2, 7);
        let live = OracleSyndrome::new(FaultSet::new(128, &[11, 60]), TesterBehavior::AllZero);
        let jobs = vec![
            BatchJob::Source(&live),
            BatchJob::Planted {
                faults: FaultSet::new(128, &[3, 64, 90]),
                behavior: TesterBehavior::Random { seed: 4 },
            },
            BatchJob::Timeline(FaultTimeline::static_faults(
                FaultSet::new(128, &[99]),
                TesterBehavior::AllZero,
            )),
        ];
        let outcomes = session.submit_batch(&jobs);
        assert_eq!(outcomes.len(), 3);
        let expected: [&[usize]; 3] = [&[11, 60], &[3, 64, 90], &[99]];
        for (outcome, want) in outcomes.iter().zip(expected) {
            let outcome = outcome.as_ref().unwrap();
            assert_eq!(outcome.faults(), want);
            assert!(outcome.verification().agreed_or_unverified());
            assert!(matches!(
                outcome.verification(),
                VerificationVerdict::Sampled { .. }
            ));
        }
    }
}
