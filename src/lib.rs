//! Facade crate for the `mmdiag` workspace: the [`Diagnoser`] session
//! front door plus re-exports of every subsystem crate.
//!
//! ```
//! use mmdiag::Diagnoser;
//! use mmdiag::syndrome::{FaultSet, OracleSyndrome, TesterBehavior};
//! use mmdiag::topology::families::Hypercube;
//!
//! let g = Hypercube::new(7);
//! let s = OracleSyndrome::new(FaultSet::new(128, &[3, 64]), TesterBehavior::AllZero);
//!
//! // The default session is the legacy `diagnose` — one builder call per
//! // policy turns on pooled execution, verification, or simulation.
//! let report = Diagnoser::new(&g).auto().verify_full().run(&s).unwrap();
//! assert_eq!(report.diagnosis.faults, vec![3, 64]);
//! assert!(report.verification.agreed_or_unverified());
//! ```
#![forbid(unsafe_code)]

pub mod session;

pub use mmdiag_baselines as baselines;
pub use mmdiag_core as diagnosis;
pub use mmdiag_distsim as distsim;
pub use mmdiag_exec as exec;
pub use mmdiag_implicit as implicit;
pub use mmdiag_monitor as monitor;
pub use mmdiag_syndrome as syndrome;
pub use mmdiag_topology as topology;
pub use mmdiag_trace as trace;

pub use mmdiag_core::{
    BackendPolicy, Certificate, DiagnosisError, DiagnosisReport, PhaseTelemetry,
    VerificationVerdict,
};
pub use mmdiag_monitor::{EpochReport, EscalationReason, MonitorSession};
pub use session::{
    BatchJob, Diagnoser, RunError, RunMode, RunOutcome, TopologySource, VerificationPolicy,
};
