//! Facade crate re-exporting the full `mmdiag` workspace API.
pub use mmdiag_baselines as baselines;
pub use mmdiag_core as diagnosis;
pub use mmdiag_distsim as distsim;
pub use mmdiag_exec as exec;
pub use mmdiag_implicit as implicit;
pub use mmdiag_syndrome as syndrome;
pub use mmdiag_topology as topology;
