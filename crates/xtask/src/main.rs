//! Workspace task runner — `cargo run -p xtask -- lint`.
//!
//! Dependency-free static analysis keeping the workspace's concurrency
//! and layering invariants from rotting; see [`lint`] for the pass list.
#![forbid(unsafe_code)]

mod lint;

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::from(2)
        }
    }
}

fn run_lint() -> ExitCode {
    // Compile-time anchor: <root>/crates/xtask → <root>. No process
    // environment is read at runtime (the env-single-door invariant
    // applies to this binary like everything else).
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask lives at <workspace>/crates/xtask");
    let (examined, findings) = lint::lint_workspace(root);
    if findings.is_empty() {
        println!("xtask lint: {examined} files clean");
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}");
        }
        eprintln!(
            "xtask lint: {} finding(s) across {examined} files",
            findings.len()
        );
        ExitCode::FAILURE
    }
}
