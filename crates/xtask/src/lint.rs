//! Token/line-level static-analysis passes enforcing workspace
//! invariants that rustc and clippy cannot see (dependency-free — no
//! syn, no regex; the build is offline).
//!
//! The passes work on two *views* of each source file, produced by a
//! small lexer that understands line/block (nested) comments, string and
//! raw-string literals, char literals and lifetime ticks:
//!
//! * the **code view** (comments and string *contents* blanked, line
//!   structure preserved) — token searches run here so prose about
//!   `unsafe` or `thread::spawn` never trips a pass;
//! * the **raw lines** — `// SAFETY:` comment detection and the bench
//!   schema-literal extraction read these.
//!
//! `crates/shims/` is excluded from every invariant pass: the vendored
//! rand stand-ins mirror an external API and are not governed by this
//! workspace's conventions (asserted by a unit test below).

use std::fmt;
use std::path::Path;

/// One invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which pass fired.
    pub pass: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.pass, self.message
        )
    }
}

fn is_word(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Find `tok` in `line` at word boundaries (identifier characters on
/// either side disqualify a match, so `unsafe_code` never matches
/// `unsafe`).
fn find_token(line: &str, tok: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(p) = line[start..].find(tok) {
        let p = start + p;
        let before_ok = p == 0 || !is_word(bytes[p - 1]);
        let after = p + tok.len();
        let after_ok = after >= bytes.len() || !is_word(bytes[after]);
        if before_ok && after_ok {
            return Some(p);
        }
        start = p + 1;
    }
    None
}

/// Blank comments (always) and string/char contents (unless
/// `keep_strings`) while preserving the exact line structure, so line
/// numbers in the result match the input.
fn code_view(src: &str, keep_strings: bool) -> String {
    let b: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut i = 0;
    let push_masked = |out: &mut String, c: char| out.push(if c == '\n' { '\n' } else { ' ' });
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == '/' && b.get(i + 1) == Some(&'/') {
            while i < b.len() && b[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment — Rust block comments nest.
        if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 1;
            out.push_str("  ");
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                } else {
                    push_masked(&mut out, b[i]);
                    i += 1;
                }
            }
            continue;
        }
        // Raw (and raw byte) string: r"…", r#"…"#, br#"…"#.
        if (c == 'r' || c == 'b') && (i == 0 || (!b[i - 1].is_alphanumeric() && b[i - 1] != '_')) {
            let mut j = i;
            if b[j] == 'b' && b.get(j + 1) == Some(&'r') {
                j += 1;
            }
            if b[j] == 'r' {
                let mut k = j + 1;
                let mut hashes = 0;
                while b.get(k) == Some(&'#') {
                    hashes += 1;
                    k += 1;
                }
                if b.get(k) == Some(&'"') {
                    for &p in &b[i..=k] {
                        out.push(p);
                    }
                    i = k + 1;
                    // Scan for `"` followed by `hashes` hashes.
                    loop {
                        if i >= b.len() {
                            break;
                        }
                        if b[i] == '"'
                            && b[i + 1..]
                                .iter()
                                .take(hashes)
                                .filter(|&&h| h == '#')
                                .count()
                                == hashes
                        {
                            out.push('"');
                            for _ in 0..hashes {
                                out.push('#');
                            }
                            i += 1 + hashes;
                            break;
                        }
                        if keep_strings {
                            out.push(b[i]);
                        } else {
                            push_masked(&mut out, b[i]);
                        }
                        i += 1;
                    }
                    continue;
                }
            }
        }
        // Ordinary string (a leading `b` falls through as a plain char).
        if c == '"' {
            out.push('"');
            i += 1;
            while i < b.len() {
                if b[i] == '\\' && i + 1 < b.len() {
                    if keep_strings {
                        out.push(b[i]);
                        out.push(b[i + 1]);
                    } else {
                        push_masked(&mut out, b[i]);
                        push_masked(&mut out, b[i + 1]);
                    }
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    out.push('"');
                    i += 1;
                    break;
                }
                if keep_strings {
                    out.push(b[i]);
                } else {
                    push_masked(&mut out, b[i]);
                }
                i += 1;
            }
            continue;
        }
        // Char literal vs lifetime tick.
        if c == '\'' {
            if b.get(i + 1) == Some(&'\\') {
                // Escaped char literal: consume through the closing quote.
                out.push('\'');
                i += 2;
                out.push(' ');
                out.push(' ');
                while i < b.len() && b[i] != '\'' {
                    push_masked(&mut out, b[i]);
                    i += 1;
                }
                if i < b.len() {
                    out.push('\'');
                    i += 1;
                }
                continue;
            }
            if b.get(i + 2) == Some(&'\'') && b.get(i + 1) != Some(&'\'') {
                // Plain char literal 'x'.
                out.push('\'');
                out.push(' ');
                out.push('\'');
                i += 3;
                continue;
            }
            // Lifetime or loop label: keep the tick, continue normally.
            out.push('\'');
            i += 1;
            continue;
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Per-line mask: true where the line sits inside a `#[cfg(test)]` (or
/// `#[cfg(all(test, …))]`) module. Token searches skip masked lines for
/// passes whose invariants govern production code only.
fn test_mod_mask(code: &str) -> Vec<bool> {
    let lines: Vec<&str> = code.lines().collect();
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let is_test_cfg = lines[i].contains("#[cfg")
            && find_token(lines[i], "test").is_some()
            && !lines[i].contains("not(test");
        if is_test_cfg {
            // Skip further attributes/blank lines to the introduced item.
            let mut j = i + 1;
            while j < lines.len() {
                let t = lines[j].trim();
                if t.is_empty() || t.starts_with("#[") {
                    j += 1;
                } else {
                    break;
                }
            }
            if j < lines.len() && find_token(lines[j], "mod").is_some() {
                let mut depth = 0i64;
                let mut started = false;
                let mut k = j;
                while k < lines.len() {
                    mask[k] = true;
                    for ch in lines[k].chars() {
                        match ch {
                            '{' => {
                                depth += 1;
                                started = true;
                            }
                            '}' => depth -= 1,
                            _ => {}
                        }
                    }
                    if started && depth <= 0 {
                        break;
                    }
                    k += 1;
                }
                i = k + 1;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// Environment-reading tokens that must stay behind the single door.
const ENV_TOKENS: &[&str] = &[
    "env::var",
    "env::var_os",
    "env::vars",
    "env::vars_os",
    "env::set_var",
    "env::remove_var",
];

/// Thread-creation tokens that must stay inside `crates/exec`.
const THREAD_TOKENS: &[&str] = &["thread::spawn", "thread::scope", "thread::Builder"];

/// Run every pass over one file. `rel` is the workspace-relative path
/// with forward slashes; `src` its full text.
pub fn lint_source(rel: &str, src: &str) -> Vec<Finding> {
    // The vendored shims mirror external crates and are exempt from
    // workspace invariants (their own tests live in-tree and pass the
    // normal build).
    if rel.starts_with("crates/shims/") {
        return Vec::new();
    }
    let mut findings = Vec::new();
    let code = code_view(src, false);
    let code_lines: Vec<&str> = code.lines().collect();
    let raw_lines: Vec<&str> = src.lines().collect();
    let mask = test_mod_mask(&code);
    let at = |line_idx: usize, pass: &'static str, message: String| Finding {
        file: rel.to_string(),
        line: line_idx + 1,
        pass,
        message,
    };

    // Pass: every `unsafe` carries a `// SAFETY:` comment (same line or
    // the contiguous comment block directly above).
    for (idx, line) in code_lines.iter().enumerate() {
        if find_token(line, "unsafe").is_none() {
            continue;
        }
        let mut documented = raw_lines[idx].contains("SAFETY:");
        let mut up = idx;
        while !documented && up > 0 {
            up -= 1;
            let t = raw_lines[up].trim_start();
            if t.starts_with("//") {
                documented = t.contains("SAFETY:");
                if documented {
                    break;
                }
            } else {
                break;
            }
        }
        if !documented {
            findings.push(at(
                idx,
                "unsafe-safety-comment",
                "`unsafe` without a `// SAFETY:` comment on or directly above it".into(),
            ));
        }
    }

    // Pass: process-environment reads stay behind `mmdiag_exec::config`.
    if rel != "crates/exec/src/config.rs" {
        for (idx, line) in code_lines.iter().enumerate() {
            for tok in ENV_TOKENS {
                if find_token(line, tok).is_some() {
                    findings.push(at(
                        idx,
                        "env-single-door",
                        format!(
                            "`{tok}` outside `crates/exec/src/config.rs` — route the knob \
                             through `mmdiag_exec::config::knobs()`"
                        ),
                    ));
                }
            }
        }
    }

    // Pass: thread creation stays inside the executor crate.
    if !rel.starts_with("crates/exec/") {
        for (idx, line) in code_lines.iter().enumerate() {
            for tok in THREAD_TOKENS {
                if find_token(line, tok).is_some() {
                    findings.push(at(
                        idx,
                        "thread-containment",
                        format!(
                            "`{tok}` outside `crates/exec` — use the shared `mmdiag_exec::Pool`"
                        ),
                    ));
                }
            }
        }
    }

    // Pass: wall-clock reads stay behind the `mmdiag_trace::clock` door.
    // Only the trace crate may call `Instant::now` — everything else times
    // through `now_ns()` / `Stopwatch`, so the span exactness contract
    // (the trace *is* the telemetry) has a single clock to be exact
    // against. `#[cfg(test)]` modules and integration-test files are
    // test code, not production timing, and may time freely.
    let is_test_file = rel.starts_with("tests/") || rel.contains("/tests/");
    if !rel.starts_with("crates/trace/") && !is_test_file {
        for (idx, line) in code_lines.iter().enumerate() {
            if !mask[idx] && find_token(line, "Instant::now").is_some() {
                findings.push(at(
                    idx,
                    "instant-single-door",
                    "`Instant::now` outside `crates/trace` — read time through \
                     `mmdiag_trace::clock` (`now_ns()` / `Stopwatch::start()`)"
                        .into(),
                ));
            }
        }
    }

    // Pass: blocking synchronisation primitives stay behind the
    // `mmdiag_exec::sync` facade — the single door that gives the
    // `model` feature its interleaving shims and the contention profiler
    // its lock-wait/park histograms. A `std::sync::Mutex` constructed
    // anywhere else is invisible to both. Exempt: the facade itself and
    // the model shims it fronts; `crates/trace` (below the executor in
    // the dependency graph — routing through the facade would be a
    // cycle); test files and `#[cfg(test)]` modules (test-local
    // serialisation locks are not protocol state). `MutexGuard` &c. do
    // not match: the token search is word-bounded.
    const SYNC_TOKENS: &[&str] = &["Mutex", "Condvar", "RwLock"];
    let sync_exempt = rel == "crates/exec/src/sync.rs"
        || rel.starts_with("crates/exec/src/model")
        || rel.starts_with("crates/trace/")
        || is_test_file;
    if !sync_exempt {
        for (idx, line) in code_lines.iter().enumerate() {
            if mask[idx] || find_token(line, "std::sync").is_none() {
                continue;
            }
            for tok in SYNC_TOKENS {
                if find_token(line, tok).is_some() {
                    findings.push(at(
                        idx,
                        "sync-single-door",
                        format!(
                            "`std::sync::{tok}` outside `crates/exec/src/sync.rs` — construct \
                             it through the `mmdiag_exec::sync` facade so the model scheduler \
                             and the contention profiler both see it"
                        ),
                    ));
                }
            }
        }
    }

    // Pass: the implicit scale path never materialises a CSR. The
    // frontier growth engine is held to the same invariant: it serves
    // implicit topologies at `--xxlarge` (Q_27, 10⁸-node) scale, where a
    // single `Cached::new` would densify ~3.6 GB of adjacency.
    if rel.starts_with("crates/implicit/src/") || rel == "crates/core/src/grow.rs" {
        for (idx, line) in code_lines.iter().enumerate() {
            if !mask[idx] && find_token(line, "Cached::new").is_some() {
                findings.push(at(
                    idx,
                    "implicit-no-materialisation",
                    "`Cached::new` on the implicit/growth scale path — it must stay \
                     CSR-free (tests under `#[cfg(test)]` are exempt)"
                        .into(),
                ));
            }
        }
    }

    // Pass: public error enums stay `#[non_exhaustive]`.
    for (idx, line) in code_lines.iter().enumerate() {
        if mask[idx] {
            continue;
        }
        let Some(pos) = line.find("pub enum ") else {
            continue;
        };
        let ident: String = line[pos + "pub enum ".len()..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if !ident.ends_with("Error") {
            continue;
        }
        let mut annotated = false;
        let mut up = idx;
        while up > 0 {
            up -= 1;
            let t = raw_lines[up].trim_start();
            if t.starts_with('#') || t.starts_with("//") || t.starts_with(")]") {
                if t.contains("non_exhaustive") {
                    annotated = true;
                    break;
                }
            } else {
                break;
            }
        }
        if !annotated {
            findings.push(at(
                idx,
                "non-exhaustive-errors",
                format!("public error enum `{ident}` is missing `#[non_exhaustive]`"),
            ));
        }
    }

    // Pass: crate-root hardening — `#![forbid(unsafe_code)]` everywhere,
    // except the executor, which is the audited unsafe island and must
    // instead deny `unsafe_op_in_unsafe_fn`.
    let is_crate_root = rel == "src/lib.rs"
        || rel == "src/main.rs"
        || (rel.starts_with("crates/")
            && (rel.ends_with("/src/lib.rs") || rel.ends_with("/src/main.rs")));
    if is_crate_root {
        // Search the comment-stripped view: prose *about* these
        // attributes (the executor's docs discuss the policy) must not
        // count as carrying them.
        if rel == "crates/exec/src/lib.rs" {
            if !code.contains("#![deny(unsafe_op_in_unsafe_fn)]") {
                findings.push(at(
                    0,
                    "crate-root-hardening",
                    "the executor crate root must carry `#![deny(unsafe_op_in_unsafe_fn)]`".into(),
                ));
            }
            if code.contains("#![forbid(unsafe_code)]") {
                findings.push(at(
                    0,
                    "crate-root-hardening",
                    "the executor cannot forbid unsafe (its scope plumbing needs it) — \
                     this attribute would not compile"
                        .into(),
                ));
            }
        } else if !code.contains("#![forbid(unsafe_code)]") {
            findings.push(at(
                0,
                "crate-root-hardening",
                "crate root is missing `#![forbid(unsafe_code)]`".into(),
            ));
        }
    }

    // Pass: the bench schema version literal written by `to_json` must be
    // one the cutover reader accepts, and no drifting copy of the literal
    // may exist outside the two declarations.
    if rel == "crates/bench/src/lib.rs" {
        findings.extend(schema_pass(rel, src, &mask));
    }

    findings
}

const SCHEMA_PREFIX: &str = "mmdiag-bench/v";

fn schema_literals(line: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(p) = line[start..].find(SCHEMA_PREFIX) {
        let p = start + p;
        let lit: String = line[p..]
            .chars()
            .take_while(|c| *c != '"' && *c != '\\')
            .collect();
        out.push(lit);
        start = p + 1;
    }
    out
}

fn schema_pass(rel: &str, src: &str, mask: &[bool]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let raw_lines: Vec<&str> = src.lines().collect();
    let mut writer: Option<(usize, String)> = None;
    let mut readers: Vec<String> = Vec::new();
    let mut decl_lines: Vec<usize> = Vec::new();
    let mut i = 0;
    while i < raw_lines.len() {
        let line = raw_lines[i];
        if line.contains("pub const SCHEMA_VERSION") {
            decl_lines.push(i);
            if let Some(lit) = schema_literals(line).into_iter().next() {
                writer = Some((i, lit));
            }
        } else if line.contains("pub const READER_ACCEPTED_SCHEMAS") {
            // The accepted list may span lines up to the closing `];`.
            loop {
                decl_lines.push(i);
                readers.extend(schema_literals(raw_lines[i]));
                if raw_lines[i].contains(';') || i + 1 >= raw_lines.len() {
                    break;
                }
                i += 1;
            }
        }
        i += 1;
    }
    let at = |line_idx: usize, message: String| Finding {
        file: rel.to_string(),
        line: line_idx + 1,
        pass: "bench-schema-agreement",
        message,
    };
    match (&writer, readers.is_empty()) {
        (None, _) => findings.push(at(
            0,
            "missing `pub const SCHEMA_VERSION` declaration (the writer's schema literal)".into(),
        )),
        (_, true) => findings.push(at(
            0,
            "missing `pub const READER_ACCEPTED_SCHEMAS` declaration (the cutover reader's \
             accepted schema literals)"
                .into(),
        )),
        (Some((line, w)), false) => {
            if !readers.iter().any(|r| r == w) {
                findings.push(at(
                    *line,
                    format!(
                        "writer schema `{w}` is not in READER_ACCEPTED_SCHEMAS {readers:?} — \
                         the cutover calibration would skip the very files this crate writes"
                    ),
                ));
            }
        }
    }
    // No stray copies of the literal in non-test code outside the decls.
    let with_strings = code_view(src, true);
    for (idx, line) in with_strings.lines().enumerate() {
        if mask.get(idx).copied().unwrap_or(false) || decl_lines.contains(&idx) {
            continue;
        }
        if line.contains(SCHEMA_PREFIX) {
            findings.push(at(
                idx,
                "schema version literal outside SCHEMA_VERSION/READER_ACCEPTED_SCHEMAS — \
                 reference the constants instead"
                    .into(),
            ));
        }
    }
    findings
}

/// Recursively lint every `.rs` file under `root` (skipping `target/` and
/// VCS internals). Returns `(files examined, findings)`.
pub fn lint_workspace(root: &Path) -> (usize, Vec<Finding>) {
    let mut files = Vec::new();
    collect_rs(root, root, &mut files);
    files.sort();
    let mut findings = Vec::new();
    let mut examined = 0;
    for rel in files {
        let Ok(src) = std::fs::read_to_string(root.join(&rel)) else {
            continue;
        };
        examined += 1;
        findings.extend(lint_source(&rel.replace('\\', "/"), &src));
    }
    (examined, findings)
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(root, &path, out);
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().into_owned());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn passes(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.pass).collect()
    }

    #[test]
    fn undocumented_unsafe_is_flagged_and_documented_unsafe_is_not() {
        let bad = "fn f() {\n    let x = unsafe { erase(y) };\n}\n";
        let found = lint_source("crates/exec/src/scope.rs", bad);
        assert_eq!(passes(&found), vec!["unsafe-safety-comment"]);
        assert_eq!(found[0].line, 2);

        let good = "fn f() {\n    // SAFETY: lifetime erasure only; the scope joins first.\n    let x = unsafe { erase(y) };\n}\n";
        assert!(lint_source("crates/exec/src/scope.rs", good).is_empty());

        let same_line = "fn f() {\n    let x = unsafe { erase(y) }; // SAFETY: joined below\n}\n";
        assert!(lint_source("crates/exec/src/scope.rs", same_line).is_empty());
    }

    #[test]
    fn prose_and_strings_mentioning_unsafe_do_not_trip_the_pass() {
        let src = "//! Talks about unsafe code at length.\n\
                   fn f() -> &'static str {\n    \"unsafe as a string\"\n}\n\
                   /* block comment: unsafe unsafe */\n";
        assert!(lint_source("crates/core/src/driver.rs", src).is_empty());
        // Attribute tokens like `unsafe_code` are not the `unsafe` token.
        let attrs = "#![forbid(unsafe_code)]\n#![deny(unsafe_op_in_unsafe_fn)]\n";
        assert!(lint_source("crates/core/src/driver.rs", attrs).is_empty());
    }

    #[test]
    fn env_reads_outside_the_config_door_are_flagged() {
        let src = "fn f() -> Option<String> {\n    std::env::var(\"MMDIAG_QUICK\").ok()\n}\n";
        let found = lint_source("crates/bench/src/quick.rs", src);
        assert_eq!(passes(&found), vec!["env-single-door"]);
        assert_eq!(found[0].line, 2);
        // The one sanctioned door.
        assert!(lint_source("crates/exec/src/config.rs", src).is_empty());
        // Mentions in docs don't count.
        let doc = "//! Reads env::var exactly once.\nfn g() {}\n";
        assert!(lint_source("crates/bench/src/quick.rs", doc).is_empty());
    }

    #[test]
    fn thread_spawning_outside_exec_is_flagged() {
        let src = "fn f() {\n    std::thread::spawn(|| {});\n    std::thread::scope(|s| {});\n}\n";
        let found = lint_source("crates/syndrome/src/oracle.rs", src);
        assert_eq!(
            passes(&found),
            vec!["thread-containment", "thread-containment"]
        );
        // Inside the executor it is the whole point.
        assert!(lint_source("crates/exec/src/pool.rs", src).is_empty());
    }

    #[test]
    fn instant_now_outside_the_trace_clock_is_flagged() {
        let src = "fn f() {\n    let t0 = std::time::Instant::now();\n}\n";
        let found = lint_source("crates/bench/src/quick.rs", src);
        assert_eq!(passes(&found), vec!["instant-single-door"]);
        assert_eq!(found[0].line, 2);
        // The one sanctioned door.
        assert!(lint_source("crates/trace/src/clock.rs", src).is_empty());
        // `#[cfg(test)]` modules may time freely.
        let test_only = "#[cfg(test)]\nmod tests {\n    fn t() {\n        \
                         let t0 = std::time::Instant::now();\n    }\n}\n";
        assert!(lint_source("crates/core/src/session.rs", test_only).is_empty());
        // Integration-test files are test code too.
        assert!(lint_source("crates/exec/tests/model.rs", src).is_empty());
        // Prose about the token does not count.
        let doc = "//! Wraps Instant::now behind one door.\nfn g() {}\n";
        assert!(lint_source("crates/core/src/session.rs", doc).is_empty());
    }

    #[test]
    fn std_sync_primitives_outside_the_facade_are_flagged() {
        let src = "use std::sync::Mutex;\n\
                   fn f() {\n    let m = std::sync::Mutex::new(0);\n    \
                   let c: std::sync::Condvar = Default::default();\n    \
                   let r = std::sync::RwLock::new(1);\n}\n";
        let found = lint_source("crates/core/src/backend.rs", src);
        assert_eq!(
            passes(&found),
            vec![
                "sync-single-door",
                "sync-single-door",
                "sync-single-door",
                "sync-single-door"
            ]
        );
        assert_eq!(found[0].line, 1);
        // The facade itself, the shims it fronts, and the trace crate
        // (below the executor in the dependency graph) are the doors.
        assert!(lint_source("crates/exec/src/sync.rs", src).is_empty());
        assert!(lint_source("crates/exec/src/model/shim.rs", src).is_empty());
        assert!(lint_source("crates/trace/src/metrics.rs", src).is_empty());
        // Test files and `#[cfg(test)]` modules may serialise freely.
        assert!(lint_source("crates/exec/tests/model.rs", src).is_empty());
        let test_only = "#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n    \
                         static L: Mutex<()> = Mutex::new(());\n}\n";
        assert!(lint_source("crates/core/src/backend.rs", test_only).is_empty());
    }

    #[test]
    fn facade_guards_and_other_std_sync_items_do_not_trip_the_sync_pass() {
        // `MutexGuard` is not `Mutex` (word boundaries), `OnceLock`/`Arc`
        // imports are sanctioned, and prose about the token is ignored.
        let src = "//! Discusses std::sync::Mutex at length.\n\
                   use std::sync::OnceLock;\n\
                   use std::sync::Arc;\n\
                   use std::sync::atomic::AtomicBool;\n\
                   fn f(g: &mmdiag_exec::sync::MutexGuard<'_, u32>) {}\n\
                   fn g() { let s = \"std::sync::Mutex\"; }\n";
        assert!(lint_source("crates/core/src/backend.rs", src).is_empty());
        // A facade `Mutex` on a line that also mentions `std::sync` for
        // an unrelated item is the one shape the AND-rule tolerates only
        // when split across lines — keep them apart.
        let combined = "fn f() { let l: std::sync::OnceLock<Mutex<()>> = todo!(); }\n";
        assert_eq!(
            passes(&lint_source("crates/core/src/backend.rs", combined)),
            vec!["sync-single-door"],
            "std::sync and a primitive token on one line is flagged even if the \
             primitive is the facade's — split the import"
        );
    }

    #[test]
    fn materialisation_in_implicit_src_is_flagged_outside_tests() {
        let src = "fn f(g: &G) {\n    let c = Cached::new(g);\n}\n\
                   #[cfg(test)]\nmod tests {\n    fn t(g: &G) {\n        let c = Cached::new(g);\n    }\n}\n";
        let found = lint_source("crates/implicit/src/scale.rs", src);
        assert_eq!(passes(&found), vec!["implicit-no-materialisation"]);
        assert_eq!(found[0].line, 2, "the test-mod call is exempt");
        // The frontier growth engine is on the same scale path.
        let found = lint_source("crates/core/src/grow.rs", src);
        assert_eq!(passes(&found), vec!["implicit-no-materialisation"]);
        assert_eq!(found[0].line, 2);
        // Other crates may materialise freely.
        assert!(lint_source(
            "crates/bench/src/sweep.rs",
            "fn f(g: &G) { let c = Cached::new(g); }\n"
        )
        .iter()
        .all(|f| f.pass != "implicit-no-materialisation"));
    }

    #[test]
    fn public_error_enums_must_be_non_exhaustive() {
        let bad = "pub enum ProbeError {\n    Timeout,\n}\n";
        let found = lint_source("crates/core/src/probe.rs", bad);
        assert_eq!(passes(&found), vec!["non-exhaustive-errors"]);

        let good = "/// Docs.\n#[derive(Debug)]\n#[non_exhaustive]\npub enum ProbeError {\n    Timeout,\n}\n";
        assert!(lint_source("crates/core/src/probe.rs", good).is_empty());
        // Non-error enums and private enums are out of scope.
        assert!(lint_source(
            "crates/core/src/probe.rs",
            "pub enum Shape { A }\nenum InnerError { B }\n"
        )
        .is_empty());
    }

    #[test]
    fn schema_literals_must_agree_between_writer_and_reader() {
        // Fixtures are crate roots, so they carry the hardening attr too.
        let good = "#![forbid(unsafe_code)]\n\
                    pub const SCHEMA_VERSION: &str = \"mmdiag-bench/v2\";\n\
                    pub const READER_ACCEPTED_SCHEMAS: &[&str] = &[\"mmdiag-bench/v1\", \"mmdiag-bench/v2\"];\n";
        assert!(lint_source("crates/bench/src/lib.rs", good).is_empty());

        let drifted = "#![forbid(unsafe_code)]\n\
                       pub const SCHEMA_VERSION: &str = \"mmdiag-bench/v3\";\n\
                       pub const READER_ACCEPTED_SCHEMAS: &[&str] = &[\"mmdiag-bench/v1\", \"mmdiag-bench/v2\"];\n";
        let found = lint_source("crates/bench/src/lib.rs", drifted);
        assert_eq!(passes(&found), vec!["bench-schema-agreement"]);

        let stray = "#![forbid(unsafe_code)]\n\
                     pub const SCHEMA_VERSION: &str = \"mmdiag-bench/v2\";\n\
                     pub const READER_ACCEPTED_SCHEMAS: &[&str] = &[\"mmdiag-bench/v2\"];\n\
                     fn w(out: &mut String) { out.push_str(\"\\\"schema\\\": \\\"mmdiag-bench/v2\\\"\"); }\n";
        let found = lint_source("crates/bench/src/lib.rs", stray);
        assert_eq!(passes(&found), vec!["bench-schema-agreement"]);
        assert_eq!(found[0].line, 4);
    }

    #[test]
    fn crate_roots_must_be_hardened() {
        let naked = "//! A crate.\npub fn f() {}\n";
        let found = lint_source("crates/core/src/lib.rs", naked);
        assert_eq!(passes(&found), vec!["crate-root-hardening"]);
        let hard = "//! A crate.\n#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert!(lint_source("crates/core/src/lib.rs", hard).is_empty());
        // The executor is the audited island: deny-in-unsafe-fn instead.
        let exec = "//! Exec.\n#![deny(unsafe_op_in_unsafe_fn)]\npub fn f() {}\n";
        assert!(lint_source("crates/exec/src/lib.rs", exec).is_empty());
        let exec_naked = "//! Exec.\npub fn f() {}\n";
        assert_eq!(
            passes(&lint_source("crates/exec/src/lib.rs", exec_naked)),
            vec!["crate-root-hardening"]
        );
        // Non-root files carry no root obligations.
        assert!(lint_source("crates/core/src/driver.rs", naked).is_empty());
    }

    #[test]
    fn vendored_shims_are_excluded_from_every_pass() {
        // A file that would otherwise trip four passes at once.
        let src = "pub enum ShimError { A }\n\
                   fn f() {\n\
                       std::thread::spawn(|| {});\n\
                       let _ = std::env::var(\"X\");\n\
                       unsafe { core::hint::unreachable_unchecked() }\n\
                   }\n";
        assert_eq!(lint_source("crates/shims/rand/src/lib.rs", src), Vec::new());
        // The same content outside the shims is a pile of findings.
        assert!(lint_source("crates/syndrome/src/oracle.rs", src).len() >= 4);
    }

    #[test]
    fn the_workspace_itself_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("xtask lives at <root>/crates/xtask")
            .to_path_buf();
        let (examined, findings) = lint_workspace(&root);
        assert!(examined > 40, "walked only {examined} files");
        assert!(
            findings.is_empty(),
            "workspace invariant violations:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
