//! Property tests for the event-level simulator (ISSUE 2, satellite 3).
//!
//! 1. Under unit latencies and static faults, the simulator's observed
//!    (rounds, messages) equal the closed-form `plan` cost model and its
//!    diagnosis is bit-identical to `mmdiag_core::diagnose` — across all
//!    14 families and both adversarial tester behaviours (`AllZero`, which
//!    inflates fake healthy trees, and seeded `Random`).
//! 2. Latency skew changes virtual time but never a static diagnosis.
//! 3. Mid-protocol fault injection is visible to exactly the tests that
//!    complete after the onset.
//!
//! Set `MMDIAG_QUICK=1` to run a reduced sweep (CI smoke mode) — the same
//! env var the `mmdiag-bench` harness honours as its `--quick` flag, so
//! one knob shrinks every sweep in the workspace.

use mmdiag_core::diagnose;
use mmdiag_distsim::{plan, simulate, FaultTimeline, LatencyModel};
use mmdiag_syndrome::{FaultSet, OracleSyndrome, TesterBehavior};
use mmdiag_topology::families::{
    Arrangement, AugmentedCube, AugmentedKAryNCube, CrossedCube, EnhancedHypercube,
    FoldedHypercube, Hypercube, KAryNCube, NKStar, Pancake, ShuffleCube, StarGraph, TwistedCube,
    TwistedNCube,
};
use mmdiag_topology::{Partitionable, Topology};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn families() -> Vec<Box<dyn Partitionable>> {
    vec![
        Box::new(Hypercube::new(7)),
        Box::new(CrossedCube::new(7)),
        Box::new(TwistedCube::new(7)),
        Box::new(TwistedNCube::new(7)),
        Box::new(FoldedHypercube::new(8)),
        Box::new(EnhancedHypercube::new(8, 3)),
        Box::new(AugmentedCube::new(10)),
        Box::new(ShuffleCube::new(10)),
        Box::new(KAryNCube::new(3, 6)),
        Box::new(AugmentedKAryNCube::new(4, 4)),
        Box::new(StarGraph::new(6)),
        Box::new(NKStar::new(6, 3)),
        Box::new(Pancake::new(6)),
        Box::new(Arrangement::new(6, 3)),
    ]
}

fn quick() -> bool {
    // The one MMDIAG_QUICK knob, parsed once for the whole workspace —
    // same semantics as mmdiag-bench's --quick handling.
    mmdiag_exec::knobs().quick
}

/// The tentpole property: simulator == cost model == centralised driver.
#[test]
fn unit_latency_static_faults_match_model_and_driver() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x00D1_5751);
    for g in families() {
        let g = g.as_ref();
        let n = g.node_count();
        let bound = g.driver_fault_bound();
        let model = plan(g);
        let loads: Vec<usize> = if quick() {
            let mut v = vec![0, bound];
            v.dedup();
            v
        } else {
            let mut v = vec![0, 1, bound / 2, bound];
            v.sort_unstable();
            v.dedup();
            v
        };
        for load in loads {
            let faults = FaultSet::random(n, load, &mut rng);
            for behavior in [
                TesterBehavior::AllZero,
                TesterBehavior::Random { seed: load as u64 },
            ] {
                let timeline = FaultTimeline::static_faults(faults.clone(), behavior);
                let report = simulate(g, &timeline, &LatencyModel::Unit)
                    .unwrap_or_else(|e| panic!("{}: sim failed: {e} ({behavior:?})", g.name()));

                // Observed trace == closed-form cost model, per part.
                report
                    .check_against_plan(&model)
                    .unwrap_or_else(|e| panic!("{}: {e} ({behavior:?})", g.name()));

                // Diagnosis == the centralised driver, field for field.
                let s = OracleSyndrome::new(faults.clone(), behavior);
                let drv = diagnose(g, &s)
                    .unwrap_or_else(|e| panic!("{}: driver failed: {e} ({behavior:?})", g.name()));
                assert_eq!(report.faults, drv.faults, "{} {behavior:?}", g.name());
                assert_eq!(
                    report.certified_part,
                    drv.certified_part,
                    "{} {behavior:?}",
                    g.name()
                );
                assert_eq!(
                    report.probes_until_certificate,
                    drv.probes,
                    "{} {behavior:?}",
                    g.name()
                );
                assert_eq!(
                    report.healthy_count,
                    drv.healthy_count,
                    "{} {behavior:?}",
                    g.name()
                );
                assert_eq!(report.faults, faults.members(), "{} {behavior:?}", g.name());

                // Unit latency: virtual time of the probe phase is its
                // depth plus the final replies.
                let max_completion = report.probes.iter().map(|p| p.completion).max().unwrap();
                assert_eq!(
                    max_completion,
                    (model.probe_rounds_concurrent + 1) as u64,
                    "{}: unit-latency completion must be rounds + 1",
                    g.name()
                );
            }
        }
    }
}

/// The simulator is a pure function of its inputs.
#[test]
fn simulation_is_deterministic() {
    let g = Pancake::new(6);
    let faults = FaultSet::new(g.node_count(), &[3, 99, 500]);
    let timeline = FaultTimeline::static_faults(faults, TesterBehavior::Random { seed: 5 });
    let skew = LatencyModel::SeededRandom {
        seed: 11,
        min: 1,
        max: 9,
    };
    let a = simulate(&g, &timeline, &skew).unwrap();
    let b = simulate(&g, &timeline, &skew).unwrap();
    assert_eq!(a, b);
}

/// Latency skew stretches virtual time and can deepen first-contact paths,
/// but a static diagnosis never changes.
#[test]
fn latency_skew_changes_time_not_diagnosis() {
    let g = Hypercube::new(7);
    let n = g.node_count();
    let mut rng = ChaCha8Rng::seed_from_u64(0x0005_CE11);
    for trial in 0..3u64 {
        let faults = FaultSet::random(n, (trial as usize * 3) % 8, &mut rng);
        for behavior in [
            TesterBehavior::AllZero,
            TesterBehavior::Random { seed: trial },
        ] {
            let timeline = FaultTimeline::static_faults(faults.clone(), behavior);
            let unit = simulate(&g, &timeline, &LatencyModel::Unit).unwrap();
            for skew in [
                LatencyModel::Uniform(4),
                // Dimension 0 fast, high dimensions an order of magnitude slower.
                LatencyModel::PerDimension(vec![1, 2, 4, 8, 16]),
                LatencyModel::SeededRandom {
                    seed: trial,
                    min: 1,
                    max: 12,
                },
            ] {
                let skewed = simulate(&g, &timeline, &skew).unwrap();
                assert_eq!(skewed.faults, unit.faults, "{skew:?}");
                assert_eq!(skewed.certified_part, unit.certified_part, "{skew:?}");
                assert_eq!(skewed.healthy_count, unit.healthy_count, "{skew:?}");
                assert!(
                    skewed.total_time > unit.total_time,
                    "{skew:?}: skewed time {} should exceed unit time {}",
                    skewed.total_time,
                    unit.total_time
                );
                // Message counts are a wave invariant: skew cannot change them.
                assert_eq!(
                    skewed.probes.iter().map(|p| p.messages).sum::<usize>(),
                    unit.probes.iter().map(|p| p.messages).sum::<usize>(),
                    "{skew:?}"
                );
                assert_eq!(skewed.growth.messages, unit.growth.messages, "{skew:?}");
            }
        }
    }
}

/// Under per-dimension skew the first-contact tree follows the fast links:
/// observed wave depth can exceed what the synchronous cost model predicts
/// — the regime the cost sheet cannot express. The folded hypercube shows
/// it cleanly: its short routes lean on the complementary links (one per
/// node, the last neighbour), so making exactly those slow forces first
/// contact onto long all-regular paths.
#[test]
fn per_dimension_skew_deepens_the_wave() {
    let g = FoldedHypercube::new(8);
    let timeline =
        FaultTimeline::static_faults(FaultSet::empty(g.node_count()), TesterBehavior::Truthful);
    let unit = simulate(&g, &timeline, &LatencyModel::Unit).unwrap();
    // Dimensions 0..7 unit, the complementary link (neighbour index 8) slow.
    let mut dims = vec![1u64; 8];
    dims.push(100);
    let skewed = simulate(&g, &timeline, &LatencyModel::PerDimension(dims)).unwrap();
    assert!(
        skewed.growth.rounds > unit.growth.rounds,
        "slow complementary links should force deeper all-regular first-contact \
         paths: skewed depth {} vs unit depth {}",
        skewed.growth.rounds,
        unit.growth.rounds
    );
    assert_eq!(skewed.faults, unit.faults, "diagnosis must not change");
}

/// A fault whose onset lands between the probe phase and the growth phase
/// is caught: the probes certified a fault-free network, yet the diagnosis
/// reports the newly-faulty node.
#[test]
fn injection_between_probes_and_growth_is_caught() {
    let g = Hypercube::new(7);
    let n = g.node_count();
    let victim = 77;

    // Dry run to learn the phase boundary.
    let static_tl = FaultTimeline::static_faults(FaultSet::empty(n), TesterBehavior::Truthful);
    let dry = simulate(&g, &static_tl, &LatencyModel::Unit).unwrap();
    assert_eq!(dry.faults, Vec::<usize>::new());
    let onset = dry.growth.started + 1; // strictly after every probe exchange

    let timeline = FaultTimeline::with_onsets(
        FaultSet::empty(n),
        &[(onset, victim)],
        TesterBehavior::Truthful,
    );
    let report = simulate(&g, &timeline, &LatencyModel::Unit).unwrap();
    // Probes saw a fault-free network (certificates unchanged)…
    assert_eq!(report.certified_part, dry.certified_part);
    for (p, d) in report.probes.iter().zip(&dry.probes) {
        assert_eq!(p.certified, d.certified, "part {}", p.part);
    }
    // …but every growth test completed after the onset, so the diagnosis
    // reflects the injected fault.
    assert_eq!(report.faults, vec![victim]);
    assert_eq!(report.healthy_count, n - 1);
    assert_eq!(report.faults, timeline.final_faults().members());
}

/// A fault whose onset lands after the protocol finished is invisible —
/// the diagnosis is honestly stale.
#[test]
fn injection_after_completion_is_invisible() {
    let g = Hypercube::new(7);
    let n = g.node_count();
    let static_tl = FaultTimeline::static_faults(FaultSet::empty(n), TesterBehavior::Truthful);
    let dry = simulate(&g, &static_tl, &LatencyModel::Unit).unwrap();

    let timeline = FaultTimeline::with_onsets(
        FaultSet::empty(n),
        &[(dry.total_time + 1, 77)],
        TesterBehavior::Truthful,
    );
    let report = simulate(&g, &timeline, &LatencyModel::Unit).unwrap();
    assert_eq!(report.faults, Vec::<usize>::new(), "onset after completion");
    assert_eq!(timeline.final_faults().members(), &[77]);
}

/// An onset at time 0 is indistinguishable from a static base fault.
#[test]
fn onset_at_zero_equals_static_fault() {
    let g = StarGraph::new(6);
    let n = g.node_count();
    for behavior in [TesterBehavior::AllZero, TesterBehavior::Random { seed: 3 }] {
        let as_onset =
            FaultTimeline::with_onsets(FaultSet::empty(n), &[(0, 100), (0, 9)], behavior);
        let as_static = FaultTimeline::static_faults(FaultSet::new(n, &[9, 100]), behavior);
        let a = simulate(&g, &as_onset, &LatencyModel::Unit).unwrap();
        let b = simulate(&g, &as_static, &LatencyModel::Unit).unwrap();
        assert_eq!(a.faults, b.faults, "{behavior:?}");
        assert_eq!(a.faults, vec![9, 100], "{behavior:?}");
        assert_eq!(a.certified_part, b.certified_part, "{behavior:?}");
    }
}
