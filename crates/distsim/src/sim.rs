//! The event-level simulator of the full distributed diagnosis driver.
//!
//! [`simulate`] executes the paper's procedure as timestamped messages over
//! a [`LatencyModel`]:
//!
//! 1. **Concurrent restricted probes** — every part's representative starts
//!    a wave at time 0; each processor on first contact re-broadcasts to
//!    its in-part neighbours, so every in-part directed edge carries
//!    exactly one exchange (MM faults are responsive — the wave is
//!    syndrome-independent, matching the closed-form cost model's
//!    accounting). Test results ride the wave, each graded against the
//!    [`FaultTimeline`] at the instant its exchange completes.
//! 2. **Certified-seed selection** — the §4.1 level rules run over each
//!    part's gathered results; the lowest-indexed part whose tree exceeds
//!    the fault bound in contributors certifies, exactly like the driver's
//!    first-certificate scan.
//! 3. **Unrestricted growth** — a second wave floods the whole network
//!    from the certified seed, the level rules grow the final healthy set
//!    `U_r`, and `N(U_r)` is the diagnosis.
//!
//! Two accounting conventions are inherited from the cost model and
//! documented here once: an exchange (request + reply) on a directed edge
//! counts as **one message**, and barrier/convergecast signalling (the
//! representative learning its part's results, the coordinator picking the
//! certified seed) is **not counted** — it piggybacks on the reply path.
//! Under [`LatencyModel::Unit`] the observed per-part (rounds, messages)
//! reproduce [`crate::probe_rounds`]/[`crate::plan`] exactly, and on a
//! static timeline the diagnosis is bit-identical to
//! `mmdiag_core::diagnose` — both facts are asserted per cell by the bench
//! sweep and the workspace cross-check suite.

use crate::event::{EventQueue, QueueTelemetry, Time};
use crate::inject::FaultTimeline;
use crate::link::LatencyModel;
use crate::node::{grow_levels, GrowOutcome, NodeState};
use crate::{plan, SimPlan};
use mmdiag_topology::{NodeId, Partitionable};

/// Observed trace of one part's restricted probe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProbeTrace {
    /// The part probed.
    pub part: usize,
    /// Wave depth: maximum hop count over first-contact paths — equals the
    /// cost model's synchronous rounds under unit latencies.
    pub rounds: usize,
    /// Exchanges carried — one per in-part directed edge reached.
    pub messages: usize,
    /// Processors contacted (the part size when the part is connected).
    pub reached: usize,
    /// Virtual time at which the last exchange of this probe completed.
    pub completion: Time,
    /// Did this part's tree certify all-healthy?
    pub certified: bool,
    /// Distinct contributors of this part's probe tree.
    pub contributors: usize,
}

/// Observed trace of the final unrestricted growth wave.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GrowthTrace {
    /// Wave depth of the growth flood (≤ the cost model's conservative
    /// `growth_rounds_worst` under unit latencies).
    pub rounds: usize,
    /// Exchanges carried — one per directed edge reached.
    pub messages: usize,
    /// Processors contacted.
    pub reached: usize,
    /// Virtual time the growth wave started (all probes complete).
    pub started: Time,
    /// Virtual time its last exchange completed.
    pub completion: Time,
}

/// Everything one simulated diagnosis pass produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimReport {
    /// Per-part probe traces, indexed by part.
    pub probes: Vec<ProbeTrace>,
    /// The certified part the growth seed came from (lowest certified
    /// index, mirroring the driver's first-certificate scan).
    pub certified_part: usize,
    /// Probes a sequential driver would have run before certifying —
    /// `certified_part + 1`, comparable to `Diagnosis::probes`.
    pub probes_until_certificate: usize,
    /// The diagnosed fault set, ascending.
    pub faults: Vec<NodeId>,
    /// `|U_r|` of the final growth.
    pub healthy_count: usize,
    /// The growth wave's trace.
    pub growth: GrowthTrace,
    /// Virtual time the whole protocol finished.
    pub total_time: Time,
    /// Messages delivered by the event engine across both phases.
    pub events_delivered: u64,
    /// Event-engine distributions across both waves: future-event-list
    /// depth at each delivery and messages per virtual instant.
    /// Deterministic for a given `(topology, timeline, latency)` input,
    /// like every other field. (Boxed: two full histogram summaries
    /// would otherwise dominate the size of every moved report.)
    pub queue: Box<QueueTelemetry>,
}

impl SimReport {
    /// Check this (unit-latency) report against the closed-form cost
    /// model: per-part rounds/messages/reached must match exactly, the
    /// aggregates must agree, and the growth depth must respect the
    /// model's conservative bound. Returns a human-readable mismatch.
    ///
    /// Only meaningful for reports produced under [`LatencyModel::Unit`];
    /// skewed latencies are precisely the regime where observation and
    /// model diverge.
    pub fn check_against_plan(&self, model: &SimPlan) -> Result<(), String> {
        if self.probes.len() != model.probes.len() {
            return Err(format!(
                "part count mismatch: simulated {}, model {}",
                self.probes.len(),
                model.probes.len()
            ));
        }
        for (trace, cost) in self.probes.iter().zip(&model.probes) {
            if trace.rounds != cost.rounds
                || trace.messages != cost.messages
                || trace.reached != cost.reached
            {
                return Err(format!(
                    "part {}: simulated (rounds {}, messages {}, reached {}) \
                     vs model (rounds {}, messages {}, reached {})",
                    trace.part,
                    trace.rounds,
                    trace.messages,
                    trace.reached,
                    cost.rounds,
                    cost.messages,
                    cost.reached
                ));
            }
        }
        let concurrent = self.probes.iter().map(|p| p.rounds).max().unwrap_or(0);
        if concurrent != model.probe_rounds_concurrent {
            return Err(format!(
                "concurrent probe rounds: simulated {concurrent}, model {}",
                model.probe_rounds_concurrent
            ));
        }
        let total: usize = self.probes.iter().map(|p| p.messages).sum();
        if total != model.probe_messages_total {
            return Err(format!(
                "probe messages: simulated {total}, model {}",
                model.probe_messages_total
            ));
        }
        if self.growth.rounds > model.growth_rounds_worst {
            return Err(format!(
                "growth rounds {} exceed the model's worst-case bound {}",
                self.growth.rounds, model.growth_rounds_worst
            ));
        }
        Ok(())
    }
}

/// Why the simulated protocol could not complete — mirrors
/// `mmdiag_core::DiagnosisError` case for case. `#[non_exhaustive]` like
/// that type, so the session API can grow failure modes without breaking
/// downstream matches.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The decomposition does not satisfy §5's size requirements.
    Preconditions(String),
    /// No part certified all-healthy. Impossible for a static timeline
    /// within the fault bound; a mid-protocol onset can legitimately cause
    /// it (the injected fault contaminates the last certifiable parts).
    NoPartCertified,
    /// `N(U_r)` exceeded the fault bound — the observed results are
    /// inconsistent with `|F| ≤` bound (again possible under injection).
    TooManyFaults {
        /// All-faulty neighbours found.
        found: usize,
        /// The bound the simulation ran with.
        bound: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Preconditions(msg) => write!(f, "decomposition unusable: {msg}"),
            SimError::NoPartCertified => write!(f, "no part certified all-healthy"),
            SimError::TooManyFaults { found, bound } => {
                write!(
                    f,
                    "{found} all-faulty neighbours exceed the fault bound {bound}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// One wave message: `from`'s exchange with its neighbour number `to_idx`.
#[derive(Clone, Copy, Debug)]
struct Wave {
    from: NodeId,
    to_idx: u32,
    hops: u32,
}

/// Materialised network view shared by both phases.
struct Fabric {
    adj: Vec<Vec<NodeId>>,
    part: Vec<u32>,
}

impl Fabric {
    fn new<T: Partitionable + ?Sized>(g: &T) -> Self {
        let n = g.node_count();
        let mut adj = Vec::with_capacity(n);
        let mut buf = Vec::new();
        for u in 0..n {
            g.neighbors_into(u, &mut buf);
            adj.push(buf.clone());
        }
        let part = (0..n)
            .map(|u| u32::try_from(g.part_of(u)).expect("more than u32::MAX parts"))
            .collect();
        Fabric { adj, part }
    }
}

/// Arrival time of every directed edge's exchange, aligned with `adj`.
struct ExchangeClock {
    times: Vec<Vec<Time>>,
}

impl ExchangeClock {
    const PENDING: Time = Time::MAX;

    fn new(adj: &[Vec<NodeId>]) -> Self {
        ExchangeClock {
            times: adj.iter().map(|ns| vec![Self::PENDING; ns.len()]).collect(),
        }
    }

    fn record(&mut self, from: NodeId, to_idx: usize, at: Time) {
        self.times[from][to_idx] = at;
    }

    /// When the exchange `from → to` completed; `fallback` (the phase's
    /// completion time) if that edge never carried one.
    fn completed(&self, adj: &[Vec<NodeId>], from: NodeId, to: NodeId, fallback: Time) -> Time {
        match adj[from].iter().position(|&x| x == to) {
            Some(idx) if self.times[from][idx] != Self::PENDING => self.times[from][idx],
            _ => fallback,
        }
    }
}

/// Flood statistics accumulated per scope (one part, or the whole graph).
#[derive(Clone, Copy, Debug, Default)]
struct WaveStats {
    messages: usize,
    reached: usize,
    max_hops: u32,
    completion: Time,
}

/// Simulate the full distributed diagnosis of `g` with the family's
/// canonical fault bound, checking §5's preconditions first.
pub fn simulate<T: Partitionable + ?Sized>(
    g: &T,
    timeline: &FaultTimeline,
    latency: &LatencyModel,
) -> Result<SimReport, SimError> {
    g.check_partition_preconditions()
        .map_err(SimError::Preconditions)?;
    simulate_unchecked(g, timeline, latency, g.driver_fault_bound())
}

/// Simulate with an explicit fault bound and no precondition check —
/// mirrors `mmdiag_core::diagnose_unchecked`.
pub fn simulate_unchecked<T: Partitionable + ?Sized>(
    g: &T,
    timeline: &FaultTimeline,
    latency: &LatencyModel,
    fault_bound: usize,
) -> Result<SimReport, SimError> {
    let n = g.node_count();
    assert_eq!(
        timeline.universe(),
        n,
        "fault timeline universe does not match the network size"
    );
    let fabric = Fabric::new(g);
    let parts = g.part_count();
    let reps: Vec<NodeId> = (0..parts).map(|p| g.representative(p)).collect();

    let mut queue: EventQueue<Wave> = EventQueue::new();
    let mut states: Vec<NodeState> = vec![NodeState::default(); n];
    let mut clock = ExchangeClock::new(&fabric.adj);
    let mut stats: Vec<WaveStats> = vec![WaveStats::default(); parts];

    // --- Phase 1: all parts probe concurrently from time 0.
    for (p, &rep) in reps.iter().enumerate() {
        states[rep].on_contact(0, 0);
        stats[p].reached = 1;
        broadcast(
            &fabric,
            latency,
            &mut queue,
            rep,
            0,
            1,
            Some(p as u32),
            &mut stats[p].messages,
        );
    }
    while let Some((at, wave)) = queue.pop() {
        let to = fabric.adj[wave.from][wave.to_idx as usize];
        let p = fabric.part[to] as usize;
        clock.record(wave.from, wave.to_idx as usize, at);
        let s = &mut stats[p];
        s.completion = s.completion.max(at);
        if states[to].on_contact(at, wave.hops) {
            s.reached += 1;
            s.max_hops = s.max_hops.max(wave.hops);
            broadcast(
                &fabric,
                latency,
                &mut queue,
                to,
                at,
                wave.hops + 1,
                Some(p as u32),
                &mut s.messages,
            );
        }
    }
    let probes_done = queue.now();

    // --- Phase 2: level rules per part over the gathered results; first
    // certified part seeds the growth.
    let mut probes = Vec::with_capacity(parts);
    let mut certified_part = None;
    for (p, s) in stats.iter().enumerate() {
        let outcome = membership(
            &fabric,
            &clock,
            timeline,
            reps[p],
            fault_bound,
            s.completion,
            {
                let pp = p as u32;
                move |part_of_v: u32| part_of_v == pp
            },
        );
        if outcome.all_healthy && certified_part.is_none() {
            certified_part = Some(p);
        }
        probes.push(ProbeTrace {
            part: p,
            rounds: s.max_hops as usize,
            messages: s.messages,
            reached: s.reached,
            completion: s.completion,
            certified: outcome.all_healthy,
            contributors: outcome.contributors,
        });
    }
    let certified_part = certified_part.ok_or(SimError::NoPartCertified)?;
    let seed = reps[certified_part];

    // --- Phase 3: unrestricted growth wave from the certified seed.
    let mut states: Vec<NodeState> = vec![NodeState::default(); n];
    let mut clock = ExchangeClock::new(&fabric.adj);
    let mut gstats = WaveStats {
        completion: probes_done,
        ..WaveStats::default()
    };
    states[seed].on_contact(probes_done, 0);
    gstats.reached = 1;
    broadcast(
        &fabric,
        latency,
        &mut queue,
        seed,
        probes_done,
        1,
        None,
        &mut gstats.messages,
    );
    while let Some((at, wave)) = queue.pop() {
        let to = fabric.adj[wave.from][wave.to_idx as usize];
        clock.record(wave.from, wave.to_idx as usize, at);
        gstats.completion = gstats.completion.max(at);
        if states[to].on_contact(at, wave.hops) {
            gstats.reached += 1;
            gstats.max_hops = gstats.max_hops.max(wave.hops);
            broadcast(
                &fabric,
                latency,
                &mut queue,
                to,
                at,
                wave.hops + 1,
                None,
                &mut gstats.messages,
            );
        }
    }

    let full = membership(
        &fabric,
        &clock,
        timeline,
        seed,
        fault_bound,
        gstats.completion,
        |_| true,
    );

    // --- N(U_r) is the diagnosis (Theorem 1); the neighbourhood sweep uses
    // adjacency only, exactly like the driver's.
    let mut in_set = vec![false; n];
    for &m in &full.members {
        in_set[m] = true;
    }
    let mut fault_flag = vec![false; n];
    let mut faults = Vec::new();
    for &m in &full.members {
        for &v in &fabric.adj[m] {
            if !in_set[v] && !fault_flag[v] {
                fault_flag[v] = true;
                faults.push(v);
            }
        }
    }
    faults.sort_unstable();
    if faults.len() > fault_bound {
        return Err(SimError::TooManyFaults {
            found: faults.len(),
            bound: fault_bound,
        });
    }

    Ok(SimReport {
        probes,
        certified_part,
        probes_until_certificate: certified_part + 1,
        faults,
        healthy_count: full.members.len(),
        growth: GrowthTrace {
            rounds: gstats.max_hops as usize,
            messages: gstats.messages,
            reached: gstats.reached,
            started: probes_done,
            completion: gstats.completion,
        },
        total_time: gstats.completion,
        events_delivered: queue.delivered(),
        queue: Box::new(queue.telemetry()),
    })
}

/// Convenience: simulate and also return the closed-form [`plan`] so
/// callers can compare observation against model in one call.
pub fn simulate_with_plan<T: Partitionable + ?Sized>(
    g: &T,
    timeline: &FaultTimeline,
    latency: &LatencyModel,
) -> Result<(SimReport, SimPlan), SimError> {
    let report = simulate(g, timeline, latency)?;
    Ok((report, plan(g)))
}

/// Send one exchange from `u` to each neighbour the scope admits.
#[allow(clippy::too_many_arguments)]
fn broadcast(
    fabric: &Fabric,
    latency: &LatencyModel,
    queue: &mut EventQueue<Wave>,
    u: NodeId,
    now: Time,
    hops: u32,
    within_part: Option<u32>,
    messages: &mut usize,
) {
    for (idx, &v) in fabric.adj[u].iter().enumerate() {
        if let Some(p) = within_part {
            if fabric.part[v] != p {
                continue;
            }
        }
        *messages += 1;
        queue.schedule(
            now + latency.latency(u, v, idx),
            Wave {
                from: u,
                to_idx: idx as u32,
                hops,
            },
        );
    }
}

/// Run the level rules over gathered exchanges: test `s_u(v, w)` is graded
/// at the instant the later of the two replies (`v → u`, `w → u`) arrived.
fn membership<F: Fn(u32) -> bool>(
    fabric: &Fabric,
    clock: &ExchangeClock,
    timeline: &FaultTimeline,
    seed: NodeId,
    fault_bound: usize,
    completion: Time,
    in_scope: F,
) -> GrowOutcome {
    let accept = |v: NodeId| in_scope(fabric.part[v]);
    if timeline.is_static() {
        // Static timelines are time-invariant; skip the reply-time lookup.
        grow_levels(
            &fabric.adj,
            seed,
            fault_bound,
            |u, v, w| timeline.result(0, u, v, w),
            accept,
        )
    } else {
        grow_levels(
            &fabric.adj,
            seed,
            fault_bound,
            |u, v, w| {
                let t = clock
                    .completed(&fabric.adj, v, u, completion)
                    .max(clock.completed(&fabric.adj, w, u, completion));
                timeline.result(t, u, v, w)
            },
            accept,
        )
    }
}
