//! Per-link latency models.
//!
//! A latency model assigns every directed edge a fixed positive delay. The
//! cost model in the crate root is exactly the [`LatencyModel::Unit`] case;
//! the other models open the regimes the static cost sheet cannot express:
//! uniformly slower fabrics, per-dimension skew (e.g. the high-order
//! matching links of a hypercube routed through a slower switch tier), and
//! reproducible random jitter.

use crate::event::Time;
use mmdiag_topology::NodeId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic assignment of delivery delays to directed edges.
///
/// `dim` is the index of the target in the source's neighbour list — for
/// the cube-like families this is the link dimension, which is what makes
/// [`LatencyModel::PerDimension`] a physically meaningful skew. Latencies
/// are clamped to ≥ 1 so virtual time always advances across a hop.
#[derive(Clone, Debug)]
pub enum LatencyModel {
    /// Every link delivers in exactly 1 — the synchronous-round regime the
    /// closed-form cost model assumes.
    Unit,
    /// Every link delivers in the same constant time.
    Uniform(Time),
    /// Link latency by neighbour index: `dims[dim]`, with the last entry
    /// reused for higher dimensions. Asymmetric by construction whenever
    /// the two endpoints order their neighbour lists differently.
    PerDimension(Vec<Time>),
    /// Per-edge latency drawn uniformly from `min..=max`, keyed on the
    /// undirected edge through the vendored ChaCha shim — deterministic
    /// for a given seed, symmetric per edge.
    SeededRandom {
        /// Stream selector: same seed, same latency assignment.
        seed: u64,
        /// Smallest latency any edge may get (clamped to ≥ 1).
        min: Time,
        /// Largest latency any edge may get (`max ≥ min`).
        max: Time,
    },
}

impl LatencyModel {
    /// Delay of the directed edge `u → v`, where `v` is neighbour number
    /// `dim` of `u`.
    pub fn latency(&self, u: NodeId, v: NodeId, dim: usize) -> Time {
        match self {
            LatencyModel::Unit => 1,
            LatencyModel::Uniform(c) => (*c).max(1),
            LatencyModel::PerDimension(dims) => {
                assert!(!dims.is_empty(), "PerDimension needs at least one entry");
                dims[dim.min(dims.len() - 1)].max(1)
            }
            LatencyModel::SeededRandom { seed, min, max } => {
                let (a, b) = if u < v { (u, v) } else { (v, u) };
                let lo = (*min).max(1);
                let hi = (*max).max(lo);
                // One cheap ChaCha stream per edge, keyed on (seed, edge).
                let key = seed ^ ((a as u64) << 32 | b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut rng = ChaCha8Rng::seed_from_u64(key);
                lo + rng.gen_below(hi - lo + 1)
            }
        }
    }

    /// Upper bound on any latency this model can produce (used for sanity
    /// checks and trace summaries).
    pub fn max_latency(&self) -> Time {
        match self {
            LatencyModel::Unit => 1,
            LatencyModel::Uniform(c) => (*c).max(1),
            LatencyModel::PerDimension(dims) => dims.iter().copied().max().unwrap_or(1).max(1),
            LatencyModel::SeededRandom { min, max, .. } => (*max).max((*min).max(1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_and_uniform() {
        assert_eq!(LatencyModel::Unit.latency(0, 1, 0), 1);
        assert_eq!(LatencyModel::Uniform(5).latency(3, 4, 2), 5);
        // Degenerate constants clamp to 1 so time always advances.
        assert_eq!(LatencyModel::Uniform(0).latency(3, 4, 2), 1);
    }

    #[test]
    fn per_dimension_reuses_last_entry() {
        let m = LatencyModel::PerDimension(vec![1, 2, 7]);
        assert_eq!(m.latency(0, 1, 0), 1);
        assert_eq!(m.latency(0, 1, 2), 7);
        assert_eq!(m.latency(0, 1, 9), 7);
        assert_eq!(m.max_latency(), 7);
    }

    #[test]
    fn seeded_random_is_deterministic_symmetric_and_in_range() {
        let m = LatencyModel::SeededRandom {
            seed: 42,
            min: 2,
            max: 6,
        };
        let mut seen = std::collections::BTreeSet::new();
        for u in 0..20usize {
            for v in (u + 1)..20 {
                let l = m.latency(u, v, 0);
                assert!((2..=6).contains(&l), "latency {l} out of range");
                assert_eq!(l, m.latency(v, u, 3), "asymmetric edge ({u},{v})");
                assert_eq!(l, m.latency(u, v, 0), "non-deterministic ({u},{v})");
                seen.insert(l);
            }
        }
        assert!(seen.len() > 2, "190 edges should spread over the range");
        let other = LatencyModel::SeededRandom {
            seed: 43,
            min: 2,
            max: 6,
        };
        assert!(
            (0..20).any(|v| other.latency(0, v + 1, 0) != m.latency(0, v + 1, 0)),
            "different seeds should reassign some edge"
        );
    }
}
