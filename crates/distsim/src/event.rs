//! The discrete-event core: a deterministic priority queue of timestamped
//! messages.
//!
//! Virtual time is a bare [`Time`] counter; every in-flight message is an
//! envelope ordered by `(arrival time, insertion sequence)`, so two
//! messages scheduled for the same instant are delivered in the order they
//! were sent — the whole simulation is a pure function of its inputs, with
//! no dependence on hash iteration order or heap tie-breaking accidents.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Virtual time, in abstract latency units (a unit-latency link delivers in
/// exactly 1).
pub type Time = u64;

/// A message scheduled for delivery at a fixed virtual time.
#[derive(Clone, Debug)]
struct Envelope<M> {
    at: Time,
    seq: u64,
    msg: M,
}

impl<M> PartialEq for Envelope<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Envelope<M> {}

impl<M> PartialOrd for Envelope<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Envelope<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. Sequence numbers make ties FIFO and the pop order total.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// Popping advances the clock monotonically; scheduling into the past is a
/// logic error and panics.
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Envelope<M>>,
    seq: u64,
    now: Time,
    delivered: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// An empty queue at virtual time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            delivered: 0,
        }
    }

    /// Current virtual time (arrival time of the last delivered message).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Whether any message is still in flight.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `msg` for delivery at absolute time `at` (`at ≥ now`).
    pub fn schedule(&mut self, at: Time, msg: M) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Envelope { at, seq, msg });
    }

    /// Deliver the earliest in-flight message, advancing the clock to its
    /// arrival time.
    pub fn pop(&mut self) -> Option<(Time, M)> {
        let env = self.heap.pop()?;
        debug_assert!(env.at >= self.now, "event queue time went backwards");
        self.now = env.at;
        self.delivered += 1;
        Some((env.at, env.msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5, "e");
        q.schedule(1, "a");
        q.schedule(3, "c");
        let order: Vec<(Time, &str)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(1, "a"), (3, "c"), (5, "e")]);
        assert_eq!(q.now(), 5);
        assert_eq!(q.delivered(), 3);
    }

    #[test]
    fn simultaneous_messages_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..20 {
            q.schedule(7, i);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, m)| m).collect();
        assert_eq!(order, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn clock_is_monotone_across_interleaved_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(2, 0u32);
        assert_eq!(q.pop(), Some((2, 0)));
        q.schedule(2, 1); // same instant as `now` is allowed
        q.schedule(4, 2);
        assert_eq!(q.pop(), Some((2, 1)));
        assert_eq!(q.pop(), Some((4, 2)));
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(3, ());
        q.pop();
        q.schedule(1, ());
    }
}
