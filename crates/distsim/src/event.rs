//! The discrete-event core: a deterministic priority queue of timestamped
//! messages.
//!
//! Virtual time is a bare [`Time`] counter; every in-flight message is an
//! envelope ordered by `(arrival time, insertion sequence)`, so two
//! messages scheduled for the same instant are delivered in the order they
//! were sent — the whole simulation is a pure function of its inputs, with
//! no dependence on hash iteration order or heap tie-breaking accidents.

use mmdiag_trace::{Histogram, HistogramSummary};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Virtual time, in abstract latency units (a unit-latency link delivers in
/// exactly 1).
pub type Time = u64;

/// A message scheduled for delivery at a fixed virtual time.
#[derive(Clone, Debug)]
struct Envelope<M> {
    at: Time,
    seq: u64,
    msg: M,
}

impl<M> PartialEq for Envelope<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Envelope<M> {}

impl<M> PartialOrd for Envelope<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Envelope<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. Sequence numbers make ties FIFO and the pop order total.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// Popping advances the clock monotonically; scheduling into the past is a
/// logic error and panics.
#[derive(Debug)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Envelope<M>>,
    seq: u64,
    now: Time,
    delivered: u64,
    /// Future-event-list depth sampled at each delivery (before the pop),
    /// the classic DES congestion signal.
    depth: Histogram,
    /// Deliveries per distinct virtual instant ("round" under unit
    /// latencies) — closed rounds only; the in-progress instant is folded
    /// in by [`EventQueue::telemetry`].
    round_messages: Histogram,
    /// Deliveries observed at the current `now` so far.
    current_round: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

/// Depth and per-round delivery distributions of one queue's lifetime,
/// deterministic for a deterministic schedule (so reports carrying it
/// stay `Eq`-comparable).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueueTelemetry {
    /// In-flight message count observed at each delivery.
    pub depth: HistogramSummary,
    /// Messages delivered per distinct virtual instant.
    pub round_messages: HistogramSummary,
}

impl<M> EventQueue<M> {
    /// An empty queue at virtual time 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            delivered: 0,
            depth: Histogram::new(),
            round_messages: Histogram::new(),
            current_round: 0,
        }
    }

    /// Current virtual time (arrival time of the last delivered message).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Whether any message is still in flight.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `msg` for delivery at absolute time `at` (`at ≥ now`).
    pub fn schedule(&mut self, at: Time, msg: M) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < now {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Envelope { at, seq, msg });
    }

    /// Deliver the earliest in-flight message, advancing the clock to its
    /// arrival time.
    pub fn pop(&mut self) -> Option<(Time, M)> {
        let env = self.heap.pop()?;
        // Depth as the delivery observed it (this message included).
        self.depth.record(self.heap.len() as u64 + 1);
        debug_assert!(env.at >= self.now, "event queue time went backwards");
        if env.at > self.now && self.current_round > 0 {
            self.round_messages.record(self.current_round);
            self.current_round = 0;
        }
        self.now = env.at;
        self.current_round += 1;
        self.delivered += 1;
        Some((env.at, env.msg))
    }

    /// The queue's depth and per-round distributions so far, the
    /// in-progress virtual instant included.
    pub fn telemetry(&self) -> QueueTelemetry {
        let mut round_messages = self.round_messages.snapshot();
        if self.current_round > 0 {
            let pending = Histogram::new();
            pending.record(self.current_round);
            round_messages = round_messages.merge(&pending.snapshot());
        }
        QueueTelemetry {
            depth: self.depth.snapshot(),
            round_messages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(5, "e");
        q.schedule(1, "a");
        q.schedule(3, "c");
        let order: Vec<(Time, &str)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(1, "a"), (3, "c"), (5, "e")]);
        assert_eq!(q.now(), 5);
        assert_eq!(q.delivered(), 3);
    }

    #[test]
    fn simultaneous_messages_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..20 {
            q.schedule(7, i);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, m)| m).collect();
        assert_eq!(order, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn clock_is_monotone_across_interleaved_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(2, 0u32);
        assert_eq!(q.pop(), Some((2, 0)));
        q.schedule(2, 1); // same instant as `now` is allowed
        q.schedule(4, 2);
        assert_eq!(q.pop(), Some((2, 1)));
        assert_eq!(q.pop(), Some((4, 2)));
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(3, ());
        q.pop();
        q.schedule(1, ());
    }

    #[test]
    fn telemetry_tracks_depth_and_rounds() {
        let mut q = EventQueue::new();
        // Two instants: 3 messages at t=1, 2 at t=4.
        for i in 0..3 {
            q.schedule(1, i);
        }
        for i in 0..2 {
            q.schedule(4, 10 + i);
        }
        while q.pop().is_some() {}
        let t = q.telemetry();
        // Depth samples: one per delivery, observed as 5, 4, 3, 2, 1.
        assert_eq!(t.depth.count, 5);
        assert_eq!(t.depth.max, 5);
        assert_eq!(t.depth.min, 1);
        assert_eq!(t.depth.sum, 5 + 4 + 3 + 2 + 1);
        // Rounds: {3 messages, 2 messages}, in-progress instant included.
        assert_eq!(t.round_messages.count, 2);
        assert_eq!(t.round_messages.sum, 5);
        assert_eq!(t.round_messages.max, 3);
        assert_eq!(t.round_messages.min, 2);
    }

    #[test]
    fn telemetry_is_deterministic_across_identical_schedules() {
        let run = || {
            let mut q = EventQueue::new();
            for i in 0..50u64 {
                q.schedule(i / 7, i);
            }
            while q.pop().is_some() {}
            q.telemetry()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_queue_has_empty_telemetry() {
        let mut q = EventQueue::<u8>::new();
        assert_eq!(q.pop(), None);
        assert_eq!(q.telemetry(), QueueTelemetry::default());
    }
}
