//! # mmdiag-distsim
//!
//! Distributed deployment of the paper's diagnosis procedure, modelled two
//! ways that are validated against each other:
//!
//! The centralised driver reads a syndrome; in a distributed deployment each
//! processor holds only its own comparison results and the probe of a part
//! becomes a message-passing computation: the representative floods the
//! part, one tree level per round, exactly mirroring the levels
//! `U_1 ⊆ U_2 ⊆ …` of `Set_Builder`.
//!
//! **The closed-form cost model** quantifies that deployment on paper:
//!
//! * [`probe_rounds`] — rounds and messages for one part's restricted probe
//!   (rounds = in-part eccentricity of the representative, messages = one
//!   per in-part directed edge scanned);
//! * [`plan`] — the whole driver: every part probed concurrently (the §5
//!   phase the parallel driver already exploits shared-memory-style), then
//!   the unrestricted growth from the certified seed;
//! * [`SimPlan`] / [`ProbeCost`] — the resulting cost sheet.
//!
//! **The event-level simulator** executes the same protocol as timestamped
//! messages and observes what the cost sheet predicts:
//!
//! * [`event`] — a deterministic priority queue of timestamped messages;
//! * [`link`] — per-link latency models (unit, uniform, per-dimension
//!   skew, seeded-random jitter);
//! * [`inject`] — fault timelines with mid-protocol onsets;
//! * [`node`] — per-processor wave state and the §4.1 level rules;
//! * [`sim`] — [`simulate`]: concurrent restricted probes, certified-seed
//!   selection, unrestricted growth, yielding a [`SimReport`].
//!
//! Under unit latencies the simulator's observed (rounds, messages)
//! reproduce the cost model exactly, and on a static fault timeline its
//! diagnosis is bit-identical to `mmdiag_core::diagnose` — asserted per
//! cell by the bench sweep and the workspace cross-check suite. Skewed
//! latencies and mid-protocol onsets are the regimes only the simulator
//! can express.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod inject;
pub mod link;
pub mod node;
pub mod sim;

pub use event::{EventQueue, QueueTelemetry, Time};
pub use inject::{EpochEvent, EpochEventKind, EpochTimeline, FaultTimeline};
pub use link::LatencyModel;
pub use sim::{
    simulate, simulate_unchecked, simulate_with_plan, GrowthTrace, ProbeTrace, SimError, SimReport,
};

use mmdiag_topology::algorithms::bfs_distances;
use mmdiag_topology::{NodeId, Partitionable, Topology};

/// One simulation job for [`simulate_batch`]: a fault timeline to replay
/// under a latency model.
pub type SimJob = (FaultTimeline, LatencyModel);

/// Run many independent simulations of one instance as a single
/// submission on the shared executor pool — the scenario sweep's cells
/// (per-instance latency-skew / injection regimes) dispatch through here
/// instead of looping on the caller's thread.
///
/// Results come back in input order and each equals what a standalone
/// [`simulate`] call would have returned: the event engine is
/// deterministic and every job owns its state, so fan-out is purely an
/// execution concern.
pub fn simulate_batch<T>(
    g: &T,
    jobs: &[SimJob],
    pool: &mmdiag_exec::Pool,
) -> Vec<Result<SimReport, SimError>>
where
    T: Partitionable + Sync + ?Sized,
{
    pool.map(jobs, |_, (timeline, latency)| {
        simulate(g, timeline, latency)
    })
}

/// Cost of one part's restricted probe, in synchronous rounds and messages.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProbeCost {
    /// The part probed.
    pub part: usize,
    /// Synchronous rounds: BFS depth of the part from its representative
    /// (0 if the part is the bare representative).
    pub rounds: usize,
    /// Messages exchanged: every in-part directed edge is traversed once
    /// per probe (test requests + replies are counted as one message each
    /// way combined).
    pub messages: usize,
    /// Nodes reached — equals the part size when the part is connected.
    pub reached: usize,
}

/// The cost sheet of a full distributed diagnosis pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SimPlan {
    /// Per-part probe costs.
    pub probes: Vec<ProbeCost>,
    /// Rounds if all parts probe concurrently (max over parts).
    pub probe_rounds_concurrent: usize,
    /// Total messages across all probes.
    pub probe_messages_total: usize,
    /// Rounds of the final unrestricted growth, bounded by the graph
    /// diameter from the worst representative (conservative: max over
    /// representatives of whole-graph BFS depth).
    pub growth_rounds_worst: usize,
}

/// Compute the round/message cost of the restricted probe of `part`.
///
/// The probe is a per-level flood: in round `r` every node attached at
/// level `r − 1` asks its in-part neighbours to run the comparison test
/// against its own parent, so rounds equal the in-part BFS eccentricity of
/// the representative, and each in-part edge carries at most one
/// request/reply exchange in each direction over the whole probe.
pub fn probe_rounds<T: Partitionable + ?Sized>(g: &T, part: usize) -> ProbeCost {
    let rep = g.representative(part);
    let n = g.node_count();
    let mut seen = vec![false; n];
    let mut frontier = vec![rep];
    seen[rep] = true;
    let mut rounds = 0usize;
    let mut messages = 0usize;
    let mut reached = 1usize;
    let mut next = Vec::new();
    let mut buf = Vec::new();
    while !frontier.is_empty() {
        next.clear();
        for &u in &frontier {
            g.neighbors_into(u, &mut buf);
            for &v in &buf {
                if g.part_of(v) != part {
                    continue;
                }
                messages += 1; // u contacts v this round (request + reply).
                if !seen[v] {
                    seen[v] = true;
                    reached += 1;
                    next.push(v);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        rounds += 1;
        std::mem::swap(&mut frontier, &mut next);
    }
    ProbeCost {
        part,
        rounds,
        messages,
        reached,
    }
}

/// Cost sheet for a full distributed diagnosis pass over `g`.
pub fn plan<T: Partitionable + ?Sized>(g: &T) -> SimPlan {
    let probes: Vec<ProbeCost> = (0..g.part_count()).map(|p| probe_rounds(g, p)).collect();
    let probe_rounds_concurrent = probes.iter().map(|p| p.rounds).max().unwrap_or(0);
    let probe_messages_total = probes.iter().map(|p| p.messages).sum();
    let growth_rounds_worst = (0..g.part_count())
        .map(|p| bfs_depth(g, g.representative(p)))
        .max()
        .unwrap_or(0);
    SimPlan {
        probes,
        probe_rounds_concurrent,
        probe_messages_total,
        growth_rounds_worst,
    }
}

/// Whole-graph BFS depth (eccentricity) of `src`.
fn bfs_depth<T: Topology + ?Sized>(g: &T, src: NodeId) -> usize {
    bfs_distances(g, src)
        .into_iter()
        .filter(|&d| d != usize::MAX)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdiag_syndrome::{FaultSet, TesterBehavior};
    use mmdiag_topology::families::{Hypercube, StarGraph};

    #[test]
    fn simulate_batch_equals_individual_runs() {
        let g = Hypercube::new(7);
        let pool = mmdiag_exec::Pool::new(4);
        let jobs: Vec<SimJob> = (0..6u64)
            .map(|i| {
                let faults = FaultSet::new(128, &[i as usize, 100 - i as usize]);
                let timeline =
                    FaultTimeline::static_faults(faults, TesterBehavior::Random { seed: i });
                let latency = if i % 2 == 0 {
                    LatencyModel::Unit
                } else {
                    LatencyModel::SeededRandom {
                        seed: i,
                        min: 1,
                        max: 5,
                    }
                };
                (timeline, latency)
            })
            .collect();
        let batched = simulate_batch(&g, &jobs, &pool);
        assert_eq!(batched.len(), jobs.len());
        for ((timeline, latency), got) in jobs.iter().zip(&batched) {
            let want = simulate(&g, timeline, latency).unwrap();
            let got = got.as_ref().unwrap();
            assert_eq!(got.faults, want.faults);
            assert_eq!(got.certified_part, want.certified_part);
            assert_eq!(got.total_time, want.total_time);
            assert_eq!(got.events_delivered, want.events_delivered);
        }
    }

    #[test]
    fn hypercube_part_probe_is_subcube_flood() {
        // Q_7 parts are Q_4 subcubes: eccentricity of any node is 4, and
        // every directed in-part edge (16 nodes × 4 in-part neighbours) is
        // contacted once.
        let g = Hypercube::new(7);
        let c = probe_rounds(&g, 0);
        assert_eq!(c.rounds, 4);
        assert_eq!(c.reached, 16);
        assert_eq!(c.messages, 16 * 4);
    }

    #[test]
    fn plan_aggregates_all_parts() {
        let g = Hypercube::new(7);
        let p = plan(&g);
        assert_eq!(p.probes.len(), 8);
        assert_eq!(p.probe_rounds_concurrent, 4);
        assert_eq!(p.probe_messages_total, 8 * 16 * 4);
        // Unrestricted growth from any corner of Q_7 reaches depth 7.
        assert_eq!(p.growth_rounds_worst, 7);
    }

    #[test]
    fn star_graph_parts_are_substars() {
        // S_6 parts are S_5 copies (120 nodes, degree 4 in part).
        let g = StarGraph::new(6);
        let c = probe_rounds(&g, 0);
        assert_eq!(c.reached, 120);
        assert_eq!(c.messages, 120 * 4);
        assert!(c.rounds > 0);
    }
}
