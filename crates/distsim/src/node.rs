//! Per-processor protocol state and the §4.1 level rules.
//!
//! A probe has two layers:
//!
//! * a **wave** layer — [`NodeState`]: each processor, on first contact,
//!   timestamps itself and re-broadcasts to its (in-part) neighbours. MM
//!   faults are responsive, so the wave covers every in-part directed edge
//!   regardless of the syndrome — exactly the accounting of the closed-form
//!   cost model in the crate root;
//! * a **membership** layer — [`grow_levels`]: the `Set_Builder` sets
//!   `U_1 ⊆ U_2 ⊆ …` evaluated over the test results the wave carried,
//!   each test graded against the fault set in force when its exchange
//!   completed.
//!
//! `grow_levels` mirrors `mmdiag_core::set_builder_filtered` rule for rule
//! (level-1 witness pairs, sorted frontier scans, the child-spreading
//! parent reassignment, contributor counting) so that on a static timeline
//! the simulated diagnosis is bit-identical to the centralised driver's;
//! the workspace test-suites cross-check the two against each other so
//! they cannot drift apart.

use crate::event::Time;
use mmdiag_syndrome::TestResult;
use mmdiag_topology::NodeId;

/// Wave-layer state of one processor during one flood.
#[derive(Clone, Debug, Default)]
pub struct NodeState {
    reached_at: Option<Time>,
    hops: u32,
}

impl NodeState {
    /// Handle a wave message arriving at `at` after `hops` hops. Returns
    /// `true` exactly once — on first contact — which is the processor's
    /// cue to re-broadcast.
    pub fn on_contact(&mut self, at: Time, hops: u32) -> bool {
        if self.reached_at.is_some() {
            return false;
        }
        self.reached_at = Some(at);
        self.hops = hops;
        true
    }

    /// When the processor was first contacted, if ever.
    pub fn reached_at(&self) -> Option<Time> {
        self.reached_at
    }

    /// Hop count of the path that first contacted this processor.
    pub fn hops(&self) -> u32 {
        self.hops
    }
}

/// Outcome of one `Set_Builder` membership computation (restricted or
/// unrestricted) over gathered test results.
#[derive(Clone, Debug)]
pub struct GrowOutcome {
    /// Did the distinct-contributor count exceed the fault bound — i.e. is
    /// every member provably healthy (static-syndrome reading)?
    pub all_healthy: bool,
    /// Members of the final set `U_r`, in attachment order (`u0` first).
    pub members: Vec<NodeId>,
    /// Tree edges as `(child, parent)` pairs, in attachment order.
    pub edges: Vec<(NodeId, NodeId)>,
    /// `|C_1 ∪ … ∪ C_r|` — distinct contributors across all levels.
    pub contributors: usize,
    /// Number of levels built (0 if `U_1 = {u0}`).
    pub rounds: usize,
}

/// Run the §4.1 level rules from seed `u0` over the subgraph `accept`
/// delimits, reading test results from `syn` (which closes over the wave's
/// recorded exchange times, so a mid-protocol onset is visible to exactly
/// the tests that completed after it).
///
/// `adj` is the materialised adjacency — neighbour order must match the
/// topology's `neighbors_into`, because the scan order is part of the
/// deterministic tie-break contract shared with `mmdiag_core`.
pub fn grow_levels<S, A>(
    adj: &[Vec<NodeId>],
    u0: NodeId,
    fault_bound: usize,
    syn: S,
    accept: A,
) -> GrowOutcome
where
    S: Fn(NodeId, NodeId, NodeId) -> TestResult,
    A: Fn(NodeId) -> bool,
{
    debug_assert!(accept(u0), "seed must lie in the searched subgraph");
    let n = adj.len();
    let mut seen = vec![false; n];
    let mut parent = vec![0 as NodeId; n];
    let mut layer = vec![0u32; n];
    let mut claims = vec![0u32; n];
    let mut contributed = vec![false; n];

    seen[u0] = true;
    let mut members = vec![u0];
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut contributors = 0usize;
    let mut all_healthy = false;
    let mut frontier: Vec<NodeId> = Vec::new();

    // Level 1: witness pairs among u0's accepted neighbours.
    let mut candidates: Vec<NodeId> = adj[u0].iter().copied().filter(|&v| accept(v)).collect();
    candidates.sort_unstable();
    {
        let mut in_u1 = vec![false; candidates.len()];
        for i in 0..candidates.len() {
            for j in (i + 1)..candidates.len() {
                if in_u1[i] && in_u1[j] {
                    continue;
                }
                if syn(u0, candidates[i], candidates[j]).is_agree() {
                    in_u1[i] = true;
                    in_u1[j] = true;
                }
            }
        }
        for (idx, &v) in candidates.iter().enumerate() {
            if in_u1[idx] {
                seen[v] = true;
                parent[v] = u0;
                layer[v] = 1;
                members.push(v);
                edges.push((v, u0));
                frontier.push(v);
            }
        }
    }

    let mut rounds = 0usize;
    if !frontier.is_empty() {
        contributors = 1; // u0 contributed to U_1.
        contributed[u0] = true;
        rounds = 1;
        if contributors > fault_bound {
            all_healthy = true;
        }
    }

    // Levels i ≥ 2: frontier nodes test candidates against their own parent.
    let mut next: Vec<NodeId> = Vec::new();
    let mut cur_layer: u32 = 1;
    while !frontier.is_empty() {
        next.clear();
        cur_layer += 1;
        frontier.sort_unstable();
        for &u in &frontier {
            let tu = parent[u];
            for &v in &adj[u] {
                if v == tu || !accept(v) {
                    continue;
                }
                if seen[v] {
                    // Spread heuristic (shared with mmdiag_core): move a
                    // same-layer child to an unused eligible parent.
                    if !all_healthy
                        && layer[v] == cur_layer
                        && claims[parent[v]] > 1
                        && claims[u] == 0
                        && syn(u, v, tu).is_agree()
                    {
                        claims[parent[v]] -= 1;
                        claims[u] += 1;
                        parent[v] = u;
                    }
                    continue;
                }
                if syn(u, v, tu).is_agree() {
                    seen[v] = true;
                    parent[v] = u;
                    layer[v] = cur_layer;
                    claims[u] += 1;
                    members.push(v);
                    next.push(v);
                }
            }
        }
        for &u in &frontier {
            claims[u] = 0;
        }
        if next.is_empty() {
            break;
        }
        rounds += 1;
        for &v in &next {
            let p = parent[v];
            edges.push((v, p));
            if !contributed[p] {
                contributed[p] = true;
                contributors += 1;
            }
        }
        if contributors > fault_bound {
            all_healthy = true;
        }
        std::mem::swap(&mut frontier, &mut next);
    }

    GrowOutcome {
        all_healthy,
        members,
        edges,
        contributors,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdiag_syndrome::TestResult::{Agree, Disagree};

    #[test]
    fn node_state_fires_once() {
        let mut s = NodeState::default();
        assert!(s.on_contact(3, 2));
        assert!(!s.on_contact(4, 1), "second contact must not re-broadcast");
        assert_eq!(s.reached_at(), Some(3));
        assert_eq!(s.hops(), 2);
    }

    /// 4-cycle 0-1-3-2-0 with an all-Agree syndrome: everything joins,
    /// u0 = 0 and both its neighbours contribute.
    #[test]
    fn grow_levels_all_agree_cycle() {
        let adj = vec![vec![1, 2], vec![0, 3], vec![0, 3], vec![1, 2]];
        let out = grow_levels(&adj, 0, 2, |_, _, _| Agree, |_| true);
        assert_eq!(out.members, vec![0, 1, 2, 3]);
        assert_eq!(out.contributors, 2, "u0 plus one of {{1,2}}");
        assert_eq!(out.rounds, 2);
        assert!(!out.all_healthy, "2 contributors is not > bound 2");
        let out = grow_levels(&adj, 0, 1, |_, _, _| Agree, |_| true);
        assert!(out.all_healthy);
    }

    #[test]
    fn grow_levels_without_witness_pair_is_bare_seed() {
        let adj = vec![vec![1], vec![0, 2], vec![1]];
        let out = grow_levels(&adj, 0, 1, |_, _, _| Agree, |_| true);
        assert_eq!(out.members, vec![0], "one neighbour cannot form a pair");
        assert_eq!(out.rounds, 0);
        assert_eq!(out.contributors, 0);
    }

    #[test]
    fn grow_levels_respects_accept_filter() {
        let adj = vec![vec![1, 2], vec![0, 3], vec![0, 3], vec![1, 2]];
        let out = grow_levels(&adj, 0, 0, |_, _, _| Agree, |v| v != 3);
        assert_eq!(out.members, vec![0, 1, 2]);
    }

    #[test]
    fn grow_levels_stops_at_disagreeing_frontier() {
        // Path-ish graph where node 3 is rejected by every tester.
        let adj = vec![vec![1, 2], vec![0, 2, 3], vec![0, 1, 3], vec![1, 2]];
        let out = grow_levels(
            &adj,
            0,
            3,
            |_, v, w| if v == 3 || w == 3 { Disagree } else { Agree },
            |_| true,
        );
        assert_eq!(out.members, vec![0, 1, 2]);
        assert!(!out.members.contains(&3));
    }
}
