//! Mid-protocol fault injection.
//!
//! The centralised driver diagnoses a *static* syndrome; the event
//! simulator instead evaluates every comparison test at the virtual time
//! the exchange completes, against the fault set in force at that instant.
//! A [`FaultTimeline`] is a base fault set plus a schedule of onsets —
//! nodes that become (permanently) faulty once the clock reaches their
//! onset time. MM-model faults are responsive, so an onset changes *test
//! results* from that moment on, never the message flow.

use crate::event::Time;
use mmdiag_syndrome::{ground_truth, FaultSet, TestResult, TesterBehavior};
use mmdiag_topology::NodeId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A time-indexed fault set: base faults active from time 0, plus nodes
/// that turn faulty at configurable onset times.
#[derive(Clone, Debug)]
pub struct FaultTimeline {
    behavior: TesterBehavior,
    /// `boundaries[i]` is the time from which `snapshots[i]` is in force;
    /// `boundaries[0] == 0` always.
    boundaries: Vec<Time>,
    snapshots: Vec<FaultSet>,
}

impl FaultTimeline {
    /// A timeline with no onsets — the static case, semantically identical
    /// to handing `faults` to an `OracleSyndrome` with the same behaviour.
    pub fn static_faults(faults: FaultSet, behavior: TesterBehavior) -> Self {
        FaultTimeline {
            behavior,
            boundaries: vec![0],
            snapshots: vec![faults],
        }
    }

    /// A timeline where each `(onset, node)` pair turns `node` faulty from
    /// virtual time `onset` on (onset 0 is equivalent to a base fault).
    /// Duplicate nodes keep their earliest onset.
    pub fn with_onsets(
        base: FaultSet,
        onsets: &[(Time, NodeId)],
        behavior: TesterBehavior,
    ) -> Self {
        let n = base.universe();
        let mut sorted: Vec<(Time, NodeId)> = onsets.to_vec();
        sorted.sort_unstable();
        let mut boundaries = vec![0];
        let mut snapshots = vec![base];
        for &(t, node) in &sorted {
            assert!(node < n, "onset node {node} out of range (n = {n})");
            let cur = snapshots.last().unwrap();
            if cur.contains(node) {
                continue; // already faulty by this time
            }
            let mut members: Vec<NodeId> = cur.members().to_vec();
            members.push(node);
            let next = FaultSet::new(n, &members);
            if t == *boundaries.last().unwrap() {
                *snapshots.last_mut().unwrap() = next;
            } else {
                boundaries.push(t);
                snapshots.push(next);
            }
        }
        FaultTimeline {
            behavior,
            boundaries,
            snapshots,
        }
    }

    /// Number of nodes in the network this timeline is defined over.
    pub fn universe(&self) -> usize {
        self.snapshots[0].universe()
    }

    /// The faulty-tester behaviour used for every test on this timeline.
    pub fn behavior(&self) -> TesterBehavior {
        self.behavior
    }

    /// Whether the timeline has no onsets after time 0.
    pub fn is_static(&self) -> bool {
        self.boundaries.len() == 1
    }

    /// The fault set in force at virtual time `t`.
    pub fn active_at(&self, t: Time) -> &FaultSet {
        // boundaries is sorted; find the last boundary ≤ t.
        let idx = self.boundaries.partition_point(|&b| b <= t) - 1;
        &self.snapshots[idx]
    }

    /// The fault set after every onset has fired — what a post-mortem
    /// (re-)diagnosis of the network would be graded against.
    pub fn final_faults(&self) -> &FaultSet {
        self.snapshots.last().unwrap()
    }

    /// The MM-model result of test `s_u(v, w)` completed at virtual time
    /// `t`, under this timeline's behaviour convention.
    pub fn result(&self, t: Time, u: NodeId, v: NodeId, w: NodeId) -> TestResult {
        ground_truth(self.active_at(t), u, v, w, self.behavior)
    }
}

/// What happened to one node at an epoch boundary of an
/// [`EpochTimeline`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EpochEventKind {
    /// The node turned faulty at this boundary.
    Onset,
    /// The node was repaired (returned to healthy) at this boundary.
    Recovery,
}

/// One fault-state change at an epoch boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochEvent {
    /// The affected node.
    pub node: NodeId,
    /// Onset or recovery.
    pub kind: EpochEventKind,
}

/// A fleet-health timeline quantised into monitoring epochs: per epoch, a
/// batch of onset/recovery events and the instantaneous fault set they
/// produce. This is what an online monitor ingests — each epoch's event
/// nodes are exactly the syndrome delta (the nodes whose fault status,
/// and therefore whose incident test outcomes, moved since the previous
/// epoch).
///
/// Built by [`EpochTimeline::poisson`]: seeded, fully deterministic over
/// the vendored `rand` shims — the same seed always yields the same
/// timeline, so monitoring runs are replayable.
#[derive(Clone, Debug)]
pub struct EpochTimeline {
    behavior: TesterBehavior,
    /// `snapshots[e]` is the fault set in force during epoch `e`.
    snapshots: Vec<FaultSet>,
    /// `events[e]` are the boundary events that turned epoch `e - 1`'s
    /// fault set into epoch `e`'s (`events[0]` applies to the empty set).
    events: Vec<Vec<EpochEvent>>,
}

impl EpochTimeline {
    /// A seeded Poisson onset/recovery timeline over `epochs` epochs on a
    /// network of `n` nodes. Per epoch the number of new faults is
    /// Poisson-distributed with mean `onset_rate` (nodes drawn uniformly
    /// from the currently-healthy set) and the number of repairs is
    /// Poisson-distributed with mean `recovery_rate` (drawn uniformly
    /// from the currently-faulty set). The live fault count is clamped to
    /// `max_faults` — onsets beyond the cap are dropped, mirroring a
    /// deployment that only stays diagnosable while `|F| ≤ δ`.
    ///
    /// Poisson samples come from Knuth's product-of-uniforms method with
    /// uniforms built from `gen_below(2^53)`, since the vendored shims
    /// expose no float sampling. Deterministic: same arguments ⇒ the same
    /// timeline, bit for bit.
    pub fn poisson(
        n: usize,
        epochs: usize,
        onset_rate: f64,
        recovery_rate: f64,
        max_faults: usize,
        seed: u64,
        behavior: TesterBehavior,
    ) -> Self {
        assert!(epochs > 0, "a timeline needs at least one epoch");
        assert!(n > 0, "empty network");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut healthy: Vec<NodeId> = (0..n).collect();
        let mut faulty: Vec<NodeId> = Vec::new();
        let mut snapshots = Vec::with_capacity(epochs);
        let mut events = Vec::with_capacity(epochs);
        for _ in 0..epochs {
            let mut batch = Vec::new();
            // Recoveries first, so a saturated epoch can free capacity
            // for its own onsets.
            let recoveries = poisson_sample(&mut rng, recovery_rate).min(faulty.len());
            for _ in 0..recoveries {
                let idx = rng.gen_below(faulty.len() as u64) as usize;
                let node = faulty.swap_remove(idx);
                healthy.push(node);
                batch.push(EpochEvent {
                    node,
                    kind: EpochEventKind::Recovery,
                });
            }
            let onsets = poisson_sample(&mut rng, onset_rate);
            for _ in 0..onsets {
                if faulty.len() >= max_faults || healthy.is_empty() {
                    break; // dropped: the fleet is at its diagnosable cap
                }
                let idx = rng.gen_below(healthy.len() as u64) as usize;
                let node = healthy.swap_remove(idx);
                faulty.push(node);
                batch.push(EpochEvent {
                    node,
                    kind: EpochEventKind::Onset,
                });
            }
            let mut members = faulty.clone();
            members.sort_unstable();
            snapshots.push(FaultSet::new(n, &members));
            events.push(batch);
        }
        EpochTimeline {
            behavior,
            snapshots,
            events,
        }
    }

    /// Number of epochs in the timeline.
    pub fn epoch_count(&self) -> usize {
        self.snapshots.len()
    }

    /// Number of nodes in the network this timeline is defined over.
    pub fn universe(&self) -> usize {
        self.snapshots[0].universe()
    }

    /// The faulty-tester behaviour in force for every test.
    pub fn behavior(&self) -> TesterBehavior {
        self.behavior
    }

    /// The instantaneous fault set during epoch `e`.
    pub fn faults_at(&self, e: usize) -> &FaultSet {
        &self.snapshots[e]
    }

    /// The boundary events that opened epoch `e`.
    pub fn events_at(&self, e: usize) -> &[EpochEvent] {
        &self.events[e]
    }

    /// The syndrome delta of epoch `e`: the sorted nodes whose fault
    /// status changed *net* at the boundary (every test outcome that
    /// moved involves at least one of them — MM outcomes depend only on
    /// the statuses of the three participants). A node that recovered and
    /// re-onset within the same boundary batch cancels out: its status —
    /// and so every test it participates in — is exactly what it was the
    /// epoch before.
    pub fn delta_at(&self, e: usize) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.events[e].iter().map(|ev| ev.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        let cur = &self.snapshots[e];
        nodes.retain(|&v| {
            let before = e > 0 && self.snapshots[e - 1].contains(v);
            before != cur.contains(v)
        });
        nodes
    }
}

/// Knuth's Poisson sampler: count uniform draws until their product drops
/// below `e^{-lambda}`. Uniforms are `gen_below(2^53) / 2^53` — 53-bit
/// mantissa-exact, so the f64 arithmetic is deterministic everywhere.
fn poisson_sample<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let limit = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        const SCALE: u64 = 1 << 53;
        p *= rng.gen_below(SCALE) as f64 / SCALE as f64;
        if p <= limit {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_timeline_never_changes() {
        let tl = FaultTimeline::static_faults(FaultSet::new(8, &[3]), TesterBehavior::AllZero);
        assert!(tl.is_static());
        for t in [0, 1, 1000] {
            assert_eq!(tl.active_at(t).members(), &[3]);
        }
        assert_eq!(tl.final_faults().members(), &[3]);
    }

    #[test]
    fn onsets_accumulate_in_time_order() {
        let tl = FaultTimeline::with_onsets(
            FaultSet::new(8, &[1]),
            &[(5, 4), (2, 6), (5, 7)],
            TesterBehavior::Truthful,
        );
        assert!(!tl.is_static());
        assert_eq!(tl.active_at(0).members(), &[1]);
        assert_eq!(tl.active_at(1).members(), &[1]);
        assert_eq!(tl.active_at(2).members(), &[1, 6]);
        assert_eq!(tl.active_at(4).members(), &[1, 6]);
        assert_eq!(tl.active_at(5).members(), &[1, 4, 6, 7]);
        assert_eq!(tl.final_faults().members(), &[1, 4, 6, 7]);
    }

    #[test]
    fn onset_at_zero_merges_with_base() {
        let tl = FaultTimeline::with_onsets(
            FaultSet::new(8, &[0]),
            &[(0, 2), (0, 0)],
            TesterBehavior::AllOne,
        );
        assert!(tl.is_static(), "time-0 onsets fold into the base set");
        assert_eq!(tl.active_at(0).members(), &[0, 2]);
    }

    #[test]
    fn poisson_timeline_is_deterministic_per_seed() {
        let make = |seed| {
            EpochTimeline::poisson(
                128,
                20,
                0.8,
                0.3,
                7,
                seed,
                TesterBehavior::Random { seed: 3 },
            )
        };
        let (a, b) = (make(42), make(42));
        assert_eq!(a.epoch_count(), 20);
        for e in 0..a.epoch_count() {
            assert_eq!(a.faults_at(e).members(), b.faults_at(e).members());
            assert_eq!(a.events_at(e), b.events_at(e));
            assert_eq!(a.delta_at(e), b.delta_at(e));
        }
        // A different seed diverges somewhere (128 choose anything makes a
        // collision across all 20 epochs vanishingly unlikely).
        let c = make(43);
        assert!(
            (0..20).any(|e| a.faults_at(e).members() != c.faults_at(e).members()),
            "seeds 42 and 43 produced identical 20-epoch timelines"
        );
    }

    #[test]
    fn poisson_timeline_respects_the_fault_cap_and_replays_consistently() {
        // An aggressive onset rate against a tight cap: the live fault
        // count must never exceed the cap, and each epoch's snapshot must
        // equal the previous one with the epoch's events applied.
        let tl = EpochTimeline::poisson(64, 30, 3.0, 0.5, 4, 7, TesterBehavior::AllZero);
        let mut live: Vec<NodeId> = Vec::new();
        for e in 0..tl.epoch_count() {
            for ev in tl.events_at(e) {
                match ev.kind {
                    EpochEventKind::Onset => {
                        assert!(!live.contains(&ev.node), "double onset of {}", ev.node);
                        live.push(ev.node);
                    }
                    EpochEventKind::Recovery => {
                        let at = live
                            .iter()
                            .position(|&v| v == ev.node)
                            .expect("recovery of a healthy node");
                        live.swap_remove(at);
                    }
                }
            }
            assert!(live.len() <= 4, "epoch {e} exceeded the cap");
            let mut sorted = live.clone();
            sorted.sort_unstable();
            assert_eq!(tl.faults_at(e).members(), &sorted[..], "epoch {e}");
            // The published delta is exactly the symmetric difference of
            // consecutive snapshots (same-epoch recover+re-onset pairs
            // cancel).
            let prev: &[NodeId] = if e == 0 {
                &[]
            } else {
                tl.faults_at(e - 1).members()
            };
            let mut sym: Vec<NodeId> = prev
                .iter()
                .filter(|v| !tl.faults_at(e).contains(**v))
                .chain(
                    tl.faults_at(e)
                        .members()
                        .iter()
                        .filter(|v| !prev.contains(v)),
                )
                .copied()
                .collect();
            sym.sort_unstable();
            assert_eq!(tl.delta_at(e), sym, "epoch {e}");
        }
        // The cap binds somewhere under 3 expected onsets/epoch.
        assert!((0..30).any(|e| tl.faults_at(e).len() == 4));
    }

    #[test]
    fn poisson_sampler_tracks_its_mean() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        for &lambda in &[0.3f64, 1.0, 4.0] {
            let n = 4000;
            let total: usize = (0..n).map(|_| poisson_sample(&mut rng, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < 0.15 * lambda.max(1.0),
                "lambda {lambda}: sample mean {mean}"
            );
        }
        assert_eq!(poisson_sample(&mut rng, 0.0), 0);
        assert_eq!(poisson_sample(&mut rng, -1.0), 0);
    }

    #[test]
    fn results_flip_at_the_onset() {
        // Node 2 turns faulty at t = 10: a healthy tester's view of the
        // pair (2, 3) flips from Agree to Disagree exactly there.
        let tl =
            FaultTimeline::with_onsets(FaultSet::empty(8), &[(10, 2)], TesterBehavior::Truthful);
        assert!(tl.result(9, 0, 2, 3).is_agree());
        assert!(!tl.result(10, 0, 2, 3).is_agree());
        assert!(!tl.result(11, 0, 2, 3).is_agree());
    }
}
