//! Mid-protocol fault injection.
//!
//! The centralised driver diagnoses a *static* syndrome; the event
//! simulator instead evaluates every comparison test at the virtual time
//! the exchange completes, against the fault set in force at that instant.
//! A [`FaultTimeline`] is a base fault set plus a schedule of onsets —
//! nodes that become (permanently) faulty once the clock reaches their
//! onset time. MM-model faults are responsive, so an onset changes *test
//! results* from that moment on, never the message flow.

use crate::event::Time;
use mmdiag_syndrome::{ground_truth, FaultSet, TestResult, TesterBehavior};
use mmdiag_topology::NodeId;

/// A time-indexed fault set: base faults active from time 0, plus nodes
/// that turn faulty at configurable onset times.
#[derive(Clone, Debug)]
pub struct FaultTimeline {
    behavior: TesterBehavior,
    /// `boundaries[i]` is the time from which `snapshots[i]` is in force;
    /// `boundaries[0] == 0` always.
    boundaries: Vec<Time>,
    snapshots: Vec<FaultSet>,
}

impl FaultTimeline {
    /// A timeline with no onsets — the static case, semantically identical
    /// to handing `faults` to an `OracleSyndrome` with the same behaviour.
    pub fn static_faults(faults: FaultSet, behavior: TesterBehavior) -> Self {
        FaultTimeline {
            behavior,
            boundaries: vec![0],
            snapshots: vec![faults],
        }
    }

    /// A timeline where each `(onset, node)` pair turns `node` faulty from
    /// virtual time `onset` on (onset 0 is equivalent to a base fault).
    /// Duplicate nodes keep their earliest onset.
    pub fn with_onsets(
        base: FaultSet,
        onsets: &[(Time, NodeId)],
        behavior: TesterBehavior,
    ) -> Self {
        let n = base.universe();
        let mut sorted: Vec<(Time, NodeId)> = onsets.to_vec();
        sorted.sort_unstable();
        let mut boundaries = vec![0];
        let mut snapshots = vec![base];
        for &(t, node) in &sorted {
            assert!(node < n, "onset node {node} out of range (n = {n})");
            let cur = snapshots.last().unwrap();
            if cur.contains(node) {
                continue; // already faulty by this time
            }
            let mut members: Vec<NodeId> = cur.members().to_vec();
            members.push(node);
            let next = FaultSet::new(n, &members);
            if t == *boundaries.last().unwrap() {
                *snapshots.last_mut().unwrap() = next;
            } else {
                boundaries.push(t);
                snapshots.push(next);
            }
        }
        FaultTimeline {
            behavior,
            boundaries,
            snapshots,
        }
    }

    /// Number of nodes in the network this timeline is defined over.
    pub fn universe(&self) -> usize {
        self.snapshots[0].universe()
    }

    /// The faulty-tester behaviour used for every test on this timeline.
    pub fn behavior(&self) -> TesterBehavior {
        self.behavior
    }

    /// Whether the timeline has no onsets after time 0.
    pub fn is_static(&self) -> bool {
        self.boundaries.len() == 1
    }

    /// The fault set in force at virtual time `t`.
    pub fn active_at(&self, t: Time) -> &FaultSet {
        // boundaries is sorted; find the last boundary ≤ t.
        let idx = self.boundaries.partition_point(|&b| b <= t) - 1;
        &self.snapshots[idx]
    }

    /// The fault set after every onset has fired — what a post-mortem
    /// (re-)diagnosis of the network would be graded against.
    pub fn final_faults(&self) -> &FaultSet {
        self.snapshots.last().unwrap()
    }

    /// The MM-model result of test `s_u(v, w)` completed at virtual time
    /// `t`, under this timeline's behaviour convention.
    pub fn result(&self, t: Time, u: NodeId, v: NodeId, w: NodeId) -> TestResult {
        ground_truth(self.active_at(t), u, v, w, self.behavior)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_timeline_never_changes() {
        let tl = FaultTimeline::static_faults(FaultSet::new(8, &[3]), TesterBehavior::AllZero);
        assert!(tl.is_static());
        for t in [0, 1, 1000] {
            assert_eq!(tl.active_at(t).members(), &[3]);
        }
        assert_eq!(tl.final_faults().members(), &[3]);
    }

    #[test]
    fn onsets_accumulate_in_time_order() {
        let tl = FaultTimeline::with_onsets(
            FaultSet::new(8, &[1]),
            &[(5, 4), (2, 6), (5, 7)],
            TesterBehavior::Truthful,
        );
        assert!(!tl.is_static());
        assert_eq!(tl.active_at(0).members(), &[1]);
        assert_eq!(tl.active_at(1).members(), &[1]);
        assert_eq!(tl.active_at(2).members(), &[1, 6]);
        assert_eq!(tl.active_at(4).members(), &[1, 6]);
        assert_eq!(tl.active_at(5).members(), &[1, 4, 6, 7]);
        assert_eq!(tl.final_faults().members(), &[1, 4, 6, 7]);
    }

    #[test]
    fn onset_at_zero_merges_with_base() {
        let tl = FaultTimeline::with_onsets(
            FaultSet::new(8, &[0]),
            &[(0, 2), (0, 0)],
            TesterBehavior::AllOne,
        );
        assert!(tl.is_static(), "time-0 onsets fold into the base set");
        assert_eq!(tl.active_at(0).members(), &[0, 2]);
    }

    #[test]
    fn results_flip_at_the_onset() {
        // Node 2 turns faulty at t = 10: a healthy tester's view of the
        // pair (2, 3) flips from Agree to Disagree exactly there.
        let tl =
            FaultTimeline::with_onsets(FaultSet::empty(8), &[(10, 2)], TesterBehavior::Truthful);
        assert!(tl.result(9, 0, 2, 3).is_agree());
        assert!(!tl.result(10, 0, 2, 3).is_agree());
        assert!(!tl.result(11, 0, 2, 3).is_agree());
    }
}
