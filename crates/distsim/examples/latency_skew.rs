//! Event-level simulation demo: latency skew + mid-protocol injection.
//!
//! ```sh
//! cargo run --release -p mmdiag-distsim --example latency_skew
//! ```
//!
//! Runs the distributed diagnosis protocol over a folded hypercube `FQ_8`
//! three ways and prints the observed traces:
//!
//! 1. unit latencies (the regime the closed-form cost model predicts —
//!    the observed trace must match it exactly);
//! 2. per-dimension skew: regular links fast, the complementary links two
//!    orders of magnitude slower — first contact reroutes onto deep
//!    all-regular paths the cost sheet cannot see;
//! 3. a mid-protocol injection: a healthy node turns faulty right after
//!    the probe phase — every probe certified without it, yet the growth
//!    phase tests see it and the diagnosis reports it.

use mmdiag_distsim::{plan, simulate, FaultTimeline, LatencyModel};
use mmdiag_syndrome::{FaultSet, TesterBehavior};
use mmdiag_topology::families::FoldedHypercube;
use mmdiag_topology::{Partitionable, Topology};

fn main() {
    let g = FoldedHypercube::new(8);
    let n = g.node_count();
    let faults = FaultSet::new(n, &[9, 64, 200]);
    let behavior = TesterBehavior::AllZero; // adversarial: fakes healthy trees
    let model = plan(&g);
    println!(
        "{} — {} nodes, {} parts, fault bound {}, planted faults {:?}\n",
        g.name(),
        n,
        g.part_count(),
        g.driver_fault_bound(),
        faults.members()
    );
    println!(
        "cost model: concurrent probe rounds {}, probe messages {}, growth rounds ≤ {}\n",
        model.probe_rounds_concurrent, model.probe_messages_total, model.growth_rounds_worst
    );

    // 1. Unit latencies: observation must reproduce the model exactly.
    let timeline = FaultTimeline::static_faults(faults.clone(), behavior);
    let unit = simulate(&g, &timeline, &LatencyModel::Unit).expect("unit sim");
    unit.check_against_plan(&model).expect("model must match");
    summarize("unit latencies", &unit);
    println!("  (matches the cost model exactly — checked)\n");

    // 2. Per-dimension skew: dims 0..7 fast, the complementary link slow.
    let mut dims = vec![1u64; 8];
    dims.push(100);
    let skewed = simulate(&g, &timeline, &LatencyModel::PerDimension(dims)).expect("skewed sim");
    summarize("complementary links 100× slower", &skewed);
    println!(
        "  (same diagnosis, but the growth wave deepens {} → {} as first \
         contact reroutes around the slow links)\n",
        unit.growth.rounds, skewed.growth.rounds
    );
    assert_eq!(skewed.faults, unit.faults);

    // 3. Mid-protocol injection: node 77 turns faulty after the probes.
    let onset = unit.growth.started + 1;
    let injected = FaultTimeline::with_onsets(faults.clone(), &[(onset, 77)], behavior);
    let report = simulate(&g, &injected, &LatencyModel::Unit).expect("injection sim");
    summarize(&format!("node 77 turns faulty at t = {onset}"), &report);
    println!(
        "  (all {} probes certified before the onset, yet the diagnosis \
         includes the injected fault: {:?})",
        report.probes.len(),
        report.faults
    );
    assert_eq!(report.faults, injected.final_faults().members());
}

fn summarize(label: &str, r: &mmdiag_distsim::SimReport) {
    let probe_rounds = r.probes.iter().map(|p| p.rounds).max().unwrap_or(0);
    let probe_msgs: usize = r.probes.iter().map(|p| p.messages).sum();
    println!(
        "{label}:\n  certified part {} after {} probes; probe depth {probe_rounds}, \
         {probe_msgs} probe messages\n  growth depth {}, {} messages; diagnosis {:?}\n  \
         virtual time {} ({} events)",
        r.certified_part,
        r.probes_until_certificate,
        r.growth.rounds,
        r.growth.messages,
        r.faults,
        r.total_time,
        r.events_delivered
    );
}
