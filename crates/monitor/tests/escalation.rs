//! Property suite for the monitor's escalation contract, driven by the
//! distsim Poisson fault timelines:
//!
//! * every epoch — escalated, incremental or quiescent — is
//!   **bit-identical** to a from-scratch diagnosis of the same
//!   instantaneous fault set;
//! * a delta touching the certified part always escalates
//!   ([`EscalationReason::CertificateInvalidated`]) and the escalated
//!   epoch is an honest full walk (no cached probe served, from-scratch
//!   lookup cost);
//! * a delta disjoint from the certified part never escalates, re-probes
//!   at most the dirty parts, and costs **strictly fewer** lookups than
//!   the from-scratch run on the same syndrome.

use mmdiag_core::{diagnose, Diagnosis};
use mmdiag_distsim::EpochTimeline;
use mmdiag_monitor::{EscalationReason, MonitorSession};
use mmdiag_syndrome::{OracleSyndrome, SyndromeSource, TesterBehavior};
use mmdiag_topology::families::{Hypercube, StarGraph};
use mmdiag_topology::{Partitionable, Topology};
use mmdiag_trace::Tracer;

fn assert_bit_identical(got: &Diagnosis, want: &Diagnosis, ctx: &str) {
    assert_eq!(got.faults, want.faults, "{ctx}: fault sets");
    assert_eq!(got.certified_part, want.certified_part, "{ctx}: part");
    assert_eq!(got.probes, want.probes, "{ctx}: probes");
    assert_eq!(got.healthy_count, want.healthy_count, "{ctx}: healthy");
    assert_eq!(got.tree.edges(), want.tree.edges(), "{ctx}: tree");
}

/// Replay a Poisson timeline through a monitor, asserting the epoch
/// contract against from-scratch runs. Returns
/// (escalated, incremental, quiescent, strictly_cheaper) epoch counts.
fn replay(
    g: &(dyn Partitionable + Sync),
    timeline: &EpochTimeline,
    ctx: &str,
) -> (usize, usize, usize, usize) {
    let bound = g.driver_fault_bound();
    let mut m = MonitorSession::new(g, bound, Tracer::disabled());
    let (mut escalated, mut incremental, mut quiescent, mut cheaper) = (0, 0, 0, 0);
    let mut prev_certified: Option<usize> = None;
    for e in 0..timeline.epoch_count() {
        let faults = timeline.faults_at(e);
        let delta = timeline.delta_at(e);
        let s = OracleSyndrome::new(faults.clone(), timeline.behavior());
        let report = match m.ingest(&s, &delta) {
            Ok(r) => r,
            Err(err) => panic!("{ctx} epoch {e}: {err}"),
        };
        let want = diagnose(g, &OracleSyndrome::new(faults.clone(), timeline.behavior()))
            .unwrap_or_else(|err| panic!("{ctx} epoch {e} from-scratch: {err}"));
        assert_bit_identical(&report.diagnosis, &want, &format!("{ctx} epoch {e}"));
        match report.escalation {
            Some(reason) => {
                escalated += 1;
                // An escalated epoch is an honest full walk: nothing is
                // served from cache and the cost is exactly from-scratch.
                assert_eq!(
                    report.parts_reused, 0,
                    "{ctx} epoch {e}: reuse under {reason:?}"
                );
                assert_eq!(
                    report.lookups, want.lookups_used,
                    "{ctx} epoch {e}: escalated cost must equal from-scratch"
                );
                if e > 0 {
                    // Past the initial epoch, the only escalation a
                    // healthy replay sees is an invalidated certificate —
                    // and then the delta really did touch that part.
                    let EscalationReason::CertificateInvalidated { part } = reason else {
                        panic!("{ctx} epoch {e}: unexpected {reason:?}");
                    };
                    assert!(
                        delta.iter().any(|&v| g.part_of(v) == part),
                        "{ctx} epoch {e}: escalated on an untouched part"
                    );
                }
            }
            None if report.quiescent => {
                quiescent += 1;
                assert!(delta.is_empty(), "{ctx} epoch {e}: quiescent with a delta");
                assert_eq!(report.lookups, 0, "{ctx} epoch {e}: quiescent lookups");
            }
            None => {
                incremental += 1;
                // The delta stayed clear of the *previous* certificate's
                // part (the one the escalation decision is made against —
                // the winner itself may legitimately move to a freshly
                // re-probed part), so the monitor re-probed at most the
                // dirty parts...
                let certified = prev_certified.expect("incremental epoch has a predecessor");
                assert!(
                    delta.iter().all(|&v| g.part_of(v) != certified),
                    "{ctx} epoch {e}: incremental despite a dirty certified part"
                );
                assert!(
                    report.parts_reprobed <= report.dirty_parts,
                    "{ctx} epoch {e}: re-probed {} of {} dirty parts",
                    report.parts_reprobed,
                    report.dirty_parts
                );
                // ...and an epoch that serves any probe from cache beats
                // from-scratch outright (from-scratch always pays for
                // every probe up to the certificate).
                if report.parts_reused > 0 {
                    assert!(
                        report.lookups < want.lookups_used,
                        "{ctx} epoch {e}: incremental {} !< from-scratch {}",
                        report.lookups,
                        want.lookups_used
                    );
                    cheaper += 1;
                }
            }
        }
        prev_certified = Some(report.certificate.part);
    }
    (escalated, incremental, quiescent, cheaper)
}

#[test]
fn poisson_replay_holds_the_epoch_contract_on_the_hypercube() {
    let g = Hypercube::new(7);
    let bound = g.driver_fault_bound();
    let mut totals = (0, 0, 0, 0);
    for seed in 0..6u64 {
        let timeline = EpochTimeline::poisson(
            g.node_count(),
            16,
            0.8,
            0.5,
            bound,
            seed,
            TesterBehavior::Random { seed: seed ^ 0x5a },
        );
        let (e, i, q, c) = replay(&g, &timeline, &format!("Q7 seed {seed}"));
        totals = (totals.0 + e, totals.1 + i, totals.2 + q, totals.3 + c);
    }
    // The sweep must actually exercise all three paths — a vacuous pass
    // (e.g. every epoch escalating) would prove nothing.
    assert!(totals.0 >= 6, "escalated epochs: {totals:?}");
    assert!(totals.1 > 0, "incremental epochs: {totals:?}");
    assert!(totals.3 > 0, "strictly-cheaper epochs: {totals:?}");
}

#[test]
fn poisson_replay_holds_the_epoch_contract_on_the_star_graph() {
    let g = StarGraph::new(5);
    let bound = g.driver_fault_bound();
    let mut exercised = (0, 0);
    for seed in 0..4u64 {
        let timeline = EpochTimeline::poisson(
            g.node_count(),
            12,
            0.7,
            0.6,
            bound,
            seed,
            TesterBehavior::Random { seed: 100 + seed },
        );
        let (e, i, _, _) = replay(&g, &timeline, &format!("S5 seed {seed}"));
        exercised = (exercised.0 + e, exercised.1 + i);
    }
    assert!(
        exercised.0 > 0 && exercised.1 > 0,
        "paths hit: {exercised:?}"
    );
}

#[test]
fn quiescent_runs_between_bursts_cost_nothing() {
    // A hand-built schedule: burst, silence, burst — the silent epochs
    // must reuse the labelling wholesale.
    let g = Hypercube::new(7);
    let behavior = TesterBehavior::AllZero;
    let mut m = MonitorSession::new(&g, g.driver_fault_bound(), Tracer::disabled());
    let s0 = OracleSyndrome::new(mmdiag_syndrome::FaultSet::new(128, &[64, 90]), behavior);
    let first = m.ingest(&s0, &[64, 90]).unwrap();
    for _ in 0..5 {
        let r = m.ingest(&s0, &[]).unwrap();
        assert!(r.quiescent);
        assert_eq!(r.lookups, 0);
        assert_eq!(r.diagnosis.faults, first.diagnosis.faults);
    }
    assert_eq!(s0.lookups(), first.lookups, "silence consulted nothing");
}
