//! # mmdiag-monitor
//!
//! The long-lived diagnosis service: an epoch-based monitoring loop on
//! top of the Theorem-1 driver. Everything else in the workspace is
//! one-shot — a session diagnoses once and is done — but a fleet-health
//! system diagnoses *continuously*: faults arrive and get repaired over
//! time, and each round only a handful of test outcomes move.
//!
//! A [`MonitorSession`] holds the last [`Certificate`] and fault
//! labelling, ingests **syndrome deltas** (the nodes whose fault status
//! changed since the previous epoch) and re-diagnoses incrementally:
//!
//! * **Dirty-part rule.** The restricted probe of part `p` consults only
//!   tests `s_u(v, w)` with `u`, `v`, `w` all inside `p`
//!   (`set_builder_in_part` filters candidates and witnesses by part
//!   membership), so a cached probe outcome stays valid until a node *of
//!   that part* changes status. Each epoch invalidates exactly the parts
//!   hit by the delta and re-runs the probe scan with every clean part
//!   served from cache at zero lookups.
//! * **Certified-seed reuse.** The winning probe's certificate is cached
//!   with the rest, so epochs that keep the same certified part pay no
//!   probe lookups at all — only the unrestricted growth, which must
//!   re-run against the moved syndrome (it is what discovers the new
//!   fault set).
//! * **Escalation.** When the delta touches the certified part itself,
//!   the certificate — probe tree witnesses included, since they are all
//!   in-part — is invalidated and the session escalates to a full
//!   from-scratch walk ([`EscalationReason::CertificateInvalidated`]),
//!   reported honestly with its full cost. The first epoch
//!   ([`EscalationReason::Initial`]) and the epoch after a failed one
//!   ([`EscalationReason::StateLost`]) escalate the same way.
//! * **Quiescence.** An empty delta reuses the previous labelling at
//!   zero lookups.
//!
//! **Correctness bar:** after every epoch the incremental labelling is
//! **bit-identical** to a from-scratch `diagnose` on the same
//! instantaneous fault set — same faults, certified part, spanning tree
//! and healthy count. The argument: a cached probe outcome equals what a
//! fresh probe would return (dirty-part rule), so the cache-served scan
//! lands on the same lowest certifying part as the from-scratch scan,
//! and the unrestricted growth from that seed is deterministic. The
//! workspace cross-check suite asserts this per epoch across all 14
//! families; the bench `--online` axis re-asserts it at scale.
//!
//! Each epoch records a `monitor.epoch` span (value = the epoch's
//! syndrome lookups) with the standard probe/certify/grow phase spans
//! nested inside it, and accumulates `monitor.*` counters into the
//! session tracer's metrics registry — attach the registry to the
//! process-wide `MetricsHub` (e.g. via `Diagnoser::stats`) and the
//! monitor's counters ride the same fleet snapshots as everything else.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mmdiag_core::session::{grow_from_certificate, probe_part, PartProbe};
use mmdiag_core::set_builder::Workspace;
use mmdiag_core::{Certificate, Diagnosis, DiagnosisError, PhaseTelemetry};
use mmdiag_syndrome::SyndromeSource;
use mmdiag_topology::{NodeId, Partitionable};
use mmdiag_trace::{
    checked_delta, Tracer, CAT_MONITOR, CAT_PHASE, MONITOR_EPOCH, PHASE_CERTIFY, PHASE_GROW,
    PHASE_PROBE,
};

/// Why an epoch ran the full from-scratch walk instead of the
/// cache-served incremental scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EscalationReason {
    /// The first epoch of the session — there is nothing cached yet, so
    /// a full run is the only option.
    Initial,
    /// The syndrome delta touched the certified part: the §4.1
    /// certificate (probe tree witnesses included — they are all
    /// in-part) is invalidated, so the session re-derives everything
    /// from scratch.
    CertificateInvalidated {
        /// The certified part the delta touched.
        part: usize,
    },
    /// The previous epoch failed (e.g. the instantaneous fault set
    /// exceeded the bound), dropping the session's labelling; this epoch
    /// rebuilds from scratch.
    StateLost,
}

/// What one monitoring epoch produced.
#[derive(Clone, Debug)]
pub struct EpochReport {
    /// Zero-based index of this epoch within the session.
    pub epoch: usize,
    /// The labelling — bit-identical to a from-scratch `diagnose` on the
    /// same instantaneous fault set. `diagnosis.lookups_used` is the
    /// *epoch's* cost (cache-served probes are free), not the
    /// from-scratch cost; the other fields match from-scratch exactly.
    pub diagnosis: Diagnosis,
    /// The §4.1 certificate in force after this epoch.
    pub certificate: Certificate,
    /// Per-phase wall times and lookups of this epoch's work. All-zero
    /// on a quiescent epoch (no phase ran).
    pub telemetry: PhaseTelemetry,
    /// Syndrome entries consulted this epoch (probe re-runs + growth).
    pub lookups: u64,
    /// Parts the delta marked dirty.
    pub dirty_parts: usize,
    /// Parts actually re-probed this epoch.
    pub parts_reprobed: usize,
    /// Cached probe outcomes served without consulting the syndrome.
    pub parts_reused: usize,
    /// `Some` when this epoch escalated to a full from-scratch walk.
    pub escalation: Option<EscalationReason>,
    /// `true` when the delta was empty and the previous labelling was
    /// reused wholesale (zero lookups).
    pub quiescent: bool,
}

/// The labelling carried across epochs.
struct LastEpoch {
    diagnosis: Diagnosis,
    certificate: Certificate,
}

/// A long-lived monitoring session over one topology: the incremental
/// epoch loop described in the [crate docs](self).
///
/// Drive it with [`MonitorSession::ingest`], handing over the current
/// syndrome plus the delta — the complete set of nodes whose fault
/// status changed since the previous `ingest` (an onset *or* a
/// recovery; a node that flipped twice between epochs nets out and must
/// not be listed). The session trusts the delta: omitting a changed
/// node breaks the dirty-part rule and with it the bit-identity
/// guarantee.
pub struct MonitorSession<'g> {
    g: &'g (dyn Partitionable + Sync),
    fault_bound: usize,
    tracer: Tracer,
    ws: Workspace,
    /// Per-part cached probe outcome; `None` = never probed or
    /// invalidated by a delta.
    cache: Vec<Option<PartProbe>>,
    last: Option<LastEpoch>,
    epoch: usize,
    state_lost: bool,
}

impl<'g> MonitorSession<'g> {
    /// A monitoring session over `g` with the given fault bound,
    /// recording spans and `monitor.*` metrics through `tracer` (pass
    /// [`Tracer::disabled`] to record nothing).
    pub fn new(g: &'g (dyn Partitionable + Sync), fault_bound: usize, tracer: Tracer) -> Self {
        MonitorSession {
            g,
            fault_bound,
            tracer,
            ws: Workspace::new(g.node_count()),
            cache: vec![None; g.part_count()],
            last: None,
            epoch: 0,
            state_lost: false,
        }
    }

    /// Epochs ingested so far (failed epochs included).
    pub fn epochs_run(&self) -> usize {
        self.epoch
    }

    /// The current labelling's fault set, if the last epoch succeeded.
    pub fn last_faults(&self) -> Option<&[NodeId]> {
        self.last.as_ref().map(|l| l.diagnosis.faults.as_slice())
    }

    /// The certificate in force, if the last epoch succeeded.
    pub fn certificate(&self) -> Option<&Certificate> {
        self.last.as_ref().map(|l| &l.certificate)
    }

    /// Ingest one epoch: the current syndrome `s` and the sorted-or-not
    /// list of nodes whose fault status changed since the previous
    /// epoch. Returns the epoch's report; on error (no part certifies,
    /// or the fault set exceeds the bound) the session's labelling is
    /// dropped and the next epoch rebuilds from scratch
    /// ([`EscalationReason::StateLost`]).
    pub fn ingest<S>(&mut self, s: &S, delta: &[NodeId]) -> Result<EpochReport, DiagnosisError>
    where
        S: SyndromeSource + ?Sized,
    {
        let epoch = self.epoch;
        self.epoch += 1;
        // Clone the handle (a pointer copy) so the span borrows the local,
        // not `self` — `run_epoch` needs `&mut self` underneath it.
        let tracer = self.tracer.clone();
        let epoch_span = tracer.span(CAT_MONITOR, MONITOR_EPOCH);
        let start_lookups = s.lookups();
        let result = self.run_epoch(s, delta, epoch, start_lookups);
        let lookups = checked_delta(s.lookups(), start_lookups);
        epoch_span.finish_with_value(lookups);
        if let Some(metrics) = self.tracer.metrics() {
            metrics.counter("monitor.epochs").inc();
            metrics.counter("monitor.lookups").add(lookups);
            match &result {
                Ok(report) => {
                    if report.escalation.is_some() {
                        metrics.counter("monitor.escalations").inc();
                    }
                    if report.quiescent {
                        metrics.counter("monitor.quiescent").inc();
                    }
                    metrics
                        .counter("monitor.parts_reprobed")
                        .add(report.parts_reprobed as u64);
                    metrics
                        .counter("monitor.parts_reused")
                        .add(report.parts_reused as u64);
                }
                Err(_) => metrics.counter("monitor.failed_epochs").inc(),
            }
        }
        result
    }

    fn run_epoch<S>(
        &mut self,
        s: &S,
        delta: &[NodeId],
        epoch: usize,
        start_lookups: u64,
    ) -> Result<EpochReport, DiagnosisError>
    where
        S: SyndromeSource + ?Sized,
    {
        let tracer = self.tracer.clone();
        // Classify the epoch before touching any state.
        let escalation = if self.last.is_none() {
            Some(if self.state_lost {
                EscalationReason::StateLost
            } else {
                EscalationReason::Initial
            })
        } else {
            let certified = self
                .last
                .as_ref()
                .map(|l| l.certificate.part)
                .expect("last is Some");
            delta
                .iter()
                .any(|&v| self.g.part_of(v) == certified)
                .then_some(EscalationReason::CertificateInvalidated { part: certified })
        };

        // Quiescent fast path: nothing moved, the previous labelling is
        // the current labelling — zero lookups, no phases.
        if escalation.is_none() && delta.is_empty() {
            let last = self.last.as_ref().expect("non-escalated epoch has state");
            return Ok(EpochReport {
                epoch,
                diagnosis: last.diagnosis.clone(),
                certificate: last.certificate.clone(),
                telemetry: PhaseTelemetry::default(),
                lookups: 0,
                dirty_parts: 0,
                parts_reprobed: 0,
                parts_reused: 0,
                escalation: None,
                quiescent: true,
            });
        }

        // Cache maintenance. Escalation drops everything (the honest
        // full re-run); the incremental path invalidates exactly the
        // parts the delta touched — a part's restricted probe consults
        // only in-part statuses, so every other entry is still what a
        // fresh probe would return.
        let dirty = self.count_dirty(delta);
        if escalation.is_some() {
            self.cache.fill(None);
        } else {
            for &v in delta {
                self.cache[self.g.part_of(v)] = None;
            }
        }

        // The probe scan, cache-served: identical part order to the
        // from-scratch sequential walk, so it lands on the same lowest
        // certifying part.
        let probe_span = tracer.span(CAT_PHASE, PHASE_PROBE);
        let mut reprobed = 0usize;
        let mut reused = 0usize;
        let mut winner: Option<usize> = None;
        for part in 0..self.g.part_count() {
            let entry = match &self.cache[part] {
                Some(cached) => {
                    reused += 1;
                    cached
                }
                None => {
                    reprobed += 1;
                    let probe = probe_part(self.g, s, part, self.fault_bound, &mut self.ws);
                    self.cache[part] = Some(probe);
                    self.cache[part].as_ref().expect("just stored")
                }
            };
            if entry.all_healthy {
                winner = Some(part);
                break;
            }
        }
        let probe_lookups = checked_delta(s.lookups(), start_lookups);
        let probe_nanos = u128::from(probe_span.finish_with_value(probe_lookups));
        let Some(part) = winner else {
            self.fail();
            return Err(DiagnosisError::NoPartCertified);
        };

        let certify_span = tracer.span(CAT_PHASE, PHASE_CERTIFY);
        let certificate = self.cache[part]
            .as_ref()
            .and_then(|p| p.certificate.clone())
            .expect("the winning probe certified, so it carries a certificate");
        let certify_nanos = u128::from(certify_span.finish());

        // Unrestricted growth re-runs in full every non-quiescent epoch:
        // it is deterministic from the certified seed, which is exactly
        // what makes the incremental labelling bit-identical to
        // from-scratch. `probes` mirrors the sequential scan's count
        // (parts 0..=part), cache-served or not.
        let grow_span = tracer.span(CAT_PHASE, PHASE_GROW);
        let diagnosis = match grow_from_certificate(
            self.g,
            s,
            &certificate,
            part + 1,
            self.fault_bound,
            start_lookups,
            &mut self.ws,
        ) {
            Ok(d) => d,
            Err(e) => {
                self.fail();
                return Err(e);
            }
        };
        let grow_lookups = checked_delta(checked_delta(s.lookups(), start_lookups), probe_lookups);
        let grow_nanos = u128::from(grow_span.finish_with_value(grow_lookups));

        self.state_lost = false;
        self.last = Some(LastEpoch {
            diagnosis: diagnosis.clone(),
            certificate: certificate.clone(),
        });
        Ok(EpochReport {
            epoch,
            diagnosis,
            certificate,
            telemetry: PhaseTelemetry {
                probe_nanos,
                certify_nanos,
                grow_nanos,
                probe_lookups,
                grow_lookups,
                grow_rounds: Vec::new(),
            },
            lookups: probe_lookups + grow_lookups,
            dirty_parts: dirty,
            parts_reprobed: reprobed,
            parts_reused: reused,
            escalation,
            quiescent: false,
        })
    }

    /// Distinct parts the delta touches.
    fn count_dirty(&self, delta: &[NodeId]) -> usize {
        let mut parts: Vec<usize> = delta.iter().map(|&v| self.g.part_of(v)).collect();
        parts.sort_unstable();
        parts.dedup();
        parts.len()
    }

    /// An epoch failed: the labelling is no longer trustworthy. The
    /// probe cache keeps entries that were (re)validated against the
    /// *current* syndrome, but with no labelling to diff the next delta
    /// against, the next epoch rebuilds from scratch.
    fn fail(&mut self) {
        self.last = None;
        self.state_lost = true;
        self.cache.fill(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdiag_core::{diagnose, Diagnosis};
    use mmdiag_syndrome::{FaultSet, OracleSyndrome, TesterBehavior};
    use mmdiag_topology::families::Hypercube;
    use mmdiag_topology::Topology;

    fn oracle(n: usize, faults: &[usize], behavior: TesterBehavior) -> OracleSyndrome {
        OracleSyndrome::new(FaultSet::new(n, faults), behavior)
    }

    fn fresh(g: &Hypercube, faults: &[usize], behavior: TesterBehavior) -> Diagnosis {
        diagnose(g, &oracle(g.node_count(), faults, behavior)).unwrap()
    }

    /// Net delta between two instantaneous fault sets: the symmetric
    /// difference.
    fn delta(prev: &[usize], cur: &[usize]) -> Vec<usize> {
        let mut d: Vec<usize> = prev
            .iter()
            .filter(|v| !cur.contains(v))
            .chain(cur.iter().filter(|v| !prev.contains(v)))
            .copied()
            .collect();
        d.sort_unstable();
        d
    }

    fn assert_bit_identical(got: &Diagnosis, want: &Diagnosis) {
        assert_eq!(got.faults, want.faults);
        assert_eq!(got.certified_part, want.certified_part);
        assert_eq!(got.probes, want.probes);
        assert_eq!(got.healthy_count, want.healthy_count);
        assert_eq!(got.tree.edges(), want.tree.edges());
    }

    #[test]
    fn first_epoch_escalates_initial_and_matches_from_scratch() {
        let g = Hypercube::new(7);
        let mut m = MonitorSession::new(&g, g.driver_fault_bound(), Tracer::disabled());
        let faults = [64usize, 90];
        let behavior = TesterBehavior::Random { seed: 5 };
        let s = oracle(128, &faults, behavior);
        let report = m.ingest(&s, &faults).unwrap();
        assert_eq!(report.escalation, Some(EscalationReason::Initial));
        assert!(!report.quiescent);
        assert_bit_identical(&report.diagnosis, &fresh(&g, &faults, behavior));
        assert_eq!(report.lookups, report.diagnosis.lookups_used);
        assert_eq!(
            report.telemetry.probe_lookups + report.telemetry.grow_lookups,
            report.lookups
        );
        assert_eq!(m.last_faults(), Some(&faults[..]));
        assert_eq!(m.certificate().unwrap().part, report.certificate.part);
    }

    #[test]
    fn quiescent_epoch_reuses_the_labelling_at_zero_lookups() {
        let g = Hypercube::new(7);
        let mut m = MonitorSession::new(&g, g.driver_fault_bound(), Tracer::disabled());
        let behavior = TesterBehavior::AllZero;
        let s = oracle(128, &[64, 90], behavior);
        let first = m.ingest(&s, &[64, 90]).unwrap();
        let before = s.lookups();
        let second = m.ingest(&s, &[]).unwrap();
        assert!(second.quiescent);
        assert_eq!(second.escalation, None);
        assert_eq!(second.lookups, 0);
        assert_eq!(s.lookups(), before, "the syndrome was never consulted");
        assert_bit_identical(&second.diagnosis, &first.diagnosis);
        assert_eq!(second.telemetry.probe_nanos, 0);
    }

    #[test]
    fn disjoint_delta_reuses_cached_probes_and_costs_strictly_less() {
        let g = Hypercube::new(7);
        let behavior = TesterBehavior::Random { seed: 11 };
        let mut m = MonitorSession::new(&g, g.driver_fault_bound(), Tracer::disabled());
        let e0 = [64usize, 90];
        m.ingest(&oracle(128, &e0, behavior), &e0).unwrap();
        let certified = m.certificate().unwrap().part;
        // A new fault in a part disjoint from the certified one.
        let e1 = [64usize, 90, 100];
        assert_ne!(g.part_of(100), certified, "test instance stays disjoint");
        let s1 = oracle(128, &e1, behavior);
        let report = m.ingest(&s1, &delta(&e0, &e1)).unwrap();
        assert_eq!(report.escalation, None);
        assert_eq!(report.dirty_parts, 1);
        let want = fresh(&g, &e1, behavior);
        assert_bit_identical(&report.diagnosis, &want);
        // Cached probes are free, so the epoch costs strictly less than
        // the from-scratch run on the same syndrome.
        assert!(
            report.lookups < want.lookups_used,
            "incremental {} !< from-scratch {}",
            report.lookups,
            want.lookups_used
        );
        // The scan stops at the certified part; the dirty part beyond it
        // is never re-probed.
        assert!(report.parts_reused >= 1);
        assert_eq!(report.telemetry.probe_lookups, 0, "all probes cache-served");
    }

    #[test]
    fn delta_in_the_certified_part_escalates_with_full_cost() {
        let g = Hypercube::new(7);
        let behavior = TesterBehavior::Random { seed: 3 };
        let mut m = MonitorSession::new(&g, g.driver_fault_bound(), Tracer::disabled());
        let e0 = [64usize, 90];
        m.ingest(&oracle(128, &e0, behavior), &e0).unwrap();
        let certified = m.certificate().unwrap().part;
        // Fault onset inside the certified part (node 3 is in part 0 of
        // Q_7's canonical Q_4 decomposition).
        let onset = g
            .representative(certified)
            .checked_add(3)
            .filter(|&v| g.part_of(v) == certified)
            .expect("part 0 spans nodes 0..16");
        let e1 = [onset, 64, 90];
        let s1 = oracle(128, &e1, behavior);
        let report = m.ingest(&s1, &delta(&e0, &e1)).unwrap();
        assert_eq!(
            report.escalation,
            Some(EscalationReason::CertificateInvalidated { part: certified })
        );
        let want = fresh(&g, &e1, behavior);
        assert_bit_identical(&report.diagnosis, &want);
        // The escalated epoch is an honest full walk: exactly the
        // from-scratch cost, with no cached probe served.
        assert_eq!(report.lookups, want.lookups_used);
        assert_eq!(report.parts_reused, 0);
        assert_eq!(report.parts_reprobed, want.probes);
    }

    #[test]
    fn a_failed_epoch_drops_state_and_the_next_escalates_state_lost() {
        let g = Hypercube::new(7);
        let behavior = TesterBehavior::Random { seed: 7 };
        // Bound 1: three faults make the growth sweep find more faulty
        // neighbours than the bound allows.
        let mut m = MonitorSession::new(&g, 1, Tracer::disabled());
        let e0 = [64usize];
        m.ingest(&oracle(128, &e0, behavior), &e0).unwrap();
        let e1 = [64usize, 90, 100];
        let err = m.ingest(&oracle(128, &e1, behavior), &delta(&e0, &e1));
        assert!(matches!(err, Err(DiagnosisError::TooManyFaults { .. })));
        assert_eq!(m.last_faults(), None, "the labelling was dropped");
        // Recovery epoch: back to a single fault, rebuilt from scratch.
        let e2 = [64usize];
        let report = m
            .ingest(&oracle(128, &e2, behavior), &delta(&e1, &e2))
            .unwrap();
        assert_eq!(report.escalation, Some(EscalationReason::StateLost));
        // Same bound as the monitor: 1, not the family's canonical bound.
        let want = mmdiag_core::diagnose_unchecked(&g, &oracle(128, &e2, behavior), 1).unwrap();
        assert_bit_identical(&report.diagnosis, &want);
    }

    #[test]
    fn monitor_metrics_accumulate_per_epoch() {
        use mmdiag_trace::{MetricValue, TraceConfig};
        let g = Hypercube::new(7);
        let tracer = Tracer::new(TraceConfig::default());
        let behavior = TesterBehavior::AllZero;
        let mut m = MonitorSession::new(&g, g.driver_fault_bound(), tracer.clone());
        let e0 = [64usize, 90];
        m.ingest(&oracle(128, &e0, behavior), &e0).unwrap();
        m.ingest(&oracle(128, &e0, behavior), &[]).unwrap();
        let e1 = [64usize, 90, 100];
        m.ingest(&oracle(128, &e1, behavior), &delta(&e0, &e1))
            .unwrap();
        let snap = tracer.metrics().unwrap().snapshot();
        let counter = |name: &str| {
            snap.iter()
                .find(|s| s.name == name)
                .map(|s| match s.value {
                    MetricValue::Counter(n) => n,
                    ref other => panic!("{name} is {other:?}"),
                })
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        assert_eq!(counter("monitor.epochs"), 3);
        assert_eq!(counter("monitor.escalations"), 1, "only the initial epoch");
        assert_eq!(counter("monitor.quiescent"), 1);
        assert!(counter("monitor.lookups") > 0);
        // Three epochs, three monitor.epoch spans.
        let epochs = tracer
            .drain()
            .into_iter()
            .filter(|e| e.cat == CAT_MONITOR && e.name == MONITOR_EPOCH)
            .count();
        assert_eq!(epochs, 3);
    }
}
