//! Executor coverage (ISSUE 3, satellite 3).
//!
//! 1. **Determinism across pool sizes** — on all 14 §5 families, the
//!    pooled backend run on pools of 1/2/4/8 workers returns a diagnosis
//!    bit-identical to the sequential driver's: same faults, certified
//!    part, healthy set size and spanning tree. (The accounting fields
//!    `probes`/`lookups_used` are scheduling-dependent by design and are
//!    checked only for the 1-worker pool, where the scan order is exactly
//!    sequential.)
//! 2. **Panic propagation** — a syndrome source that panics mid-probe
//!    unwinds out of the pooled diagnosis into the caller, and the pool
//!    stays usable afterwards.
//! 3. **Auto never regresses sub-cutover** — below
//!    `SEQUENTIAL_CUTOVER_NODES`, `diagnose_auto` routes to the identical
//!    sequential code path: every field of the result, including the
//!    accounting, equals `diagnose`'s.

use mmdiag_core::{
    diagnose, diagnose_auto, diagnose_with, ExecutionBackend, SEQUENTIAL_CUTOVER_NODES,
};
use mmdiag_exec::Pool;
use mmdiag_syndrome::{FaultSet, OracleSyndrome, SyndromeSource, TestResult, TesterBehavior};
use mmdiag_topology::families::{
    Arrangement, AugmentedCube, AugmentedKAryNCube, CrossedCube, EnhancedHypercube,
    FoldedHypercube, Hypercube, KAryNCube, NKStar, Pancake, ShuffleCube, StarGraph, TwistedCube,
    TwistedNCube,
};
use mmdiag_topology::{NodeId, Partitionable};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn families() -> Vec<Box<dyn Partitionable + Sync>> {
    vec![
        Box::new(Hypercube::new(7)),
        Box::new(CrossedCube::new(7)),
        Box::new(TwistedCube::new(7)),
        Box::new(TwistedNCube::new(7)),
        Box::new(FoldedHypercube::new(8)),
        Box::new(EnhancedHypercube::new(8, 3)),
        Box::new(AugmentedCube::new(10)),
        Box::new(ShuffleCube::new(10)),
        Box::new(KAryNCube::new(3, 6)),
        Box::new(AugmentedKAryNCube::new(4, 4)),
        Box::new(StarGraph::new(6)),
        Box::new(NKStar::new(6, 3)),
        Box::new(Pancake::new(6)),
        Box::new(Arrangement::new(6, 3)),
    ]
}

#[test]
fn pooled_diagnosis_is_bit_identical_across_1_2_4_8_workers() {
    let pools: Vec<Pool> = [1usize, 2, 4, 8].into_iter().map(Pool::new).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(0xE0EC_2026);
    for g in families() {
        let g = g.as_ref();
        let n = g.node_count();
        let bound = g.driver_fault_bound();
        for (trial, load) in [bound, bound / 2].into_iter().enumerate() {
            let faults = FaultSet::random(n, load, &mut rng);
            for behavior in [
                TesterBehavior::AllZero,
                TesterBehavior::Random { seed: trial as u64 },
            ] {
                let s = OracleSyndrome::new(faults.clone(), behavior);
                let seq = diagnose(g, &s)
                    .unwrap_or_else(|e| panic!("{}: sequential: {e} ({behavior:?})", g.name()));
                for pool in &pools {
                    s.reset_lookups();
                    let par =
                        diagnose_with(g, &s, &ExecutionBackend::Pooled(pool)).unwrap_or_else(|e| {
                            panic!(
                                "{}: pooled x{}: {e} ({behavior:?})",
                                g.name(),
                                pool.threads()
                            )
                        });
                    let ctx = format!("{} x{} {behavior:?}", g.name(), pool.threads());
                    assert_eq!(par.faults, seq.faults, "{ctx}");
                    assert_eq!(par.certified_part, seq.certified_part, "{ctx}");
                    assert_eq!(par.healthy_count, seq.healthy_count, "{ctx}");
                    assert_eq!(par.tree.root(), seq.tree.root(), "{ctx}");
                    assert_eq!(par.tree.edges(), seq.tree.edges(), "{ctx}");
                    if pool.threads() == 1 {
                        // One lane scans parts in the sequential order:
                        // even the accounting must agree.
                        assert_eq!(par.probes, seq.probes, "{ctx}");
                        assert_eq!(par.lookups_used, seq.lookups_used, "{ctx}");
                    }
                }
            }
        }
    }
}

/// ISSUE-8: with the grow cutover forced to 1, the pooled backend's
/// frontier-parallel growth sweep must be bit-identical to the sequential
/// driver on every family at every pool width — faults, certified part,
/// healthy set, spanning tree — and on the 1-worker pool (sequential probe
/// scan order) even the full lookup accounting.
#[test]
fn frontier_growth_is_bit_identical_across_1_2_4_8_workers() {
    use mmdiag_core::{grow_cutover, set_grow_cutover};
    use mmdiag_topology::{Cached, Topology};
    let prev = grow_cutover();
    set_grow_cutover(1);
    let pools: Vec<Pool> = [1usize, 2, 4, 8].into_iter().map(Pool::new).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(0xF807_2026);
    for fam in families() {
        let g = Cached::new(fam.as_ref());
        assert!(g.has_sorted_adjacency(), "{}", g.name());
        let n = g.node_count();
        let bound = g.driver_fault_bound();
        for (trial, load) in [bound, bound / 2].into_iter().enumerate() {
            let faults = FaultSet::random(n, load, &mut rng);
            for behavior in [
                TesterBehavior::AllZero,
                TesterBehavior::Random { seed: trial as u64 },
            ] {
                let s = OracleSyndrome::new(faults.clone(), behavior);
                let seq = diagnose(&g, &s)
                    .unwrap_or_else(|e| panic!("{}: sequential: {e} ({behavior:?})", g.name()));
                for pool in &pools {
                    s.reset_lookups();
                    let par = diagnose_with(&g, &s, &ExecutionBackend::Pooled(pool))
                        .unwrap_or_else(|e| {
                            panic!(
                                "{}: frontier x{}: {e} ({behavior:?})",
                                g.name(),
                                pool.threads()
                            )
                        });
                    let ctx = format!("{} frontier x{} {behavior:?}", g.name(), pool.threads());
                    assert_eq!(par.faults, seq.faults, "{ctx}");
                    assert_eq!(par.certified_part, seq.certified_part, "{ctx}");
                    assert_eq!(par.healthy_count, seq.healthy_count, "{ctx}");
                    assert_eq!(par.tree.edges(), seq.tree.edges(), "{ctx}");
                    if pool.threads() == 1 {
                        assert_eq!(par.probes, seq.probes, "{ctx}");
                        assert_eq!(par.lookups_used, seq.lookups_used, "{ctx}");
                    }
                }
            }
        }
    }
    set_grow_cutover(prev);
}

/// A syndrome that panics once a lookup threshold is crossed — the shape
/// of a poisoned data source mid-probe.
struct PanickySyndrome {
    inner: OracleSyndrome,
    fuse: u64,
}

impl SyndromeSource for PanickySyndrome {
    fn lookup(&self, u: NodeId, v: NodeId, w: NodeId) -> TestResult {
        if self.inner.lookups() >= self.fuse {
            panic!("syndrome source poisoned after {} lookups", self.fuse);
        }
        self.inner.lookup(u, v, w)
    }
    fn lookups(&self) -> u64 {
        self.inner.lookups()
    }
}

#[test]
fn syndrome_panic_unwinds_out_of_pooled_diagnosis() {
    let g = Hypercube::new(7);
    let pool = Pool::new(4);
    let s = PanickySyndrome {
        inner: OracleSyndrome::new(FaultSet::empty(128), TesterBehavior::AllZero),
        fuse: 40,
    };
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = diagnose_with(&g, &s, &ExecutionBackend::Pooled(&pool));
    }));
    assert!(
        result.is_err(),
        "the probe-task panic must reach the caller"
    );
    // The pool survives: a healthy diagnosis still completes on it.
    let ok = OracleSyndrome::new(FaultSet::new(128, &[9]), TesterBehavior::AllZero);
    let d = diagnose_with(&g, &ok, &ExecutionBackend::Pooled(&pool)).unwrap();
    assert_eq!(d.faults, vec![9]);
}

#[test]
fn auto_never_regresses_vs_sequential_below_cutover() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xA070_2026);
    for g in families() {
        let g = g.as_ref();
        let n = g.node_count();
        if n >= SEQUENTIAL_CUTOVER_NODES {
            // Above the cutover auto goes pooled; semantic equality for
            // these instances is already covered by the test above.
            assert_eq!(ExecutionBackend::auto(n).label(), "pooled", "{}", g.name());
            continue;
        }
        assert_eq!(
            ExecutionBackend::auto(n).label(),
            "sequential",
            "{}",
            g.name()
        );
        let faults = FaultSet::random(n, g.driver_fault_bound(), &mut rng);
        let s = OracleSyndrome::new(faults, TesterBehavior::Random { seed: 7 });
        let seq = diagnose(g, &s).unwrap();
        s.reset_lookups();
        let auto = diagnose_auto(g, &s).unwrap();
        // Identical code path ⇒ identical result, accounting included: the
        // auto entry point cannot cost a sub-cutover instance anything.
        assert_eq!(auto.faults, seq.faults, "{}", g.name());
        assert_eq!(auto.certified_part, seq.certified_part, "{}", g.name());
        assert_eq!(auto.probes, seq.probes, "{}", g.name());
        assert_eq!(auto.lookups_used, seq.lookups_used, "{}", g.name());
        assert_eq!(auto.healthy_count, seq.healthy_count, "{}", g.name());
        assert_eq!(auto.tree.edges(), seq.tree.edges(), "{}", g.name());
    }
}
