//! Execution backends: one diagnosis algorithm, pluggable execution.
//!
//! The driver's only embarrassingly parallel phase is the certified-part
//! probe search — a lowest-index-wins reduction over deterministic,
//! side-effect-free-per-part probes. This module factors *how* that search
//! (and batched whole-diagnosis submissions) runs out of the algorithm:
//!
//! * [`ExecutionBackend::Sequential`] — the plain in-order scan of
//!   [`crate::driver::diagnose`];
//! * [`ExecutionBackend::Pooled`] — the search dispatched on a shared
//!   [`mmdiag_exec::Pool`] via its deterministic `min_index_where`
//!   reduction, with [`Workspace`]s pooled **per worker** so batches of
//!   probes (and batched syndrome submissions) reuse one `O(N)` scratch
//!   allocation per worker instead of one per call;
//! * [`diagnose_auto`] — picks the backend by instance size:
//!   `BENCH_1`/`BENCH_2` measured the scoped-thread parallel driver losing
//!   below ~1k nodes to spawn overhead, and even the pooled dispatch has a
//!   (much smaller) scope cost, so sub-[`SEQUENTIAL_CUTOVER_NODES`]
//!   instances take the sequential path outright.
//!
//! Determinism: every backend returns the same certified part (the lowest
//! certifying index), hence the same fault set, healthy set and spanning
//! tree, bit for bit. Only the *accounting* fields ([`Diagnosis::probes`],
//! [`Diagnosis::lookups_used`]) may differ under pooled execution, because
//! how many parts beyond the winner get probed depends on scheduling —
//! exactly as with the original scoped-thread `diagnose_parallel`.

use crate::driver::{Diagnosis, DiagnosisError};
use crate::session::{self, BackendPolicy, SessionOptions};
use crate::set_builder::Workspace;
use mmdiag_exec::sync::Mutex;
use mmdiag_exec::Pool;
use mmdiag_syndrome::SyndromeSource;
use mmdiag_topology::Partitionable;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default node count below which [`diagnose_auto`] stays sequential.
///
/// Calibrated from `BENCH_1.json`/`BENCH_2.json`: on every sub-1k cell the
/// scoped-thread parallel legs ran at or behind the sequential driver (a
/// probe phase there is tens of microseconds — under any dispatch
/// overhead), while from ~1k nodes the parallel probe search starts paying
/// for itself.
///
/// This is the *offline fallback*: the live cutover is
/// [`sequential_cutover`], which an operator can pin with
/// `MMDIAG_CUTOVER=<nodes>` and the bench harness recalibrates at startup
/// from the best available `BENCH_*.json` trajectory
/// (`mmdiag_bench::calibrate_cutover`).
pub const SEQUENTIAL_CUTOVER_NODES: usize = 1024;

/// The live cutover value; 0 means "not yet resolved".
static CUTOVER: AtomicUsize = AtomicUsize::new(0);

/// The node count below which [`diagnose_auto`] currently stays
/// sequential. Resolution order: an explicit [`set_sequential_cutover`]
/// call (the bench's trajectory calibration), else `MMDIAG_CUTOVER` from
/// the environment (read once per process through
/// [`mmdiag_exec::knobs`]), else [`SEQUENTIAL_CUTOVER_NODES`].
pub fn sequential_cutover() -> usize {
    match CUTOVER.load(Ordering::Relaxed) {
        0 => {
            let resolved = mmdiag_exec::knobs()
                .cutover
                .unwrap_or(SEQUENTIAL_CUTOVER_NODES);
            // First resolver wins; a concurrent set_sequential_cutover that
            // landed in between is preserved.
            let _ = CUTOVER.compare_exchange(0, resolved, Ordering::Relaxed, Ordering::Relaxed);
            CUTOVER.load(Ordering::Relaxed)
        }
        n => n,
    }
}

/// Override the live cutover (e.g. from a measured `BENCH_*.json`
/// trajectory). A `MMDIAG_CUTOVER` environment pin takes precedence: when
/// the operator set one, this call is ignored and the pinned value is
/// returned. Returns the cutover now in force.
pub fn set_sequential_cutover(nodes: usize) -> usize {
    assert!(nodes > 0, "cutover must be positive");
    if mmdiag_exec::knobs().cutover.is_some() {
        return sequential_cutover();
    }
    CUTOVER.store(nodes, Ordering::Relaxed);
    nodes
}

/// Default node count below which the pooled driver keeps the sequential
/// growth tail instead of the frontier-parallel sweep.
///
/// The frontier engine pays per-layer pool dispatch plus an O(N/64)
/// bitset reset per diagnosis; both are noise from ~10⁵ nodes up (where
/// the sweep saves whole seconds) but real at workstation sizes. Like the
/// probe cutover this is the *offline fallback*: the live value is
/// [`grow_cutover`], pinnable via `MMDIAG_GROW_CUTOVER` and recalibrated
/// by the bench from measured `BENCH_*.json` trajectories.
pub const GROW_CUTOVER_NODES: usize = 1 << 17;

/// The live grow cutover; 0 means "not yet resolved".
static GROW_CUTOVER: AtomicUsize = AtomicUsize::new(0);

/// The node count below which the pooled driver currently keeps the
/// sequential growth tail. Resolution order mirrors
/// [`sequential_cutover`]: an explicit [`set_grow_cutover`] call, else
/// `MMDIAG_GROW_CUTOVER` from the environment (read once per process
/// through [`mmdiag_exec::knobs`]), else [`GROW_CUTOVER_NODES`].
pub fn grow_cutover() -> usize {
    match GROW_CUTOVER.load(Ordering::Relaxed) {
        0 => {
            let resolved = mmdiag_exec::knobs()
                .grow_cutover
                .unwrap_or(GROW_CUTOVER_NODES);
            // First resolver wins; a concurrent set_grow_cutover that
            // landed in between is preserved.
            let _ =
                GROW_CUTOVER.compare_exchange(0, resolved, Ordering::Relaxed, Ordering::Relaxed);
            GROW_CUTOVER.load(Ordering::Relaxed)
        }
        n => n,
    }
}

/// Override the live grow cutover (e.g. from a measured `BENCH_*.json`
/// trajectory). A `MMDIAG_GROW_CUTOVER` environment pin takes precedence:
/// when the operator set one, this call is ignored and the pinned value is
/// returned. Returns the cutover now in force.
pub fn set_grow_cutover(nodes: usize) -> usize {
    assert!(nodes > 0, "grow cutover must be positive");
    if mmdiag_exec::knobs().grow_cutover.is_some() {
        return grow_cutover();
    }
    GROW_CUTOVER.store(nodes, Ordering::Relaxed);
    nodes
}

/// Serialises tests (across this crate's unit-test binary) that mutate
/// the process-global grow cutover, so they can't race each other or any
/// test that steers through [`grow_cutover`].
#[cfg(test)]
pub(crate) fn grow_knob_lock() -> &'static Mutex<()> {
    use std::sync::OnceLock;
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// How a diagnosis should execute.
#[derive(Clone, Copy)]
pub enum ExecutionBackend<'p> {
    /// In-order scan on the calling thread; no synchronisation at all.
    Sequential,
    /// Probe search and batch submissions dispatched on a shared pool.
    Pooled(&'p Pool),
}

impl<'p> ExecutionBackend<'p> {
    /// The backend [`diagnose_auto`] picks for an instance of `nodes`
    /// nodes: sequential below the live [`sequential_cutover`], else the
    /// process-wide [`mmdiag_exec::global`] pool.
    pub fn auto(nodes: usize) -> ExecutionBackend<'static> {
        Self::auto_with_cutover(nodes, sequential_cutover())
    }

    /// [`ExecutionBackend::auto`] with an explicit cutover — the pure
    /// decision rule, also used by tests that must not touch the process
    /// global.
    pub fn auto_with_cutover(nodes: usize, cutover: usize) -> ExecutionBackend<'static> {
        if nodes < cutover {
            ExecutionBackend::Sequential
        } else {
            ExecutionBackend::Pooled(mmdiag_exec::global())
        }
    }

    /// `"sequential"` or `"pooled"` — for bench records and logs.
    pub fn label(&self) -> &'static str {
        match self {
            ExecutionBackend::Sequential => "sequential",
            ExecutionBackend::Pooled(_) => "pooled",
        }
    }
}

/// A small pool of [`Workspace`]s keyed by pool worker index, plus one
/// overflow slot for non-worker threads. Each slot is created lazily on
/// first checkout, so a batch of `k` submissions on a `w`-worker pool
/// allocates at most `min(k, w + 1)` workspaces no matter how large `k`
/// gets — the amortisation that makes batched syndrome evaluation cheap.
pub struct WorkspacePool {
    nodes: usize,
    slots: Vec<Mutex<Option<Workspace>>>,
    grow_slots: Vec<Mutex<Option<crate::grow::GrowScratch>>>,
}

impl WorkspacePool {
    /// Workspace pool for a graph with `nodes` nodes, serving a pool of
    /// `workers` workers (plus any non-worker caller).
    pub fn new(nodes: usize, workers: usize) -> Self {
        WorkspacePool {
            nodes,
            slots: (0..workers + 1).map(|_| Mutex::new(None)).collect(),
            grow_slots: (0..workers + 1).map(|_| Mutex::new(None)).collect(),
        }
    }

    fn slot_index(&self, worker: Option<usize>) -> usize {
        match worker {
            Some(i) if i < self.slots.len() - 1 => i,
            _ => self.slots.len() - 1,
        }
    }

    /// Run `f` with the workspace slot of `worker` (or the overflow slot
    /// for `None`), creating the workspace on first use.
    pub fn with<R>(&self, worker: Option<usize>, f: impl FnOnce(&mut Workspace) -> R) -> R {
        let mut guard = self.slots[self.slot_index(worker)].lock().unwrap();
        let ws = guard.get_or_insert_with(|| Workspace::new(self.nodes));
        f(ws)
    }

    /// Run `f` with the frontier-growth scratch slot of `worker` (same
    /// keying as [`WorkspacePool::with`]), creating it on first use. The
    /// growth bitsets and frontier buffers are the other O(N) scratch a
    /// diagnosis needs; pooling them here is what keeps a stream of
    /// `submit_batch` jobs at 10⁶⁺ nodes from re-allocating per job.
    pub(crate) fn with_grow<R>(
        &self,
        worker: Option<usize>,
        f: impl FnOnce(&mut crate::grow::GrowScratch) -> R,
    ) -> R {
        let mut guard = self.grow_slots[self.slot_index(worker)].lock().unwrap();
        let gs = guard.get_or_insert_with(crate::grow::GrowScratch::new);
        gs.ensure(self.nodes);
        f(gs)
    }
}

/// Diagnose with the family's canonical decomposition and fault bound on
/// the given backend. Checks §5's preconditions first; on every backend
/// the returned certified part, fault set, healthy set and tree are
/// identical to [`crate::driver::diagnose`]'s. A thin wrapper over the
/// session run ([`crate::session::run_with`]).
pub fn diagnose_with<T, S>(
    g: &T,
    s: &S,
    backend: &ExecutionBackend<'_>,
) -> Result<Diagnosis, DiagnosisError>
where
    T: Partitionable + Sync + ?Sized,
    S: SyndromeSource + Sync + ?Sized,
{
    session::run_with(
        g,
        s,
        BackendPolicy::from(backend),
        &SessionOptions::default(),
        None,
    )
    .map(|r| r.diagnosis)
}

/// Size-directed entry point: sequential below the live
/// [`sequential_cutover`] (default [`SEQUENTIAL_CUTOVER_NODES`], overridable
/// via `MMDIAG_CUTOVER` or trajectory calibration), pooled on the shared
/// global pool above it.
pub fn diagnose_auto<T, S>(g: &T, s: &S) -> Result<Diagnosis, DiagnosisError>
where
    T: Partitionable + Sync + ?Sized,
    S: SyndromeSource + Sync + ?Sized,
{
    diagnose_with(g, s, &ExecutionBackend::auto(g.node_count()))
}

/// The pooled probe-search strategy with an explicit lane width (the
/// number of strided probe lanes; `diagnose_parallel` maps its legacy
/// `threads` argument here). Guards degenerate decompositions — zero
/// parts, or a custom `Partitionable` whose precondition hook was relaxed
/// — with a proper error instead of the historical `clamp(1, 0)` panic.
/// A thin wrapper over the pooled session run.
pub(crate) fn diagnose_pooled_width<T, S>(
    g: &T,
    s: &S,
    pool: &Pool,
    width: usize,
) -> Result<Diagnosis, DiagnosisError>
where
    T: Partitionable + Sync + ?Sized,
    S: SyndromeSource + Sync + ?Sized,
{
    session::run_pooled(
        g,
        s,
        pool,
        width,
        g.driver_fault_bound(),
        &mmdiag_trace::Tracer::disabled(),
        None,
    )
    .map(|r| r.diagnosis)
}

/// Evaluate many syndromes against one instance in a single submission.
///
/// Sequential backend: one reused workspace, syndromes in order. Pooled
/// backend: syndromes fan out over the pool (each diagnosis runs its
/// in-order scan inside one task — batch-level parallelism), workspaces
/// pooled per worker. Results come back **in input order** and are
/// bit-identical across backends, including `probes` and `lookups_used`,
/// because each per-syndrome scan is the same sequential algorithm either
/// way.
pub fn diagnose_batch<T, S>(
    g: &T,
    syndromes: &[S],
    backend: &ExecutionBackend<'_>,
) -> Vec<Result<Diagnosis, DiagnosisError>>
where
    T: Partitionable + Sync + ?Sized,
    S: SyndromeSource + Sync,
{
    session::run_batch(
        g,
        syndromes,
        BackendPolicy::from(backend),
        &SessionOptions::default(),
        None,
    )
    .into_iter()
    .map(|r| r.map(|report| report.diagnosis))
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::diagnose;
    use mmdiag_syndrome::{FaultSet, OracleSyndrome, TesterBehavior};
    use mmdiag_topology::families::Hypercube;
    use mmdiag_topology::{NodeId, Topology};

    #[test]
    fn pooled_single_lane_equals_sequential_exactly() {
        // Width 1 probes parts in the sequential order, so even the
        // accounting fields must match.
        let g = Hypercube::new(7);
        let f = FaultSet::new(128, &[3, 77, 90]);
        let pool = Pool::new(1);
        for b in [TesterBehavior::AllZero, TesterBehavior::Random { seed: 4 }] {
            let s = OracleSyndrome::new(f.clone(), b);
            let seq = diagnose(&g, &s).unwrap();
            s.reset_lookups();
            let par = diagnose_pooled_width(&g, &s, &pool, 1).unwrap();
            assert_eq!(par.faults, seq.faults);
            assert_eq!(par.certified_part, seq.certified_part);
            assert_eq!(par.probes, seq.probes);
            assert_eq!(par.lookups_used, seq.lookups_used);
            assert_eq!(par.tree.edges(), seq.tree.edges());
        }
    }

    #[test]
    fn auto_picks_backend_by_size() {
        assert_eq!(ExecutionBackend::auto(128).label(), "sequential");
        // The pure rule, pinned to the default cutover (the global variant
        // is exercised separately so tests cannot race on the process
        // state).
        assert_eq!(
            ExecutionBackend::auto_with_cutover(
                SEQUENTIAL_CUTOVER_NODES - 1,
                SEQUENTIAL_CUTOVER_NODES
            )
            .label(),
            "sequential"
        );
        assert_eq!(
            ExecutionBackend::auto_with_cutover(SEQUENTIAL_CUTOVER_NODES, SEQUENTIAL_CUTOVER_NODES)
                .label(),
            "pooled"
        );
        assert_eq!(
            ExecutionBackend::auto_with_cutover(600, 512).label(),
            "pooled"
        );
        assert_eq!(
            ExecutionBackend::auto_with_cutover(600, 2048).label(),
            "sequential"
        );
    }

    #[test]
    fn cutover_defaults_and_recalibrates() {
        // No MMDIAG_CUTOVER in the test environment: the default resolves.
        assert_eq!(sequential_cutover(), SEQUENTIAL_CUTOVER_NODES);
        // Trajectory calibration moves the live value; restore afterwards
        // so other tests in this binary see the default again.
        assert_eq!(set_sequential_cutover(2048), 2048);
        assert_eq!(sequential_cutover(), 2048);
        set_sequential_cutover(SEQUENTIAL_CUTOVER_NODES);
        assert_eq!(sequential_cutover(), SEQUENTIAL_CUTOVER_NODES);
    }

    #[test]
    fn grow_cutover_defaults_and_recalibrates() {
        let _lock = grow_knob_lock().lock().unwrap_or_else(|e| e.into_inner());
        // No MMDIAG_GROW_CUTOVER in the test environment: the default
        // resolves.
        assert_eq!(grow_cutover(), GROW_CUTOVER_NODES);
        // Trajectory calibration moves the live value; restore afterwards
        // so other tests in this binary see the default again.
        assert_eq!(set_grow_cutover(1 << 20), 1 << 20);
        assert_eq!(grow_cutover(), 1 << 20);
        set_grow_cutover(GROW_CUTOVER_NODES);
        assert_eq!(grow_cutover(), GROW_CUTOVER_NODES);
    }

    #[test]
    fn batch_matches_individual_diagnoses_on_both_backends() {
        let g = Hypercube::new(7);
        let syndromes: Vec<OracleSyndrome> = (0..6)
            .map(|i| {
                OracleSyndrome::new(
                    FaultSet::new(128, &[i, 2 * i + 40]),
                    TesterBehavior::Random { seed: i as u64 },
                )
            })
            .collect();
        let individual: Vec<Diagnosis> =
            syndromes.iter().map(|s| diagnose(&g, s).unwrap()).collect();
        let pool = Pool::new(4);
        for backend in [
            ExecutionBackend::Sequential,
            ExecutionBackend::Pooled(&pool),
        ] {
            for s in &syndromes {
                s.reset_lookups();
            }
            let batch = diagnose_batch(&g, &syndromes, &backend);
            assert_eq!(batch.len(), syndromes.len());
            for (got, want) in batch.iter().zip(&individual) {
                let got = got.as_ref().unwrap();
                assert_eq!(got.faults, want.faults, "{}", backend.label());
                assert_eq!(got.certified_part, want.certified_part);
                assert_eq!(got.probes, want.probes, "batch scans are in-order");
                assert_eq!(got.healthy_count, want.healthy_count);
            }
        }
    }

    #[test]
    fn workspace_pool_reuses_slots() {
        let wsp = WorkspacePool::new(64, 2);
        // Same slot twice: the workspace persists (epoch-stamped reuse is
        // Workspace's own concern; here we only check slot identity works).
        wsp.with(Some(0), |ws| {
            let _ = ws;
        });
        wsp.with(Some(0), |ws| {
            let _ = ws;
        });
        wsp.with(None, |ws| {
            let _ = ws;
        });
        // Out-of-range worker index falls back to the overflow slot rather
        // than panicking.
        wsp.with(Some(99), |ws| {
            let _ = ws;
        });
    }

    /// A deliberately degenerate decomposition: zero parts, with the
    /// precondition hook relaxed to let it through — the shape that made
    /// the historical `threads.clamp(1, parts)` panic.
    struct NoParts;
    impl Topology for NoParts {
        fn node_count(&self) -> usize {
            4
        }
        fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
            out.clear();
            out.push((u + 1) % 4);
            out.push((u + 3) % 4);
        }
        fn diagnosability(&self) -> usize {
            0
        }
        fn name(&self) -> String {
            "C4/no-parts".into()
        }
    }
    impl Partitionable for NoParts {
        fn part_count(&self) -> usize {
            0
        }
        fn part_of(&self, _u: NodeId) -> usize {
            0
        }
        fn representative(&self, _part: usize) -> NodeId {
            0
        }
        fn check_partition_preconditions(&self) -> Result<(), String> {
            Ok(()) // relaxed on purpose
        }
    }

    #[test]
    fn zero_part_decomposition_is_an_error_not_a_panic() {
        let g = NoParts;
        let s = OracleSyndrome::new(FaultSet::empty(4), TesterBehavior::AllZero);
        let pool = Pool::new(2);
        match diagnose_pooled_width(&g, &s, &pool, 8) {
            Err(DiagnosisError::Preconditions(msg)) => {
                assert!(msg.contains("no parts"), "{msg}");
            }
            other => panic!("expected a precondition error, got {other:?}"),
        }
        // And through the public strategy entry point too.
        match crate::parallel::diagnose_parallel(&g, &s, 8) {
            Err(DiagnosisError::Preconditions(msg)) => {
                assert!(msg.contains("no parts"), "{msg}");
            }
            other => panic!("expected a precondition error, got {other:?}"),
        }
    }
}
