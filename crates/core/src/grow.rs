//! Frontier-parallel unrestricted growth — the pooled `grow` phase.
//!
//! The Theorem-1 driver's growth tail (`Set_Builder(u0)` from the
//! certified seed plus the `N(U_r)` sweep) was the last sequential
//! stretch of a pooled diagnosis. This module reworks it as a
//! wavefront BFS on the worker pool while keeping the output —
//! fault set, certificate part, spanning tree `T`, and even the
//! syndrome-lookup *count* — bit-identical to the sequential sweep:
//!
//! 1. **Sequential prefix.** Level 1 and every layer up to the point
//!    where the contributor count clears the fault bound run on the
//!    shared [`GrowthCore`]; the parent-spread heuristic is live there
//!    and is deliberately order-dependent, so those layers are not
//!    parallelised. Once `all_healthy` fires the heuristic is dead code
//!    (its guard is `!all_healthy`) and every remaining layer is a pure
//!    function of the frontier.
//! 2. **Parallel layers.** The sorted frontier is split into contiguous
//!    chunks drained by [`Pool::map`]. A worker scanning frontier node
//!    `u` that discovers an unvisited candidate `v` arbitrates ownership
//!    through [`ClaimBits::try_claim`] and, if it wins, resolves `v`
//!    *completely*: it scans `v`'s neighbours in ascending order,
//!    consulting `s.lookup(w, v, t(w))` for each frontier member `w`
//!    until the first witness agrees — exactly the order and the number
//!    of consultations the sorted sequential sweep performs, regardless
//!    of which worker won the claim. Losers consult nothing.
//! 3. **Deterministic merge.** Accepted `(t(v), v)` pairs from all
//!    chunks are sorted by `(parent, v)` — the order a sequential scan
//!    of the sorted frontier appends them in when adjacency lists are
//!    sorted — then flushed into the workspace and the growth core:
//!    members, tree edges, contributor accounting and the next frontier
//!    come out identical to the sequential run.
//! 4. **Rejects as the sweep.** Every candidate whose witnesses all
//!    disagreed is recorded; a node of `N(U_r) \ U_r` is exactly a
//!    never-visited rejectee (each member is scanned as frontier exactly
//!    once, so each boundary edge is consulted), which replaces the
//!    historical O(N) full-graph sweep with an O(|F|·Δ) sort.
//!
//! The engine requires [`Topology::has_sorted_adjacency`] — the merge
//! order argument above leans on sorted neighbour lists — and is gated
//! in the session behind [`crate::backend::grow_cutover`], so small
//! instances keep the sequential tail byte for byte.

use crate::driver::{Diagnosis, DiagnosisError};
use crate::session::GrowRound;
use crate::set_builder::{GrowthCore, Workspace};
use mmdiag_exec::{ClaimBits, Pool};
use mmdiag_syndrome::SyndromeSource;
use mmdiag_topology::{NodeId, Topology};
use mmdiag_trace::{checked_delta, Tracer, CAT_PHASE, PHASE_GROW_ROUND};

const WORD_BITS: usize = usize::BITS as usize;

#[inline]
fn test_bit(bits: &[usize], i: usize) -> bool {
    bits[i / WORD_BITS] & (1usize << (i % WORD_BITS)) != 0
}

#[inline]
fn set_bit(bits: &mut [usize], i: usize) {
    bits[i / WORD_BITS] |= 1usize << (i % WORD_BITS);
}

#[inline]
fn clear_bit(bits: &mut [usize], i: usize) {
    bits[i / WORD_BITS] &= !(1usize << (i % WORD_BITS));
}

/// Minimum frontier chunk a worker task takes, so tail layers with tiny
/// frontiers don't shatter into per-node tasks.
const MIN_CHUNK: usize = 128;

/// Frontier nodes whose candidates are generated together before the
/// claim pre-filter pass runs over them (the batch keeps ~`Δ`·128
/// candidate ids — a few KB — L1-resident).
const PROBE_BATCH: usize = 128;

/// Pooled scratch for the frontier-parallel sweep: the dense
/// frontier-membership bitset (O(N/64) words, reset per diagnosis, not
/// reallocated), the atomic claim set — which doubles as the visited set:
/// hand-off seeds a claim per existing member, accepted candidates keep
/// theirs, so one claim-bit load answers both "already a member" and
/// "claimed this round" — and the reusable rejectee buffer. Lives in
/// [`crate::WorkspacePool`] slots next to the [`Workspace`]s so repeated
/// `submit_batch` jobs at 10⁶⁺ nodes stop re-allocating O(N) scratch per
/// job.
pub(crate) struct GrowScratch {
    in_frontier: Vec<usize>,
    claimed: ClaimBits,
    rejects: Vec<NodeId>,
    /// Ping-pong buffer for the merge's radix sort, pooled so the
    /// multi-million-key middle rounds don't allocate per round.
    sort_scratch: Vec<u64>,
}

impl GrowScratch {
    pub(crate) fn new() -> Self {
        GrowScratch {
            in_frontier: Vec::new(),
            claimed: ClaimBits::new(0),
            rejects: Vec::new(),
            sort_scratch: Vec::new(),
        }
    }

    /// Grow capacity to `n` nodes (no-op when already large enough).
    pub(crate) fn ensure(&mut self, n: usize) {
        let words = n.div_ceil(WORD_BITS);
        if self.in_frontier.len() < words {
            self.in_frontier.resize(words, 0);
        }
        self.claimed.ensure(n);
    }

    /// Zero the bitsets for a fresh diagnosis.
    fn begin(&mut self) {
        self.in_frontier.fill(0);
        self.claimed.reset();
    }
}

/// What one frontier chunk resolved: candidates accepted into the layer
/// as packed `(parent, v)` pairs, and candidates every witness disagreed
/// on.
#[derive(Default)]
struct ChunkOutcome {
    accepted: Vec<u64>,
    rejected: Vec<NodeId>,
}

/// Pack an accepted `(parent, v)` pair into one sortable word, with `v`
/// in the low `vbits = ⌈log₂ N⌉` bits: `u64` lexicographic order is then
/// exactly `(parent, v)` order, the per-layer merge sorts half the bytes
/// a `(usize, usize)` sort would move, and the tight packing keeps every
/// key under `2^(2·vbits)` so the radix sort skips its empty high
/// passes (three passes at Q_23 instead of four).
#[inline]
fn pack(parent: NodeId, v: NodeId, vbits: u32) -> u64 {
    debug_assert!(v >> vbits == 0);
    ((parent as u64) << vbits) | v as u64
}

#[inline]
fn unpack(key: u64, vbits: u32) -> (NodeId, NodeId) {
    (
        (key >> vbits) as NodeId,
        (key & ((1u64 << vbits) - 1)) as NodeId,
    )
}

/// Bits needed to hold any node id of `g` (`⌈log₂ N⌉`).
fn id_bits(n: usize) -> u32 {
    usize::BITS - n.saturating_sub(1).leading_zeros()
}

/// Keys below this use the comparison sort: the radix passes only pay
/// for themselves once the key count dwarfs the 64 Ki-entry histogram.
const RADIX_MIN: usize = 1 << 15;

/// Sort packed `(parent, v)` keys ascending: an LSD radix sort over
/// 16-bit digits, with passes whose digit is zero across every key
/// skipped (node ids use `2·log₂ N` low bits, so Q_23 runs three passes
/// and Q_27 four instead of a comparison sort's `n log n` — the merge
/// sorts multi-million-key rounds in the middle of a 10⁷-node growth).
fn sort_keys(keys: &mut [u64], scratch: &mut Vec<u64>) {
    if keys.len() < RADIX_MIN {
        keys.sort_unstable();
        return;
    }
    let populated = keys.iter().fold(0u64, |a, &k| a | k);
    scratch.clear();
    scratch.resize(keys.len(), 0);
    let mut src_is_keys = true;
    for pass in 0u32..4 {
        let shift = pass * 16;
        if (populated >> shift) & 0xFFFF == 0 {
            continue; // every key agrees on this digit
        }
        let (src, dst): (&[u64], &mut [u64]) = if src_is_keys {
            (&*keys, &mut scratch[..])
        } else {
            (&scratch[..], &mut keys[..])
        };
        let mut counts = vec![0u32; 1 << 16];
        for &k in src.iter() {
            counts[((k >> shift) & 0xFFFF) as usize] += 1;
        }
        let mut sum = 0u32;
        for c in counts.iter_mut() {
            let here = *c;
            *c = sum;
            sum += here;
        }
        for &k in src.iter() {
            let d = ((k >> shift) & 0xFFFF) as usize;
            dst[counts[d] as usize] = k;
            counts[d] += 1;
        }
        src_is_keys = !src_is_keys;
    }
    if !src_is_keys {
        keys.copy_from_slice(scratch);
    }
}

/// The frontier-parallel `grow_and_sweep`: same contract as
/// [`crate::session::grow_and_sweep`] (same faults, tree, lookup count),
/// plus the per-round telemetry the sequential tail doesn't collect.
#[allow(clippy::too_many_arguments)]
pub(crate) fn grow_and_sweep_parallel<T, S>(
    g: &T,
    s: &S,
    u0: NodeId,
    part: usize,
    probes: usize,
    fault_bound: usize,
    start_lookups: u64,
    pool: &Pool,
    ws: &mut Workspace,
    gs: &mut GrowScratch,
    tracer: &Tracer,
) -> Result<(Diagnosis, Vec<GrowRound>), DiagnosisError>
where
    T: Topology + Sync + ?Sized,
    S: SyndromeSource + Sync + ?Sized,
{
    debug_assert!(
        g.has_sorted_adjacency(),
        "the deterministic merge requires sorted adjacency"
    );
    let accept = |_: NodeId| true;
    let mut rounds: Vec<GrowRound> = Vec::new();
    let mut rejects = std::mem::take(&mut gs.rejects);
    rejects.clear();

    // Sequential prefix: level 1, then layers until the certificate fires
    // inside the growth (the spread heuristic is alive until then and its
    // lookups are scan-order-dependent by design) or growth finishes.
    let mut before = s.lookups();
    let span = tracer.span(CAT_PHASE, PHASE_GROW_ROUND);
    let mut core = GrowthCore::start(g, s, u0, fault_bound, &accept, ws, &mut |v| rejects.push(v));
    {
        let lk = checked_delta(s.lookups(), before);
        rounds.push(GrowRound {
            frontier: 1,
            accepted: core.members.len() - 1,
            lookups: lk,
            nanos: u128::from(span.finish_with_value(lk)),
            parallel: false,
        });
    }
    let mut growing = !ws.frontier.is_empty();
    while growing && !core.all_healthy {
        let frontier = ws.frontier.len();
        let members_before = core.members.len();
        before = s.lookups();
        let span = tracer.span(CAT_PHASE, PHASE_GROW_ROUND);
        growing = core.advance_layer(g, s, &accept, ws, &mut |v| rejects.push(v));
        let lk = checked_delta(s.lookups(), before);
        rounds.push(GrowRound {
            frontier,
            accepted: core.members.len() - members_before,
            lookups: lk,
            nanos: u128::from(span.finish_with_value(lk)),
            parallel: false,
        });
    }

    let handed_off = growing;
    if growing {
        // Hand off: mirror the workspace membership into the claim set
        // (membership and claims share one bit — see [`GrowScratch`]) and
        // the frontier bitset the workers read lock-free; all writes
        // happen here or in the single-threaded merge.
        gs.begin();
        for &m in &core.members {
            let _ = gs.claimed.try_claim(m);
        }
        // Growth will visit nearly every node: size the output vectors
        // once so the middle rounds don't pay doubling reallocations
        // (hundreds of MB of memcpy at 10⁸ nodes).
        let n = g.node_count();
        core.members.reserve(n.saturating_sub(core.members.len()));
        core.edges.reserve(n.saturating_sub(core.edges.len()));
        ws.frontier.sort_unstable();
        for &u in &ws.frontier {
            set_bit(&mut gs.in_frontier, u);
        }
        loop {
            let frontier = ws.frontier.len();
            before = s.lookups();
            let span = tracer.span(CAT_PHASE, PHASE_GROW_ROUND);
            let accepted = parallel_layer(g, s, pool, ws, gs, &mut core, &mut rejects);
            let lk = checked_delta(s.lookups(), before);
            rounds.push(GrowRound {
                frontier,
                accepted,
                lookups: lk,
                nanos: u128::from(span.finish_with_value(lk)),
                parallel: true,
            });
            if accepted == 0 {
                break;
            }
        }
    }

    // N(U_r) \ U_r: exactly the never-visited rejectees (Theorem 1 labels
    // them all faulty). Parallel-round acceptances live in the claim set
    // only (the merge skips the `mark` epoch array, and rejected claims
    // were released round by round), so membership is answered there
    // whenever the hand-off happened.
    if handed_off {
        rejects.retain(|&v| !gs.claimed.is_claimed(v));
    } else {
        rejects.retain(|&v| !ws.seen(v));
    }
    rejects.sort_unstable();
    rejects.dedup();
    let faults = std::mem::take(&mut rejects);
    gs.rejects = rejects;
    if faults.len() > fault_bound {
        return Err(DiagnosisError::TooManyFaults {
            found: faults.len(),
            bound: fault_bound,
        });
    }
    let full = core.finish(s);
    Ok((
        Diagnosis {
            faults,
            certified_part: part,
            probes,
            healthy_count: full.members.len(),
            tree: full.tree,
            lookups_used: checked_delta(s.lookups(), start_lookups),
        },
        rounds,
    ))
}

/// One post-certificate layer on the pool. Returns the number of nodes
/// accepted into the new layer (0 ends the growth).
fn parallel_layer<T, S>(
    g: &T,
    s: &S,
    pool: &Pool,
    ws: &mut Workspace,
    gs: &mut GrowScratch,
    core: &mut GrowthCore,
    rejects: &mut Vec<NodeId>,
) -> usize
where
    T: Topology + Sync + ?Sized,
    S: SyndromeSource + Sync + ?Sized,
{
    if ws.frontier.is_empty() {
        return 0;
    }
    core.cur_layer += 1;
    let vbits = id_bits(g.node_count());

    let outcomes: Vec<ChunkOutcome> = {
        let frontier: &[NodeId] = &ws.frontier;
        let parent: &[NodeId] = &ws.parent;
        let in_frontier: &[usize] = &gs.in_frontier;
        let claimed = &gs.claimed;
        let lanes = pool.threads().max(1) * 4;
        let chunk = frontier.len().div_ceil(lanes).max(MIN_CHUNK);
        let chunks: Vec<&[NodeId]> = frontier.chunks(chunk).collect();
        pool.map(&chunks, |_, chunk| {
            let mut out = ChunkOutcome {
                accepted: Vec::with_capacity(chunk.len() * 2),
                rejected: Vec::new(),
            };
            let maxd = g.max_degree();
            let mut nbuf: Vec<NodeId> = Vec::new();
            let mut vbuf: Vec<NodeId> = vec![0; PROBE_BATCH * maxd];
            for ublock in chunk.chunks(PROBE_BATCH) {
                // Generate-and-pre-filter in one pass: one claim bit
                // answers "already a member" (seeded at hand-off, kept by
                // every acceptance) and "claimed this round". The filter
                // is a branch-free compaction fused with neighbour
                // generation, so the ~Δ·|block| independent random loads
                // pipeline at full memory-level parallelism and the
                // candidates are never stored and re-read unfiltered; a
                // per-edge `if` on a random claim bit mispredicts half
                // the time. Claims only grow during a round, so a stale
                // read is harmless — `try_claim` below stays the sole
                // arbiter.
                let mut k = 0;
                for &u in ublock {
                    g.neighbors_into_sorted(u, &mut nbuf);
                    for &v in &nbuf {
                        vbuf[k] = v;
                        k += usize::from(!claimed.is_claimed(v));
                    }
                }
                for &v in &vbuf[..k] {
                    if !claimed.try_claim(v) {
                        continue;
                    }
                    // This worker owns v's resolution: try witnesses in
                    // ascending node order — the order the sorted
                    // sequential sweep consults them — until one agrees.
                    // The early-exit visitor matters: the first witness
                    // usually agrees, so generating the candidate's full
                    // Δ-entry sorted list here was the single largest
                    // slice of the map phase.
                    let mut chosen = None;
                    g.neighbors_sorted_until(v, &mut |w| {
                        if !test_bit(in_frontier, w) {
                            return true;
                        }
                        if s.lookup(w, v, parent[w]).is_agree() {
                            chosen = Some(w);
                            false
                        } else {
                            true
                        }
                    });
                    match chosen {
                        Some(w) => out.accepted.push(pack(w, v, vbits)),
                        None => out.rejected.push(v),
                    }
                }
            }
            out
        })
    };

    // Deterministic merge. Rejected candidates release their claims (they
    // may be re-discovered from the next frontier); accepted ones keep
    // them — the claim *is* the membership bit from here on.
    let total: usize = outcomes.iter().map(|o| o.accepted.len()).sum();
    let mut accepted: Vec<u64> = Vec::with_capacity(total);
    for o in &outcomes {
        accepted.extend_from_slice(&o.accepted);
        for &v in &o.rejected {
            gs.claimed.clear(v);
            rejects.push(v);
        }
    }
    // (parent, v) order — exactly where a sequential scan of the sorted
    // frontier over sorted adjacency lists appends each acceptance. Only
    // the state later rounds read is updated here: `parent` (witness
    // targets), the frontier bitset, members and tree edges; membership
    // itself is already recorded by the kept claim. The spread
    // heuristic's bookkeeping (`mark`/`layer`/`claims`/`contributed`) is
    // dead once the in-growth certificate has fired — skipping those four
    // scattered O(N)-array writes per acceptance is a large constant
    // factor at 10⁷ nodes.
    sort_keys(&mut accepted, &mut gs.sort_scratch);
    for &u in &ws.frontier {
        clear_bit(&mut gs.in_frontier, u);
    }
    ws.frontier.clear();
    for &key in &accepted {
        let (p, v) = unpack(key, vbits);
        ws.parent[v] = p;
        set_bit(&mut gs.in_frontier, v);
        core.members.push(v);
        core.edges.push((v, p));
        ws.frontier.push(v);
    }
    if !accepted.is_empty() {
        core.rounds += 1;
    }
    accepted.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::grow_and_sweep;
    use mmdiag_syndrome::{FaultSet, OracleSyndrome, TesterBehavior};
    use mmdiag_topology::families::Hypercube;
    use mmdiag_topology::Cached;

    /// The engine against the sequential tail on every worker count:
    /// faults, tree, member count and even the lookup count must be
    /// bit-identical, and the per-round lookups must sum to the total.
    #[test]
    fn frontier_parallel_matches_sequential_grow_bit_for_bit() {
        let base = Hypercube::new(10);
        let g = Cached::new(&base);
        assert!(g.has_sorted_adjacency());
        let n = g.node_count();
        let bound = 10;
        let behaviors = [
            TesterBehavior::AllZero,
            TesterBehavior::Random { seed: 11 },
            TesterBehavior::AllOne,
        ];
        for behavior in behaviors {
            for faults in [vec![], vec![5, 600, 1001], vec![1, 2, 3, 4, 512]] {
                let s = OracleSyndrome::new(FaultSet::new(n, &faults), behavior);
                let mut ws = Workspace::new(n);
                s.reset_lookups();
                let seq = grow_and_sweep(&g, &s, 0, 0, 1, bound, 0, &mut ws).unwrap();
                let seq_lookups = s.lookups();
                for workers in [1usize, 2, 4, 8] {
                    let pool = Pool::new(workers);
                    let mut pws = Workspace::new(n);
                    let mut gs = GrowScratch::new();
                    gs.ensure(n);
                    s.reset_lookups();
                    let (par, rounds) = grow_and_sweep_parallel(
                        &g,
                        &s,
                        0,
                        0,
                        1,
                        bound,
                        0,
                        &pool,
                        &mut pws,
                        &mut gs,
                        &Tracer::disabled(),
                    )
                    .unwrap();
                    assert_eq!(par.faults, seq.faults, "workers={workers}");
                    assert_eq!(par.healthy_count, seq.healthy_count);
                    assert_eq!(par.tree.edges(), seq.tree.edges(), "workers={workers}");
                    assert_eq!(s.lookups(), seq_lookups, "workers={workers}");
                    assert!(!rounds.is_empty());
                    assert_eq!(
                        rounds.iter().map(|r| r.lookups).sum::<u64>(),
                        seq_lookups,
                        "per-round lookups partition the total"
                    );
                    assert!(
                        rounds.iter().any(|r| r.parallel),
                        "fault-free Q_10 certifies"
                    );
                }
            }
        }
    }

    /// A faulty neighbourhood big enough to overflow the bound must error
    /// identically on both paths.
    #[test]
    fn too_many_faults_is_bit_identical() {
        let base = Hypercube::new(8);
        let g = Cached::new(&base);
        let n = g.node_count();
        let faults: Vec<usize> = (100..120).collect();
        let s = OracleSyndrome::new(FaultSet::new(n, &faults), TesterBehavior::AllOne);
        let mut ws = Workspace::new(n);
        let seq = grow_and_sweep(&g, &s, 0, 0, 1, 3, 0, &mut ws);
        let pool = Pool::new(4);
        let mut pws = Workspace::new(n);
        let mut gs = GrowScratch::new();
        gs.ensure(n);
        let par = grow_and_sweep_parallel(
            &g,
            &s,
            0,
            0,
            1,
            3,
            0,
            &pool,
            &mut pws,
            &mut gs,
            &Tracer::disabled(),
        );
        match (seq, par) {
            (
                Err(DiagnosisError::TooManyFaults { found: a, bound: b }),
                Err(DiagnosisError::TooManyFaults { found: c, bound: d }),
            ) => {
                assert_eq!((a, b), (c, d));
            }
            other => panic!("expected matching TooManyFaults, got {other:?}"),
        }
    }

    /// Scratch reuse across diagnoses: the second run must not see stale
    /// visited/claim/frontier state from the first.
    #[test]
    fn scratch_reuse_across_runs_is_clean() {
        let base = Hypercube::new(9);
        let g = Cached::new(&base);
        let n = g.node_count();
        let pool = Pool::new(4);
        let mut ws = Workspace::new(n);
        let mut gs = GrowScratch::new();
        gs.ensure(n);
        for (seed, faults) in [(0usize, vec![7usize, 300]), (1, vec![]), (0, vec![100])] {
            let s = OracleSyndrome::new(
                FaultSet::new(n, &faults),
                TesterBehavior::Random { seed: 3 },
            );
            let mut sws = Workspace::new(n);
            let seq = grow_and_sweep(&g, &s, seed, 0, 1, 9, 0, &mut sws).unwrap();
            let (par, _) = grow_and_sweep_parallel(
                &g,
                &s,
                seed,
                0,
                1,
                9,
                0,
                &pool,
                &mut ws,
                &mut gs,
                &Tracer::disabled(),
            )
            .unwrap();
            assert_eq!(par.faults, seq.faults);
            assert_eq!(par.tree.edges(), seq.tree.edges());
        }
    }
}
