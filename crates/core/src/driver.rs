//! The general fault-diagnosis driver (Theorem 1 + §5).
//!
//! Given a decomposable network (more parts than the fault bound, each part
//! connected and bigger than the bound), some part contains no fault.
//! Probing each part's representative with the restricted `Set_Builder`
//! finds a part whose tree certifies `all_healthy`; one unrestricted
//! `Set_Builder` from that seed then grows a healthy set `U_r`, and by
//! Theorem 1 the neighbour set `N(U_r)` is exactly the fault set.
//!
//! The paper's `Faults_in_Hypercubes` probes representatives until the
//! first certificate; we probe *all* parts in order if needed, which keeps
//! the total work `O(Δ·N)` (each probe is `O(Δ·|part|)` over disjoint
//! parts) and makes the driver robust to borderline part sizes.
//!
//! Since the session redesign (ISSUE 5) the canonical implementation lives
//! in [`crate::session`]; [`diagnose`] and [`diagnose_unchecked`] are thin
//! wrappers that run the sequential session and return its [`Diagnosis`]
//! (bit-identical to the historical free functions — the session *is* the
//! same scan, instrumented).

use crate::session::{run_sequential, SessionOptions};
use crate::tree::SpanningTree;
use mmdiag_syndrome::SyndromeSource;
use mmdiag_topology::{NodeId, Partitionable};

/// A successful diagnosis.
#[derive(Clone, Debug)]
pub struct Diagnosis {
    /// The diagnosed fault set, ascending.
    pub faults: Vec<NodeId>,
    /// Which part's representative produced the all-healthy certificate.
    pub certified_part: usize,
    /// How many restricted probes ran before the certificate.
    pub probes: usize,
    /// `|U_r|` of the final unrestricted run.
    pub healthy_count: usize,
    /// The spanning tree of the healthy set (§6's by-product).
    pub tree: SpanningTree,
    /// Total syndrome entries consulted (probes + final run + sweep reads
    /// nothing extra — the sweep uses adjacency only).
    pub lookups_used: u64,
}

/// Why diagnosis could not complete.
///
/// Marked `#[non_exhaustive]`: the session API grows failure modes (e.g.
/// a session configured for a run mode a call cannot serve) without
/// breaking downstream matches.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DiagnosisError {
    /// The decomposition does not satisfy §5's size requirements.
    Preconditions(String),
    /// No part produced an all-healthy certificate. Under the model
    /// assumptions (`|F| ≤` bound, valid decomposition) this cannot
    /// happen; seeing it means the syndrome violates the assumptions.
    NoPartCertified,
    /// The certified healthy set's neighbourhood is larger than the fault
    /// bound — the syndrome is inconsistent with `|F| ≤` bound.
    TooManyFaults {
        /// Number of all-faulty neighbours found.
        found: usize,
        /// The fault bound the driver ran with.
        bound: usize,
    },
    /// The session is not configured for what this call asked of it (e.g.
    /// `Diagnoser::run` on a simulation-mode session, whose opaque
    /// syndrome source cannot be replayed as timestamped messages).
    Unsupported(String),
}

impl std::fmt::Display for DiagnosisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiagnosisError::Preconditions(msg) => write!(f, "decomposition unusable: {msg}"),
            DiagnosisError::NoPartCertified => {
                write!(
                    f,
                    "no part certified all-healthy; syndrome violates the model"
                )
            }
            DiagnosisError::TooManyFaults { found, bound } => write!(
                f,
                "{found} all-faulty neighbours exceed the fault bound {bound}"
            ),
            DiagnosisError::Unsupported(msg) => write!(f, "unsupported session call: {msg}"),
        }
    }
}

impl std::error::Error for DiagnosisError {}

/// Diagnose with the family's canonical decomposition and fault bound,
/// checking §5's preconditions first. A thin wrapper over the sequential
/// session run ([`crate::session::run_sequential`]).
pub fn diagnose<T, S>(g: &T, s: &S) -> Result<Diagnosis, DiagnosisError>
where
    T: Partitionable + ?Sized,
    S: SyndromeSource + ?Sized,
{
    run_sequential(g, s, &SessionOptions::default()).map(|r| r.diagnosis)
}

/// Diagnose with an explicit fault bound and no precondition check — used
/// by the ablation benches and by callers who know their instance is
/// borderline but workable. A thin wrapper over the sequential session
/// run with [`SessionOptions::check_preconditions`] off.
pub fn diagnose_unchecked<T, S>(
    g: &T,
    s: &S,
    fault_bound: usize,
) -> Result<Diagnosis, DiagnosisError>
where
    T: Partitionable + ?Sized,
    S: SyndromeSource + ?Sized,
{
    let opts = SessionOptions {
        fault_bound: Some(fault_bound),
        check_preconditions: false,
        ..SessionOptions::default()
    };
    run_sequential(g, s, &opts).map(|r| r.diagnosis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdiag_syndrome::{behavior_sweep, FaultSet, OracleSyndrome, TesterBehavior};
    use mmdiag_topology::families::{Hypercube, KAryNCube, Pancake, StarGraph};
    use rand::SeedableRng;

    fn check_recovers<T: Partitionable>(g: &T, faults: &[usize], seed: u64) {
        let n = g.node_count();
        let fs = FaultSet::new(n, faults);
        for b in behavior_sweep(seed) {
            let s = OracleSyndrome::new(fs.clone(), b);
            let d = diagnose(g, &s).unwrap_or_else(|e| panic!("{}: {e} ({b:?})", g.name()));
            assert_eq!(d.faults, fs.members(), "{} {b:?}", g.name());
            assert_eq!(d.healthy_count, n - fs.len(), "{} {b:?}", g.name());
            d.tree.validate().unwrap();
        }
    }

    #[test]
    fn hypercube_q7_full_fault_bound() {
        let g = Hypercube::new(7);
        check_recovers(&g, &[0, 1, 3, 64, 100, 127, 77], 1);
    }

    #[test]
    fn hypercube_q7_no_faults() {
        let g = Hypercube::new(7);
        check_recovers(&g, &[], 2);
    }

    #[test]
    fn hypercube_q7_random_fault_sets() {
        let g = Hypercube::new(7);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        for trial in 0..10 {
            let f = FaultSet::random(128, trial % 8, &mut rng);
            check_recovers(&g, f.members(), trial as u64);
        }
    }

    #[test]
    fn kary_cube_recovers() {
        let g = KAryNCube::new(3, 6); // 729 nodes, δ = 12
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let f = FaultSet::random(729, 12, &mut rng);
        check_recovers(&g, f.members(), 3);
    }

    #[test]
    fn star_graph_recovers() {
        let g = StarGraph::new(6); // 720 nodes, δ = 5
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
        let f = FaultSet::random(720, 5, &mut rng);
        check_recovers(&g, f.members(), 4);
    }

    #[test]
    fn pancake_recovers() {
        let g = Pancake::new(6);
        let f = [0usize, 100, 200, 300, 719];
        check_recovers(&g, &f, 8);
    }

    #[test]
    fn faults_clustered_around_one_part() {
        // All faults inside a single part: the other parts certify easily.
        let g = Hypercube::new(7); // parts of size 8
        check_recovers(&g, &[0, 1, 2, 3, 4, 5, 6], 11);
    }

    #[test]
    fn representative_nodes_faulty() {
        // Faults planted exactly on the first representatives: the driver
        // must skip contaminated parts and still certify a later one.
        let g = Hypercube::new(7);
        let reps: Vec<usize> = (0..7).map(|p| g.representative(p)).collect();
        check_recovers(&g, &reps, 12);
    }

    #[test]
    fn preconditions_enforced() {
        use mmdiag_topology::families::NKStar;
        let g = NKStar::new(5, 2); // parts have exactly δ nodes
        let s = OracleSyndrome::new(FaultSet::empty(20), TesterBehavior::AllZero);
        match diagnose(&g, &s) {
            Err(DiagnosisError::Preconditions(_)) => {}
            other => panic!("expected precondition failure, got {other:?}"),
        }
    }

    #[test]
    fn too_many_faults_reported_or_wrong() {
        // Plant more faults than the bound. The driver may legitimately
        // fail (no certificate / too many faults) — what it must NOT do is
        // return silently wrong output claiming the model held; if it does
        // return, the syndrome was consistent with some ≤ δ set. With
        // AllOne testers and 30 faults in Q_7 every probe must fail.
        let g = Hypercube::new(7);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(123);
        let f = FaultSet::random(128, 30, &mut rng);
        let s = OracleSyndrome::new(f, TesterBehavior::AllOne);
        match diagnose(&g, &s) {
            Err(_) => {}
            Ok(d) => {
                // If it succeeded, the certificate logic found a genuinely
                // healthy region; its claimed faults must then exceed no
                // bound — contradiction, so reaching here is a bug.
                panic!("diagnosis succeeded with 30 > δ faults: {:?}", d.faults);
            }
        }
    }

    #[test]
    fn lookup_count_far_below_full_table() {
        let g = Hypercube::new(8);
        let fs = FaultSet::new(256, &[17, 200]);
        let s = OracleSyndrome::new(fs, TesterBehavior::Random { seed: 9 });
        let d = diagnose(&g, &s).unwrap();
        // Full table: 256 · C(8,2) = 7168 entries. The driver reads at
        // most the §6 bound per run; total across probes stays well below
        // the table size.
        assert!(
            d.lookups_used < 7168,
            "driver consulted {} entries, full table has 7168",
            d.lookups_used
        );
    }

    #[test]
    fn diagnosis_metadata_sensible() {
        let g = Hypercube::new(7);
        let fs = FaultSet::new(128, &[9]);
        let s = OracleSyndrome::new(fs, TesterBehavior::AllZero);
        let d = diagnose(&g, &s).unwrap();
        assert_eq!(d.faults, vec![9]);
        assert!(d.probes >= 1);
        assert!(d.certified_part < g.part_count());
        assert_eq!(d.healthy_count, 127);
        assert_eq!(d.tree.node_count(), 127);
    }
}
