//! The session layer: one canonical, phase-instrumented implementation of
//! the Theorem-1 driver that every public entry point is a thin wrapper
//! over.
//!
//! Four PRs of growth left the crate with a family of free functions
//! (`diagnose`, `diagnose_unchecked`, `diagnose_with`, `diagnose_auto`,
//! `diagnose_parallel`, `diagnose_batch`), each re-plumbing the same
//! probe → certify → grow pipeline with its own workspace and backend
//! handling. This module is the single implementation underneath all of
//! them — and the substrate of the umbrella crate's `mmdiag::Diagnoser`
//! front door:
//!
//! * [`BackendPolicy`] — how the probe search executes (sequential, a
//!   given pool at full or explicit lane width, or size-directed auto
//!   with an explicit or live cutover), resolving to a concrete backend
//!   per instance;
//! * [`run_with`] / [`run_batch`] — the policy-dispatched session runs;
//! * [`DiagnosisReport`] — the [`Diagnosis`] plus what the free functions
//!   historically threw away: the §4.1 [`Certificate`] (the restricted
//!   probe tree that proved the seed part all-healthy), per-phase
//!   [`PhaseTelemetry`] (probe/certify/grow wall times and lookup
//!   counts), the resolved backend label, and a [`VerificationVerdict`]
//!   slot the umbrella session fills from its verification policy.
//!
//! **Determinism contract** (inherited by every wrapper): the certified
//! part is always the lowest certifying index, so faults, certificate,
//! healthy set and spanning tree are bit-identical across backends; only
//! the accounting (`probes`, `lookups_used`, telemetry) is
//! scheduling-dependent under pooled execution. The phase instrumentation
//! is a handful of monotonic-clock reads per diagnosis (through the
//! `mmdiag_trace::clock` door) — it consults no extra syndrome entries,
//! so lookup accounting is unchanged from the pre-session
//! implementations. When [`SessionOptions::tracer`] is enabled, each
//! phase additionally records one span into the trace sink whose
//! duration and lookup attribute are *the same values* stored in
//! [`PhaseTelemetry`] — `mmdiag_trace::TraceSummary` built from the
//! drained trace agrees with the report exactly.

use crate::driver::{Diagnosis, DiagnosisError};
use crate::set_builder::{set_builder_in_part, GrowthCore, SetBuilderOutcome, Workspace};
use crate::tree::SpanningTree;
use mmdiag_exec::sync::Mutex;
use mmdiag_exec::Pool;
use mmdiag_syndrome::SyndromeSource;
use mmdiag_topology::{NodeId, Partitionable, Topology};
use mmdiag_trace::{checked_delta, Tracer, CAT_PHASE, PHASE_CERTIFY, PHASE_GROW, PHASE_PROBE};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The §4.1 all-healthy certificate: the restricted probe tree grown at
/// the certified part's representative, whose distinct internal
/// contributors exceed the fault bound. The free-function API always
/// discarded this artifact (only `Diagnosis::certified_part` survived);
/// the session keeps it, because verification policies re-derive exactly
/// this tree and the scenario layer wants to inspect it.
#[derive(Clone, Debug)]
pub struct Certificate {
    /// The certified part (equals `Diagnosis::certified_part`).
    pub part: usize,
    /// The part's representative — the probe seed and tree root.
    pub representative: NodeId,
    /// Distinct internal contributors of the probe tree (> fault bound).
    pub contributors: usize,
    /// Levels the restricted growth built.
    pub rounds: usize,
    /// The restricted probe tree itself.
    pub tree: SpanningTree,
}

impl Certificate {
    /// Takes the probe outcome by value so the restricted tree is moved,
    /// not cloned — certificate assembly costs no per-node work.
    fn from_probe(part: usize, representative: NodeId, probe: SetBuilderOutcome) -> Self {
        Certificate {
            part,
            representative,
            contributors: probe.contributors,
            rounds: probe.rounds,
            tree: probe.tree,
        }
    }
}

/// Wall time and lookup accounting per driver phase. Timings are
/// monotonic-clock nanoseconds around the phase; lookups are deltas of
/// the source's counter, so under pooled execution they attribute shared
/// atomic increments to the phase in which they landed (the same caveat
/// as `Diagnosis::lookups_used`).
#[derive(Clone, Debug, Default)]
pub struct PhaseTelemetry {
    /// Restricted probe search (all parts probed until the certificate).
    pub probe_nanos: u128,
    /// Certificate selection + artifact assembly (cloning the winning
    /// restricted tree out of the probe outcome).
    pub certify_nanos: u128,
    /// Unrestricted growth from the certified seed + the `N(U_r)` sweep.
    pub grow_nanos: u128,
    /// Syndrome entries consulted by the probe phase.
    pub probe_lookups: u64,
    /// Syndrome entries consulted by the growth phase (the sweep reads
    /// adjacency only).
    pub grow_lookups: u64,
    /// Per-frontier-round breakdown of the growth phase, recorded by the
    /// frontier-parallel sweep (empty when the sequential tail ran).
    /// Round lookups partition [`PhaseTelemetry::grow_lookups`] exactly;
    /// round times nest inside [`PhaseTelemetry::grow_nanos`].
    pub grow_rounds: Vec<GrowRound>,
}

/// One frontier round of the growth phase, as recorded by the
/// frontier-parallel sweep (each round is also a `grow.round` trace
/// span nested inside the `grow` phase span).
#[derive(Clone, Copy, Debug, Default)]
pub struct GrowRound {
    /// Nodes scanned as this round's frontier.
    pub frontier: usize,
    /// Nodes accepted into the new layer.
    pub accepted: usize,
    /// Syndrome entries consulted during the round.
    pub lookups: u64,
    /// Wall time of the round in nanoseconds.
    pub nanos: u128,
    /// Whether the round ran on the pool (`false` for the sequential
    /// prefix layers before the in-growth certificate fires).
    pub parallel: bool,
}

impl PhaseTelemetry {
    /// Sum of the phase wall times — the session's own account of how
    /// long the diagnosis took, excluding precondition checks and
    /// verification.
    pub fn total_nanos(&self) -> u128 {
        self.probe_nanos + self.certify_nanos + self.grow_nanos
    }
}

/// What a verification policy concluded about a finished diagnosis.
///
/// The data shape lives here in `mmdiag-core` so [`DiagnosisReport`] can
/// carry it, but core never *runs* a verification — the umbrella crate's
/// `Diagnoser` fills this from `mmdiag-baselines` (the sampled
/// spot-checker or the full-table baseline) per its configured policy.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum VerificationVerdict {
    /// No verification was requested (`VerificationPolicy::None`).
    Unverified,
    /// The seeded sampled spot-check ran: certificate re-derived from the
    /// live syndrome, per-part samples re-checked against the claimed
    /// labelling (one-sided error — see `mmdiag_baselines::sampled_check`).
    Sampled {
        /// Nodes sampled across all parts.
        samples: usize,
        /// Syndrome entries the label re-checks consulted.
        checked_tests: u64,
        /// Sampled nodes whose neighbourhood contradicted the diagnosis.
        disagreements: usize,
        /// Did the re-derived probe tree certify at the claimed part?
        certificate_ok: bool,
        /// Certificate ok, no disagreements, fault bound respected.
        agree: bool,
        /// Wall time of the check.
        nanos: u128,
    },
    /// The full-table baseline re-diagnosed the instance independently.
    FullBaseline {
        /// Syndrome entries the baseline consulted (the whole table).
        lookups: u64,
        /// Baseline fault set equals the session's.
        agree: bool,
        /// Wall time of the baseline run.
        nanos: u128,
    },
    /// The verification itself could not run (e.g. the baseline erred on
    /// a borderline instance) — distinct from a refutation, so callers
    /// can tell "could not check" from "checked and disagreed".
    Failed {
        /// Which policy failed (`"sampled"` / `"full_baseline"`).
        method: &'static str,
        /// The underlying error, rendered.
        error: String,
    },
}

impl VerificationVerdict {
    /// `false` when a verification ran and disagreed, or could not run.
    pub fn agreed_or_unverified(&self) -> bool {
        match self {
            VerificationVerdict::Unverified => true,
            VerificationVerdict::Sampled { agree, .. } => *agree,
            VerificationVerdict::FullBaseline { agree, .. } => *agree,
            VerificationVerdict::Failed { .. } => false,
        }
    }
}

/// Everything one session run produced: the classic [`Diagnosis`], the
/// certificate the free functions used to discard, per-phase telemetry,
/// the resolved backend, and the verification verdict (filled by the
/// umbrella `Diagnoser`; [`VerificationVerdict::Unverified`] at this
/// layer).
#[derive(Clone, Debug)]
pub struct DiagnosisReport {
    /// The diagnosis — identical to what the legacy entry points return.
    pub diagnosis: Diagnosis,
    /// The §4.1 certificate at the certified part.
    pub certificate: Certificate,
    /// Per-phase wall times and lookup counts.
    pub telemetry: PhaseTelemetry,
    /// `"sequential"` or `"pooled"` — the backend the policy resolved to.
    pub backend: &'static str,
    /// The verification policy's conclusion.
    pub verification: VerificationVerdict,
}

/// How a session run should execute — the policy form of
/// [`crate::ExecutionBackend`], extended with the strided lane width the
/// legacy `diagnose_parallel` exposes and the auto rule as a first-class
/// variant.
#[derive(Clone, Copy)]
pub enum BackendPolicy<'p> {
    /// In-order scan on the calling thread.
    Sequential,
    /// Probe search on the given pool at full width.
    Pooled(&'p Pool),
    /// Probe search on the given pool with an explicit lane width (the
    /// legacy `diagnose_parallel` `threads` argument).
    PooledWidth(&'p Pool, usize),
    /// Sequential below the live [`crate::sequential_cutover`], else the
    /// process-wide global pool.
    Auto,
    /// [`BackendPolicy::Auto`] with an explicit cutover instead of the
    /// live one.
    AutoWithCutover(usize),
}

/// A [`BackendPolicy`] resolved against a concrete instance size.
enum ResolvedBackend<'p> {
    Sequential,
    Pooled { pool: &'p Pool, width: usize },
}

impl<'p> BackendPolicy<'p> {
    fn resolve(&self, nodes: usize) -> ResolvedBackend<'p> {
        match *self {
            BackendPolicy::Sequential => ResolvedBackend::Sequential,
            BackendPolicy::Pooled(pool) => ResolvedBackend::Pooled {
                pool,
                width: pool.threads(),
            },
            BackendPolicy::PooledWidth(pool, width) => ResolvedBackend::Pooled { pool, width },
            // Both auto variants delegate to the one implementation of the
            // cutover rule (`ExecutionBackend::auto_with_cutover`), so the
            // policy and legacy entry points cannot diverge.
            BackendPolicy::Auto => {
                Self::from_execution(crate::ExecutionBackend::auto(nodes)).resolve(nodes)
            }
            BackendPolicy::AutoWithCutover(cutover) => {
                Self::from_execution(crate::ExecutionBackend::auto_with_cutover(nodes, cutover))
                    .resolve(nodes)
            }
        }
    }

    fn from_execution(backend: crate::ExecutionBackend<'p>) -> BackendPolicy<'p> {
        match backend {
            crate::ExecutionBackend::Sequential => BackendPolicy::Sequential,
            crate::ExecutionBackend::Pooled(pool) => BackendPolicy::Pooled(pool),
        }
    }

    /// The backend label (`"sequential"` / `"pooled"`) this policy
    /// resolves to for an instance of `nodes` nodes.
    pub fn label_for(&self, nodes: usize) -> &'static str {
        match self.resolve(nodes) {
            ResolvedBackend::Sequential => "sequential",
            ResolvedBackend::Pooled { .. } => "pooled",
        }
    }
}

impl<'p> From<&crate::ExecutionBackend<'p>> for BackendPolicy<'p> {
    fn from(b: &crate::ExecutionBackend<'p>) -> Self {
        match b {
            crate::ExecutionBackend::Sequential => BackendPolicy::Sequential,
            crate::ExecutionBackend::Pooled(pool) => BackendPolicy::Pooled(pool),
        }
    }
}

/// Non-backend session knobs.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct SessionOptions {
    /// Explicit fault bound; `None` means the family's
    /// [`Partitionable::driver_fault_bound`].
    pub fault_bound: Option<usize>,
    /// Run §5's decomposition precondition check first (the legacy
    /// `*_unchecked` entry points disable this).
    pub check_preconditions: bool,
    /// Where phase spans are recorded. The default is the disabled
    /// tracer (a cloneable `None` handle — recording costs one `Option`
    /// check and stores nothing); the umbrella `Diagnoser` installs an
    /// enabled one via `.trace(...)` or the `MMDIAG_TRACE` knob.
    pub tracer: Tracer,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            fault_bound: None,
            check_preconditions: true,
            tracer: Tracer::disabled(),
        }
    }
}

/// After a certificate at `u0`: unrestricted growth + neighbourhood
/// sweep. Shared by the sequential scan and every pooled strategy — this
/// is the session's (and historically the driver's) `finish` step.
#[allow(clippy::too_many_arguments)]
pub(crate) fn grow_and_sweep<T, S>(
    g: &T,
    s: &S,
    u0: NodeId,
    part: usize,
    probes: usize,
    fault_bound: usize,
    start_lookups: u64,
    ws: &mut Workspace,
) -> Result<Diagnosis, DiagnosisError>
where
    T: Topology + ?Sized,
    S: SyndromeSource + ?Sized,
{
    // Grow with a reject sink: every disagreeing lookup on a then-unvisited
    // candidate is recorded, and a node of N(U_r) \ U_r is exactly a
    // never-visited rejectee (each member is scanned as frontier exactly
    // once, so every boundary edge gets consulted). This replaces the
    // historical O(N) full-graph sweep — two `vec![false; n]` per diagnosis
    // — with an O(|F|·Δ) sort, without touching the growth's lookups.
    let accept = |_: NodeId| true;
    let mut rejects: Vec<NodeId> = Vec::new();
    let mut sink = |v: NodeId| rejects.push(v);
    let mut core = GrowthCore::start(g, s, u0, fault_bound, &accept, ws, &mut sink);
    while core.advance_layer(g, s, &accept, ws, &mut sink) {}
    let full: SetBuilderOutcome = core.finish(s);
    let mut faults = rejects;
    faults.retain(|&v| !ws.seen(v));
    faults.sort_unstable();
    faults.dedup();
    if faults.len() > fault_bound {
        return Err(DiagnosisError::TooManyFaults {
            found: faults.len(),
            bound: fault_bound,
        });
    }
    Ok(Diagnosis {
        faults,
        certified_part: part,
        probes,
        healthy_count: full.members.len(),
        tree: full.tree,
        lookups_used: checked_delta(s.lookups(), start_lookups),
    })
}

/// One part's restricted probe, exposed as a first-class outcome so the
/// epoch monitor (`mmdiag-monitor`) can re-probe exactly the parts whose
/// syndromes moved and reuse the rest across epochs. The restricted probe
/// at part `p` consults only tests `s_u(v, w)` with `u`, `v`, `w` all
/// inside `p` (`set_builder_in_part` filters candidates and witnesses by
/// part membership), so a cached `PartProbe` stays valid until a node
/// *of that part* changes fault status.
#[derive(Clone, Debug)]
pub struct PartProbe {
    /// The probed part.
    pub part: usize,
    /// The part's representative — the probe seed.
    pub representative: NodeId,
    /// Did the restricted tree certify the part all-healthy?
    pub all_healthy: bool,
    /// Syndrome entries this probe consulted.
    pub lookups: u64,
    /// The §4.1 certificate, present exactly when `all_healthy`.
    pub certificate: Option<Certificate>,
}

/// Probe a single part: the restricted `Set_Builder` growth at the part's
/// representative, packaged with its certificate when it certifies. This
/// is one iteration of the sequential probe scan
/// (`run_sequential_in_ws`), split out so callers that keep per-part
/// state across calls (the incremental monitor) can drive the scan
/// themselves.
pub fn probe_part<T, S>(
    g: &T,
    s: &S,
    part: usize,
    fault_bound: usize,
    ws: &mut Workspace,
) -> PartProbe
where
    T: Partitionable + ?Sized,
    S: SyndromeSource + ?Sized,
{
    let u0 = g.representative(part);
    let start = s.lookups();
    let probe = set_builder_in_part(g, s, u0, fault_bound, ws);
    let lookups = checked_delta(s.lookups(), start);
    let all_healthy = probe.all_healthy;
    PartProbe {
        part,
        representative: u0,
        all_healthy,
        lookups,
        certificate: all_healthy.then(|| Certificate::from_probe(part, u0, probe)),
    }
}

/// Unrestricted growth + sweep from an existing certificate — the
/// post-probe half of the Theorem-1 driver as a first-class step. The
/// growth from a given certified seed is deterministic, so re-running it
/// against a moved syndrome yields exactly the labelling a from-scratch
/// `diagnose` would produce once the probe scan lands on the same part.
/// `probes` and `start_lookups` seed the diagnosis' accounting fields
/// (the monitor passes the epoch's walk so `lookups_used` reports the
/// epoch's true cost).
pub fn grow_from_certificate<T, S>(
    g: &T,
    s: &S,
    certificate: &Certificate,
    probes: usize,
    fault_bound: usize,
    start_lookups: u64,
    ws: &mut Workspace,
) -> Result<Diagnosis, DiagnosisError>
where
    T: Topology + ?Sized,
    S: SyndromeSource + ?Sized,
{
    grow_and_sweep(
        g,
        s,
        certificate.representative,
        certificate.part,
        probes,
        fault_bound,
        start_lookups,
        ws,
    )
}

/// The sequential session run in a caller-provided workspace — the
/// canonical in-order scan every sequential entry point
/// (`diagnose`, `diagnose_unchecked`, the sequential arms of
/// `diagnose_with`/`diagnose_auto`/`diagnose_batch`) wraps. Requires no
/// `Sync` bounds, exactly like the historical driver.
pub(crate) fn run_sequential_in_ws<T, S>(
    g: &T,
    s: &S,
    fault_bound: usize,
    tracer: &Tracer,
    ws: &mut Workspace,
) -> Result<DiagnosisReport, DiagnosisError>
where
    T: Partitionable + ?Sized,
    S: SyndromeSource + ?Sized,
{
    let start_lookups = s.lookups();
    let probe_span = tracer.span(CAT_PHASE, PHASE_PROBE);
    let mut winner: Option<(usize, NodeId, SetBuilderOutcome)> = None;
    let mut probes = 0usize;
    for part in 0..g.part_count() {
        let u0 = g.representative(part);
        probes += 1;
        let probe = set_builder_in_part(g, s, u0, fault_bound, ws);
        if probe.all_healthy {
            winner = Some((part, u0, probe));
            break;
        }
    }
    let probe_lookups = checked_delta(s.lookups(), start_lookups);
    // The span's return *is* the telemetry value, so the trace and the
    // report can never disagree on a phase duration.
    let probe_nanos = u128::from(probe_span.finish_with_value(probe_lookups));
    let (part, u0, probe) = winner.ok_or(DiagnosisError::NoPartCertified)?;

    let certify_span = tracer.span(CAT_PHASE, PHASE_CERTIFY);
    let certificate = Certificate::from_probe(part, u0, probe);
    let certify_nanos = u128::from(certify_span.finish());

    let grow_span = tracer.span(CAT_PHASE, PHASE_GROW);
    let diagnosis = grow_and_sweep(g, s, u0, part, probes, fault_bound, start_lookups, ws)?;
    let grow_lookups = checked_delta(checked_delta(s.lookups(), start_lookups), probe_lookups);
    let grow_nanos = u128::from(grow_span.finish_with_value(grow_lookups));

    Ok(DiagnosisReport {
        diagnosis,
        certificate,
        telemetry: PhaseTelemetry {
            probe_nanos,
            certify_nanos,
            grow_nanos,
            probe_lookups,
            grow_lookups,
            grow_rounds: Vec::new(),
        },
        backend: "sequential",
        verification: VerificationVerdict::Unverified,
    })
}

/// The sequential session run with a transient workspace.
pub fn run_sequential<T, S>(
    g: &T,
    s: &S,
    opts: &SessionOptions,
) -> Result<DiagnosisReport, DiagnosisError>
where
    T: Partitionable + ?Sized,
    S: SyndromeSource + ?Sized,
{
    if opts.check_preconditions {
        g.check_partition_preconditions()
            .map_err(DiagnosisError::Preconditions)?;
    }
    let bound = opts.fault_bound.unwrap_or_else(|| g.driver_fault_bound());
    let mut ws = Workspace::new(g.node_count());
    run_sequential_in_ws(g, s, bound, &opts.tracer, &mut ws)
}

/// The pooled session run: the probe search dispatched on `pool` as a
/// deterministic lowest-index-wins reduction over `width` strided lanes,
/// workspaces pooled per worker (the caller may pass a longer-lived
/// [`crate::WorkspacePool`] so batches reuse scratch across calls). The
/// winning restricted probe's outcome is captured en route, so the
/// certificate costs no extra syndrome lookups.
pub(crate) fn run_pooled<T, S>(
    g: &T,
    s: &S,
    pool: &Pool,
    width: usize,
    fault_bound: usize,
    tracer: &Tracer,
    ws_pool: Option<&crate::WorkspacePool>,
) -> Result<DiagnosisReport, DiagnosisError>
where
    T: Partitionable + Sync + ?Sized,
    S: SyndromeSource + Sync + ?Sized,
{
    let parts = g.part_count();
    if parts == 0 {
        return Err(DiagnosisError::Preconditions(format!(
            "{}: decomposition has no parts, nothing to probe",
            g.name()
        )));
    }
    let width = width.clamp(1, parts);
    let start_lookups = s.lookups();
    let probes = AtomicUsize::new(0);
    let owned_ws;
    let ws_pool = match ws_pool {
        Some(p) => p,
        None => {
            owned_ws = crate::WorkspacePool::new(g.node_count(), pool.threads());
            &owned_ws
        }
    };

    // The lowest certifying part's probe outcome, captured as the lanes
    // run so the certificate needs no re-probe (which would perturb the
    // lookup accounting).
    let best: Mutex<Option<(usize, Certificate)>> = Mutex::new(None);

    let probe_span = tracer.span(CAT_PHASE, PHASE_PROBE);
    let part = pool
        .min_index_where(parts, width, |p| {
            probes.fetch_add(1, Ordering::Relaxed);
            ws_pool.with(pool.worker_index(), |ws| {
                let probe = set_builder_in_part(g, s, g.representative(p), fault_bound, ws);
                if probe.all_healthy {
                    let mut slot = best.lock().unwrap();
                    if slot.as_ref().is_none_or(|(held, _)| p < *held) {
                        *slot = Some((p, Certificate::from_probe(p, g.representative(p), probe)));
                    }
                    true
                } else {
                    false
                }
            })
        })
        .ok_or(DiagnosisError::NoPartCertified)?;
    let probe_lookups = checked_delta(s.lookups(), start_lookups);
    let probe_nanos = u128::from(probe_span.finish_with_value(probe_lookups));

    let certify_span = tracer.span(CAT_PHASE, PHASE_CERTIFY);
    let (held_part, certificate) = best
        .into_inner()
        .unwrap()
        .expect("the reduction returned a certified part, so one was captured");
    debug_assert_eq!(held_part, part, "captured certificate is the winner's");
    let certify_nanos = u128::from(certify_span.finish());

    // Growth tail: frontier-parallel on sorted-adjacency instances past
    // the calibrated grow cutover, else the sequential sweep on whatever
    // workspace slot belongs to this (usually non-worker) thread. The two
    // paths are bit-identical — faults, tree, even the lookup count — so
    // the gate is purely a constant-factor decision.
    let grow_span = tracer.span(CAT_PHASE, PHASE_GROW);
    let frontier_parallel =
        g.has_sorted_adjacency() && g.node_count() >= crate::backend::grow_cutover();
    let (diagnosis, grow_rounds) = if frontier_parallel {
        ws_pool.with(pool.worker_index(), |ws| {
            ws_pool.with_grow(pool.worker_index(), |gs| {
                crate::grow::grow_and_sweep_parallel(
                    g,
                    s,
                    g.representative(part),
                    part,
                    probes.load(Ordering::Relaxed),
                    fault_bound,
                    start_lookups,
                    pool,
                    ws,
                    gs,
                    tracer,
                )
            })
        })?
    } else {
        let diagnosis = ws_pool.with(pool.worker_index(), |ws| {
            grow_and_sweep(
                g,
                s,
                g.representative(part),
                part,
                probes.load(Ordering::Relaxed),
                fault_bound,
                start_lookups,
                ws,
            )
        })?;
        (diagnosis, Vec::new())
    };
    let grow_lookups = checked_delta(checked_delta(s.lookups(), start_lookups), probe_lookups);
    let grow_nanos = u128::from(grow_span.finish_with_value(grow_lookups));

    Ok(DiagnosisReport {
        diagnosis,
        certificate,
        telemetry: PhaseTelemetry {
            probe_nanos,
            certify_nanos,
            grow_nanos,
            probe_lookups,
            grow_lookups,
            grow_rounds,
        },
        backend: "pooled",
        verification: VerificationVerdict::Unverified,
    })
}

/// One policy-dispatched session run — the front door every wrapper and
/// the umbrella `Diagnoser` call. Preconditions (unless disabled), bound
/// resolution, backend resolution by instance size, then the canonical
/// probe → certify → grow pipeline with phase telemetry.
pub fn run_with<T, S>(
    g: &T,
    s: &S,
    policy: BackendPolicy<'_>,
    opts: &SessionOptions,
    ws_pool: Option<&crate::WorkspacePool>,
) -> Result<DiagnosisReport, DiagnosisError>
where
    T: Partitionable + Sync + ?Sized,
    S: SyndromeSource + Sync + ?Sized,
{
    if opts.check_preconditions {
        g.check_partition_preconditions()
            .map_err(DiagnosisError::Preconditions)?;
    }
    let bound = opts.fault_bound.unwrap_or_else(|| g.driver_fault_bound());
    match policy.resolve(g.node_count()) {
        ResolvedBackend::Sequential => match ws_pool {
            Some(wsp) => wsp.with(None, |ws| {
                run_sequential_in_ws(g, s, bound, &opts.tracer, ws)
            }),
            None => {
                let mut ws = Workspace::new(g.node_count());
                run_sequential_in_ws(g, s, bound, &opts.tracer, &mut ws)
            }
        },
        ResolvedBackend::Pooled { pool, width } => {
            run_pooled(g, s, pool, width, bound, &opts.tracer, ws_pool)
        }
    }
}

/// Evaluate many syndromes against one instance in a single session
/// submission — the canonical implementation under `diagnose_batch` and
/// the umbrella `Diagnoser::submit_batch`.
///
/// Sequential resolution: one reused workspace slot, syndromes in order.
/// Pooled resolution: syndromes fan out over the pool (each diagnosis
/// runs its in-order scan inside one task), workspaces pooled per worker.
/// Results come back **in input order** and are bit-identical across
/// backends, accounting included, because each per-syndrome scan is the
/// same sequential algorithm either way.
pub fn run_batch<T, S>(
    g: &T,
    syndromes: &[S],
    policy: BackendPolicy<'_>,
    opts: &SessionOptions,
    ws_pool: Option<&crate::WorkspacePool>,
) -> Vec<Result<DiagnosisReport, DiagnosisError>>
where
    T: Partitionable + Sync + ?Sized,
    S: SyndromeSource + Sync,
{
    if opts.check_preconditions {
        if let Err(e) = g.check_partition_preconditions() {
            return syndromes
                .iter()
                .map(|_| Err(DiagnosisError::Preconditions(e.clone())))
                .collect();
        }
    }
    let bound = opts.fault_bound.unwrap_or_else(|| g.driver_fault_bound());
    match policy.resolve(g.node_count()) {
        ResolvedBackend::Sequential => match ws_pool {
            Some(wsp) => syndromes
                .iter()
                .map(|s| {
                    wsp.with(None, |ws| {
                        run_sequential_in_ws(g, s, bound, &opts.tracer, ws)
                    })
                })
                .collect(),
            None => {
                let mut ws = Workspace::new(g.node_count());
                syndromes
                    .iter()
                    .map(|s| run_sequential_in_ws(g, s, bound, &opts.tracer, &mut ws))
                    .collect()
            }
        },
        ResolvedBackend::Pooled { pool, .. } => {
            let owned_ws;
            let wsp = match ws_pool {
                Some(p) => p,
                None => {
                    owned_ws = crate::WorkspacePool::new(g.node_count(), pool.threads());
                    &owned_ws
                }
            };
            pool.map(syndromes, |_, s| {
                wsp.with(pool.worker_index(), |ws| {
                    run_sequential_in_ws(g, s, bound, &opts.tracer, ws)
                })
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::diagnose;
    use mmdiag_syndrome::{FaultSet, OracleSyndrome, TesterBehavior};
    use mmdiag_topology::families::Hypercube;

    #[test]
    fn sequential_report_carries_certificate_and_telemetry() {
        let g = Hypercube::new(7);
        let s = OracleSyndrome::new(
            FaultSet::new(128, &[3, 64, 90]),
            TesterBehavior::Random { seed: 1 },
        );
        let legacy = diagnose(&g, &s).unwrap();
        s.reset_lookups();
        let report = run_sequential(&g, &s, &SessionOptions::default()).unwrap();
        // The diagnosis is bit-identical to the legacy entry point's.
        assert_eq!(report.diagnosis.faults, legacy.faults);
        assert_eq!(report.diagnosis.certified_part, legacy.certified_part);
        assert_eq!(report.diagnosis.probes, legacy.probes);
        assert_eq!(report.diagnosis.lookups_used, legacy.lookups_used);
        assert_eq!(report.diagnosis.tree.edges(), legacy.tree.edges());
        // The certificate is the restricted tree at the certified part.
        assert_eq!(report.certificate.part, legacy.certified_part);
        assert_eq!(
            report.certificate.representative,
            g.representative(legacy.certified_part)
        );
        assert!(report.certificate.contributors > g.driver_fault_bound());
        report.certificate.tree.validate().unwrap();
        assert_eq!(
            report.certificate.tree.root(),
            g.representative(legacy.certified_part)
        );
        // Telemetry: lookups split exactly, timings non-trivial.
        assert_eq!(
            report.telemetry.probe_lookups + report.telemetry.grow_lookups,
            legacy.lookups_used
        );
        assert!(report.telemetry.probe_nanos > 0);
        assert!(report.telemetry.grow_nanos > 0);
        assert!(report.telemetry.total_nanos() >= report.telemetry.probe_nanos);
        assert_eq!(report.backend, "sequential");
        assert!(report.verification.agreed_or_unverified());
    }

    #[test]
    fn pooled_report_matches_sequential_semantics_and_captures_certificate() {
        let g = Hypercube::new(7);
        let s = OracleSyndrome::new(FaultSet::new(128, &[5, 70, 101]), TesterBehavior::AllZero);
        let seq = run_sequential(&g, &s, &SessionOptions::default()).unwrap();
        let pool = Pool::new(4);
        s.reset_lookups();
        let par = run_pooled(
            &g,
            &s,
            &pool,
            4,
            g.driver_fault_bound(),
            &Tracer::disabled(),
            None,
        )
        .unwrap();
        assert_eq!(par.diagnosis.faults, seq.diagnosis.faults);
        assert_eq!(par.diagnosis.certified_part, seq.diagnosis.certified_part);
        assert_eq!(par.diagnosis.tree.edges(), seq.diagnosis.tree.edges());
        // The captured certificate equals the sequential one bit for bit:
        // the restricted probe at a given part is deterministic.
        assert_eq!(par.certificate.part, seq.certificate.part);
        assert_eq!(
            par.certificate.representative,
            seq.certificate.representative
        );
        assert_eq!(par.certificate.contributors, seq.certificate.contributors);
        assert_eq!(par.certificate.rounds, seq.certificate.rounds);
        assert_eq!(par.certificate.tree.edges(), seq.certificate.tree.edges());
        assert_eq!(par.backend, "pooled");
    }

    #[test]
    fn traced_sequential_run_agrees_with_telemetry_exactly() {
        use mmdiag_trace::{TraceConfig, TraceSummary};
        let g = Hypercube::new(7);
        let s = OracleSyndrome::new(
            FaultSet::new(128, &[3, 64, 90]),
            TesterBehavior::Random { seed: 7 },
        );
        let opts = SessionOptions {
            tracer: Tracer::new(TraceConfig::default()),
            ..SessionOptions::default()
        };
        let report = run_sequential(&g, &s, &opts).unwrap();
        let summary = TraceSummary::from_events(&opts.tracer.drain(), opts.tracer.dropped());
        // Nanosecond-exact: the span `finish` return *is* the telemetry.
        assert_eq!(summary.probe_nanos, report.telemetry.probe_nanos);
        assert_eq!(summary.certify_nanos, report.telemetry.certify_nanos);
        assert_eq!(summary.grow_nanos, report.telemetry.grow_nanos);
        assert_eq!(summary.probe_lookups, report.telemetry.probe_lookups);
        assert_eq!(summary.grow_lookups, report.telemetry.grow_lookups);
        assert_eq!(summary.span_count, 3, "exactly one span per phase");
        assert_eq!(summary.dropped, 0);
    }

    #[test]
    fn traced_pooled_run_agrees_with_telemetry_exactly() {
        use mmdiag_trace::{TraceConfig, TraceSummary};
        let g = Hypercube::new(7);
        let s = OracleSyndrome::new(FaultSet::new(128, &[5, 70, 101]), TesterBehavior::AllZero);
        let pool = Pool::new(4);
        let tracer = Tracer::new(TraceConfig::default());
        let report = run_pooled(&g, &s, &pool, 4, g.driver_fault_bound(), &tracer, None).unwrap();
        let summary = TraceSummary::from_events(&tracer.drain(), tracer.dropped());
        assert_eq!(summary.probe_nanos, report.telemetry.probe_nanos);
        assert_eq!(summary.certify_nanos, report.telemetry.certify_nanos);
        assert_eq!(summary.grow_nanos, report.telemetry.grow_nanos);
        assert_eq!(summary.probe_lookups, report.telemetry.probe_lookups);
        assert_eq!(summary.grow_lookups, report.telemetry.grow_lookups);
        assert_eq!(summary.span_count, 3);
    }

    #[test]
    fn pooled_frontier_growth_matches_sequential_and_traces_rounds() {
        use mmdiag_topology::Cached;
        use mmdiag_trace::{TraceConfig, TraceSummary, PHASE_GROW_ROUND};
        let _lock = crate::backend::grow_knob_lock()
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let prev = crate::backend::grow_cutover();
        crate::backend::set_grow_cutover(1);
        let base = Hypercube::new(7);
        let g = Cached::new(&base);
        assert!(g.has_sorted_adjacency());
        let s = OracleSyndrome::new(
            FaultSet::new(128, &[3, 64, 90]),
            TesterBehavior::Random { seed: 1 },
        );
        let seq = run_sequential(&g, &s, &SessionOptions::default()).unwrap();
        let pool = Pool::new(4);
        let tracer = Tracer::new(TraceConfig::default());
        s.reset_lookups();
        let par = run_pooled(&g, &s, &pool, 4, g.driver_fault_bound(), &tracer, None).unwrap();
        crate::backend::set_grow_cutover(prev);
        // Bit-identity with the sequential tail, growth accounting
        // included (growth from the same certified seed is deterministic;
        // only the probe accounting is scheduling-dependent).
        assert_eq!(par.diagnosis.faults, seq.diagnosis.faults);
        assert_eq!(par.diagnosis.certified_part, seq.diagnosis.certified_part);
        assert_eq!(par.diagnosis.tree.edges(), seq.diagnosis.tree.edges());
        assert_eq!(par.telemetry.grow_lookups, seq.telemetry.grow_lookups);
        // Per-round telemetry: rounds partition the grow lookups exactly,
        // at least one round ran on the pool, and frontier sizes are real.
        let rounds = &par.telemetry.grow_rounds;
        assert!(!rounds.is_empty());
        assert!(rounds.iter().any(|r| r.parallel));
        assert_eq!(
            rounds.iter().map(|r| r.lookups).sum::<u64>(),
            par.telemetry.grow_lookups
        );
        assert_eq!(rounds[0].frontier, 1, "round 0 is the level-1 seed scan");
        assert_eq!(
            rounds.iter().map(|r| r.accepted).sum::<usize>() + 1,
            par.diagnosis.healthy_count,
            "accepted nodes across rounds + the seed = |U_r|"
        );
        // The trace agrees with the report exactly: the grow phase span is
        // untouched by the nested grow.round spans, whose value attributes
        // sum to the same lookup total and whose time nests inside it.
        let summary = TraceSummary::from_events(&tracer.drain(), tracer.dropped());
        assert_eq!(summary.grow_nanos, par.telemetry.grow_nanos);
        assert_eq!(summary.grow_lookups, par.telemetry.grow_lookups);
        assert_eq!(
            summary.value_sum(PHASE_GROW_ROUND),
            par.telemetry.grow_lookups
        );
        assert!(summary.total_ns(PHASE_GROW_ROUND) <= summary.grow_nanos);
        assert_eq!(summary.span_count, 3 + rounds.len());
    }

    #[test]
    fn policy_resolution_labels() {
        let pool = Pool::new(2);
        assert_eq!(BackendPolicy::Sequential.label_for(1 << 20), "sequential");
        assert_eq!(BackendPolicy::Pooled(&pool).label_for(8), "pooled");
        assert_eq!(BackendPolicy::PooledWidth(&pool, 3).label_for(8), "pooled");
        assert_eq!(
            BackendPolicy::AutoWithCutover(100).label_for(99),
            "sequential"
        );
        assert_eq!(BackendPolicy::AutoWithCutover(100).label_for(100), "pooled");
    }

    #[test]
    fn batch_reports_are_in_order_and_bit_identical_across_policies() {
        let g = Hypercube::new(7);
        let syndromes: Vec<OracleSyndrome> = (0..5)
            .map(|i| {
                OracleSyndrome::new(
                    FaultSet::new(128, &[i, 50 + i]),
                    TesterBehavior::Random { seed: i as u64 },
                )
            })
            .collect();
        let pool = Pool::new(4);
        let opts = SessionOptions::default();
        let seq = run_batch(&g, &syndromes, BackendPolicy::Sequential, &opts, None);
        for s in &syndromes {
            s.reset_lookups();
        }
        let par = run_batch(&g, &syndromes, BackendPolicy::Pooled(&pool), &opts, None);
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.diagnosis.faults, b.diagnosis.faults);
            assert_eq!(a.diagnosis.probes, b.diagnosis.probes);
            assert_eq!(a.diagnosis.lookups_used, b.diagnosis.lookups_used);
            assert_eq!(a.certificate.tree.edges(), b.certificate.tree.edges());
            assert_eq!(
                a.telemetry.probe_lookups + a.telemetry.grow_lookups,
                a.diagnosis.lookups_used
            );
        }
    }

    #[test]
    fn unchecked_options_skip_preconditions() {
        use mmdiag_topology::families::NKStar;
        let g = NKStar::new(5, 2); // fails the §5 size preconditions
        let s = OracleSyndrome::new(FaultSet::empty(20), TesterBehavior::AllZero);
        assert!(matches!(
            run_sequential(&g, &s, &SessionOptions::default()),
            Err(DiagnosisError::Preconditions(_))
        ));
        // With the check off the scan itself runs. The parts are too
        // shallow to certify the nominal bound (that is *why* the
        // precondition fails), but a zero bound certifies from the first
        // internal node — exactly the borderline-instance use case
        // `diagnose_unchecked` exists for.
        let opts = SessionOptions {
            fault_bound: Some(0),
            check_preconditions: false,
            ..SessionOptions::default()
        };
        let report = run_sequential(&g, &s, &opts).unwrap();
        assert!(report.diagnosis.faults.is_empty());
    }
}
