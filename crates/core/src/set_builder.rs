//! `Set_Builder` — the core procedure of §4.1.
//!
//! Starting from a seed `u0`, grow sets `U_0 ⊆ U_1 ⊆ …` by following
//! `0`-valued comparison results:
//!
//! * `U_1 = {u0} ∪ {v : (u0,v) ∈ E, ∃w ≠ v with s_{u0}(v,w) = 0}`, with
//!   `t(v) = u0` for the new nodes;
//! * `U_i = U_{i−1} ∪ {v ∉ U_{i−1} : s_u(v, t(u)) = 0 for some
//!   u ∈ U_{i−1} \ U_{i−2}}`, with `t(v)` the least such `u`.
//!
//! The parents used at each level are the *contributors* `C_i`; no node
//! contributes to two levels. If `|C_1 ∪ … ∪ C_i|` ever exceeds the fault
//! bound `δ`, every node of the final set `U_r` is provably healthy
//! (`all_healthy`): a faulty internal node of the tree `T` would force all
//! internal nodes faulty, exceeding `δ`.
//!
//! Two access modes are provided: unrestricted ([`set_builder`]) and
//! restricted to one part of a decomposition ([`set_builder_in_part`],
//! the paper's `Set_Builder(u0, H)` — "only adds nodes of `H`", with the
//! adjacency relation restricted to `H`).
//!
//! ## Parent selection (deviation from the paper's tie-break)
//!
//! The paper sets `t(v)` to the *least* eligible parent. That choice
//! concentrates children on few parents and can leave a fault-free part
//! with `≤ δ` contributors, so the certificate never fires (e.g. the
//! 27-node `Q³_3` parts of `Q³_6`: a layered tree from a corner has only
//! 9 internal nodes against `δ = 12`). Any eligible parent is equally
//! sound — the health-propagation argument only needs *some* witness test
//! `s_u(v, t(u)) = 0` — so we instead deterministically *spread* children
//! across distinct parents (reassigning a child to an unused eligible
//! parent when its current parent already has other children). This
//! maximises `|C_1 ∪ … ∪ C_i|` without changing the set `U_r`, the
//! asymptotics, or the §6 lookup bound; DESIGN.md discusses the gap.
//!
//! Time: `O(Δ·|U_r|)` (plus the `O(Δ²)` seed step); syndrome entries
//! consulted: at most `C(Δ,2)` for the seed plus `Δ − 1` per other member,
//! the §6 bound `(Δ−1)(Δ/2 + |U_r| − 1)`.

use crate::tree::SpanningTree;
use mmdiag_syndrome::SyndromeSource;
use mmdiag_topology::{NodeId, Partitionable, Topology};

/// Reusable scratch space for `Set_Builder` runs.
///
/// All arrays are epoch-stamped so successive probes over the same graph
/// reuse one `O(N)` allocation — this is what keeps the whole
/// probe-every-part driver at `O(Δ·N)` rather than `O(parts · N)`.
pub struct Workspace {
    pub(crate) epoch: u32,
    pub(crate) mark: Vec<u32>,
    pub(crate) contributed: Vec<u32>,
    pub(crate) parent: Vec<NodeId>,
    /// Layer at which a node was attached (valid when `mark` is current).
    pub(crate) layer: Vec<u32>,
    /// Children claimed by a parent in the layer being built.
    pub(crate) claims: Vec<u32>,
    pub(crate) frontier: Vec<NodeId>,
    pub(crate) next_frontier: Vec<NodeId>,
    pub(crate) nbuf: Vec<NodeId>,
}

impl Workspace {
    /// Scratch space for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        Workspace {
            epoch: 0,
            mark: vec![0; n],
            contributed: vec![0; n],
            parent: vec![0; n],
            layer: vec![0; n],
            claims: vec![0; n],
            frontier: Vec::new(),
            next_frontier: Vec::new(),
            nbuf: Vec::new(),
        }
    }

    pub(crate) fn begin(&mut self) {
        // Epoch 0 is "never seen"; wrap by clearing.
        if self.epoch == u32::MAX {
            self.mark.fill(0);
            self.contributed.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.frontier.clear();
        self.next_frontier.clear();
    }

    #[inline]
    pub(crate) fn seen(&self, u: NodeId) -> bool {
        self.mark[u] == self.epoch
    }

    #[inline]
    pub(crate) fn visit(&mut self, u: NodeId, parent: NodeId) {
        self.mark[u] = self.epoch;
        self.parent[u] = parent;
    }
}

/// Outcome of a `Set_Builder` run.
#[derive(Clone, Debug)]
pub struct SetBuilderOutcome {
    /// Was `|C_1 ∪ … ∪ C_i| > δ` reached — i.e. is every member of `U_r`
    /// *provably* healthy?
    pub all_healthy: bool,
    /// The members of `U_r`, in attachment order (`u0` first).
    pub members: Vec<NodeId>,
    /// The tree `T` described by the parent function `t`.
    pub tree: SpanningTree,
    /// `|C_1 ∪ … ∪ C_r|` — the number of distinct contributors.
    pub contributors: usize,
    /// The number of levels `r` built (0 if `U_1 = {u0}`).
    pub rounds: usize,
    /// Syndrome entries consulted during this run.
    pub lookups_used: u64,
}

/// `Set_Builder(u0)`: unrestricted growth over the whole graph.
pub fn set_builder<T, S>(
    g: &T,
    s: &S,
    u0: NodeId,
    fault_bound: usize,
    ws: &mut Workspace,
) -> SetBuilderOutcome
where
    T: Topology + ?Sized,
    S: SyndromeSource + ?Sized,
{
    set_builder_filtered(g, s, u0, fault_bound, |_| true, ws)
}

/// `Set_Builder(u0, H)`: growth restricted to the part of the
/// decomposition containing `u0` (§5.1 — "only adds nodes of `H` to the
/// sets it builds").
pub fn set_builder_in_part<T, S>(
    g: &T,
    s: &S,
    u0: NodeId,
    fault_bound: usize,
    ws: &mut Workspace,
) -> SetBuilderOutcome
where
    T: Partitionable + ?Sized,
    S: SyndromeSource + ?Sized,
{
    let part = g.part_of(u0);
    set_builder_filtered(g, s, u0, fault_bound, |v| g.part_of(v) == part, ws)
}

/// Shared implementation: `accept` delimits the subgraph `H` (nodes for
/// which it returns `true`; `u0` must be accepted).
pub fn set_builder_filtered<T, S, F>(
    g: &T,
    s: &S,
    u0: NodeId,
    fault_bound: usize,
    accept: F,
    ws: &mut Workspace,
) -> SetBuilderOutcome
where
    T: Topology + ?Sized,
    S: SyndromeSource + ?Sized,
    F: Fn(NodeId) -> bool,
{
    let mut core = GrowthCore::start(g, s, u0, fault_bound, &accept, ws, &mut |_| {});
    while core.advance_layer(g, s, &accept, ws, &mut |_| {}) {}
    core.finish(s)
}

/// Incremental driver for the §4.1 growth loop, shared between the
/// sequential [`set_builder_filtered`] and the frontier-parallel sweep in
/// `crate::grow` (which runs these sequential layers until the certificate
/// fires, then hands the remaining layers to the pool mid-loop).
///
/// Every syndrome lookup that *disagrees* on a then-unvisited candidate is
/// reported to the `reject` sink. In an unrestricted run each member is
/// scanned as frontier exactly once and looks up every still-unvisited
/// neighbour, so the sink — filtered to never-visited nodes at the end —
/// reproduces `N(U_r) \ U_r` without the O(N) full-graph sweep the
/// diagnosis driver used to do. The sequential entry point passes a no-op
/// sink and keeps its historical behaviour (and lookup counts) exactly.
pub(crate) struct GrowthCore {
    pub(crate) u0: NodeId,
    pub(crate) fault_bound: usize,
    start_lookups: u64,
    pub(crate) members: Vec<NodeId>,
    pub(crate) edges: Vec<(NodeId, NodeId)>,
    pub(crate) contributors: usize,
    pub(crate) all_healthy: bool,
    pub(crate) rounds: usize,
    pub(crate) cur_layer: u32,
}

impl GrowthCore {
    /// Seed the run: `ws.begin()`, then level 1 (pairs of `u0`'s
    /// neighbours within `H`, O(Δ²) worst case, at most C(Δ, 2) syndrome
    /// entries). Leaves `U_1 \ {u0}` in `ws.frontier`.
    pub(crate) fn start<T, S, F, R>(
        g: &T,
        s: &S,
        u0: NodeId,
        fault_bound: usize,
        accept: &F,
        ws: &mut Workspace,
        reject: &mut R,
    ) -> Self
    where
        T: Topology + ?Sized,
        S: SyndromeSource + ?Sized,
        F: Fn(NodeId) -> bool,
        R: FnMut(NodeId),
    {
        debug_assert!(accept(u0), "seed must lie in the searched subgraph");
        let start_lookups = s.lookups();
        ws.begin();
        ws.visit(u0, u0);
        let mut members = vec![u0];
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        let mut contributors = 0usize;
        let mut all_healthy = false;

        g.neighbors_into(u0, &mut ws.nbuf);
        ws.nbuf.retain(|&v| accept(v));
        ws.nbuf.sort_unstable();
        let candidates = std::mem::take(&mut ws.nbuf);
        {
            let mut in_u1 = vec![false; candidates.len()];
            for i in 0..candidates.len() {
                for j in (i + 1)..candidates.len() {
                    if in_u1[i] && in_u1[j] {
                        continue;
                    }
                    if s.lookup(u0, candidates[i], candidates[j]).is_agree() {
                        in_u1[i] = true;
                        in_u1[j] = true;
                    }
                }
            }
            for (idx, &v) in candidates.iter().enumerate() {
                if in_u1[idx] {
                    ws.visit(v, u0);
                    ws.layer[v] = 1;
                    members.push(v);
                    edges.push((v, u0));
                    ws.frontier.push(v);
                } else {
                    reject(v);
                }
            }
        }
        ws.nbuf = candidates;

        let mut rounds = 0usize;
        if !ws.frontier.is_empty() {
            // u0 contributed to U_1.
            contributors += 1;
            ws.contributed[u0] = ws.epoch;
            rounds = 1;
            if contributors > fault_bound {
                all_healthy = true;
            }
        }

        GrowthCore {
            u0,
            fault_bound,
            start_lookups,
            members,
            edges,
            contributors,
            all_healthy,
            rounds,
            cur_layer: 1,
        }
    }

    /// One level `i ≥ 2`: each frontier node `u` tests candidates `v`
    /// against its own parent `t(u)`, at most Δ − 1 entries per frontier
    /// node. Returns `false` when growth is finished (empty frontier or no
    /// additions), `true` after a flushed layer.
    pub(crate) fn advance_layer<T, S, F, R>(
        &mut self,
        g: &T,
        s: &S,
        accept: &F,
        ws: &mut Workspace,
        reject: &mut R,
    ) -> bool
    where
        T: Topology + ?Sized,
        S: SyndromeSource + ?Sized,
        F: Fn(NodeId) -> bool,
        R: FnMut(NodeId),
    {
        if ws.frontier.is_empty() {
            return false;
        }
        ws.next_frontier.clear();
        self.cur_layer += 1;
        // Deterministic scan order (the spread heuristic below replaces the
        // paper's "least contributing node" tie-break; see module docs).
        ws.frontier.sort_unstable();
        for fi in 0..ws.frontier.len() {
            let u = ws.frontier[fi];
            let tu = ws.parent[u];
            g.neighbors_into(u, &mut ws.nbuf);
            for idx in 0..ws.nbuf.len() {
                let v = ws.nbuf[idx];
                if v == tu || !accept(v) {
                    continue;
                }
                if ws.seen(v) {
                    // Spread heuristic: if v joined this very layer under a
                    // parent that already has other children, and u is an
                    // eligible parent with no children yet, move v to u.
                    // Soundness needs the witness test s_u(v, t(u)) = 0.
                    if !self.all_healthy
                        && ws.layer[v] == self.cur_layer
                        && ws.claims[ws.parent[v]] > 1
                        && ws.claims[u] == 0
                        && s.lookup(u, v, tu).is_agree()
                    {
                        ws.claims[ws.parent[v]] -= 1;
                        ws.claims[u] += 1;
                        ws.parent[v] = u;
                    }
                    continue;
                }
                if s.lookup(u, v, tu).is_agree() {
                    ws.visit(v, u);
                    ws.layer[v] = self.cur_layer;
                    ws.claims[u] += 1;
                    self.members.push(v);
                    ws.next_frontier.push(v);
                } else {
                    reject(v);
                }
            }
        }
        // Claim counters are only meaningful within one layer scan; reset
        // them for the scanned frontier on every exit path.
        for &u in &ws.frontier {
            ws.claims[u] = 0;
        }
        if ws.next_frontier.is_empty() {
            return false;
        }
        self.rounds += 1;
        // Flush the layer: record final parent assignments and count the
        // distinct contributors.
        for ni in 0..ws.next_frontier.len() {
            let v = ws.next_frontier[ni];
            let p = ws.parent[v];
            self.edges.push((v, p));
            if ws.contributed[p] != ws.epoch {
                ws.contributed[p] = ws.epoch;
                self.contributors += 1;
            }
        }
        if self.contributors > self.fault_bound {
            self.all_healthy = true;
        }
        std::mem::swap(&mut ws.frontier, &mut ws.next_frontier);
        true
    }

    /// Package the accumulated state as a [`SetBuilderOutcome`].
    pub(crate) fn finish<S>(self, s: &S) -> SetBuilderOutcome
    where
        S: SyndromeSource + ?Sized,
    {
        SetBuilderOutcome {
            all_healthy: self.all_healthy,
            members: self.members,
            tree: SpanningTree::from_edges(self.u0, self.edges),
            contributors: self.contributors,
            rounds: self.rounds,
            lookups_used: s.lookups().saturating_sub(self.start_lookups),
        }
    }
}

/// The §6 upper bound on syndrome consultations for a run that produced a
/// set of `set_size` nodes in a graph of maximal degree `delta`:
/// `(Δ−1)(Δ/2 + |U_r| − 1)`.
pub fn lookup_bound(delta: usize, set_size: usize) -> u64 {
    if delta == 0 {
        return 0;
    }
    // Computed as C(Δ,2) + (Δ−1)(|U_r| − 1) to avoid the ×2 rounding in the
    // paper's compact form.
    ((delta * (delta - 1)) / 2 + (delta - 1) * set_size.saturating_sub(1)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdiag_syndrome::{FaultSet, OracleSyndrome, TesterBehavior};
    use mmdiag_topology::families::Hypercube;

    fn oracle(n: usize, faults: &[NodeId], b: TesterBehavior) -> OracleSyndrome {
        OracleSyndrome::new(FaultSet::new(n, faults), b)
    }

    #[test]
    fn fault_free_hypercube_grows_everything() {
        let g = Hypercube::with_partition_dim(5, 3);
        let s = oracle(32, &[], TesterBehavior::AllZero);
        let mut ws = Workspace::new(32);
        let out = set_builder(&g, &s, 0, 5, &mut ws);
        assert!(out.all_healthy);
        assert_eq!(out.members.len(), 32);
        assert!(out.contributors > 5);
        out.tree.validate().unwrap();
        assert_eq!(out.tree.node_count(), 32);
    }

    #[test]
    fn faulty_neighbours_are_never_added() {
        let g = Hypercube::with_partition_dim(5, 3);
        for b in mmdiag_syndrome::behavior_sweep(3) {
            let faults = [1usize, 2, 16];
            let s = oracle(32, &faults, b);
            let mut ws = Workspace::new(32);
            let out = set_builder(&g, &s, 0, 5, &mut ws);
            // Seed 0 is healthy: the grown set contains no faulty node.
            for &m in &out.members {
                assert!(!faults.contains(&m), "faulty {m} added ({b:?})");
            }
            // All 29 healthy nodes are reachable through healthy paths in
            // Q_5 minus 3 faults, so U_r is exactly the healthy set.
            assert_eq!(out.members.len(), 29, "{b:?}");
            assert!(out.all_healthy, "{b:?}");
        }
    }

    #[test]
    fn faulty_seed_with_allzero_respects_certificate_soundness() {
        // The adversarial case: faulty nodes answer Agree everywhere,
        // trying to grow a fake tree. With |F| ≤ δ the certificate must
        // never fire from a faulty seed *and* report a set containing a
        // mix: whenever all_healthy is true, members must be disjoint from
        // the fault set.
        let g = Hypercube::with_partition_dim(5, 3);
        let faults = [0usize, 1, 2, 4, 8]; // seed and all its certifying power
        let s = oracle(32, &faults, TesterBehavior::AllZero);
        let mut ws = Workspace::new(32);
        let out = set_builder(&g, &s, 0, 5, &mut ws);
        if out.all_healthy {
            for &m in &out.members {
                assert!(!faults.contains(&m));
            }
        }
        // Soundness argument: contributors ≤ δ whenever the tree has a
        // faulty internal node.
        let internal = out.tree.internal_nodes();
        if internal.iter().any(|&u| faults.contains(&u)) {
            assert!(out.contributors <= 5, "certificate fired on faulty tree");
            assert!(!out.all_healthy);
        }
    }

    #[test]
    fn singleton_when_all_neighbours_faulty() {
        let g = Hypercube::with_partition_dim(3, 2);
        // All of node 0's neighbours are faulty: U_r = {u0}.
        let s = oracle(8, &[1, 2, 4], TesterBehavior::AllOne);
        let mut ws = Workspace::new(8);
        let out = set_builder(&g, &s, 0, 3, &mut ws);
        assert_eq!(out.members, vec![0]);
        assert!(!out.all_healthy);
        assert_eq!(out.rounds, 0);
        assert_eq!(out.contributors, 0);
        assert_eq!(out.tree.node_count(), 1);
    }

    #[test]
    fn restricted_run_stays_in_part() {
        let g = Hypercube::with_partition_dim(6, 3);
        let s = oracle(64, &[], TesterBehavior::AllZero);
        let mut ws = Workspace::new(64);
        let out = set_builder_in_part(&g, &s, 0, 6, &mut ws);
        assert_eq!(out.members.len(), 8, "one Q_3 part");
        for &m in &out.members {
            assert!(m < 8);
        }
        // 8-node fault-free part: contributors are the tree's internal
        // nodes; in Q_3 a BFS-ish tree from 0 has at least 4 of them... but
        // the certificate needs > 6, which 8 nodes cannot give.
        assert!(!out.all_healthy);
    }

    #[test]
    fn lookup_bound_respected_on_random_runs() {
        use rand::SeedableRng;
        let g = Hypercube::with_partition_dim(6, 3);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for trial in 0..20 {
            let f = FaultSet::random(64, trial % 7, &mut rng);
            let seed_node = (0..64).find(|&u| !f.contains(u)).unwrap();
            let s = OracleSyndrome::new(f, TesterBehavior::Random { seed: trial as u64 });
            let mut ws = Workspace::new(64);
            let out = set_builder(&g, &s, seed_node, 6, &mut ws);
            assert!(
                out.lookups_used <= lookup_bound(6, out.members.len()),
                "lookups {} exceed bound {} for |U_r| = {}",
                out.lookups_used,
                lookup_bound(6, out.members.len()),
                out.members.len()
            );
        }
    }

    #[test]
    fn workspace_reuse_across_epochs() {
        let g = Hypercube::with_partition_dim(4, 2);
        let s = oracle(16, &[], TesterBehavior::AllZero);
        let mut ws = Workspace::new(16);
        for seed in 0..16 {
            let out = set_builder(&g, &s, seed, 4, &mut ws);
            assert_eq!(out.members.len(), 16, "seed {seed}");
            assert_eq!(out.tree.root(), seed);
        }
    }

    #[test]
    fn honest_probe_matches_topology_prediction() {
        // `mmdiag_topology::honest_probe_contributors` re-implements this
        // module's growth under an all-Agree syndrome so families can cap
        // `driver_fault_bound` without depending on this crate. Guard the
        // two against drift on a spread of shapes.
        use mmdiag_topology::families::{
            AugmentedCube, AugmentedKAryNCube, Hypercube, KAryNCube, NKStar, Pancake, StarGraph,
            TwistedCube,
        };
        use mmdiag_topology::{honest_probe_contributors, Partitionable};

        struct AllAgree;
        impl mmdiag_syndrome::SyndromeSource for AllAgree {
            fn lookup(&self, _u: NodeId, _v: NodeId, _w: NodeId) -> mmdiag_syndrome::TestResult {
                mmdiag_syndrome::TestResult::Agree
            }
        }

        let graphs: Vec<Box<dyn Partitionable>> = vec![
            Box::new(Hypercube::new(7)),
            Box::new(Hypercube::with_partition_dim(6, 3)),
            Box::new(TwistedCube::new(7)),
            Box::new(AugmentedCube::with_partition_dim(5, 3)),
            Box::new(AugmentedKAryNCube::with_partition_dim(3, 3, 1)),
            Box::new(KAryNCube::with_partition_dim(3, 4, 2)),
            Box::new(StarGraph::new(5)),
            Box::new(NKStar::new(5, 3)),
            Box::new(Pancake::new(5)),
        ];
        for g in &graphs {
            let g = g.as_ref();
            let mut ws = Workspace::new(g.node_count());
            for part in 0..g.part_count() {
                let out =
                    set_builder_in_part(g, &AllAgree, g.representative(part), usize::MAX, &mut ws);
                assert_eq!(
                    out.contributors,
                    honest_probe_contributors(g, part),
                    "{} part {part}",
                    g.name()
                );
            }
        }
    }

    #[test]
    fn parent_tests_use_tree_parent() {
        // Regression guard for the exact §4.1 rule: t(v) must be a node of
        // the previous level whose test against its own parent was Agree.
        let g = Hypercube::with_partition_dim(4, 2);
        let s = oracle(16, &[5], TesterBehavior::AllOne);
        let mut ws = Workspace::new(16);
        let out = set_builder(&g, &s, 0, 4, &mut ws);
        out.tree.validate().unwrap();
        for &(c, p) in out.tree.edges() {
            assert!(g.neighbors(p).contains(&c), "tree edge {p}-{c} not in E");
        }
    }
}
