//! The spanning tree `T` built by `Set_Builder` (§4.1).
//!
//! The function `t : U_r \ {u0} → U_r` ("`t(v)` is the parent of `v`")
//! describes a tree rooted at `u0`. Its *internal* nodes are exactly the
//! contributors `C_1 ∪ C_2 ∪ …`, which drive the all-healthy certificate;
//! and when diagnosis succeeds the tree spans the healthy nodes — the
//! by-product §6 points out "could possibly be utilised in some other
//! context".

use mmdiag_topology::NodeId;

/// A rooted spanning tree over a subset of the network's nodes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanningTree {
    root: NodeId,
    /// `(child, parent)` pairs in the order children were attached.
    edges: Vec<(NodeId, NodeId)>,
}

impl SpanningTree {
    /// A tree consisting of just the root.
    pub fn singleton(root: NodeId) -> Self {
        SpanningTree {
            root,
            edges: Vec::new(),
        }
    }

    /// Construct from the root and `(child, parent)` pairs.
    pub fn from_edges(root: NodeId, edges: Vec<(NodeId, NodeId)>) -> Self {
        SpanningTree { root, edges }
    }

    /// The root `u0`.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// `(child, parent)` pairs in attachment order.
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Number of nodes spanned (root + children).
    pub fn node_count(&self) -> usize {
        self.edges.len() + 1
    }

    /// The parent of `v`, or `None` for the root / non-members.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.edges.iter().find(|&&(c, _)| c == v).map(|&(_, p)| p)
    }

    /// The internal nodes (nodes with at least one child) — the
    /// contributors of §4.1.
    pub fn internal_nodes(&self) -> Vec<NodeId> {
        let mut parents: Vec<NodeId> = self.edges.iter().map(|&(_, p)| p).collect();
        parents.sort_unstable();
        parents.dedup();
        parents
    }

    /// Depth of `v` (root = 0), or `None` if `v` is not in the tree.
    pub fn depth(&self, v: NodeId) -> Option<usize> {
        if v == self.root {
            return Some(0);
        }
        let mut cur = v;
        let mut d = 0usize;
        // The edge list is acyclic by construction, so this terminates.
        loop {
            match self.parent(cur) {
                Some(p) => {
                    d += 1;
                    if p == self.root {
                        return Some(d);
                    }
                    cur = p;
                }
                None => return None,
            }
        }
    }

    /// Validate tree invariants: every child appears once, every parent is
    /// the root or some earlier child, no child equals the root.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = std::collections::HashSet::new();
        seen.insert(self.root);
        for &(c, p) in &self.edges {
            if c == self.root {
                return Err(format!("root {c} appears as a child"));
            }
            if !seen.contains(&p) {
                return Err(format!("parent {p} of {c} not attached before it"));
            }
            if !seen.insert(c) {
                return Err(format!("child {c} attached twice"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SpanningTree {
        // 0 -> {1, 2}; 1 -> {3}
        SpanningTree::from_edges(0, vec![(1, 0), (2, 0), (3, 1)])
    }

    #[test]
    fn basics() {
        let t = sample();
        assert_eq!(t.root(), 0);
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.parent(3), Some(1));
        assert_eq!(t.parent(0), None);
        assert_eq!(t.parent(9), None);
        t.validate().unwrap();
    }

    #[test]
    fn internal_nodes_are_contributors() {
        let t = sample();
        assert_eq!(t.internal_nodes(), vec![0, 1]);
    }

    #[test]
    fn depths() {
        let t = sample();
        assert_eq!(t.depth(0), Some(0));
        assert_eq!(t.depth(2), Some(1));
        assert_eq!(t.depth(3), Some(2));
        assert_eq!(t.depth(7), None);
    }

    #[test]
    fn singleton_tree() {
        let t = SpanningTree::singleton(5);
        assert_eq!(t.node_count(), 1);
        assert!(t.internal_nodes().is_empty());
        t.validate().unwrap();
    }

    #[test]
    fn validation_rejects_orphans() {
        let t = SpanningTree::from_edges(0, vec![(2, 1)]);
        assert!(t.validate().is_err());
    }
}
