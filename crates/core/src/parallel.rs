//! Parallel probing (experiment PAR — an ablation on the driver's only
//! embarrassingly parallel phase).
//!
//! The sequential driver probes part representatives one by one. The
//! probes are independent reads of the syndrome, so they can run
//! concurrently: this module shards the parts over `threads` scoped worker
//! threads, each with its own [`Workspace`], and takes the *lowest-indexed*
//! certified part (so results are deterministic and identical to the
//! sequential driver's choice). The final unrestricted growth and the
//! neighbourhood sweep are inherently sequential and stay on the caller's
//! thread.
//!
//! Consistent with the "Rust Atomics and Locks" guidance, coordination is a
//! single shared `AtomicUsize` holding the best certified part so far
//! (fetch-min via a CAS loop); workers stop early once every part below
//! their current candidate is decided.

use crate::driver::{Diagnosis, DiagnosisError};
use crate::set_builder::{set_builder, set_builder_in_part, Workspace};
use mmdiag_syndrome::SyndromeSource;
use mmdiag_topology::Partitionable;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Like [`crate::driver::diagnose`], but probing part representatives on
/// `threads` worker threads. Requires the topology and syndrome to be
/// shareable across threads.
pub fn diagnose_parallel<T, S>(g: &T, s: &S, threads: usize) -> Result<Diagnosis, DiagnosisError>
where
    T: Partitionable + Sync + ?Sized,
    S: SyndromeSource + Sync + ?Sized,
{
    g.check_partition_preconditions()
        .map_err(DiagnosisError::Preconditions)?;
    let bound = g.driver_fault_bound();
    let parts = g.part_count();
    let threads = threads.clamp(1, parts);
    let start_lookups = s.lookups();

    let best = AtomicUsize::new(usize::MAX);
    let probes = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let best = &best;
            let probes = &probes;
            scope.spawn(move || {
                let mut ws = Workspace::new(g.node_count());
                // Strided sharding: worker t probes parts t, t+threads, …
                let mut part = t;
                while part < parts {
                    if best.load(Ordering::Acquire) < part {
                        // A lower-indexed certificate exists; nothing this
                        // worker finds from here on can win.
                        break;
                    }
                    probes.fetch_add(1, Ordering::Relaxed);
                    let probe = set_builder_in_part(g, s, g.representative(part), bound, &mut ws);
                    if probe.all_healthy {
                        // fetch-min CAS loop.
                        let mut cur = best.load(Ordering::Acquire);
                        while part < cur {
                            match best.compare_exchange_weak(
                                cur,
                                part,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            ) {
                                Ok(_) => break,
                                Err(actual) => cur = actual,
                            }
                        }
                        break;
                    }
                    part += threads;
                }
            });
        }
    });

    let part = best.load(Ordering::Acquire);
    if part == usize::MAX {
        return Err(DiagnosisError::NoPartCertified);
    }
    // Sequential tail: unrestricted growth from the winning seed + sweep.
    let mut ws = Workspace::new(g.node_count());
    let u0 = g.representative(part);
    let full = set_builder(g, s, u0, bound, &mut ws);
    let n = g.node_count();
    let mut in_set = vec![false; n];
    for &m in &full.members {
        in_set[m] = true;
    }
    let mut fault_flag = vec![false; n];
    let mut faults = Vec::new();
    let mut buf = Vec::new();
    for &m in &full.members {
        g.neighbors_into(m, &mut buf);
        for &v in &buf {
            if !in_set[v] && !fault_flag[v] {
                fault_flag[v] = true;
                faults.push(v);
            }
        }
    }
    faults.sort_unstable();
    if faults.len() > bound {
        return Err(DiagnosisError::TooManyFaults {
            found: faults.len(),
            bound,
        });
    }
    Ok(Diagnosis {
        faults,
        certified_part: part,
        probes: probes.load(Ordering::Relaxed),
        healthy_count: full.members.len(),
        tree: full.tree,
        lookups_used: s.lookups().saturating_sub(start_lookups),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::diagnose;
    use mmdiag_syndrome::{FaultSet, OracleSyndrome, TesterBehavior};
    use mmdiag_topology::families::Hypercube;
    use rand::SeedableRng;

    #[test]
    fn parallel_matches_sequential() {
        let g = Hypercube::new(8);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2024);
        for trial in 0..6 {
            let f = FaultSet::random(256, trial + 2, &mut rng);
            let s = OracleSyndrome::new(f.clone(), TesterBehavior::Random { seed: trial as u64 });
            let seq = diagnose(&g, &s).unwrap();
            for threads in [1, 2, 4, 8] {
                let par = diagnose_parallel(&g, &s, threads).unwrap();
                assert_eq!(par.faults, seq.faults, "threads={threads}");
                assert_eq!(
                    par.certified_part, seq.certified_part,
                    "parallel must pick the lowest certified part"
                );
            }
        }
    }

    #[test]
    fn single_thread_equals_driver() {
        let g = Hypercube::new(7);
        let f = FaultSet::new(128, &[5, 70]);
        let s = OracleSyndrome::new(f.clone(), TesterBehavior::AllZero);
        let d = diagnose_parallel(&g, &s, 1).unwrap();
        assert_eq!(d.faults, f.members());
    }

    #[test]
    fn thread_count_clamped() {
        let g = Hypercube::new(7); // 8 parts
        let f = FaultSet::new(128, &[]);
        let s = OracleSyndrome::new(f, TesterBehavior::AllZero);
        // 64 threads requested, clamped to the number of parts.
        let d = diagnose_parallel(&g, &s, 64).unwrap();
        assert!(d.faults.is_empty());
    }
}
