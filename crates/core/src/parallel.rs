//! Parallel probing (experiment PAR) — now a thin strategy over the
//! shared execution backend.
//!
//! Historically this module spawned fresh scoped threads per call, which
//! `BENCH_1`/`BENCH_2` showed losing to the sequential driver below ~1k
//! nodes. The probe search itself — strided lanes over the parts, a shared
//! fetch-min (CAS) publishing the best certified part, early cut-off once
//! every part below a lane's cursor is decided — is unchanged, but it now
//! lives in [`mmdiag_exec::Pool::min_index_where`] and runs on the
//! process-wide worker pool via
//! the pooled session strategy (`mmdiag_core::session`). The `threads` argument
//! survives as the *lane width* of the search; the OS threads underneath
//! are the pool's and are spawned exactly once per process.
//!
//! Results are deterministic and identical to the sequential driver's
//! choice (lowest certified part wins) for any width; see
//! [`crate::backend`] for the full determinism contract.

use crate::backend::diagnose_pooled_width;
use crate::driver::{Diagnosis, DiagnosisError};
use mmdiag_syndrome::SyndromeSource;
use mmdiag_topology::Partitionable;

/// Like [`crate::driver::diagnose`], but probing part representatives on
/// `threads` strided lanes of the shared global pool. Requires the
/// topology and syndrome to be shareable across threads.
pub fn diagnose_parallel<T, S>(g: &T, s: &S, threads: usize) -> Result<Diagnosis, DiagnosisError>
where
    T: Partitionable + Sync + ?Sized,
    S: SyndromeSource + Sync + ?Sized,
{
    g.check_partition_preconditions()
        .map_err(DiagnosisError::Preconditions)?;
    diagnose_pooled_width(g, s, mmdiag_exec::global(), threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::diagnose;
    use mmdiag_syndrome::{FaultSet, OracleSyndrome, TesterBehavior};
    use mmdiag_topology::families::Hypercube;
    use rand::SeedableRng;

    #[test]
    fn parallel_matches_sequential() {
        let g = Hypercube::new(8);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2024);
        for trial in 0..6 {
            let f = FaultSet::random(256, trial + 2, &mut rng);
            let s = OracleSyndrome::new(f.clone(), TesterBehavior::Random { seed: trial as u64 });
            let seq = diagnose(&g, &s).unwrap();
            for threads in [1, 2, 4, 8] {
                let par = diagnose_parallel(&g, &s, threads).unwrap();
                assert_eq!(par.faults, seq.faults, "threads={threads}");
                assert_eq!(
                    par.certified_part, seq.certified_part,
                    "parallel must pick the lowest certified part"
                );
            }
        }
    }

    #[test]
    fn single_thread_equals_driver() {
        let g = Hypercube::new(7);
        let f = FaultSet::new(128, &[5, 70]);
        let s = OracleSyndrome::new(f.clone(), TesterBehavior::AllZero);
        let d = diagnose_parallel(&g, &s, 1).unwrap();
        assert_eq!(d.faults, f.members());
    }

    #[test]
    fn thread_count_clamped() {
        let g = Hypercube::new(7); // 8 parts
        let f = FaultSet::new(128, &[]);
        let s = OracleSyndrome::new(f, TesterBehavior::AllZero);
        // 64 lanes requested, clamped to the number of parts.
        let d = diagnose_parallel(&g, &s, 64).unwrap();
        assert!(d.faults.is_empty());
        // Zero lanes requested, clamped up to 1.
        let s = OracleSyndrome::new(FaultSet::new(128, &[]), TesterBehavior::AllZero);
        let d = diagnose_parallel(&g, &s, 0).unwrap();
        assert!(d.faults.is_empty());
    }
}
