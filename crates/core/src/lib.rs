//! # mmdiag-core
//!
//! The paper's primary contribution: a general `O(Δ·N)` algorithm for the
//! fault diagnosis problem under the comparison (MM) diagnosis model
//! (Stewart, IPDPS 2010).
//!
//! * [`mod@set_builder`] — the §4.1 `Set_Builder` procedure (unrestricted and
//!   part-restricted), with its spanning-tree artifact and contributor
//!   accounting;
//! * [`tree`] — the tree `T` described by the parent function `t`;
//! * [`driver`] — the Theorem-1 driver: probe part representatives, certify
//!   an all-healthy seed, grow `U_r`, output `N(U_r) = F`;
//! * [`session`] — the canonical, phase-instrumented implementation every
//!   entry point wraps: backend policies, per-phase telemetry, the §4.1
//!   certificate artifact, batch submissions (the substrate of the
//!   umbrella crate's `mmdiag::Diagnoser` front door);
//! * [`backend`] — pluggable execution: the same driver run sequentially,
//!   on the shared worker pool ([`diagnose_with`]), size-directed
//!   ([`diagnose_auto`]), or over batches of syndromes
//!   ([`diagnose_batch`]);
//! * [`parallel`] — the concurrently-probed strategy, a thin wrapper over
//!   the pooled backend.
//!
//! One session run returns the full [`session::DiagnosisReport`] — the
//! classic [`Diagnosis`] plus the certificate and per-phase telemetry the
//! legacy free functions discard:
//!
//! ```
//! use mmdiag_core::session::{run_with, BackendPolicy, SessionOptions};
//! use mmdiag_syndrome::{FaultSet, OracleSyndrome, TesterBehavior};
//! use mmdiag_topology::families::Hypercube;
//!
//! // A 7-dimensional hypercube with three faulty processors.
//! let g = Hypercube::new(7);
//! let faults = FaultSet::new(128, &[3, 64, 90]);
//! let syndrome = OracleSyndrome::new(faults, TesterBehavior::Random { seed: 1 });
//!
//! let report = run_with(
//!     &g,
//!     &syndrome,
//!     BackendPolicy::Sequential,
//!     &SessionOptions::default(),
//!     None,
//! )
//! .unwrap();
//! assert_eq!(report.diagnosis.faults, vec![3, 64, 90]);
//! // The certificate is the restricted probe tree that certified.
//! assert_eq!(report.certificate.part, report.diagnosis.certified_part);
//! // Phase lookup accounting splits the classic total exactly.
//! assert_eq!(
//!     report.telemetry.probe_lookups + report.telemetry.grow_lookups,
//!     report.diagnosis.lookups_used,
//! );
//!
//! // The legacy free function is a thin wrapper over the same session:
//! let diagnosis = mmdiag_core::diagnose(&g, &syndrome).unwrap();
//! assert_eq!(diagnosis.faults, report.diagnosis.faults);
//! ```
#![forbid(unsafe_code)]

pub mod backend;
pub mod driver;
mod grow;
pub mod parallel;
pub mod session;
pub mod set_builder;
pub mod tree;

pub use backend::{
    diagnose_auto, diagnose_batch, diagnose_with, grow_cutover, sequential_cutover,
    set_grow_cutover, set_sequential_cutover, ExecutionBackend, WorkspacePool, GROW_CUTOVER_NODES,
    SEQUENTIAL_CUTOVER_NODES,
};
pub use driver::{diagnose, diagnose_unchecked, Diagnosis, DiagnosisError};
pub use parallel::diagnose_parallel;
pub use session::{
    grow_from_certificate, probe_part, BackendPolicy, Certificate, DiagnosisReport, GrowRound,
    PartProbe, PhaseTelemetry, SessionOptions, VerificationVerdict,
};
pub use set_builder::{
    lookup_bound, set_builder, set_builder_filtered, set_builder_in_part, SetBuilderOutcome,
    Workspace,
};
pub use tree::SpanningTree;
