//! # mmdiag-core
//!
//! The paper's primary contribution: a general `O(Δ·N)` algorithm for the
//! fault diagnosis problem under the comparison (MM) diagnosis model
//! (Stewart, IPDPS 2010).
//!
//! * [`set_builder`] — the §4.1 `Set_Builder` procedure (unrestricted and
//!   part-restricted), with its spanning-tree artifact and contributor
//!   accounting;
//! * [`tree`] — the tree `T` described by the parent function `t`;
//! * [`driver`] — the Theorem-1 driver: probe part representatives, certify
//!   an all-healthy seed, grow `U_r`, output `N(U_r) = F`;
//! * [`backend`] — pluggable execution: the same driver run sequentially,
//!   on the shared worker pool ([`diagnose_with`]), size-directed
//!   ([`diagnose_auto`]), or over batches of syndromes
//!   ([`diagnose_batch`]);
//! * [`parallel`] — the concurrently-probed strategy, a thin wrapper over
//!   the pooled backend.
//!
//! ```
//! use mmdiag_core::driver::diagnose;
//! use mmdiag_syndrome::{FaultSet, OracleSyndrome, TesterBehavior};
//! use mmdiag_topology::families::Hypercube;
//!
//! // A 7-dimensional hypercube with three faulty processors.
//! let g = Hypercube::new(7);
//! let faults = FaultSet::new(128, &[3, 64, 90]);
//! let syndrome = OracleSyndrome::new(faults, TesterBehavior::Random { seed: 1 });
//!
//! let diagnosis = diagnose(&g, &syndrome).unwrap();
//! assert_eq!(diagnosis.faults, vec![3, 64, 90]);
//! ```

pub mod backend;
pub mod driver;
pub mod parallel;
pub mod set_builder;
pub mod tree;

pub use backend::{
    diagnose_auto, diagnose_batch, diagnose_with, sequential_cutover, set_sequential_cutover,
    ExecutionBackend, WorkspacePool, SEQUENTIAL_CUTOVER_NODES,
};
pub use driver::{diagnose, diagnose_unchecked, Diagnosis, DiagnosisError};
pub use parallel::diagnose_parallel;
pub use set_builder::{
    lookup_bound, set_builder, set_builder_filtered, set_builder_in_part, SetBuilderOutcome,
    Workspace,
};
pub use tree::SpanningTree;
