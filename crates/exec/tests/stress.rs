//! Plain-`std` stress test for the executor: the model suite explores
//! interleavings exhaustively at small bounds; this leg hammers the real
//! primitives under genuine OS-thread contention in normal CI.
#![cfg(not(feature = "model"))]

use mmdiag_exec::Pool;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Repeated scoped map/for_each with several foreign threads submitting
/// into one shared pool: exercises injector contention, steals, parking
/// and the scope barrier thousands of times.
#[test]
fn scoped_map_for_each_under_contention() {
    let pool = Pool::new(4);
    let rounds = 60;
    // Foreign submitters run on their own OS threads (this crate is the
    // one place in the workspace allowed to spawn threads directly).
    std::thread::scope(|s| {
        for submitter in 0..4usize {
            let pool = &pool;
            s.spawn(move || {
                for round in 0..rounds {
                    let n = 64 + 7 * submitter + round % 5;
                    let items: Vec<usize> = (0..n).collect();
                    let doubled = pool.map(&items, |i, &x| {
                        assert_eq!(i, x);
                        x * 2
                    });
                    assert_eq!(doubled.len(), n);
                    assert!(doubled.iter().enumerate().all(|(i, &v)| v == 2 * i));

                    let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
                    pool.for_each_index(0..n, |i| {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    });
                    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));

                    let answer = 3 + (round + submitter) % 11;
                    assert_eq!(pool.min_index_where(n, 4, |i| i >= answer), Some(answer));
                }
            });
        }
    });
}

/// Nested scopes from every worker simultaneously — the help-running path
/// under real contention rather than modelled schedules.
#[test]
fn nested_scopes_under_contention() {
    let pool = Pool::new(2);
    let total = AtomicUsize::new(0);
    let pool_ref = &pool;
    let total_ref = &total;
    for _ in 0..200 {
        pool.scope(|s| {
            for _ in 0..4 {
                s.spawn(move || {
                    pool_ref.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                total_ref.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
    }
    assert_eq!(total.load(Ordering::Relaxed), 200 * 16);
}
