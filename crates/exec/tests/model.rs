//! Model-checked protocol tests for the executor (`--features model`).
//!
//! Each test drives the *real* pool/scope/steal code — compiled onto the
//! shim primitives of `mmdiag_exec::model` via the `sync` facade — under
//! the deterministic bounded-interleaving scheduler, or a small hand-built
//! replica of one protocol where exhaustive enumeration is feasible.
//!
//! The known-risky protocols from three PRs of executor growth each get a
//! suite: condvar park/unpark (lost wakeups), FIFO steal vs injector
//! submission races, nested-scope help-running on a 1-worker pool
//! (deadlock regression), and panic propagation mid-steal.
#![cfg(feature = "model")]

use mmdiag_exec::model::{check_exhaustive, check_random, replay, Config};
use mmdiag_exec::sync::atomic::{AtomicUsize, Ordering};
use mmdiag_exec::sync::{thread, Arc, Condvar, Mutex};
use mmdiag_exec::{ClaimBits, Pool};
use mmdiag_trace::{TraceConfig, Tracer};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Deep seeded exploration must be reproducible: same root seed, same
/// number of distinct interleavings (and the same verdict), twice over.
#[test]
fn seeded_exploration_is_deterministic() {
    let run = || {
        check_random(0x5EED_CAFE, 300, Config::deep(), || {
            let pool = Pool::new(1);
            let hits = AtomicUsize::new(0);
            pool.scope(|s| {
                let hits = &hits;
                s.spawn(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            });
            assert_eq!(hits.load(Ordering::SeqCst), 1);
        })
    };
    let a = run();
    let b = run();
    a.assert_ok();
    b.assert_ok();
    assert_eq!(a.executions, b.executions);
    assert_eq!(a.distinct_interleavings, b.distinct_interleavings);
    assert!(
        a.distinct_interleavings > 100,
        "{}",
        a.distinct_interleavings
    );
}

/// A faithful replica of `Shared::notify` / the worker park loop:
/// register as a sleeper under the sleep lock, re-check the queue, then
/// wait; the producer publishes before loading `sleepers`. Exhaustively
/// enumerated — no schedule may deadlock.
#[test]
fn condvar_park_protocol_exhaustive_no_lost_wakeup() {
    struct Park {
        queue: Mutex<VecDeque<u32>>,
        sleep: Mutex<()>,
        wake: Condvar,
        sleepers: AtomicUsize,
    }
    let report = check_exhaustive(
        Config {
            max_preemptions: None,
            ..Config::default()
        },
        || {
            let p = Arc::new(Park {
                queue: Mutex::new(VecDeque::new()),
                sleep: Mutex::new(()),
                wake: Condvar::new(),
                sleepers: AtomicUsize::new(0),
            });
            let producer = {
                let p = Arc::clone(&p);
                thread::spawn_named("producer".into(), move || {
                    p.queue.lock().unwrap().push_back(7);
                    // Fast path: only take the sleep lock when a consumer
                    // is parked (or committing to park).
                    if p.sleepers.load(Ordering::SeqCst) > 0 {
                        let _g = p.sleep.lock().unwrap();
                        p.wake.notify_all();
                    }
                })
                .unwrap()
            };
            // Consumer: pop, else park — registering as a sleeper *before*
            // the re-check, exactly like `worker_loop`.
            let got = loop {
                if let Some(v) = p.queue.lock().unwrap().pop_front() {
                    break v;
                }
                let guard = p.sleep.lock().unwrap();
                p.sleepers.fetch_add(1, Ordering::SeqCst);
                if !p.queue.lock().unwrap().is_empty() {
                    p.sleepers.fetch_sub(1, Ordering::SeqCst);
                    continue;
                }
                let _guard = p.wake.wait(guard).unwrap();
                p.sleepers.fetch_sub(1, Ordering::SeqCst);
            };
            assert_eq!(got, 7);
            producer.join().unwrap();
        },
    );
    report.assert_ok();
    assert!(!report.truncated, "protocol space must be fully enumerable");
    assert!(report.executions > 50, "{}", report.executions);
}

/// The classic broken variant — the consumer decides to sleep from a
/// *stale* emptiness check, so the producer's notify can fire before the
/// wait starts. The explorer must find the lost-wakeup deadlock, and the
/// reported schedule must reproduce it on demand.
#[test]
fn lost_wakeup_is_found_and_schedule_replays() {
    fn buggy() {
        let queue: Arc<Mutex<VecDeque<u32>>> = Arc::new(Mutex::new(VecDeque::new()));
        let sleep: Arc<Mutex<()>> = Arc::new(Mutex::new(()));
        let wake: Arc<Condvar> = Arc::new(Condvar::new());
        let producer = {
            let (queue, sleep, wake) = (Arc::clone(&queue), Arc::clone(&sleep), Arc::clone(&wake));
            thread::spawn_named("producer".into(), move || {
                queue.lock().unwrap().push_back(7);
                let _g = sleep.lock().unwrap();
                wake.notify_all();
            })
            .unwrap()
        };
        // BUG (deliberate): the emptiness check happens before taking the
        // sleep lock, and is not repeated under it — the notify can land
        // in that window and the wait below never returns.
        if queue.lock().unwrap().is_empty() {
            let g = sleep.lock().unwrap();
            let _g = wake.wait(g).unwrap();
        }
        assert_eq!(queue.lock().unwrap().pop_front(), Some(7));
        producer.join().unwrap();
    }
    let report = check_exhaustive(Config::default(), buggy);
    let failure = report
        .failure
        .expect("the exhaustive explorer must find the lost wakeup");
    assert!(
        failure.message.contains("deadlock"),
        "lost wakeup surfaces as a deadlock: {}",
        failure.message
    );
    // Shrink-to-seed: the recorded schedule alone reproduces the hang.
    let replayed = replay(&failure.schedule, buggy);
    let again = replayed
        .failure
        .expect("replaying the failing schedule must fail again");
    assert!(again.message.contains("deadlock"), "{}", again.message);
    assert_eq!(again.schedule, failure.schedule);
}

/// The real pool's park/unpark protocol: a worker races to park while the
/// scope submits through the injector and `Shared::notify` takes the
/// sleeper fast path. Any lost wakeup deadlocks the scope barrier, which
/// the engine reports. Deep seeded run, ≥ 1000 distinct interleavings.
#[test]
fn pool_park_unpark_no_lost_wakeup() {
    let report = check_random(0xB0A7_1D1E, 1400, Config::deep(), || {
        let pool = Pool::new(1);
        let hits = AtomicUsize::new(0);
        // Two scopes back to back: the second submission is the one that
        // typically races a worker already heading to park.
        for _ in 0..2 {
            pool.scope(|s| {
                let hits = &hits;
                s.spawn(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            });
        }
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    });
    report.assert_ok();
    assert!(
        report.distinct_interleavings >= 1000,
        "explored only {} distinct interleavings",
        report.distinct_interleavings
    );
}

/// FIFO steal vs injector submission: external tasks land in the shared
/// injector while worker-spawned subtasks go to per-worker deques and get
/// stolen front-first. Every task must run exactly once under every
/// schedule. Deep seeded run, ≥ 1000 distinct interleavings.
#[test]
fn pool_fifo_steal_vs_injector_tasks_run_exactly_once() {
    let report = check_random(0x57EA_1F1F, 1400, Config::deep(), || {
        let pool = Pool::new(2);
        let hits: Vec<AtomicUsize> = (0..6).map(|_| AtomicUsize::new(0)).collect();
        pool.scope(|s| {
            let hits = &hits;
            let pool = &pool;
            for outer in 0..2 {
                // Injector path: submitted from the (non-worker) test thread.
                s.spawn(move || {
                    hits[outer].fetch_add(1, Ordering::SeqCst);
                    // Deque path: spawned from inside a worker, stealable
                    // FIFO by the other worker.
                    pool.scope(|inner| {
                        for sub in 0..2 {
                            inner.spawn(move || {
                                hits[2 + 2 * outer + sub].fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(
                h.load(Ordering::SeqCst),
                1,
                "task {i} ran a wrong number of times"
            );
        }
    });
    report.assert_ok();
    assert!(
        report.distinct_interleavings >= 1000,
        "explored only {} distinct interleavings",
        report.distinct_interleavings
    );
}

/// Deadlock regression: nested scopes on a 1-worker pool force the worker
/// to help-run inner tasks while blocked on the inner barrier. A schedule
/// that parks instead of helping would deadlock; none may exist.
#[test]
fn pool_nested_scope_help_running_one_worker_no_deadlock() {
    let report = check_random(0xDEAD_70C5, 1400, Config::deep(), || {
        let pool = Pool::new(1);
        let total = AtomicUsize::new(0);
        let pool_ref = &pool;
        let total_ref = &total;
        pool.scope(|s| {
            s.spawn(move || {
                pool_ref.scope(|inner| {
                    for _ in 0..2 {
                        inner.spawn(|| {
                            total_ref.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
                total_ref.fetch_add(10, Ordering::SeqCst);
            });
        });
        assert_eq!(total.load(Ordering::SeqCst), 12);
    });
    report.assert_ok();
    assert!(
        report.distinct_interleavings >= 1000,
        "explored only {} distinct interleavings",
        report.distinct_interleavings
    );
}

/// Panic propagation mid-steal: one stolen task panics while others are
/// in flight on a second worker. Under every schedule the scope barrier
/// must still complete all tasks, re-raise the panic at the caller, and
/// leave the pool usable. Deep seeded run, ≥ 1000 distinct interleavings.
#[test]
fn pool_panic_propagation_mid_steal() {
    let report = check_random(0x9A71_C0DE, 1400, Config::deep(), || {
        let pool = Pool::new(2);
        let survivors = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                let survivors = &survivors;
                s.spawn(move || {
                    survivors.fetch_add(1, Ordering::SeqCst);
                });
                s.spawn(|| panic!("boom mid-steal"));
                s.spawn(move || {
                    survivors.fetch_add(1, Ordering::SeqCst);
                });
            });
        }));
        let payload = result.expect_err("scope must re-raise the task panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or_else(|| payload.downcast_ref::<String>().unwrap().as_str());
        assert!(msg.contains("boom mid-steal"), "{msg}");
        // The barrier completed: the non-panicking tasks all ran, and the
        // pool survives for the next parallel section.
        assert_eq!(survivors.load(Ordering::SeqCst), 2);
        let doubled = pool.map(&[1usize, 2, 3], |_, &x| x * 2);
        assert_eq!(doubled, vec![2, 4, 6]);
    });
    report.assert_ok();
    assert!(
        report.distinct_interleavings >= 1000,
        "explored only {} distinct interleavings",
        report.distinct_interleavings
    );
}

/// The trace sink shared across pool workers: shard pushes (plain std
/// mutexes, each held entirely within one scheduling quantum) never
/// interact with the pool's park/steal protocol, and the wraparound
/// accounting stays exact under every explored schedule — retained plus
/// dropped equals recorded, and a drain leaves the sink empty.
#[test]
fn tracer_sink_accounting_is_exact_under_the_pool() {
    let report = check_random(0x7ACE_51C4, 600, Config::deep(), || {
        let pool = Pool::new(2);
        // Two shards of three slots: eight events guarantee wraparound
        // somewhere, whatever shard the workers' tids map to.
        let tracer = Tracer::new(TraceConfig {
            shards: 2,
            shard_capacity: 3,
        });
        pool.scope(|s| {
            let tracer = &tracer;
            for i in 0..2u64 {
                s.spawn(move || {
                    for j in 0..4 {
                        tracer.event("task", "tick", i * 10 + j);
                    }
                });
            }
        });
        let events = tracer.drain();
        let dropped = tracer.dropped();
        assert_eq!(
            events.len() as u64 + dropped,
            8,
            "retained + dropped must equal recorded"
        );
        assert!(dropped >= 2, "6 slots cannot hold 8 events");
        assert!(tracer.drain().is_empty(), "drain empties the sink");
    });
    report.assert_ok();
    assert!(
        report.distinct_interleavings >= 500,
        "explored only {} distinct interleavings",
        report.distinct_interleavings
    );
}

/// Instrumented-pool counters under exploration: with stats on, every
/// task is counted and timed exactly once whatever the schedule, every
/// non-local acquisition (injector pop or steal) is attributed to some
/// worker, and a bare pool keeps `stats()` off — its model state space
/// unchanged.
#[test]
fn pool_instrumented_counters_are_schedule_independent() {
    let report = check_random(0x57A7_C0DE, 600, Config::deep(), || {
        let pool = Pool::new_instrumented(2);
        let hits = AtomicUsize::new(0);
        pool.scope(|s| {
            let hits = &hits;
            for _ in 0..3 {
                s.spawn(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 3);
        let stats = pool.stats().expect("instrumented pool");
        assert_eq!(stats.workers.len(), 2);
        let totals = stats.totals();
        assert_eq!(totals.tasks, 3, "every task counted exactly once");
        assert_eq!(totals.run_ns.count, 3, "every task timed exactly once");
        assert!(
            totals.steals + totals.injector_pops <= totals.tasks,
            "a task is acquired at most one non-local way \
             (steals {} + pops {} vs tasks {})",
            totals.steals,
            totals.injector_pops,
            totals.tasks
        );
        assert!(Pool::new(1).stats().is_none(), "bare pools stay bare");
    });
    report.assert_ok();
    assert!(
        report.distinct_interleavings >= 500,
        "explored only {} distinct interleavings",
        report.distinct_interleavings
    );
}

/// Contention-profiled primitives under exploration: the facade's
/// `Mutex::profiled` / `Condvar::profiled` record into an isolated
/// `SyncStats` block (plain std atomics — no new scheduling points), so
/// with two threads taking a profiled lock three times each, **every**
/// explored interleaving must record exactly six lock-wait samples, the
/// histogram must stay internally consistent, and the protected data
/// must come out right. Park counts are inherently schedule-*dependent*
/// (a waiter that loses the race to the notify never parks), so for the
/// profiled condvar the invariant is a tight range plus histogram
/// consistency, not an exact count. ≥ 500 distinct interleavings.
#[test]
fn profiled_sync_counters_are_schedule_independent() {
    use mmdiag_exec::SyncStats;
    let report = check_random(0xC0A7_E57A, 600, Config::deep(), || {
        // Two threads, three profiled acquisitions each.
        let stats = Arc::new(SyncStats::new());
        let m = Arc::new(Mutex::profiled(0usize, Arc::clone(&stats)));
        let lockers: Vec<_> = (0..2)
            .map(|t| {
                let m = Arc::clone(&m);
                thread::spawn_named(format!("locker-{t}"), move || {
                    for _ in 0..3 {
                        *m.lock().unwrap() += 1;
                    }
                })
                .unwrap()
            })
            .collect();
        for h in lockers {
            h.join().unwrap();
        }
        let waits = stats.lock_wait_ns.snapshot();
        assert_eq!(waits.count, 6, "2 threads x 3 locks, whatever the schedule");
        assert_eq!(waits.buckets.iter().sum::<u64>(), 6);
        let m = Arc::try_unwrap(m).ok().expect("all lockers joined");
        assert_eq!(m.into_inner().unwrap(), 6);

        // A profiled condvar on the sanctioned park protocol (sleeper
        // registered under the sleep lock before the re-check).
        struct Gate {
            ready: Mutex<bool>,
            wake: Condvar,
        }
        let park_stats = Arc::new(SyncStats::new());
        let gate = Arc::new(Gate {
            ready: Mutex::new(false),
            wake: Condvar::profiled(Arc::clone(&park_stats)),
        });
        let setter = {
            let gate = Arc::clone(&gate);
            thread::spawn_named("setter".into(), move || {
                *gate.ready.lock().unwrap() = true;
                gate.wake.notify_all();
            })
            .unwrap()
        };
        let mut guard = gate.ready.lock().unwrap();
        while !*guard {
            guard = gate.wake.wait(guard).unwrap();
        }
        drop(guard);
        setter.join().unwrap();
        let parks = park_stats.park_ns.snapshot();
        assert!(
            parks.count <= 1,
            "one notify releases the loop after at most one park, got {}",
            parks.count
        );
        assert_eq!(parks.buckets.iter().sum::<u64>(), parks.count);
    });
    report.assert_ok();
    assert!(
        report.distinct_interleavings >= 500,
        "explored only {} distinct interleavings",
        report.distinct_interleavings
    );
}

/// A faithful replica of the frontier growth claim/resolve/merge protocol
/// from `mmdiag-core`'s parallel `Set_Builder` sweep: two frontier shards
/// race to claim candidate nodes through [`ClaimBits::try_claim`], the
/// claim winner resolves by scanning the candidate's frontier witnesses in
/// ascending order, and a single-threaded merge re-sorts accepted pairs by
/// `(parent, candidate)`. Candidate 3 sits in both shards — the exact race
/// the claim bits exist for. Whatever the schedule: every candidate is
/// resolved exactly once, the merged layer equals the sequential answer,
/// rejected candidates hand their claim back while accepted ones keep it.
/// Deep seeded run, ≥ 1000 distinct interleavings.
#[test]
fn frontier_claim_resolve_merge_is_schedule_independent() {
    let report = check_random(0xF807_11E4, 1400, Config::deep(), || {
        // Frontier {0, 1}; per-shard candidate lists, overlapping on 3.
        let shards: [&[usize]; 2] = [&[2, 3], &[3, 4]];
        // Frontier witnesses of each candidate, ascending — the resolver
        // scans them in order and the FIRST agreeing witness becomes the
        // parent, whichever shard won the claim.
        fn witnesses(v: usize) -> &'static [usize] {
            match v {
                2 => &[0],
                3 => &[0, 1],
                4 => &[1],
                _ => &[],
            }
        }
        // Candidate 3's lowest witness disagrees (the scan must walk past
        // it); candidate 4's only witness disagrees (the reject path).
        fn agrees(w: usize, v: usize) -> bool {
            matches!((w, v), (0, 2) | (1, 3))
        }
        let pool = Pool::new(2);
        let claims = ClaimBits::new(5);
        let claims = &claims;
        let resolved: Vec<AtomicUsize> = (0..5).map(|_| AtomicUsize::new(0)).collect();
        let resolved = &resolved;
        let outcomes = pool.map(&shards, |_, chunk| {
            let mut accepted = Vec::new();
            let mut rejected = Vec::new();
            for &v in *chunk {
                if !claims.try_claim(v) {
                    continue; // a racing shard owns v; losers consult nothing
                }
                resolved[v].fetch_add(1, Ordering::SeqCst);
                match witnesses(v).iter().copied().find(|&w| agrees(w, v)) {
                    Some(w) => accepted.push((w, v)),
                    None => rejected.push(v),
                }
            }
            (accepted, rejected)
        });
        // The engine's single-threaded layer tail: concatenate shard
        // outcomes, then canonicalise by (parent, candidate).
        let mut accepted: Vec<(usize, usize)> =
            outcomes.iter().flat_map(|o| o.0.iter().copied()).collect();
        let mut rejected: Vec<usize> = outcomes.iter().flat_map(|o| o.1.iter().copied()).collect();
        accepted.sort_unstable();
        rejected.sort_unstable();
        assert_eq!(accepted, vec![(0, 2), (1, 3)], "merged layer is canonical");
        assert_eq!(rejected, vec![4]);
        for v in 2..5 {
            assert_eq!(
                resolved[v].load(Ordering::SeqCst),
                1,
                "candidate {v} must be resolved exactly once"
            );
        }
        // Rejected candidates give their claim back for the next round;
        // accepted ones keep it (their visited bit shadows it).
        for &v in &rejected {
            claims.clear(v);
            assert!(claims.try_claim(v), "cleared claim must be reclaimable");
        }
        assert!(!claims.try_claim(3), "accepted candidates keep their claim");
    });
    report.assert_ok();
    assert!(
        report.distinct_interleavings >= 1000,
        "explored only {} distinct interleavings",
        report.distinct_interleavings
    );
}

/// The same shape with the claim's atomicity deliberately broken — a
/// load/store pair instead of `ClaimBits::try_claim`'s single `fetch_or`.
/// Some schedule lets both shards pass the load before either store and
/// double-resolve the shared candidate; the explorer must find that
/// schedule and replaying it must reproduce the failure.
#[test]
fn frontier_nonatomic_claim_double_resolve_is_found_and_replays() {
    fn buggy() {
        let shards: [&[usize]; 2] = [&[3], &[3]];
        let pool = Pool::new(2);
        let flags: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        let resolved: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        let (flags, resolved) = (&flags, &resolved);
        pool.map(&shards, |_, chunk| {
            for &v in *chunk {
                // BUG (deliberate): test-then-set with a window between
                // the load and the store.
                if flags[v].load(Ordering::SeqCst) == 0 {
                    flags[v].store(1, Ordering::SeqCst);
                    resolved[v].fetch_add(1, Ordering::SeqCst);
                }
            }
        });
        assert_eq!(
            resolved[3].load(Ordering::SeqCst),
            1,
            "candidate 3 resolved exactly once"
        );
    }
    let report = check_random(0x0BAD_C1A1, 1400, Config::deep(), buggy);
    let failure = report
        .failure
        .expect("the explorer must find the double resolve");
    // Shrink-to-seed: the recorded schedule alone reproduces the race.
    let replayed = replay(&failure.schedule, buggy);
    let again = replayed
        .failure
        .expect("replaying the failing schedule must fail again");
    assert_eq!(again.schedule, failure.schedule);
}

/// The lowest-index-wins CAS reduction under the model: whatever the
/// schedule, the published minimum equals the sequential answer.
#[test]
fn pool_min_index_reduction_is_schedule_independent() {
    let report = check_random(0x313D_EC15, 600, Config::deep(), || {
        let pool = Pool::new(2);
        let got = pool.min_index_where(6, 2, |i| i >= 3);
        assert_eq!(got, Some(3));
    });
    report.assert_ok();
    assert!(
        report.distinct_interleavings >= 500,
        "{}",
        report.distinct_interleavings
    );
}
