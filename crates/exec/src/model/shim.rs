//! Instrumented stand-ins for the `std::sync` / `std::thread` surface the
//! executor uses, wired into the model scheduler.
//!
//! Design: every shim keeps its *data* in a real `std` primitive (so the
//! teardown of a failed execution stays memory-safe even when several
//! unwinding threads touch it) and layers model *bookkeeping* — owner,
//! waiter queues, scheduling points — on top. Under a healthy execution
//! exactly one virtual thread runs at a time, so the real primitives are
//! never contended; they exist for storage and for safety margins, not
//! for synchronization.
//!
//! No shim models weak memory orderings: every atomic runs `SeqCst` and
//! the `Ordering` arguments are accepted for signature compatibility only
//! (see the fidelity notes on [`crate::model`]).

use super::{ctx, sched_point};
use std::convert::Infallible;
use std::ops::{Deref, DerefMut};
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

fn current_id() -> usize {
    ctx().id
}

/// A model mutex: blocking acquisition is a scheduling point, contention
/// parks the virtual thread on the engine.
pub struct Mutex<T> {
    data: StdMutex<T>,
    book: StdMutex<MutexBook>,
}

#[derive(Default)]
struct MutexBook {
    owner: Option<usize>,
    waiters: Vec<usize>,
}

impl<T> Mutex<T> {
    /// Create a model mutex holding `t`.
    pub fn new(t: T) -> Self {
        Mutex {
            data: StdMutex::new(t),
            book: StdMutex::new(MutexBook::default()),
        }
    }

    /// Lock, parking the virtual thread while another one owns the mutex.
    /// Never poisons (matching `.lock().unwrap()` call sites).
    pub fn lock(&self) -> Result<MutexGuard<'_, T>, Infallible> {
        let me = current_id();
        sched_point(false);
        loop {
            {
                let mut book = self.book.lock().unwrap_or_else(|p| p.into_inner());
                if book.owner.is_none() {
                    book.owner = Some(me);
                    break;
                }
                book.waiters.push(me);
            }
            ctx().engine.block(me, "mutex");
        }
        Ok(MutexGuard {
            mx: self,
            inner: Some(self.data.lock().unwrap_or_else(|p| p.into_inner())),
        })
    }

    /// Consume the mutex, returning its data.
    pub fn into_inner(self) -> Result<T, Infallible> {
        Ok(self.data.into_inner().unwrap_or_else(|p| p.into_inner()))
    }

    /// Release bookkeeping: clear the owner and make every parked waiter
    /// runnable (they race to re-acquire when scheduled). Shared by guard
    /// drop and [`Condvar::wait`]; not itself a scheduling point.
    fn raw_unlock(&self) {
        let wake = {
            let mut book = self.book.lock().unwrap_or_else(|p| p.into_inner());
            book.owner = None;
            std::mem::take(&mut book.waiters)
        };
        if let Some(c) = super::CTX.with(|c| c.borrow().clone()) {
            c.engine.make_runnable(&wake);
        }
    }
}

/// Guard for [`Mutex`]; dropping it releases the lock and yields a
/// scheduling point (except while unwinding, where scheduling again could
/// double-panic).
pub struct MutexGuard<'a, T> {
    mx: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard not released")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard not released")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            self.mx.raw_unlock();
            if !std::thread::panicking() {
                sched_point(false);
            }
        }
    }
}

/// A model condvar. `wait` atomically registers the waiter, releases the
/// mutex and parks; a `wait` that nothing ever notifies is a deadlock the
/// engine reports — which is exactly how a lost wakeup surfaces.
pub struct Condvar {
    waiters: StdMutex<Vec<usize>>,
}

impl Condvar {
    /// Create a model condvar.
    pub fn new() -> Self {
        Condvar {
            waiters: StdMutex::new(Vec::new()),
        }
    }

    /// Park until notified, releasing `guard` while parked and
    /// re-acquiring before returning. No spurious wakeups under the model.
    pub fn wait<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
    ) -> Result<MutexGuard<'a, T>, Infallible> {
        let me = current_id();
        let mx = guard.mx;
        // Register *before* releasing the mutex: a notifier that runs
        // between our release and our park must still see us.
        self.waiters
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(me);
        drop(guard.inner.take());
        mx.raw_unlock();
        ctx().engine.block(me, "condvar");
        mx.lock()
    }

    /// Wake one parked waiter (FIFO), if any.
    pub fn notify_one(&self) {
        let woken = {
            let mut w = self.waiters.lock().unwrap_or_else(|p| p.into_inner());
            if w.is_empty() {
                None
            } else {
                Some(w.remove(0))
            }
        };
        if let Some(t) = woken {
            ctx().engine.make_runnable(&[t]);
        }
        sched_point(false);
    }

    /// Wake every parked waiter.
    pub fn notify_all(&self) {
        let woken = std::mem::take(&mut *self.waiters.lock().unwrap_or_else(|p| p.into_inner()));
        ctx().engine.make_runnable(&woken);
        sched_point(false);
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Model atomics: real `SeqCst` atomics for storage, with a scheduling
/// point after every operation so the explorer can interleave between any
/// two shared-memory accesses (load-then-CAS races, flag/queue protocols).
pub mod atomic {
    use super::sched_point;
    use std::sync::atomic as real;

    pub use std::sync::atomic::Ordering;

    /// Model stand-in for [`std::sync::atomic::AtomicUsize`].
    pub struct AtomicUsize {
        v: real::AtomicUsize,
    }

    impl AtomicUsize {
        /// Create with an initial value.
        pub const fn new(v: usize) -> Self {
            AtomicUsize {
                v: real::AtomicUsize::new(v),
            }
        }

        /// Load (modelled `SeqCst`).
        pub fn load(&self, _order: Ordering) -> usize {
            let r = self.v.load(real::Ordering::SeqCst);
            sched_point(false);
            r
        }

        /// Store (modelled `SeqCst`).
        pub fn store(&self, val: usize, _order: Ordering) {
            self.v.store(val, real::Ordering::SeqCst);
            sched_point(false);
        }

        /// Add, returning the previous value.
        pub fn fetch_add(&self, val: usize, _order: Ordering) -> usize {
            let r = self.v.fetch_add(val, real::Ordering::SeqCst);
            sched_point(false);
            r
        }

        /// Subtract, returning the previous value.
        pub fn fetch_sub(&self, val: usize, _order: Ordering) -> usize {
            let r = self.v.fetch_sub(val, real::Ordering::SeqCst);
            sched_point(false);
            r
        }

        /// Bitwise OR, returning the previous value.
        pub fn fetch_or(&self, val: usize, _order: Ordering) -> usize {
            let r = self.v.fetch_or(val, real::Ordering::SeqCst);
            sched_point(false);
            r
        }

        /// Bitwise AND, returning the previous value.
        pub fn fetch_and(&self, val: usize, _order: Ordering) -> usize {
            let r = self.v.fetch_and(val, real::Ordering::SeqCst);
            sched_point(false);
            r
        }

        /// Compare-exchange (the model never fails spuriously).
        pub fn compare_exchange(
            &self,
            current: usize,
            new: usize,
            _success: Ordering,
            _failure: Ordering,
        ) -> Result<usize, usize> {
            let r = self.v.compare_exchange(
                current,
                new,
                real::Ordering::SeqCst,
                real::Ordering::SeqCst,
            );
            sched_point(false);
            r
        }

        /// Weak compare-exchange — same as the strong one under the model.
        pub fn compare_exchange_weak(
            &self,
            current: usize,
            new: usize,
            success: Ordering,
            failure: Ordering,
        ) -> Result<usize, usize> {
            self.compare_exchange(current, new, success, failure)
        }
    }

    /// Model stand-in for [`std::sync::atomic::AtomicBool`].
    pub struct AtomicBool {
        v: real::AtomicBool,
    }

    impl AtomicBool {
        /// Create with an initial value.
        pub const fn new(v: bool) -> Self {
            AtomicBool {
                v: real::AtomicBool::new(v),
            }
        }

        /// Load (modelled `SeqCst`).
        pub fn load(&self, _order: Ordering) -> bool {
            let r = self.v.load(real::Ordering::SeqCst);
            sched_point(false);
            r
        }

        /// Store (modelled `SeqCst`).
        pub fn store(&self, val: bool, _order: Ordering) {
            self.v.store(val, real::Ordering::SeqCst);
            sched_point(false);
        }
    }
}

/// Model thread spawning: each spawn registers a new virtual thread with
/// the engine of the *current* execution.
pub mod thread {
    use super::super::{ctx, sched_point};
    use super::current_id;
    use std::sync::{Arc, Mutex as StdMutex};

    /// Handle to a spawned virtual thread.
    pub struct JoinHandle<T> {
        id: usize,
        slot: Arc<StdMutex<Option<T>>>,
    }

    impl<T> JoinHandle<T> {
        /// Park until the virtual thread finishes; `Err` only when it
        /// died without producing a value (its panic is separately
        /// reported as the execution's failure).
        pub fn join(self) -> std::thread::Result<T> {
            let me = current_id();
            ctx().engine.join_vthread(me, self.id);
            match self.slot.lock().unwrap_or_else(|p| p.into_inner()).take() {
                Some(t) => Ok(t),
                None => Err(Box::new("model virtual thread panicked".to_string())),
            }
        }
    }

    /// Spawn a named virtual thread (the name is kept out of scheduling —
    /// it only ever mattered for debugger output).
    pub fn spawn_named<F, T>(name: String, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let _ = name;
        let slot = Arc::new(StdMutex::new(None));
        let out = Arc::clone(&slot);
        let id = ctx().engine.spawn_vthread(Box::new(move || {
            let v = f();
            *out.lock().unwrap_or_else(|p| p.into_inner()) = Some(v);
        }));
        sched_point(false);
        Ok(JoinHandle { id, slot })
    }

    /// Yield: a scheduling point that additionally deprioritises the
    /// yielding thread (see the fidelity notes on [`crate::model`]).
    pub fn yield_now() {
        sched_point(true);
    }
}
