//! A hand-rolled, offline, loom-style **bounded-interleaving model
//! checker** for the executor's synchronization protocols.
//!
//! Compiled only with the `model` feature. In that configuration the
//! [`crate::sync`] facade resolves to the shim primitives in [`shim`], and
//! every mutex acquisition, condvar wait/notify, atomic operation, spawn,
//! join and yield becomes a **scheduling point**: the code under test runs
//! on *virtual threads* (real OS threads of which exactly one is runnable
//! at a time, coordinated by a token-passing handshake), and at each
//! scheduling point a central [`Engine`] decides which virtual thread runs
//! next.
//!
//! Two exploration modes drive that decision:
//!
//! * [`check_exhaustive`] — depth-first enumeration of **every** schedule
//!   within the configured bounds (preemption budget, step budget,
//!   schedule cap). Right for small hand-built protocol models, where the
//!   full space is thousands of schedules.
//! * [`check_random`] — deep seeded-random exploration: each iteration
//!   derives a per-run seed from the root seed (SplitMix64, vendored-shim
//!   spirit), so a run of N iterations is **deterministic** given the root
//!   seed and reports how many *distinct* interleavings it visited. Right
//!   for the real [`crate::Pool`], whose park/steal loops are too long for
//!   exhaustive enumeration.
//!
//! Failures — a panic escaping a virtual thread, a deadlock (every
//! non-finished thread blocked), or a blown step budget (livelock) — stop
//! exploration and are reported as a [`Failure`] carrying the exact
//! schedule (the chosen virtual-thread id at every scheduling point) plus,
//! in random mode, the root seed and iteration. [`replay`] re-executes a
//! recorded schedule on demand, so a seeded failure shrinks to a single
//! deterministic reproduction — shrink-to-seed reporting.
//!
//! Model fidelity notes:
//!
//! * the interleaving semantics are **sequentially consistent** — the
//!   shims do not model weak memory orderings (every atomic runs as
//!   `SeqCst`); what is explored is the space of schedules, which is where
//!   lost wakeups, steal races and help-running deadlocks live;
//! * condvars do not wake spuriously under the model — a `wait` returns
//!   only after a notify (the protocols under test loop on predicates
//!   anyway, and a lost wakeup still manifests as a deadlock);
//! * `yield_now` deprioritises the yielding thread (it is only re-chosen
//!   when nothing else is runnable), mirroring loom's treatment, so
//!   help-first spin loops make progress instead of spinning the step
//!   budget away.

pub mod shim;

use std::cell::{Cell, RefCell};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// Panic payload used to unwind parked virtual threads during the
/// teardown of a failed (or deadlocked) execution. Never reported as a
/// failure itself.
struct AbortSignal;

thread_local! {
    /// The engine + virtual-thread id of the current OS thread, when it is
    /// a virtual thread of an active model execution.
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
    /// True while this OS thread runs model-execution code — used by the
    /// quiet panic hook to suppress the (expected, frequent) teardown and
    /// probe panics inside explorations.
    static IN_MODEL: Cell<bool> = const { Cell::new(false) };
}

#[derive(Clone)]
struct Ctx {
    engine: Arc<Engine>,
    id: usize,
}

/// The current virtual-thread context; panics with a diagnostic when a
/// shim primitive that *requires* scheduling (blocking, spawning) is used
/// outside a model execution.
fn ctx() -> Ctx {
    CTX.with(|c| c.borrow().clone()).expect(
        "model sync primitive used outside a model execution (wrap the test in model::check_*)",
    )
}

/// A scheduling point: hand the token to whichever virtual thread the
/// engine chooses next. No-op outside an execution (atomics in statics may
/// tick during process setup; only blocking primitives demand a context).
pub(crate) fn sched_point(yielded: bool) {
    if let Some(c) = CTX.with(|c| c.borrow().clone()) {
        c.engine.switch(c.id, yielded);
    }
}

/// SplitMix64 — the same tiny deterministic generator the vendored
/// `rand_chacha` shim uses for seed expansion.
#[derive(Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Exploration bounds.
#[derive(Clone, Debug)]
pub struct Config {
    /// Scheduling points allowed per execution before it is reported as a
    /// livelock failure.
    pub max_steps: usize,
    /// Preemption budget per execution (exhaustive mode): once spent, a
    /// runnable current thread keeps running at free decision points.
    /// `None` = unbounded (the default for random mode).
    pub max_preemptions: Option<usize>,
    /// Cap on schedules an exhaustive exploration may enumerate; hitting
    /// it sets [`Report::truncated`] instead of failing.
    pub max_schedules: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_steps: 50_000,
            max_preemptions: Some(3),
            max_schedules: 200_000,
        }
    }
}

impl Config {
    /// Bounds for deep seeded-random runs: no preemption budget (random
    /// exploration relies on schedule diversity, which a preemption cap
    /// collapses), default step and schedule limits.
    pub fn deep() -> Self {
        Config {
            max_preemptions: None,
            ..Config::default()
        }
    }
}

/// A failing schedule, reproducible on demand via [`replay`].
#[derive(Clone, Debug)]
pub struct Failure {
    /// What went wrong: the escaped panic message, or a deadlock / step
    /// budget report with per-thread blocking reasons.
    pub message: String,
    /// The chosen virtual-thread id at every scheduling point — feed to
    /// [`replay`] to reproduce this exact execution.
    pub schedule: Vec<usize>,
    /// Root seed of the random exploration that found it, if any.
    pub seed: Option<u64>,
    /// Iteration (within the seeded run) that found it, if any.
    pub iteration: Option<usize>,
}

/// Outcome of an exploration.
#[derive(Clone, Debug)]
pub struct Report {
    /// Executions actually run.
    pub executions: usize,
    /// Number of *distinct* schedules among them (trace-hash cardinality).
    pub distinct_interleavings: usize,
    /// True when an exhaustive enumeration stopped at `max_schedules`
    /// without exhausting the space.
    pub truncated: bool,
    /// The first failure found, if any; exploration stops on it.
    pub failure: Option<Failure>,
}

impl Report {
    /// Panic (in the controller — a plain test failure) when the
    /// exploration found a failing schedule, printing the reproduction
    /// recipe.
    pub fn assert_ok(&self) {
        if let Some(f) = &self.failure {
            panic!(
                "model exploration failed after {} execution(s): {}\n  \
                 reproduce with model::replay(&{:?}, ..){}",
                self.executions,
                f.message,
                f.schedule,
                match (f.seed, f.iteration) {
                    (Some(s), Some(i)) => format!("\n  found by seed {s:#x} at iteration {i}"),
                    _ => String::new(),
                },
            );
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked(&'static str),
    Finished,
}

struct ThreadRec {
    status: Status,
    /// Threads blocked in `join` on this one.
    joiners: Vec<usize>,
}

/// Where free scheduling choices come from.
enum ChoiceSource {
    /// Replay `prefix` (DFS bookkeeping: (chosen index, option count)),
    /// then take option 0 and extend the record.
    Dfs {
        prefix: Vec<(usize, usize)>,
        pos: usize,
    },
    /// Uniform choice from a per-run deterministic generator.
    Random(SplitMix64),
    /// Force the recorded thread ids of a previous run.
    Trace { tids: Vec<usize>, pos: usize },
}

struct EngineState {
    threads: Vec<ThreadRec>,
    current: usize,
    live: usize,
    steps: usize,
    preemptions: usize,
    /// Chosen virtual-thread id at every scheduling point.
    trace: Vec<usize>,
    /// (chosen index, option count) at every *free* (branching) decision —
    /// the DFS frontier bookkeeping.
    decisions: Vec<(usize, usize)>,
    source: ChoiceSource,
    failure: Option<String>,
    /// Set on failure: parked threads unwind via [`AbortSignal`] instead
    /// of waiting for turns that will never come.
    aborting: bool,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

struct Engine {
    st: StdMutex<EngineState>,
    cv: StdCondvar,
    cfg: Config,
}

impl Engine {
    fn new(cfg: Config, source: ChoiceSource) -> Arc<Self> {
        Arc::new(Engine {
            st: StdMutex::new(EngineState {
                threads: Vec::new(),
                current: 0,
                live: 0,
                steps: 0,
                preemptions: 0,
                trace: Vec::new(),
                decisions: Vec::new(),
                source,
                failure: None,
                aborting: false,
                os_handles: Vec::new(),
            }),
            cv: StdCondvar::new(),
            cfg,
        })
    }

    fn lock(&self) -> StdMutexGuard<'_, EngineState> {
        self.st.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Record a failure (first one wins), flip to teardown mode, wake
    /// every parked thread so it can unwind.
    fn fail_locked(&self, st: &mut EngineState, message: String) {
        if st.failure.is_none() {
            st.failure = Some(message);
        }
        st.aborting = true;
        self.cv.notify_all();
    }

    /// Pick the next thread to run. `from` is the deciding thread;
    /// `from_runnable` tells whether it is itself still a candidate.
    /// Returns `None` when nothing is runnable (deadlock — unless all
    /// finished, which callers handle via `live`).
    fn pick_locked(&self, st: &mut EngineState, from: usize, yielded: bool) -> Option<usize> {
        let mut options: Vec<usize> = (0..st.threads.len())
            .filter(|&t| st.threads[t].status == Status::Runnable)
            .collect();
        if options.is_empty() {
            return None;
        }
        // A yielding thread asks *not* to be rescheduled while anything
        // else can run (loom-style deprioritisation; kills spin cycles).
        if yielded && options.len() > 1 {
            options.retain(|&t| t != from);
        }
        // Current-first ordering: option 0 = "keep running `from`" when it
        // is runnable, so a preemption is exactly "index != 0 while
        // options[0] == from".
        if let Some(p) = options.iter().position(|&t| t == from) {
            options.rotate_left(p);
        }
        let from_first = options[0] == from;
        let idx = match &mut st.source {
            ChoiceSource::Trace { tids, pos } => {
                let want = tids.get(*pos).copied();
                *pos += 1;
                want.and_then(|w| options.iter().position(|&t| t == w))
                    .unwrap_or(0)
            }
            _ if options.len() == 1 => 0,
            _ if from_first
                && self
                    .cfg
                    .max_preemptions
                    .is_some_and(|b| st.preemptions >= b) =>
            {
                0
            }
            ChoiceSource::Dfs { prefix, pos } => {
                let i = if *pos < prefix.len() {
                    let (i, n) = prefix[*pos];
                    debug_assert_eq!(
                        n,
                        options.len(),
                        "DFS replay diverged: the execution is not deterministic"
                    );
                    i.min(options.len() - 1)
                } else {
                    0
                };
                *pos += 1;
                st.decisions.push((i, options.len()));
                i
            }
            ChoiceSource::Random(rng) => {
                let i = (rng.next() % options.len() as u64) as usize;
                st.decisions.push((i, options.len()));
                i
            }
        };
        if from_first && idx != 0 {
            st.preemptions += 1;
        }
        let chosen = options[idx];
        st.trace.push(chosen);
        st.steps += 1;
        Some(chosen)
    }

    /// Scheduling point for a thread that stays runnable.
    fn switch(&self, me: usize, yielded: bool) {
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(AbortSignal);
        }
        if st.steps >= self.cfg.max_steps {
            let msg = format!(
                "step budget ({}) exhausted — livelock or an unbounded schedule",
                self.cfg.max_steps
            );
            self.fail_locked(&mut st, msg);
            drop(st);
            std::panic::panic_any(AbortSignal);
        }
        // `me` is runnable, so pick cannot come back empty.
        let next = self
            .pick_locked(&mut st, me, yielded)
            .expect("a runnable thread is deciding");
        st.current = next;
        if next != me {
            self.cv.notify_all();
            self.wait_for_turn_locked(st, me);
        }
    }

    /// Block the current thread (`why` = mutex/condvar/join) and hand the
    /// token over; returns once the thread is runnable *and* scheduled.
    fn block(&self, me: usize, why: &'static str) {
        let mut st = self.lock();
        if st.aborting {
            drop(st);
            std::panic::panic_any(AbortSignal);
        }
        st.threads[me].status = Status::Blocked(why);
        match self.pick_locked(&mut st, me, false) {
            Some(next) => {
                st.current = next;
                self.cv.notify_all();
            }
            None => {
                let msg = if st.live == 0 {
                    unreachable!("blocking thread is live")
                } else {
                    format!("deadlock: {}", Self::describe_blocked(&st))
                };
                self.fail_locked(&mut st, msg);
                drop(st);
                std::panic::panic_any(AbortSignal);
            }
        }
        self.wait_for_turn_locked(st, me);
    }

    fn describe_blocked(st: &EngineState) -> String {
        let parts: Vec<String> = st
            .threads
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match t.status {
                Status::Blocked(w) => Some(format!("thread {i} blocked on {w}")),
                _ => None,
            })
            .collect();
        format!(
            "every live virtual thread is parked ({}) after schedule {:?}",
            parts.join(", "),
            st.trace
        )
    }

    /// Wait (on the real condvar) until this thread holds the token.
    /// Unwinds with [`AbortSignal`] when the execution is being torn down.
    fn wait_for_turn_locked(&self, mut st: StdMutexGuard<'_, EngineState>, me: usize) {
        loop {
            if st.aborting {
                drop(st);
                std::panic::panic_any(AbortSignal);
            }
            if st.current == me && st.threads[me].status == Status::Runnable {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn wait_for_turn(&self, me: usize) {
        let st = self.lock();
        self.wait_for_turn_locked(st, me);
    }

    /// Mark blocked threads runnable again (mutex release, notify, thread
    /// exit waking joiners). Not a scheduling point by itself.
    fn make_runnable(&self, tids: &[usize]) {
        if tids.is_empty() {
            return;
        }
        let mut st = self.lock();
        for &t in tids {
            if matches!(st.threads[t].status, Status::Blocked(_)) {
                st.threads[t].status = Status::Runnable;
            }
        }
    }

    /// Register + start a new virtual thread running `f`.
    fn spawn_vthread(self: &Arc<Self>, f: Box<dyn FnOnce() + Send>) -> usize {
        let mut st = self.lock();
        let id = st.threads.len();
        st.threads.push(ThreadRec {
            status: Status::Runnable,
            joiners: Vec::new(),
        });
        st.live += 1;
        let eng = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("mmdiag-model-{id}"))
            .spawn(move || {
                CTX.with(|c| {
                    *c.borrow_mut() = Some(Ctx {
                        engine: Arc::clone(&eng),
                        id,
                    })
                });
                IN_MODEL.with(|m| m.set(true));
                let result = catch_unwind(AssertUnwindSafe(|| {
                    eng.wait_for_turn(id);
                    f();
                }));
                if let Err(payload) = result {
                    if !payload.is::<AbortSignal>() {
                        let msg = panic_message(payload.as_ref());
                        let mut st = eng.lock();
                        let trace = st.trace.clone();
                        eng.fail_locked(
                            &mut st,
                            format!("virtual thread {id} panicked: {msg} (schedule {trace:?})"),
                        );
                    }
                }
                eng.thread_exit(id);
            })
            .expect("spawning a model virtual thread");
        st.os_handles.push(handle);
        id
    }

    fn thread_exit(&self, me: usize) {
        let mut st = self.lock();
        st.threads[me].status = Status::Finished;
        st.live -= 1;
        let joiners = std::mem::take(&mut st.threads[me].joiners);
        for t in joiners {
            if matches!(st.threads[t].status, Status::Blocked(_)) {
                st.threads[t].status = Status::Runnable;
            }
        }
        if st.aborting || st.live == 0 {
            self.cv.notify_all();
            return;
        }
        match self.pick_locked(&mut st, me, false) {
            Some(next) => {
                st.current = next;
                self.cv.notify_all();
            }
            None => {
                let msg = format!("deadlock: {}", Self::describe_blocked(&st));
                self.fail_locked(&mut st, msg);
            }
        }
    }

    /// Block `me` until virtual thread `target` has finished.
    fn join_vthread(&self, me: usize, target: usize) {
        loop {
            {
                let mut st = self.lock();
                if st.aborting {
                    drop(st);
                    std::panic::panic_any(AbortSignal);
                }
                if st.threads[target].status == Status::Finished {
                    break;
                }
                st.threads[target].joiners.push(me);
            }
            self.block(me, "join");
        }
        sched_point(false);
    }

    /// Controller side: wait until every virtual thread has finished.
    fn wait_all_finished(&self) {
        let mut st = self.lock();
        while st.live > 0 {
            st = self.cv.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Install (once per process) a panic hook that stays quiet for panics
/// raised inside model executions — teardown [`AbortSignal`]s and probed
/// failures would otherwise flood the test output — and defers to the
/// previous hook for everything else.
fn install_quiet_hook() {
    use std::sync::OnceLock;
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if IN_MODEL.with(|m| m.get()) {
                return;
            }
            prev(info);
        }));
    });
}

struct RunOutcome {
    trace: Vec<usize>,
    decisions: Vec<(usize, usize)>,
    failure: Option<String>,
}

/// Run one complete execution of `f` under the given choice source.
fn run_once(cfg: &Config, source: ChoiceSource, f: &Arc<dyn Fn() + Send + Sync>) -> RunOutcome {
    install_quiet_hook();
    let engine = Engine::new(cfg.clone(), source);
    let body = Arc::clone(f);
    engine.spawn_vthread(Box::new(move || body()));
    engine.wait_all_finished();
    let (trace, decisions, failure, handles) = {
        let mut st = engine.lock();
        (
            std::mem::take(&mut st.trace),
            std::mem::take(&mut st.decisions),
            st.failure.clone(),
            std::mem::take(&mut st.os_handles),
        )
    };
    for h in handles {
        let _ = h.join();
    }
    RunOutcome {
        trace,
        decisions,
        failure,
    }
}

fn trace_hash(trace: &[usize]) -> u64 {
    let mut h = DefaultHasher::new();
    trace.hash(&mut h);
    h.finish()
}

/// Depth-first enumeration of every schedule within `cfg`'s bounds.
///
/// Stops at the first failing schedule; otherwise runs until the decision
/// tree is exhausted or `cfg.max_schedules` executions have run (reported
/// via [`Report::truncated`]).
pub fn check_exhaustive<F>(cfg: Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut stack: Vec<(usize, usize)> = Vec::new();
    let mut executions = 0usize;
    let mut distinct = HashSet::new();
    let mut truncated = false;
    loop {
        let out = run_once(
            &cfg,
            ChoiceSource::Dfs {
                prefix: stack.clone(),
                pos: 0,
            },
            &f,
        );
        executions += 1;
        distinct.insert(trace_hash(&out.trace));
        if let Some(message) = out.failure {
            return Report {
                executions,
                distinct_interleavings: distinct.len(),
                truncated,
                failure: Some(Failure {
                    message,
                    schedule: out.trace,
                    seed: None,
                    iteration: None,
                }),
            };
        }
        if executions >= cfg.max_schedules {
            truncated = true;
            break;
        }
        // Backtrack: advance the deepest decision that still has an
        // untried option; drop fully-explored tails.
        stack = out.decisions;
        loop {
            match stack.last_mut() {
                None => break,
                Some((i, n)) if *i + 1 < *n => {
                    *i += 1;
                    break;
                }
                Some(_) => {
                    stack.pop();
                }
            }
        }
        if stack.is_empty() {
            break;
        }
    }
    Report {
        executions,
        distinct_interleavings: distinct.len(),
        truncated,
        failure: None,
    }
}

/// Seeded-random deep exploration: `iterations` executions whose schedules
/// are fully determined by `seed`. The report's distinct-interleaving
/// count is therefore reproducible, and any failure carries the seed and
/// iteration that found it in addition to the replayable schedule.
pub fn check_random<F>(seed: u64, iterations: usize, cfg: Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut root = SplitMix64::new(seed);
    let mut executions = 0usize;
    let mut distinct = HashSet::new();
    for iteration in 0..iterations {
        let run_seed = root.next();
        let out = run_once(&cfg, ChoiceSource::Random(SplitMix64::new(run_seed)), &f);
        executions += 1;
        distinct.insert(trace_hash(&out.trace));
        if let Some(message) = out.failure {
            return Report {
                executions,
                distinct_interleavings: distinct.len(),
                truncated: false,
                failure: Some(Failure {
                    message,
                    schedule: out.trace,
                    seed: Some(seed),
                    iteration: Some(iteration),
                }),
            };
        }
    }
    Report {
        executions,
        distinct_interleavings: distinct.len(),
        truncated: false,
        failure: None,
    }
}

/// Re-execute one recorded schedule (from [`Failure::schedule`]) — the
/// deterministic reproduction step of shrink-to-seed reporting.
pub fn replay<F>(schedule: &[usize], f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let out = run_once(
        &Config {
            max_preemptions: None,
            ..Config::default()
        },
        ChoiceSource::Trace {
            tids: schedule.to_vec(),
            pos: 0,
        },
        &f,
    );
    Report {
        executions: 1,
        distinct_interleavings: 1,
        truncated: false,
        failure: out.failure.map(|message| Failure {
            message,
            schedule: out.trace,
            seed: None,
            iteration: None,
        }),
    }
}
