//! Parsed-once environment knobs for the whole workspace.
//!
//! Four PRs of growth left `MMDIAG_*` handling scattered: the pool size
//! was parsed in this crate, the auto-backend cutover in `mmdiag-core`
//! (twice — resolution *and* override both re-read the variable), the
//! quick-mode flag in the bench binary *and* the distsim property suite,
//! and the spot-checker sample rate in the bench library. Each site had
//! its own notion of what a malformed value means.
//!
//! This module is now the single reader: [`knobs`] parses the process
//! environment exactly once (behind a `OnceLock`) into a plain [`Knobs`]
//! struct, and every consumer asks that struct. The parse rules are pure
//! functions of the raw strings ([`Knobs::parse`]), so malformed-value
//! behaviour is unit-testable without touching the process environment:
//!
//! | Variable | Accepted | Malformed / unset |
//! | --- | --- | --- |
//! | `MMDIAG_POOL_THREADS` | integer, clamped to `1..=64` | ignored (`None`) |
//! | `MMDIAG_CUTOVER` | positive integer | ignored (`None`) |
//! | `MMDIAG_QUICK` | any non-empty value except `"0"` | `false` |
//! | `MMDIAG_SAMPLES` | positive integer | ignored (`None`) |
//! | `MMDIAG_TRACE` | any non-empty value except `"0"` | `false` |
//! | `MMDIAG_GROW_CUTOVER` | positive integer | ignored (`None`) |
//! | `MMDIAG_STATS` | positive integer (milliseconds) | ignored (`None`) |
//! | `MMDIAG_EPOCHS` | positive integer | ignored (`None`) |

use std::sync::OnceLock;

/// The workspace's environment knobs, parsed once per process.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct Knobs {
    /// `MMDIAG_POOL_THREADS` — worker count for the process-wide pool,
    /// clamped to `1..=64`. `None` when unset or unparsable.
    pub pool_threads: Option<usize>,
    /// `MMDIAG_CUTOVER` — node count below which the auto backend stays
    /// sequential. `None` when unset, unparsable, or zero.
    pub cutover: Option<usize>,
    /// `MMDIAG_QUICK` — shrink every harness to its smoke subset. Set and
    /// non-empty and not `"0"` means `true`.
    pub quick: bool,
    /// `MMDIAG_SAMPLES` — spot-checker samples per part. `None` when
    /// unset, unparsable, or zero.
    pub samples_per_part: Option<usize>,
    /// `MMDIAG_TRACE` — enable the `mmdiag-trace` observability layer
    /// process-wide: sessions trace by default and pools record
    /// per-worker stats. Same truthiness rules as `MMDIAG_QUICK`.
    pub trace: bool,
    /// `MMDIAG_GROW_CUTOVER` — node count below which the pooled driver
    /// keeps the sequential growth tail instead of the frontier-parallel
    /// sweep. `None` when unset, unparsable, or zero.
    pub grow_cutover: Option<usize>,
    /// `MMDIAG_STATS` — sampling interval, in milliseconds, for the
    /// fleet stats reporter (`mmdiag_exec::stats`): when set, consumers
    /// that host a [`mmdiag_trace::MetricsHub`] stream merged metric
    /// deltas as JSON lines at this cadence. `None` when unset,
    /// unparsable, or zero (no reporter).
    pub stats: Option<u64>,
    /// `MMDIAG_EPOCHS` — epoch count for online-monitoring harnesses
    /// (the bench `--online` axis and the `online_monitor` example).
    /// `None` when unset, unparsable, or zero — consumers fall back to
    /// their own per-mode default.
    pub epochs: Option<usize>,
}

impl Knobs {
    /// Parse raw variable values (as [`std::env::var`] would hand them
    /// over: `None` = unset) into a [`Knobs`]. Pure — the unit tests feed
    /// malformed strings here without mutating the process environment.
    /// One positional argument per `MMDIAG_*` variable, in declaration
    /// order — a struct-of-options would just move the same list.
    #[allow(clippy::too_many_arguments)]
    pub fn parse(
        pool_threads: Option<&str>,
        cutover: Option<&str>,
        quick: Option<&str>,
        samples: Option<&str>,
        trace: Option<&str>,
        grow_cutover: Option<&str>,
        stats: Option<&str>,
        epochs: Option<&str>,
    ) -> Self {
        let truthy = |v: Option<&str>| v.is_some_and(|v| !v.is_empty() && v != "0");
        let positive = |v: Option<&str>| {
            v.and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
        };
        Knobs {
            pool_threads: pool_threads
                .and_then(|v| v.trim().parse::<usize>().ok())
                .map(|n| n.clamp(1, 64)),
            cutover: positive(cutover),
            quick: truthy(quick),
            samples_per_part: positive(samples),
            trace: truthy(trace),
            grow_cutover: positive(grow_cutover),
            stats: stats
                .and_then(|v| v.trim().parse::<u64>().ok())
                .filter(|&n| n > 0),
            epochs: positive(epochs),
        }
    }

    /// Read the process environment (uncached — [`knobs`] is the cached
    /// front door).
    pub fn from_env() -> Self {
        let get = |k: &str| std::env::var(k).ok();
        Knobs::parse(
            get("MMDIAG_POOL_THREADS").as_deref(),
            get("MMDIAG_CUTOVER").as_deref(),
            get("MMDIAG_QUICK").as_deref(),
            get("MMDIAG_SAMPLES").as_deref(),
            get("MMDIAG_TRACE").as_deref(),
            get("MMDIAG_GROW_CUTOVER").as_deref(),
            get("MMDIAG_STATS").as_deref(),
            get("MMDIAG_EPOCHS").as_deref(),
        )
    }
}

/// The process-wide knobs, parsed from the environment on first call and
/// cached for the lifetime of the process. Every `MMDIAG_*` consumer in
/// the workspace reads through here, so one `export` affects them all
/// consistently — and none of them re-reads the environment afterwards.
pub fn knobs() -> &'static Knobs {
    static KNOBS: OnceLock<Knobs> = OnceLock::new();
    KNOBS.get_or_init(Knobs::from_env)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_environment_yields_defaults() {
        let k = Knobs::parse(None, None, None, None, None, None, None, None);
        assert_eq!(k.pool_threads, None);
        assert_eq!(k.cutover, None);
        assert!(!k.quick);
        assert_eq!(k.samples_per_part, None);
        assert!(!k.trace);
        assert_eq!(k.grow_cutover, None);
        assert_eq!(k.stats, None);
        assert_eq!(k.epochs, None);
    }

    #[test]
    fn epochs_parses_positive_integers_only() {
        let epochs = |v| Knobs::parse(None, None, None, None, None, None, None, v).epochs;
        assert_eq!(epochs(Some("24")), Some(24));
        assert_eq!(epochs(Some(" 8 ")), Some(8), "trimmed like the others");
        assert_eq!(
            epochs(Some("0")),
            None,
            "a zero-epoch monitor is no monitor"
        );
        for bad in ["", "abc", "-3", "1.5", "0x10", "1e3"] {
            assert_eq!(epochs(Some(bad)), None, "epochs {bad:?}");
        }
        assert_eq!(epochs(None), None);
    }

    #[test]
    fn well_formed_values_parse() {
        let k = Knobs::parse(
            Some("6"),
            Some("2048"),
            Some("1"),
            Some("5"),
            Some("1"),
            Some("65536"),
            None,
            Some("32"),
        );
        assert_eq!(k.pool_threads, Some(6));
        assert_eq!(k.cutover, Some(2048));
        assert!(k.quick);
        assert_eq!(k.samples_per_part, Some(5));
        assert!(k.trace);
        assert_eq!(k.grow_cutover, Some(65536));
        assert_eq!(k.epochs, Some(32));
    }

    #[test]
    fn trace_flag_shares_quick_truthiness() {
        let trace = |v| Knobs::parse(None, None, None, None, v, None, None, None).trace;
        assert!(trace(Some("1")));
        assert!(trace(Some("chrome")));
        assert!(!trace(Some("0")));
        assert!(!trace(Some("")));
        assert!(!trace(None));
    }

    #[test]
    fn pool_threads_is_clamped_not_rejected() {
        assert_eq!(
            Knobs::parse(Some("0"), None, None, None, None, None, None, None).pool_threads,
            Some(1)
        );
        assert_eq!(
            Knobs::parse(Some("999"), None, None, None, None, None, None, None).pool_threads,
            Some(64)
        );
        // Whitespace survives the historical `.trim()` behaviour.
        assert_eq!(
            Knobs::parse(Some(" 4 "), None, None, None, None, None, None, None).pool_threads,
            Some(4)
        );
    }

    #[test]
    fn malformed_integers_are_ignored() {
        for bad in ["", "abc", "-3", "1.5", "0x10", "1e3", "१०"] {
            let k = Knobs::parse(
                Some(bad),
                Some(bad),
                None,
                Some(bad),
                None,
                Some(bad),
                None,
                None,
            );
            assert_eq!(k.pool_threads, None, "pool_threads {bad:?}");
            assert_eq!(k.cutover, None, "cutover {bad:?}");
            assert_eq!(k.samples_per_part, None, "samples {bad:?}");
            assert_eq!(k.grow_cutover, None, "grow_cutover {bad:?}");
        }
    }

    #[test]
    fn zero_cutover_and_zero_samples_are_rejected() {
        let k = Knobs::parse(
            None,
            Some("0"),
            None,
            Some("0"),
            None,
            Some("0"),
            None,
            None,
        );
        assert_eq!(k.cutover, None, "a zero cutover would disable sequential");
        assert_eq!(k.samples_per_part, None);
        assert_eq!(
            k.grow_cutover, None,
            "a zero grow cutover would force the frontier sweep on every size"
        );
    }

    #[test]
    fn grow_cutover_parses_like_cutover_but_independently() {
        let k = Knobs::parse(
            None,
            Some("512"),
            None,
            None,
            None,
            Some(" 1048576 "),
            None,
            None,
        );
        assert_eq!(k.cutover, Some(512));
        assert_eq!(k.grow_cutover, Some(1048576), "trimmed and parsed");
        let k = Knobs::parse(None, None, None, None, None, Some("7"), None, None);
        assert_eq!(k.cutover, None, "grow knob must not leak into cutover");
        assert_eq!(k.grow_cutover, Some(7));
    }

    #[test]
    fn stats_interval_parses_positive_milliseconds_only() {
        let stats = |v| Knobs::parse(None, None, None, None, None, None, v, None).stats;
        assert_eq!(stats(Some("250")), Some(250));
        assert_eq!(stats(Some(" 50 ")), Some(50), "trimmed like the others");
        assert_eq!(stats(Some("0")), None, "zero would busy-spin the sampler");
        assert_eq!(stats(Some("abc")), None);
        assert_eq!(stats(Some("-5")), None);
        assert_eq!(stats(None), None);
    }

    #[test]
    fn quick_flag_semantics_match_the_historical_parse() {
        // The bench binary historically treated any non-empty value except
        // "0" as on — including junk like "false".
        assert!(Knobs::parse(None, None, Some("1"), None, None, None, None, None).quick);
        assert!(Knobs::parse(None, None, Some("yes"), None, None, None, None, None).quick);
        assert!(Knobs::parse(None, None, Some("false"), None, None, None, None, None).quick);
        assert!(!Knobs::parse(None, None, Some("0"), None, None, None, None, None).quick);
        assert!(!Knobs::parse(None, None, Some(""), None, None, None, None, None).quick);
        assert!(!Knobs::parse(None, None, None, None, None, None, None, None).quick);
    }

    #[test]
    fn from_env_agrees_with_knobs_cache() {
        // Whatever the test environment holds, the cached view and a fresh
        // read must agree (no knob is set in CI, so both are defaults).
        assert_eq!(*knobs(), Knobs::from_env());
    }
}
