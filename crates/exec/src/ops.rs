//! Deterministic data-parallel combinators built on [`Pool::scope`]:
//! parallel-for, parallel-map and the lowest-index-wins search reduction
//! the diagnosis driver needs.

use crate::pool::Pool;
use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::Mutex;
use std::ops::Range;

impl Pool {
    /// Chunk size that gives every worker a few chunks to steal without
    /// drowning the queues in tiny tasks.
    fn chunk_for(&self, n: usize) -> usize {
        n.div_ceil(self.threads() * 4).max(1)
    }

    /// Run `f` over every index of `range`, in parallel chunks. Order of
    /// execution is unspecified; completion of the call is a barrier.
    pub fn for_each_index<F>(&self, range: Range<usize>, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let n = range.end.saturating_sub(range.start);
        if n == 0 {
            return;
        }
        let chunk = self.chunk_for(n);
        let f = &f;
        self.scope(|s| {
            let mut lo = range.start;
            while lo < range.end {
                let hi = (lo + chunk).min(range.end);
                s.spawn(move || {
                    for i in lo..hi {
                        f(i);
                    }
                });
                lo = hi;
            }
        });
    }

    /// Parallel map over a slice, returning results **in input order** —
    /// chunks are computed concurrently, then stitched back by their start
    /// offset, so the output is bit-identical to the sequential map.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let chunk = self.chunk_for(n);
        let pieces: Mutex<Vec<(usize, Vec<U>)>> = Mutex::new(Vec::with_capacity(n.div_ceil(chunk)));
        {
            let f = &f;
            let pieces = &pieces;
            self.scope(|s| {
                let mut lo = 0usize;
                while lo < n {
                    let hi = (lo + chunk).min(n);
                    let slice = &items[lo..hi];
                    s.spawn(move || {
                        let out: Vec<U> = slice
                            .iter()
                            .enumerate()
                            .map(|(off, item)| f(lo + off, item))
                            .collect();
                        pieces.lock().unwrap().push((lo, out));
                    });
                    lo = hi;
                }
            });
        }
        let mut pieces = pieces.into_inner().unwrap();
        pieces.sort_unstable_by_key(|(lo, _)| *lo);
        let mut out = Vec::with_capacity(n);
        for (_, mut piece) in pieces {
            out.append(&mut piece);
        }
        out
    }

    /// Find the **smallest** index in `0..n` satisfying `pred`, probing on
    /// up to `width` strided lanes with a shared fetch-min (CAS loop) for
    /// early cut-off — the pooled generalisation of the parallel driver's
    /// certified-part search.
    ///
    /// Deterministic: lane `t` scans `t, t + width, …` in ascending order
    /// and a lane only skips an index when a *smaller* satisfied index is
    /// already published, so no index below the final answer goes
    /// unevaluated and the answer equals the sequential scan's. (Which
    /// indices *above* the answer get probed — and therefore any
    /// side-effect counts inside `pred` — does depend on scheduling.)
    pub fn min_index_where<F>(&self, n: usize, width: usize, pred: F) -> Option<usize>
    where
        F: Fn(usize) -> bool + Sync,
    {
        if n == 0 {
            return None;
        }
        let width = width.clamp(1, n);
        let best = AtomicUsize::new(usize::MAX);
        {
            let best = &best;
            let pred = &pred;
            self.scope(|s| {
                for lane in 0..width {
                    s.spawn(move || {
                        let mut i = lane;
                        while i < n {
                            if best.load(Ordering::Acquire) < i {
                                // A smaller satisfied index exists; nothing
                                // this lane can still find would win.
                                break;
                            }
                            if pred(i) {
                                let mut cur = best.load(Ordering::Acquire);
                                while i < cur {
                                    match best.compare_exchange_weak(
                                        cur,
                                        i,
                                        Ordering::AcqRel,
                                        Ordering::Acquire,
                                    ) {
                                        Ok(_) => break,
                                        Err(actual) => cur = actual,
                                    }
                                }
                                break;
                            }
                            i += width;
                        }
                    });
                }
            });
        }
        match best.load(Ordering::Acquire) {
            usize::MAX => None,
            i => Some(i),
        }
    }
}
