//! The worker pool: threads spawned once, per-worker deques, stealing.
//!
//! Scheduling layout (the offline stand-in for rayon's core loop):
//!
//! * every worker owns a deque; tasks it spawns go to the *back* of its own
//!   deque and are popped LIFO (cache-friendly for recursive fan-out);
//! * tasks submitted from outside the pool land in a shared injector queue;
//! * an idle worker first drains its own deque, then the injector, then
//!   *steals* from the front (FIFO — the oldest, largest units of work) of
//!   the other workers' deques, scanning round-robin from its own index;
//! * with nothing to do anywhere it parks on a condvar; every push notifies.
//!
//! The deques are mutex-protected `VecDeque`s rather than lock-free
//! Chase-Lev buffers: the workspace targets correctness and reuse (no
//! per-call thread spawning) over peak steal throughput, and a mutex held
//! for a push/pop is uncontended in the common path.

use crate::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use crate::sync::thread::JoinHandle;
use crate::sync::{Arc, Condvar, Mutex};
use mmdiag_trace::{bucket_index, clock, HistogramSummary, BUCKETS};
use std::cell::Cell;
use std::collections::VecDeque;

/// A unit of work, lifetime-erased by [`crate::scope::Scope::spawn`].
pub(crate) type Task = Box<dyn FnOnce() + Send + 'static>;

/// Monotonic pool ids so a worker thread can tell *which* pool it belongs
/// to (nested/multiple pools coexist in the test-suite).
static NEXT_POOL_ID: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    /// `(pool id, worker index)` of the current thread, if it is a worker.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

pub(crate) struct Shared {
    /// Tasks submitted from non-worker threads.
    injector: Mutex<VecDeque<Task>>,
    /// One deque per worker; workers push/pop their own back, thieves pop
    /// the front.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Parking lot: workers wait here when every queue is empty.
    sleep: Mutex<()>,
    wake: Condvar,
    /// Number of workers currently parked (or committing to park) on
    /// `wake` — lets [`Shared::notify`] skip the lock when nobody sleeps.
    sleepers: AtomicUsize,
    shutdown: AtomicBool,
    /// Per-worker scheduling counters, present only on instrumented
    /// pools. `None` keeps the uninstrumented hot path free of the
    /// counter atomics — under the `model` feature every `crate::sync`
    /// atomic op is a scheduling point, so the protocol model tests
    /// (which never enable stats) explore exactly the same state space
    /// as before this field existed.
    stats: Option<Stats>,
}

/// The counter block of an instrumented pool. All cells go through the
/// `crate::sync` facade — the `model` build runs them on the shim
/// atomics, so an instrumented pool stays explorable by the model tests.
struct Stats {
    workers: Vec<WorkerCounters>,
}

struct WorkerCounters {
    tasks: AtomicUsize,
    steals: AtomicUsize,
    injector_pops: AtomicUsize,
    parks: AtomicUsize,
    unparks: AtomicUsize,
    /// Log-bucketed task-run-nanoseconds histogram (layout of
    /// [`mmdiag_trace::bucket_index`]), plus its moments — mirrored into
    /// a [`HistogramSummary`] by [`Pool::stats`].
    run_ns_buckets: Vec<AtomicUsize>,
    run_ns_count: AtomicUsize,
    run_ns_sum: AtomicUsize,
    run_ns_min: AtomicUsize,
    run_ns_max: AtomicUsize,
}

impl WorkerCounters {
    fn new() -> Self {
        WorkerCounters {
            tasks: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
            injector_pops: AtomicUsize::new(0),
            parks: AtomicUsize::new(0),
            unparks: AtomicUsize::new(0),
            run_ns_buckets: (0..BUCKETS).map(|_| AtomicUsize::new(0)).collect(),
            run_ns_count: AtomicUsize::new(0),
            run_ns_sum: AtomicUsize::new(0),
            run_ns_min: AtomicUsize::new(usize::MAX),
            run_ns_max: AtomicUsize::new(0),
        }
    }

    fn record_run(&self, ns: u64) {
        let ns_usize = ns as usize;
        self.run_ns_count.fetch_add(1, Ordering::Relaxed);
        self.run_ns_sum.fetch_add(ns_usize, Ordering::Relaxed);
        self.run_ns_buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        // fetch_min/max are not in the sync facade's atomic surface;
        // CAS loops keep the facade small (these run once per task, not
        // per steal attempt).
        let mut cur = self.run_ns_min.load(Ordering::Relaxed);
        while ns_usize < cur {
            match self.run_ns_min.compare_exchange_weak(
                cur,
                ns_usize,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        let mut cur = self.run_ns_max.load(Ordering::Relaxed);
        while ns_usize > cur {
            match self.run_ns_max.compare_exchange_weak(
                cur,
                ns_usize,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    fn snapshot(&self) -> WorkerStats {
        let mut buckets = [0u64; BUCKETS];
        for (b, a) in buckets.iter_mut().zip(&self.run_ns_buckets) {
            *b = a.load(Ordering::Relaxed) as u64;
        }
        let count = self.run_ns_count.load(Ordering::Relaxed) as u64;
        WorkerStats {
            tasks: self.tasks.load(Ordering::Relaxed) as u64,
            steals: self.steals.load(Ordering::Relaxed) as u64,
            injector_pops: self.injector_pops.load(Ordering::Relaxed) as u64,
            parks: self.parks.load(Ordering::Relaxed) as u64,
            unparks: self.unparks.load(Ordering::Relaxed) as u64,
            run_ns: HistogramSummary {
                count,
                sum: self.run_ns_sum.load(Ordering::Relaxed) as u64,
                min: if count == 0 {
                    0
                } else {
                    self.run_ns_min.load(Ordering::Relaxed) as u64
                },
                max: self.run_ns_max.load(Ordering::Relaxed) as u64,
                buckets,
            },
        }
    }
}

/// One worker's scheduling counters, snapshot by [`Pool::stats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Tasks this worker executed (own deque, injector and stolen).
    pub tasks: u64,
    /// Tasks it stole from another worker's deque.
    pub steals: u64,
    /// Tasks it popped from the shared injector.
    pub injector_pops: u64,
    /// Times it parked on the wake condvar.
    pub parks: u64,
    /// Times it returned from a park.
    pub unparks: u64,
    /// Distribution of task run times in nanoseconds.
    pub run_ns: HistogramSummary,
}

/// Per-worker stats of an instrumented pool ([`Pool::stats`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// One entry per worker, indexed like [`Pool::worker_index`].
    pub workers: Vec<WorkerStats>,
}

impl PoolStats {
    /// Sum every worker's counters (histograms merged).
    pub fn totals(&self) -> WorkerStats {
        let mut total = WorkerStats::default();
        for w in &self.workers {
            total.tasks += w.tasks;
            total.steals += w.steals;
            total.injector_pops += w.injector_pops;
            total.parks += w.parks;
            total.unparks += w.unparks;
            total.run_ns = total.run_ns.merge(&w.run_ns);
        }
        total
    }
}

impl Shared {
    /// Pop for worker `idx`: own deque (LIFO), injector, then steal (FIFO)
    /// from the other deques starting after `idx`.
    pub(crate) fn find_task(&self, idx: usize) -> Option<Task> {
        if let Some(t) = self.deques[idx].lock().unwrap().pop_back() {
            return Some(t);
        }
        let mut injector = self.injector.lock().unwrap();
        if let Some(t) = injector.pop_front() {
            if crate::sync::contention_enabled() {
                crate::sync::sync_stats()
                    .injector_depth
                    .set(injector.len() as u64);
            }
            drop(injector);
            if let Some(st) = &self.stats {
                st.workers[idx]
                    .injector_pops
                    .fetch_add(1, Ordering::Relaxed);
            }
            return Some(t);
        }
        drop(injector);
        let n = self.deques.len();
        for off in 1..n {
            let victim = (idx + off) % n;
            if let Some(t) = self.deques[victim].lock().unwrap().pop_front() {
                if let Some(st) = &self.stats {
                    st.workers[idx].steals.fetch_add(1, Ordering::Relaxed);
                }
                return Some(t);
            }
        }
        None
    }

    /// Run one task body `f` on behalf of the worker currently executing
    /// it, timed and counted. Called from *inside* the spawned closure
    /// (see [`crate::scope::Scope::spawn`]), **before** the task signals
    /// scope completion — so by the time a `Pool::scope` join returns,
    /// every finished task's counter and histogram write is visible:
    /// `tasks == run_ns.count` holds exactly on a quiescent pool, with no
    /// window where a joiner reads a task that ran but was not yet
    /// recorded. A panicking task is counted in neither (the unwind skips
    /// both writes together). The clock is only read on instrumented
    /// pools, so an uninstrumented pool's task dispatch is exactly what
    /// it was before the stats layer existed.
    pub(crate) fn run_instrumented(&self, pool_id: usize, f: impl FnOnce()) {
        let idx = WORKER.with(|w| match w.get() {
            Some((pool, idx)) if pool == pool_id => Some(idx),
            _ => None,
        });
        match (idx, &self.stats) {
            (Some(idx), Some(st)) => {
                let start = clock::now_ns();
                f();
                let w = &st.workers[idx];
                w.record_run(clock::now_ns().saturating_sub(start));
                w.tasks.fetch_add(1, Ordering::Relaxed);
            }
            // Not a worker of this pool (cannot happen today: tasks only
            // run on pool workers) or a bare pool: just run it.
            _ => f(),
        }
    }

    fn has_work(&self) -> bool {
        if !self.injector.lock().unwrap().is_empty() {
            return true;
        }
        self.deques.iter().any(|d| !d.lock().unwrap().is_empty())
    }

    /// Wake parked workers after a push. The fast path is a single atomic
    /// load: with no worker parked there is nothing to notify and the
    /// sleep lock is never touched — task submission stays lock-free past
    /// the queue push itself.
    ///
    /// No lost wakeup: a parking worker increments `sleepers` (SeqCst,
    /// under the sleep lock) *before* re-checking the queues, and a pusher
    /// publishes its task *before* this SeqCst load. Whichever side comes
    /// later in the SeqCst order therefore sees the other — the worker
    /// sees the task and skips parking, or the pusher sees the sleeper
    /// and takes the lock to notify (the lock serialises the notify after
    /// the worker's wait).
    fn notify(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.sleep.lock().unwrap();
            self.wake.notify_all();
        }
    }

    /// Wake everything unconditionally — shutdown path.
    fn notify_all_for_shutdown(&self) {
        let _guard = self.sleep.lock().unwrap();
        self.wake.notify_all();
    }
}

/// A reusable pool of worker threads with work-stealing deques.
///
/// Workers are spawned once at construction and live until the pool is
/// dropped — the whole point versus `std::thread::scope` at every call
/// site, whose per-call spawn cost dominates sub-millisecond parallel
/// sections (`BENCH_1`/`BENCH_2`: the scoped parallel driver loses to the
/// sequential one below ~1k nodes).
pub struct Pool {
    pub(crate) shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
    id: usize,
}

impl Pool {
    /// Spawn a pool with `threads` workers (clamped to at least 1).
    /// Instrumented when the `MMDIAG_TRACE` knob is set, bare otherwise.
    /// The knob also turns on process-wide contention profiling
    /// ([`crate::sync::set_contention_profiling`]) — one `export` lights
    /// up worker stats *and* the sync-layer histograms together.
    /// ([`Pool::new_instrumented`] deliberately does not touch the global
    /// flag: tests and the bench toggle it explicitly around the window
    /// they measure.)
    pub fn new(threads: usize) -> Self {
        let instrument = crate::config::knobs().trace;
        if instrument {
            crate::sync::set_contention_profiling(true);
        }
        Pool::with_stats(threads, instrument)
    }

    /// Spawn an instrumented pool regardless of the `MMDIAG_TRACE` knob
    /// — what the bench `--profile` leg and the profiling example use.
    pub fn new_instrumented(threads: usize) -> Self {
        Pool::with_stats(threads, true)
    }

    fn with_stats(threads: usize, instrument: bool) -> Self {
        let threads = threads.max(1);
        let id = NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            stats: instrument.then(|| Stats {
                workers: (0..threads).map(|_| WorkerCounters::new()).collect(),
            }),
        });
        let handles = (0..threads)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                crate::sync::thread::spawn_named(format!("mmdiag-exec-{id}-{idx}"), move || {
                    worker_loop(shared, id, idx)
                })
                .expect("spawning pool worker")
            })
            .collect();
        Pool {
            shared,
            handles,
            threads,
            id,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// This pool's process-unique id (the key worker threads carry in
    /// their thread-local identity).
    pub(crate) fn pool_id(&self) -> usize {
        self.id
    }

    /// The shared state, for spawned closures to instrument themselves
    /// against — `None` on a bare pool, so uninstrumented spawns don't
    /// pay the `Arc` clone.
    pub(crate) fn instrumentation(&self) -> Option<Arc<Shared>> {
        self.shared
            .stats
            .is_some()
            .then(|| Arc::clone(&self.shared))
    }

    /// Worker index of the *current* thread within this pool, if it is one
    /// of this pool's workers. Lets callers key per-worker state (e.g.
    /// `mmdiag_core`'s workspace pool) without locks on the hot path.
    pub fn worker_index(&self) -> Option<usize> {
        WORKER.with(|w| match w.get() {
            Some((pool, idx)) if pool == self.id => Some(idx),
            _ => None,
        })
    }

    /// Enqueue a lifetime-erased task: onto the current worker's own deque
    /// when called from inside the pool, else onto the injector.
    pub(crate) fn push_task(&self, task: Task) {
        // Queue-depth gauges are read under the guard already held for
        // the push itself — contention profiling adds no extra locking.
        match self.worker_index() {
            Some(idx) => {
                let mut deque = self.shared.deques[idx].lock().unwrap();
                deque.push_back(task);
                if crate::sync::contention_enabled() {
                    crate::sync::sync_stats()
                        .deque_depth
                        .set(deque.len() as u64);
                }
            }
            None => {
                let mut injector = self.shared.injector.lock().unwrap();
                injector.push_back(task);
                if crate::sync::contention_enabled() {
                    crate::sync::sync_stats()
                        .injector_depth
                        .set(injector.len() as u64);
                }
            }
        }
        self.shared.notify();
    }

    /// Run queued tasks until `done` returns true — the help-first wait a
    /// scope uses when it blocks on one of this pool's own workers
    /// (nested scopes; foreign callers park on the scope condvar instead).
    pub(crate) fn help_until(&self, worker: usize, done: &dyn Fn() -> bool) {
        while !done() {
            match self.shared.find_task(worker) {
                // The task body carries its own instrumentation (see
                // `Shared::run_instrumented`), attributed to this helping
                // worker via the thread-local worker id.
                Some(t) => t(),
                None => crate::sync::thread::yield_now(),
            }
        }
    }

    /// Whether this pool records per-worker stats.
    pub fn stats_enabled(&self) -> bool {
        self.shared.stats.is_some()
    }

    /// Snapshot the per-worker scheduling counters; `None` on an
    /// uninstrumented pool. Counters accumulate over the pool's
    /// lifetime — diff two snapshots to attribute work to one section.
    pub fn stats(&self) -> Option<PoolStats> {
        self.shared.stats.as_ref().map(|st| PoolStats {
            workers: st.workers.iter().map(WorkerCounters::snapshot).collect(),
        })
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.notify_all_for_shutdown();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, pool_id: usize, idx: usize) {
    WORKER.with(|w| w.set(Some((pool_id, idx))));
    loop {
        if let Some(task) = shared.find_task(idx) {
            task();
            continue;
        }
        // Park: register as a sleeper *first*, then re-check the queues
        // under the sleep lock — a push between our miss above and the
        // wait below either lands in that re-check or sees our sleeper
        // registration and notifies (see `Shared::notify`).
        let guard = shared.sleep.lock().unwrap();
        shared.sleepers.fetch_add(1, Ordering::SeqCst);
        if shared.shutdown.load(Ordering::Acquire) {
            shared.sleepers.fetch_sub(1, Ordering::SeqCst);
            break;
        }
        if shared.has_work() {
            shared.sleepers.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        if let Some(st) = &shared.stats {
            st.workers[idx].parks.fetch_add(1, Ordering::Relaxed);
        }
        let _guard = shared.wake.wait(guard).unwrap();
        if let Some(st) = &shared.stats {
            st.workers[idx].unparks.fetch_add(1, Ordering::Relaxed);
        }
        shared.sleepers.fetch_sub(1, Ordering::SeqCst);
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
    }
}
