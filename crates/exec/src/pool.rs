//! The worker pool: threads spawned once, per-worker deques, stealing.
//!
//! Scheduling layout (the offline stand-in for rayon's core loop):
//!
//! * every worker owns a deque; tasks it spawns go to the *back* of its own
//!   deque and are popped LIFO (cache-friendly for recursive fan-out);
//! * tasks submitted from outside the pool land in a shared injector queue;
//! * an idle worker first drains its own deque, then the injector, then
//!   *steals* from the front (FIFO — the oldest, largest units of work) of
//!   the other workers' deques, scanning round-robin from its own index;
//! * with nothing to do anywhere it parks on a condvar; every push notifies.
//!
//! The deques are mutex-protected `VecDeque`s rather than lock-free
//! Chase-Lev buffers: the workspace targets correctness and reuse (no
//! per-call thread spawning) over peak steal throughput, and a mutex held
//! for a push/pop is uncontended in the common path.

use crate::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use crate::sync::thread::JoinHandle;
use crate::sync::{Arc, Condvar, Mutex};
use std::cell::Cell;
use std::collections::VecDeque;

/// A unit of work, lifetime-erased by [`crate::scope::Scope::spawn`].
pub(crate) type Task = Box<dyn FnOnce() + Send + 'static>;

/// Monotonic pool ids so a worker thread can tell *which* pool it belongs
/// to (nested/multiple pools coexist in the test-suite).
static NEXT_POOL_ID: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    /// `(pool id, worker index)` of the current thread, if it is a worker.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

pub(crate) struct Shared {
    /// Tasks submitted from non-worker threads.
    injector: Mutex<VecDeque<Task>>,
    /// One deque per worker; workers push/pop their own back, thieves pop
    /// the front.
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Parking lot: workers wait here when every queue is empty.
    sleep: Mutex<()>,
    wake: Condvar,
    /// Number of workers currently parked (or committing to park) on
    /// `wake` — lets [`Shared::notify`] skip the lock when nobody sleeps.
    sleepers: AtomicUsize,
    shutdown: AtomicBool,
}

impl Shared {
    /// Pop for worker `idx`: own deque (LIFO), injector, then steal (FIFO)
    /// from the other deques starting after `idx`.
    pub(crate) fn find_task(&self, idx: usize) -> Option<Task> {
        if let Some(t) = self.deques[idx].lock().unwrap().pop_back() {
            return Some(t);
        }
        if let Some(t) = self.injector.lock().unwrap().pop_front() {
            return Some(t);
        }
        let n = self.deques.len();
        for off in 1..n {
            let victim = (idx + off) % n;
            if let Some(t) = self.deques[victim].lock().unwrap().pop_front() {
                return Some(t);
            }
        }
        None
    }

    fn has_work(&self) -> bool {
        if !self.injector.lock().unwrap().is_empty() {
            return true;
        }
        self.deques.iter().any(|d| !d.lock().unwrap().is_empty())
    }

    /// Wake parked workers after a push. The fast path is a single atomic
    /// load: with no worker parked there is nothing to notify and the
    /// sleep lock is never touched — task submission stays lock-free past
    /// the queue push itself.
    ///
    /// No lost wakeup: a parking worker increments `sleepers` (SeqCst,
    /// under the sleep lock) *before* re-checking the queues, and a pusher
    /// publishes its task *before* this SeqCst load. Whichever side comes
    /// later in the SeqCst order therefore sees the other — the worker
    /// sees the task and skips parking, or the pusher sees the sleeper
    /// and takes the lock to notify (the lock serialises the notify after
    /// the worker's wait).
    fn notify(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            let _guard = self.sleep.lock().unwrap();
            self.wake.notify_all();
        }
    }

    /// Wake everything unconditionally — shutdown path.
    fn notify_all_for_shutdown(&self) {
        let _guard = self.sleep.lock().unwrap();
        self.wake.notify_all();
    }
}

/// A reusable pool of worker threads with work-stealing deques.
///
/// Workers are spawned once at construction and live until the pool is
/// dropped — the whole point versus `std::thread::scope` at every call
/// site, whose per-call spawn cost dominates sub-millisecond parallel
/// sections (`BENCH_1`/`BENCH_2`: the scoped parallel driver loses to the
/// sequential one below ~1k nodes).
pub struct Pool {
    pub(crate) shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
    id: usize,
}

impl Pool {
    /// Spawn a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let id = NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..threads)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                crate::sync::thread::spawn_named(format!("mmdiag-exec-{id}-{idx}"), move || {
                    worker_loop(shared, id, idx)
                })
                .expect("spawning pool worker")
            })
            .collect();
        Pool {
            shared,
            handles,
            threads,
            id,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Worker index of the *current* thread within this pool, if it is one
    /// of this pool's workers. Lets callers key per-worker state (e.g.
    /// `mmdiag_core`'s workspace pool) without locks on the hot path.
    pub fn worker_index(&self) -> Option<usize> {
        WORKER.with(|w| match w.get() {
            Some((pool, idx)) if pool == self.id => Some(idx),
            _ => None,
        })
    }

    /// Enqueue a lifetime-erased task: onto the current worker's own deque
    /// when called from inside the pool, else onto the injector.
    pub(crate) fn push_task(&self, task: Task) {
        match self.worker_index() {
            Some(idx) => self.shared.deques[idx].lock().unwrap().push_back(task),
            None => self.shared.injector.lock().unwrap().push_back(task),
        }
        self.shared.notify();
    }

    /// Run queued tasks until `done` returns true — the help-first wait a
    /// scope uses when it blocks on one of this pool's own workers
    /// (nested scopes; foreign callers park on the scope condvar instead).
    pub(crate) fn help_until(&self, worker: usize, done: &dyn Fn() -> bool) {
        while !done() {
            match self.shared.find_task(worker) {
                Some(t) => t(),
                None => crate::sync::thread::yield_now(),
            }
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.notify_all_for_shutdown();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, pool_id: usize, idx: usize) {
    WORKER.with(|w| w.set(Some((pool_id, idx))));
    loop {
        if let Some(task) = shared.find_task(idx) {
            task();
            continue;
        }
        // Park: register as a sleeper *first*, then re-check the queues
        // under the sleep lock — a push between our miss above and the
        // wait below either lands in that re-check or sees our sleeper
        // registration and notifies (see `Shared::notify`).
        let guard = shared.sleep.lock().unwrap();
        shared.sleepers.fetch_add(1, Ordering::SeqCst);
        if shared.shutdown.load(Ordering::Acquire) {
            shared.sleepers.fetch_sub(1, Ordering::SeqCst);
            break;
        }
        if shared.has_work() {
            shared.sleepers.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        let _guard = shared.wake.wait(guard).unwrap();
        shared.sleepers.fetch_sub(1, Ordering::SeqCst);
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
    }
}
