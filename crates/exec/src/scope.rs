//! Scoped task spawning on a [`Pool`], in the mould of
//! `std::thread::scope`: tasks may borrow from the caller's stack, the
//! scope blocks until every spawned task finished, and the first task
//! panic is re-raised on the caller.

use crate::pool::{Pool, Task};
use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::{Arc, Condvar, Mutex};
use std::any::Any;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Shared completion state of one scope.
struct ScopeState {
    /// Tasks spawned and not yet finished.
    pending: AtomicUsize,
    /// First panic payload raised by a task (later ones are dropped, like
    /// `std::thread::scope` joining multiple panicked threads).
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    /// Parking for a non-worker caller waiting on completion.
    lock: Mutex<()>,
    done: Condvar,
}

impl ScopeState {
    fn task_finished(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.lock.lock().unwrap();
            self.done.notify_all();
        }
    }
}

/// Handle passed to the closure of [`Pool::scope`]; spawns tasks that may
/// borrow from the enclosing environment (`'env`).
pub struct Scope<'pool, 'env> {
    pool: &'pool Pool,
    state: Arc<ScopeState>,
    /// Invariant over `'env`, as in `std::thread::scope`.
    env: PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> Scope<'pool, 'env> {
    /// Spawn a task on the pool. The closure may borrow anything that
    /// outlives the scope; the scope's exit waits for it to finish.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let state = Arc::clone(&self.state);
        // Instrumentation lives *inside* the task closure, before
        // `task_finished`: when `Pool::scope` unblocks, every completed
        // task's stats write is already published (a joiner reading
        // `Pool::stats` sees `tasks == run_ns.count` exactly, never a
        // task that ran but was not yet recorded).
        let instr = self.pool.instrumentation();
        let pool_id = self.pool.pool_id();
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let body = AssertUnwindSafe(|| match instr {
                Some(shared) => shared.run_instrumented(pool_id, f),
                None => f(),
            });
            if let Err(payload) = catch_unwind(body) {
                state.panic.lock().unwrap().get_or_insert(payload);
            }
            state.task_finished();
        });
        // SAFETY: lifetime erasure only — the vtable and layout of the
        // boxed closure are unchanged. Soundness rests on the
        // scope-outlives-task invariant: `Pool::scope` *always* blocks
        // until `pending == 0` before returning (even when the scope body
        // panics), so every erased task has finished — and been dropped —
        // before the `'env` borrows it captures can go out of scope. This
        // is the same argument `std::thread::scope` makes.
        let task: Task = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(task)
        };
        self.pool.push_task(task);
    }

    /// The pool this scope runs on.
    pub fn pool(&self) -> &'pool Pool {
        self.pool
    }
}

impl Pool {
    /// Run `f` with a [`Scope`] on this pool and wait for every task it
    /// spawned. Panics from tasks (or from `f` itself) are re-raised here
    /// after all tasks have completed, so borrows stay sound either way.
    ///
    /// Blocking strategy: a caller that is itself a pool worker (nested
    /// scopes) *helps* — it runs queued tasks while waiting, so nesting
    /// cannot deadlock a single-threaded pool; a foreign caller parks on a
    /// condvar.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                pending: AtomicUsize::new(0),
                panic: Mutex::new(None),
                lock: Mutex::new(()),
                done: Condvar::new(),
            }),
            env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.wait_scope(&scope.state);
        let task_panic = scope.state.panic.lock().unwrap().take();
        match (result, task_panic) {
            (Ok(r), None) => r,
            // A task panic wins (it is the root cause; the body's panic, if
            // any, is typically a propagation artifact).
            (_, Some(payload)) => resume_unwind(payload),
            (Err(payload), None) => resume_unwind(payload),
        }
    }

    fn wait_scope(&self, state: &Arc<ScopeState>) {
        if let Some(worker) = self.worker_index() {
            // Nested scope on a worker: run tasks while waiting.
            self.help_until(worker, &|| state.pending.load(Ordering::Acquire) == 0);
            return;
        }
        let mut guard = state.lock.lock().unwrap();
        while state.pending.load(Ordering::Acquire) > 0 {
            guard = state.done.wait(guard).unwrap();
        }
    }
}
