//! An atomic claim bitset: the one shared-mutable structure behind the
//! frontier-parallel growth sweep in `mmdiag-core`.
//!
//! During a frontier round every worker scans its shard of the current
//! frontier and discovers candidate nodes; a candidate reachable from two
//! shards must be *resolved exactly once* or the merged layer would hold
//! duplicate members. [`ClaimBits::try_claim`] arbitrates with a single
//! `fetch_or` per candidate: whichever worker flips the bit first owns the
//! resolution, every later claimant backs off. The bits say nothing about
//! *order* — the deterministic merge downstream re-sorts resolved
//! candidates — they only guarantee uniqueness.
//!
//! Like every synchronization primitive in this crate the words live
//! behind the [`crate::sync`] facade, so the claim/resolve protocol is
//! explorable under the `model` feature (`tests/model.rs` drives a
//! miniature frontier merge through thousands of seeded interleavings).

use crate::sync::atomic::{AtomicUsize, Ordering};

const WORD_BITS: usize = usize::BITS as usize;

/// A fixed-capacity bitset whose bits are claimed atomically.
///
/// `try_claim` is safe to call concurrently from pool workers; `reset`
/// and `ensure` need `&mut self` and are meant for the orchestrator
/// between rounds. Clearing individual bits ([`ClaimBits::clear`]) takes
/// `&self` so the single-threaded merge can recycle the set in O(resolved)
/// instead of O(capacity).
pub struct ClaimBits {
    words: Vec<AtomicUsize>,
}

impl ClaimBits {
    /// An empty set with capacity for `bits` indices, all unclaimed.
    pub fn new(bits: usize) -> Self {
        let mut s = ClaimBits { words: Vec::new() };
        s.ensure(bits);
        s
    }

    /// Number of claimable indices (rounded up to the word size).
    pub fn capacity(&self) -> usize {
        self.words.len() * WORD_BITS
    }

    /// Grow capacity to at least `bits` indices. Existing claims survive;
    /// new words start unclaimed. No-op when already large enough, so a
    /// pooled set costs nothing to re-check per job.
    pub fn ensure(&mut self, bits: usize) {
        let need = bits.div_ceil(WORD_BITS);
        while self.words.len() < need {
            self.words.push(AtomicUsize::new(0));
        }
    }

    /// Atomically claim index `i`. Returns `true` exactly once per index
    /// per reset cycle: the caller that flipped the bit owns it.
    pub fn try_claim(&self, i: usize) -> bool {
        let bit = 1usize << (i % WORD_BITS);
        self.words[i / WORD_BITS].fetch_or(bit, Ordering::Relaxed) & bit == 0
    }

    /// Whether index `i` is currently claimed.
    pub fn is_claimed(&self, i: usize) -> bool {
        let bit = 1usize << (i % WORD_BITS);
        self.words[i / WORD_BITS].load(Ordering::Relaxed) & bit != 0
    }

    /// Clear the claim on index `i` (callable while shared; the caller is
    /// responsible for not racing this with a concurrent `try_claim` on
    /// the same index — the growth merge runs it single-threaded between
    /// rounds).
    pub fn clear(&self, i: usize) {
        let bit = 1usize << (i % WORD_BITS);
        self.words[i / WORD_BITS].fetch_and(!bit, Ordering::Relaxed);
    }

    /// Drop every claim.
    pub fn reset(&mut self) {
        for w in &mut self.words {
            w.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(all(test, not(feature = "model")))]
mod tests {
    use super::*;
    use crate::Pool;
    use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};

    #[test]
    fn each_index_claims_exactly_once() {
        let bits = ClaimBits::new(200);
        for i in 0..200 {
            assert!(!bits.is_claimed(i));
            assert!(bits.try_claim(i), "first claim of {i} wins");
            assert!(!bits.try_claim(i), "second claim of {i} loses");
            assert!(bits.is_claimed(i));
        }
    }

    #[test]
    fn clear_and_reset_recycle_claims() {
        let mut bits = ClaimBits::new(130);
        assert!(bits.try_claim(129));
        bits.clear(129);
        assert!(!bits.is_claimed(129));
        assert!(bits.try_claim(129), "cleared bit is claimable again");
        // Clearing one bit leaves its word-mates alone.
        assert!(bits.try_claim(128));
        bits.clear(129);
        assert!(bits.is_claimed(128));
        bits.reset();
        assert!(!bits.is_claimed(128));
        assert!(bits.try_claim(128));
    }

    #[test]
    fn ensure_grows_without_dropping_claims() {
        let mut bits = ClaimBits::new(10);
        assert!(bits.try_claim(3));
        let before = bits.capacity();
        bits.ensure(5_000);
        assert!(bits.capacity() >= 5_000 && bits.capacity() >= before);
        assert!(bits.is_claimed(3), "old claims survive growth");
        assert!(bits.try_claim(4_999));
    }

    #[test]
    fn concurrent_claims_have_a_unique_winner_per_index() {
        let pool = Pool::new(4);
        let bits = ClaimBits::new(512);
        let wins: Vec<StdAtomicUsize> = (0..512).map(|_| StdAtomicUsize::new(0)).collect();
        // Every worker task tries to claim every index.
        pool.for_each_index(0..64, |_| {
            for (i, w) in wins.iter().enumerate() {
                if bits.try_claim(i) {
                    w.fetch_add(1, StdOrdering::Relaxed);
                }
            }
        });
        for (i, w) in wins.iter().enumerate() {
            assert_eq!(
                w.load(StdOrdering::Relaxed),
                1,
                "index {i} needs one winner"
            );
        }
    }
}
