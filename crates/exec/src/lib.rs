//! # mmdiag-exec
//!
//! The workspace's shared execution layer: a hand-rolled, offline (no
//! rayon, no crossbeam) **pooled work-stealing executor** with scoped
//! parallel APIs.
//!
//! `BENCH_1.json`/`BENCH_2.json` showed the scoped-thread parallel driver
//! losing to the sequential one below ~1k nodes: `std::thread::scope`
//! spawns fresh OS threads on every call, and that spawn cost dominates
//! sub-millisecond probe phases. This crate replaces per-call spawning
//! with one process-wide (or caller-owned) [`Pool`] whose workers live for
//! the lifetime of the pool:
//!
//! * [`Pool::scope`] — `std::thread::scope`-style scoped spawning with
//!   panic propagation; tasks may borrow from the caller's stack;
//! * [`Pool::map`] / [`Pool::for_each_index`] — order-preserving parallel
//!   map and indexed parallel-for;
//! * [`Pool::min_index_where`] — the deterministic lowest-index-wins
//!   search reduction (shared fetch-min CAS, early cut-off) that the
//!   diagnosis driver's certified-part probe needs;
//! * [`Pool::worker_index`] — stable per-worker identity, used by
//!   `mmdiag_core` to pool `Workspace`s per worker;
//! * [`global`] — the lazily-created process-wide pool every crate shares.
//!
//! Scheduling: per-worker deques (own work LIFO, steals FIFO from the
//! front), a shared injector for external submissions, condvar parking.
//! Nested scopes are supported — a worker blocked on an inner scope runs
//! queued tasks while it waits, so even a 1-thread pool cannot deadlock.
//!
//! ## Observability
//!
//! An *instrumented* pool ([`Pool::new_instrumented`], or any pool when
//! the `MMDIAG_TRACE` knob is set) counts per-worker steals, injector
//! pops, park/unpark cycles and a log-bucketed task-run-time histogram
//! ([`Pool::stats`]). The counters live behind the [`mod@sync`] facade
//! like every other primitive here, so an instrumented pool still
//! builds — and stays explorable — under the `model` feature; an
//! uninstrumented pool carries no counters at all and its hot path is
//! unchanged.
//!
//! The [`mod@sync`] facade additionally profiles **contention** when
//! [`set_contention_profiling`] is on (instrumented pools turn it on):
//! lock-acquire waits, condvar park durations and injector/deque queue
//! depths land in the process-wide [`sync_stats`] cells, which any
//! `mmdiag-trace` registry can adopt and the [`stats`] sampler thread
//! (driven by the `MMDIAG_STATS` knob) can stream as JSON lines.
//!
//! ## Correctness tooling
//!
//! All synchronization goes through the [`mod@sync`] facade: a normal
//! build re-exports `std::sync` unchanged, while the `model` feature
//! swaps in the deterministic bounded-interleaving scheduler of
//! `model` so the park/steal/scope protocols can be explored offline
//! (`cargo test -p mmdiag-exec --features model`). See
//! `crates/exec/tests/model.rs` for the protocol suites.
//!
//! ## Unsafe audit inventory
//!
//! This is the **only** crate in the workspace allowed to contain
//! `unsafe` (every other crate root carries `#![forbid(unsafe_code)]`,
//! enforced by `cargo run -p xtask -- lint`). The crate compiles under
//! `#![deny(unsafe_op_in_unsafe_fn)]`, every block carries a
//! `// SAFETY:` comment (also lint-enforced), and the full inventory is:
//!
//! | Location | Operation | Invariant making it sound |
//! |---|---|---|
//! | `scope.rs`, [`Scope::spawn`] | `transmute` of `Box<dyn FnOnce + Send + 'env>` to `'static` (lifetime erasure only; layout/vtable unchanged) | scope-outlives-task: [`Pool::scope`] blocks until `pending == 0` before returning — even on panic — so every erased task finishes and is dropped before its `'env` borrows can dangle |
//!
//! Any addition to this table needs a `// SAFETY:` comment at the site, a
//! row here, and model-test coverage of the protocol that justifies it.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod claim;
pub mod config;
#[cfg(feature = "model")]
pub mod model;
mod ops;
mod pool;
mod scope;
#[cfg(not(feature = "model"))]
pub mod stats;
pub mod sync;

pub use claim::ClaimBits;
pub use config::{knobs, Knobs};
pub use pool::{Pool, PoolStats, WorkerStats};
pub use scope::Scope;
#[cfg(not(feature = "model"))]
pub use stats::{start_stats_reporter, ReporterHandle};
pub use sync::{contention_enabled, set_contention_profiling, sync_stats, SyncStats};

use std::sync::OnceLock;

/// Worker count for the process-wide pool: `MMDIAG_POOL_THREADS` when set
/// (clamped to 1..=64, read once through [`config::knobs`]), else the
/// machine's available parallelism capped at 8 — beyond that the probe
/// phases of even the 10⁵⁺-node instances stop scaling and the deques only
/// add steal traffic.
pub fn default_threads() -> usize {
    if let Some(n) = knobs().pool_threads {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// The process-wide shared pool, created on first use with
/// [`default_threads`] workers. Every crate in the workspace dispatches on
/// this pool unless handed an explicit one, so the whole process pays the
/// thread-spawn cost exactly once.
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(|| Pool::new(default_threads()))
}

// The std-mode unit suite: under the model feature these pools would run
// on shim primitives with no scheduler driving them — the protocol tests
// in `tests/model.rs` cover that configuration instead.
#[cfg(all(test, not(feature = "model")))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn scope_runs_borrowing_tasks() {
        let pool = Pool::new(4);
        let counter = AtomicUsize::new(0);
        let mut tail = 0usize; // mutably borrowed after the scope: proves the barrier
        pool.scope(|s| {
            for _ in 0..64 {
                let counter = &counter;
                s.spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        tail += counter.load(Ordering::Relaxed);
        assert_eq!(tail, 64);
    }

    #[test]
    fn map_preserves_input_order() {
        let pool = Pool::new(3);
        let items: Vec<usize> = (0..1000).collect();
        let out = pool.map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        assert!(pool.map(&[] as &[usize], |_, &x| x).is_empty());
    }

    #[test]
    fn for_each_index_covers_range_once() {
        let pool = Pool::new(4);
        let hits: Vec<AtomicUsize> = (0..500).map(|_| AtomicUsize::new(0)).collect();
        pool.for_each_index(0..500, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn min_index_where_is_deterministic_across_widths() {
        let pool = Pool::new(4);
        // Satisfied set {37, 41, 200}: answer must always be 37.
        let sat = [37usize, 41, 200];
        for width in [1, 2, 3, 8, 64] {
            for _ in 0..10 {
                let got = pool.min_index_where(300, width, |i| sat.contains(&i));
                assert_eq!(got, Some(37), "width {width}");
            }
        }
        assert_eq!(pool.min_index_where(300, 4, |_| false), None);
        assert_eq!(pool.min_index_where(0, 4, |_| true), None);
        assert_eq!(pool.min_index_where(1, 9, |i| i == 0), Some(0));
    }

    #[test]
    fn min_index_never_skips_below_answer() {
        // Every index at or below the answer must have been evaluated.
        let pool = Pool::new(4);
        let evaluated: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        let got = pool.min_index_where(100, 8, |i| {
            evaluated[i].fetch_add(1, Ordering::Relaxed);
            i >= 50
        });
        assert_eq!(got, Some(50));
        for (i, e) in evaluated.iter().enumerate().take(51) {
            assert_eq!(e.load(Ordering::Relaxed), 1, "index {i} not probed");
        }
    }

    #[test]
    fn task_panic_propagates_to_scope_caller() {
        let pool = Pool::new(2);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| {});
                s.spawn(|| panic!("boom in task"));
                s.spawn(|| {});
            });
        }));
        let payload = result.expect_err("scope must re-raise the task panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or_else(|| payload.downcast_ref::<String>().unwrap().as_str());
        assert!(msg.contains("boom in task"), "{msg}");
        // The pool survives a panicked scope and keeps executing.
        let v = pool.map(&[1, 2, 3], |_, &x| x + 1);
        assert_eq!(v, vec![2, 3, 4]);
    }

    #[test]
    fn nested_scopes_do_not_deadlock_single_worker() {
        let pool = Pool::new(1);
        let total = AtomicUsize::new(0);
        let pool_ref = &pool;
        pool.scope(|s| {
            for _ in 0..4 {
                let total = &total;
                let pool = pool_ref;
                s.spawn(move || {
                    // Inner scope runs on the (only) worker: it must help.
                    pool.scope(|inner| {
                        for _ in 0..8 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn worker_index_is_stable_and_in_range() {
        let pool = Pool::new(3);
        assert_eq!(pool.worker_index(), None, "caller is not a worker");
        let seen = Mutex::new(Vec::new());
        pool.for_each_index(0..64, |_| {
            let idx = pool.worker_index().expect("tasks run on workers");
            assert!(idx < 3);
            seen.lock().unwrap().push(idx);
        });
        assert_eq!(seen.lock().unwrap().len(), 64);
        // Another pool's workers are not this pool's workers.
        let other = Pool::new(2);
        other.for_each_index(0..4, |_| {
            assert_eq!(pool.worker_index(), None);
            assert!(other.worker_index().is_some());
        });
    }

    #[test]
    fn instrumented_pool_accounts_every_task() {
        let pool = Pool::new_instrumented(3);
        assert!(pool.stats_enabled());
        let hits = AtomicUsize::new(0);
        pool.for_each_index(0..200, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 200);
        let stats = pool.stats().expect("instrumented");
        assert_eq!(stats.workers.len(), 3);
        let t = stats.totals();
        assert!(t.tasks >= 1, "chunk tasks must be counted");
        assert_eq!(
            t.run_ns.count, t.tasks,
            "every counted task must also be timed"
        );
        assert_eq!(
            t.run_ns.buckets.iter().sum::<u64>(),
            t.tasks,
            "histogram buckets account for every task"
        );
        // A second snapshot only grows.
        pool.for_each_index(0..50, |_| {});
        let t2 = pool.stats().expect("instrumented").totals();
        assert!(t2.tasks >= t.tasks);
    }

    #[test]
    fn default_pool_is_bare_unless_trace_knob_set() {
        let pool = Pool::new(2);
        assert_eq!(pool.stats_enabled(), knobs().trace);
        if !knobs().trace {
            assert!(pool.stats().is_none());
            // The pool still works without stats, obviously.
            assert_eq!(pool.map(&[1, 2], |_, &x| x), vec![1, 2]);
        }
    }

    #[test]
    fn global_pool_is_shared_and_sized() {
        let a = global() as *const Pool;
        let b = global() as *const Pool;
        assert_eq!(a, b);
        assert!(global().threads() >= 1);
        let out = global().map(&[10usize, 20], |_, &x| x / 10);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn many_small_scopes_reuse_workers() {
        // The regression the pool exists to fix: thousands of tiny scopes
        // must not spawn threads (smoke: just complete quickly and
        // correctly).
        let pool = Pool::new(4);
        let mut acc = 0usize;
        for round in 0..2000 {
            let hit = AtomicUsize::new(0);
            pool.scope(|s| {
                let hit = &hit;
                s.spawn(move || {
                    hit.fetch_add(round, Ordering::Relaxed);
                });
            });
            acc += hit.load(Ordering::Relaxed);
        }
        assert_eq!(acc, 2000 * 1999 / 2);
    }
}
