//! The fleet stats sampler thread.
//!
//! `mmdiag-trace` owns the [`MetricsHub`] and the pure
//! [`mmdiag_trace::StatsReporter`] delta logic, but it sits below this
//! crate in the dependency graph and the workspace's thread single door
//! (`sync::thread::spawn_named`, enforced by `cargo run -p xtask --
//! lint`) lives *here* — so the thread that drives the reporter lives
//! here too. [`start_stats_reporter`] spawns a named sampler that writes
//! one JSON line per interval (see `StatsReporter::sample` for the
//! schema) and stops promptly when the handle is dropped.
//!
//! The interval usually comes from the `MMDIAG_STATS` knob
//! ([`crate::knobs`], milliseconds); callers pass it explicitly so tests
//! and the bench can run a reporter without touching the environment.
//!
//! Not compiled under the `model` feature: the sampler is wall-clock
//! driven and would add nothing but noise to the interleaving explorer.

use crate::sync::{thread, Arc};
use mmdiag_trace::{MetricsHub, StatsReporter};
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// A running sampler thread. Dropping (or calling [`stop`]) signals the
/// thread, joins it, and flushes the final sample.
///
/// [`stop`]: ReporterHandle::stop
pub struct ReporterHandle {
    stop: Arc<AtomicBool>,
    join: Option<thread::JoinHandle<()>>,
}

impl ReporterHandle {
    /// Signal the sampler and wait for it to write its final line.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ReporterHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawn the `mmdiag-stats` sampler thread: every `interval` it writes
/// one [`StatsReporter`] JSON line (a merged delta across every registry
/// attached to `hub`) to `out`, flushing after each line so a tailing
/// reader sees samples live. A final sample is always written on stop,
/// so short runs still produce at least one line.
///
/// Write errors stop the sampler silently — stats streaming must never
/// take down the session it is observing.
pub fn start_stats_reporter<W>(
    hub: &'static MetricsHub,
    interval: Duration,
    mut out: W,
) -> std::io::Result<ReporterHandle>
where
    W: Write + Send + 'static,
{
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let join = thread::spawn_named("mmdiag-stats".to_string(), move || {
        let mut reporter = StatsReporter::new(hub);
        let mut emit = |reporter: &mut StatsReporter| -> bool {
            let line = reporter.sample();
            writeln!(out, "{line}").and_then(|_| out.flush()).is_ok()
        };
        while !stop_flag.load(Ordering::Relaxed) {
            if !emit(&mut reporter) {
                return;
            }
            // Sleep in small slices so stop() never waits a full interval.
            let mut left = interval;
            while !left.is_zero() && !stop_flag.load(Ordering::Relaxed) {
                let slice = left.min(Duration::from_millis(10));
                std::thread::sleep(slice);
                left = left.saturating_sub(slice);
            }
        }
        // Final flush so the tail of the run is never lost.
        let _ = emit(&mut reporter);
    })?;
    Ok(ReporterHandle {
        stop,
        join: Some(join),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// A `Write` that appends into a shared buffer.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn reporter_thread_streams_valid_json_lines_and_stops() {
        let hub = MetricsHub::global();
        let registry = Arc::new(mmdiag_trace::MetricsRegistry::new());
        registry.counter("stats.test.ticks").add(3);
        let session = hub.attach("stats-test", Arc::clone(&registry));
        let buf = SharedBuf::default();
        let handle =
            start_stats_reporter(hub, Duration::from_millis(5), buf.clone()).expect("spawn");
        // Let at least one periodic sample land, then stop (which emits a
        // final one).
        std::thread::sleep(Duration::from_millis(25));
        registry.counter("stats.test.ticks").add(4);
        handle.stop();
        drop(session);
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 2, "expected several samples: {text:?}");
        for line in &lines {
            mmdiag_trace::export::validate_json(line).expect("each sample is one JSON value");
            assert!(line.starts_with("{\"seq\":"), "line: {line}");
        }
        assert!(
            lines.last().unwrap().contains("stats.test.ticks"),
            "final sample must include the attached registry: {}",
            lines.last().unwrap()
        );
    }
}
