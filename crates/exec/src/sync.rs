//! The synchronization facade every module in this crate goes through —
//! now also the workspace's **contention profiling** layer.
//!
//! In a normal build (`cfg(not(feature = "model"))`) the primitives
//! underneath are `std::sync` / `std::thread`; with the `model` feature
//! the same names resolve to the instrumented shim primitives in
//! `crate::model`, so mutexes, condvars, atomics and thread spawning all
//! become *scheduling points* of a deterministic bounded-interleaving
//! scheduler (in the spirit of `loom`, hand-rolled because the build is
//! offline).
//!
//! On top of whichever implementation is active, [`Mutex`] and
//! [`Condvar`] are thin wrappers that can profile contention:
//!
//! * [`Mutex::lock`] records the acquire wait into a process-wide
//!   lock-wait histogram ([`SyncStats::lock_wait_ns`]);
//! * [`Condvar::wait`] records the park duration into a park-duration
//!   histogram ([`SyncStats::park_ns`]);
//! * the pool updates injector/deque queue-depth gauges at its push/pop
//!   sites ([`SyncStats::injector_depth`] / [`SyncStats::deque_depth`]).
//!
//! Profiling is **off by default** and gated by one process-wide flag
//! ([`set_contention_profiling`]): the disabled path costs a single
//! relaxed atomic load before delegating to the raw primitive — no clock
//! read, no histogram touch. The flag and the stats cells are plain
//! `std` atomics even under the `model` feature (they are observability,
//! not protocol state), so enabling profiling adds **no scheduling
//! points**: the interleaving explorer drives exactly the same state
//! space either way, and the recorded *counts* are schedule-independent
//! whenever the protocol's lock/wait counts are (asserted across ≥500
//! interleavings in `tests/model.rs`).
//!
//! Rules of the facade:
//!
//! * `pool.rs`, `scope.rs`, `ops.rs` and `lib.rs` import **only** from
//!   here — never `std::sync::{Mutex, Condvar}`, `std::sync::atomic`, or
//!   `std::thread::{spawn, yield_now}` directly. Since PR 9 the whole
//!   *workspace* is held to the construction half of this rule by the
//!   `sync-single-door` xtask lint pass: `std::sync::{Mutex, Condvar,
//!   RwLock}` may only be constructed here, in the model shims, in test
//!   code, and in `crates/trace` (which sits *below* this crate in the
//!   dependency graph and cannot route through it without a cycle);
//! * [`Arc`] is re-exported from `std` in both modes: reference counting
//!   carries no scheduling decision the model needs to interleave;
//! * `std::sync::OnceLock` (the `global()` pool, parsed knobs) stays on
//!   `std` too — one-time initialisation is not part of the explored
//!   protocols, and the global pool is never constructed under the model.

pub use std::sync::Arc;

use mmdiag_trace::clock;
use mmdiag_trace::{Gauge, Histogram};
use std::sync::OnceLock;

#[cfg(not(feature = "model"))]
mod imp {
    pub use std::sync::{Condvar, Mutex, MutexGuard};

    /// Atomics, as `std::sync::atomic`.
    pub mod atomic {
        pub use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    }

    /// Thread spawning and yielding, as `std::thread`.
    pub mod thread {
        pub use std::thread::{yield_now, JoinHandle};

        /// Spawn a named OS thread ([`std::thread::Builder`] with `name`).
        pub fn spawn_named<F, T>(name: String, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            std::thread::Builder::new().name(name).spawn(f)
        }
    }
}

#[cfg(feature = "model")]
mod imp {
    pub use crate::model::shim::atomic;
    pub use crate::model::shim::thread;
    pub use crate::model::shim::{Condvar, Mutex, MutexGuard};
}

pub use imp::{atomic, thread, MutexGuard};

/// `Result` of a lock-ish acquisition, matching the active
/// implementation: `std`'s poisoning `LockResult` in normal builds, the
/// shim's infallible `Result<_, Infallible>` under the model. Both
/// support the workspace's `.lock().unwrap()` /
/// `.unwrap_or_else(|e| e.into_inner())` call-site idioms.
#[cfg(not(feature = "model"))]
pub type LockResult<G> = std::sync::LockResult<G>;
/// See the `not(feature = "model")` definition.
#[cfg(feature = "model")]
pub type LockResult<G> = Result<G, std::convert::Infallible>;

/// The process-wide contention stats the facade records into. All cells
/// are `mmdiag-trace` metrics, `Arc`-held so the bench, the umbrella
/// session and the [`mmdiag_trace::MetricsHub`] can adopt the *same*
/// cells into registries (one tally, many readers).
pub struct SyncStats {
    /// Time from requesting a [`Mutex`] lock to holding it, nanoseconds.
    pub lock_wait_ns: Arc<Histogram>,
    /// Time spent parked in a [`Condvar::wait`], nanoseconds.
    pub park_ns: Arc<Histogram>,
    /// Depth of the pool's shared injector queue, sampled at push/pop.
    pub injector_depth: Arc<Gauge>,
    /// Depth of a worker deque, sampled at push (max across workers).
    pub deque_depth: Arc<Gauge>,
}

impl SyncStats {
    /// A fresh, empty stats block. The process normally records into the
    /// shared [`sync_stats`] block; tests (and the model suite's
    /// `profiled` primitives) create their own for isolation.
    pub fn new() -> Self {
        SyncStats {
            lock_wait_ns: Arc::new(Histogram::new()),
            park_ns: Arc::new(Histogram::new()),
            injector_depth: Arc::new(Gauge::new()),
            deque_depth: Arc::new(Gauge::new()),
        }
    }

    /// Register all four cells into `registry` under their canonical
    /// `sync.*` names (adopting the shared cells, not copying).
    pub fn register_into(&self, registry: &mmdiag_trace::MetricsRegistry) {
        registry.register_histogram("sync.lock_wait_ns", Arc::clone(&self.lock_wait_ns));
        registry.register_histogram("sync.park_ns", Arc::clone(&self.park_ns));
        registry.register_gauge("sync.injector_depth", Arc::clone(&self.injector_depth));
        registry.register_gauge("sync.deque_depth", Arc::clone(&self.deque_depth));
    }
}

impl Default for SyncStats {
    fn default() -> Self {
        SyncStats::new()
    }
}

/// The contention-profiling flag. Deliberately a *std* atomic in both
/// cfg modes: reading it must never be a model scheduling point, or
/// enabling profiling would change the explored state space.
static CONTENTION: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Whether facade primitives currently record contention stats. This is
/// the one load the disabled hot path pays.
#[inline]
pub fn contention_enabled() -> bool {
    CONTENTION.load(std::sync::atomic::Ordering::Relaxed)
}

/// Turn contention profiling on or off, process-wide and immediately —
/// existing mutexes/condvars (the global pool included) start or stop
/// recording on their next operation. The stats are cumulative while
/// enabled; diff snapshots ([`mmdiag_trace::HistogramSummary::delta_since`])
/// to attribute them to one window.
pub fn set_contention_profiling(on: bool) {
    CONTENTION.store(on, std::sync::atomic::Ordering::Relaxed);
}

/// The process-wide [`SyncStats`], created on first use.
pub fn sync_stats() -> &'static SyncStats {
    static STATS: OnceLock<SyncStats> = OnceLock::new();
    STATS.get_or_init(SyncStats::new)
}

/// A mutex behind the facade: the active implementation's mutex plus
/// optional lock-wait profiling (see the module docs).
pub struct Mutex<T> {
    inner: imp::Mutex<T>,
    /// Model builds only: an explicit per-instance stats override, so
    /// the schedule-independence tests can count *their* protocol's
    /// operations in isolation from every other test's facade traffic.
    #[cfg(feature = "model")]
    stats: Option<Arc<SyncStats>>,
}

impl<T> Mutex<T> {
    /// Create a facade mutex holding `t`.
    pub fn new(t: T) -> Self {
        Mutex {
            inner: imp::Mutex::new(t),
            #[cfg(feature = "model")]
            stats: None,
        }
    }

    /// Model builds only: a mutex that records every lock acquire into
    /// `stats` unconditionally (no global flag involved).
    #[cfg(feature = "model")]
    pub fn profiled(t: T, stats: Arc<SyncStats>) -> Self {
        Mutex {
            inner: imp::Mutex::new(t),
            stats: Some(stats),
        }
    }

    #[inline]
    fn record_into(&self) -> Option<&SyncStats> {
        #[cfg(feature = "model")]
        if let Some(s) = self.stats.as_deref() {
            return Some(s);
        }
        contention_enabled().then(sync_stats)
    }

    /// Lock, recording the acquire wait when profiling is enabled.
    pub fn lock(&self) -> LockResult<imp::MutexGuard<'_, T>> {
        let Some(stats) = self.record_into() else {
            return self.inner.lock();
        };
        let start = clock::now_ns();
        let r = self.inner.lock();
        stats
            .lock_wait_ns
            .record(clock::now_ns().saturating_sub(start));
        r
    }

    /// Consume the mutex, returning its data.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// A condvar behind the facade: the active implementation's condvar plus
/// optional park-duration profiling.
pub struct Condvar {
    inner: imp::Condvar,
    /// See [`Mutex::stats`].
    #[cfg(feature = "model")]
    stats: Option<Arc<SyncStats>>,
}

impl Condvar {
    /// Create a facade condvar.
    pub fn new() -> Self {
        Condvar {
            inner: imp::Condvar::new(),
            #[cfg(feature = "model")]
            stats: None,
        }
    }

    /// Model builds only: a condvar that records every park into
    /// `stats` unconditionally.
    #[cfg(feature = "model")]
    pub fn profiled(stats: Arc<SyncStats>) -> Self {
        Condvar {
            inner: imp::Condvar::new(),
            stats: Some(stats),
        }
    }

    #[inline]
    fn record_into(&self) -> Option<&SyncStats> {
        #[cfg(feature = "model")]
        if let Some(s) = self.stats.as_deref() {
            return Some(s);
        }
        contention_enabled().then(sync_stats)
    }

    /// Park until notified, releasing `guard` while parked; records the
    /// park duration when profiling is enabled.
    pub fn wait<'a, T>(&self, guard: imp::MutexGuard<'a, T>) -> LockResult<imp::MutexGuard<'a, T>> {
        let Some(stats) = self.record_into() else {
            return self.inner.wait(guard);
        };
        let start = clock::now_ns();
        let r = self.inner.wait(guard);
        stats.park_ns.record(clock::now_ns().saturating_sub(start));
        r
    }

    /// Wake one parked waiter, if any.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every parked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(all(test, not(feature = "model")))]
mod tests {
    use super::*;

    /// Serialises tests that toggle the process-global profiling flag.
    static FLAG_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_profiling_records_nothing() {
        let _guard = FLAG_LOCK.lock().unwrap();
        set_contention_profiling(false);
        let before = sync_stats().lock_wait_ns.snapshot().count;
        let m = Mutex::new(1u32);
        for _ in 0..10 {
            *m.lock().unwrap() += 1;
        }
        assert_eq!(*m.lock().unwrap(), 11);
        assert_eq!(sync_stats().lock_wait_ns.snapshot().count, before);
    }

    #[test]
    fn enabled_profiling_counts_every_acquire_and_park() {
        let _guard = FLAG_LOCK.lock().unwrap();
        set_contention_profiling(true);
        let lock_before = sync_stats().lock_wait_ns.snapshot().count;
        let park_before = sync_stats().park_ns.snapshot().count;
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        // One waiter parks until the flag flips.
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let h = thread::spawn_named("sync-test-waiter".into(), move || {
            let mut g = m2.lock().unwrap();
            while !*g {
                g = cv2.wait(g).unwrap();
            }
        })
        .unwrap();
        // Give the waiter a chance to park, then release it.
        for _ in 0..100 {
            thread::yield_now();
        }
        *m.lock().unwrap() = true;
        cv.notify_all();
        h.join().unwrap();
        set_contention_profiling(false);
        let locks = sync_stats().lock_wait_ns.snapshot().count - lock_before;
        // At least: waiter's initial lock, the setter's lock, and the
        // re-acquire inside every wait (other tests may add more).
        assert!(locks >= 2, "locks recorded: {locks}");
        assert!(
            sync_stats().park_ns.snapshot().count >= park_before,
            "park histogram must never go backwards"
        );
        let s = sync_stats().lock_wait_ns.snapshot();
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
    }

    #[test]
    fn sync_stats_register_under_canonical_names() {
        let reg = mmdiag_trace::MetricsRegistry::new();
        sync_stats().register_into(&reg);
        let names: Vec<String> = reg.snapshot().into_iter().map(|m| m.name).collect();
        assert_eq!(
            names,
            vec![
                "sync.lock_wait_ns",
                "sync.park_ns",
                "sync.injector_depth",
                "sync.deque_depth"
            ]
        );
    }
}
