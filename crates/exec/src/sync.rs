//! The synchronization facade every module in this crate goes through.
//!
//! In a normal build (`cfg(not(feature = "model"))`) everything here is a
//! zero-cost re-export of `std::sync` / `std::thread`, so the executor's
//! runtime behaviour is **bit-identical** to using `std` directly — the
//! facade compiles away entirely.
//!
//! With the `model` feature enabled, the same names resolve to the
//! instrumented shim primitives in `crate::model`: mutexes, condvars,
//! atomics and thread spawning all become *scheduling points* of a
//! deterministic bounded-interleaving scheduler, so the pool's
//! park/steal/scope protocols can be exhaustively (small bounds) or
//! randomly (seeded, deep) explored offline — in the spirit of `loom`,
//! hand-rolled like the repo's vendored rand shims because the build is
//! offline.
//!
//! Rules of the facade:
//!
//! * `pool.rs`, `scope.rs`, `ops.rs` and `lib.rs` import **only** from
//!   here — never `std::sync::{Mutex, Condvar}`, `std::sync::atomic`, or
//!   `std::thread::{spawn, yield_now}` directly (`cargo run -p xtask --
//!   lint` has no pass for this yet, but the model tests would silently
//!   lose coverage for any primitive that bypassed the facade);
//! * [`Arc`] is re-exported from `std` in both modes: reference counting
//!   carries no scheduling decision the model needs to interleave;
//! * `std::sync::OnceLock` (the `global()` pool, parsed knobs) stays on
//!   `std` too — one-time initialisation is not part of the explored
//!   protocols, and the global pool is never constructed under the model.

pub use std::sync::Arc;

#[cfg(not(feature = "model"))]
mod imp {
    pub use std::sync::{Condvar, Mutex, MutexGuard};

    /// Atomics, as `std::sync::atomic`.
    pub mod atomic {
        pub use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    }

    /// Thread spawning and yielding, as `std::thread`.
    pub mod thread {
        pub use std::thread::{yield_now, JoinHandle};

        /// Spawn a named OS thread ([`std::thread::Builder`] with `name`).
        pub fn spawn_named<F, T>(name: String, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            std::thread::Builder::new().name(name).spawn(f)
        }
    }
}

#[cfg(feature = "model")]
mod imp {
    pub use crate::model::shim::atomic;
    pub use crate::model::shim::thread;
    pub use crate::model::shim::{Condvar, Mutex, MutexGuard};
}

pub use imp::*;
