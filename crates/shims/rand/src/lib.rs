//! Offline stand-in for the crates.io `rand` crate (see
//! `crates/shims/README.md`).
//!
//! Exposes exactly the surface this workspace consumes: the [`RngCore`] /
//! [`Rng`] / [`SeedableRng`] traits and [`seq::SliceRandom::shuffle`].
//! Deterministic given a deterministic generator; no `OsRng`, no `thread_rng`.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random 32/64-bit words.
pub trait RngCore {
    /// The next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32;

    /// The next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// The user-facing generator trait. In this shim it only adds bounded
/// sampling on top of [`RngCore`]; every `RngCore` automatically implements
/// it, mirroring the blanket impl of the real crate.
pub trait Rng: RngCore {
    /// Uniform sample from `0..bound` (`bound > 0`), via Lemire-style
    /// rejection so small bounds are unbiased.
    fn gen_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_below(0)");
        // Rejection sampling over the widest zone that is a multiple of
        // `bound`: at most one extra draw on average for any bound.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sequence-related helpers (`shuffle`).
pub mod seq {
    use crate::Rng;

    /// Shuffling for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_below(i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    /// SplitMix64 — good enough to exercise the trait plumbing.
    struct SplitMix(u64);
    impl RngCore for SplitMix {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn gen_below_stays_in_range() {
        let mut r = SplitMix(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.gen_below(bound) < bound);
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix(42);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn shuffle_through_unsized_ref() {
        let mut r = SplitMix(1);
        let dynr: &mut dyn RngCore = &mut r;
        let mut v = [1, 2, 3, 4, 5];
        v.shuffle(dynr);
    }
}
