//! Offline stand-in for the crates.io `rand_chacha` crate (see
//! `crates/shims/README.md`).
//!
//! [`ChaCha8Rng`] is a real ChaCha stream-cipher core (RFC 7539
//! quarter-round, 8 rounds, 64-bit block counter) exposed through the shim
//! `rand` traits. Output streams are **not** bit-compatible with upstream
//! `rand_chacha` for the same seed — `seed_from_u64` expands the seed with
//! SplitMix64 rather than rand's PCG scheme — but they are deterministic,
//! portable, and pass the statistical smoke tests below.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// "expand 32-byte k" — the standard ChaCha constant words.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

/// A ChaCha generator with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Input block: constants, 8 key words, 2 counter words, 2 nonce words.
    input: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 forces a refill.
    word_idx: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// SplitMix64 step, used only for key expansion in `seed_from_u64`.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    /// Run the 8-round ChaCha block function over `input` into `out`.
    fn block_fn(input: &[u32; 16], out: &mut [u32; 16]) {
        let mut x = *input;
        for _ in 0..4 {
            // One double round = 4 column + 4 diagonal quarter-rounds.
            quarter_round(&mut x, 0, 4, 8, 12);
            quarter_round(&mut x, 1, 5, 9, 13);
            quarter_round(&mut x, 2, 6, 10, 14);
            quarter_round(&mut x, 3, 7, 11, 15);
            quarter_round(&mut x, 0, 5, 10, 15);
            quarter_round(&mut x, 1, 6, 11, 12);
            quarter_round(&mut x, 2, 7, 8, 13);
            quarter_round(&mut x, 3, 4, 9, 14);
        }
        for i in 0..16 {
            out[i] = x[i].wrapping_add(input[i]);
        }
    }

    /// Refill the keystream block and advance the 64-bit counter.
    fn refill(&mut self) {
        Self::block_fn(&self.input, &mut self.block);
        let (lo, carry) = self.input[12].overflowing_add(1);
        self.input[12] = lo;
        if carry {
            self.input[13] = self.input[13].wrapping_add(1);
        }
        self.word_idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut input = [0u32; 16];
        input[..4].copy_from_slice(&SIGMA);
        for i in 0..4 {
            let w = splitmix64(&mut sm);
            input[4 + 2 * i] = w as u32;
            input[5 + 2 * i] = (w >> 32) as u32;
        }
        // Counter starts at 0; nonce words stay 0 (single stream per seed).
        ChaCha8Rng {
            input,
            block: [0; 16],
            word_idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.word_idx >= 16 {
            self.refill();
        }
        let w = self.block[self.word_idx];
        self.word_idx += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(11);
        let mut b = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut r = ChaCha8Rng::seed_from_u64(3);
        // 3 blocks of 16 words: all 48 words distinct with overwhelming
        // probability; identical consecutive blocks would indicate a stuck
        // counter.
        let words: Vec<u32> = (0..48).map(|_| r.next_u32()).collect();
        assert_ne!(words[0..16], words[16..32]);
        assert_ne!(words[16..32], words[32..48]);
    }

    #[test]
    fn bits_look_balanced() {
        let mut r = ChaCha8Rng::seed_from_u64(999);
        let ones: u32 = (0..1000).map(|_| r.next_u64().count_ones()).sum();
        // 64_000 bits; expect ~32_000 ones. Allow a generous ±5% band.
        assert!((30_400..33_600).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn block_fn_diffuses_seeded_state() {
        // Structural sanity: with the SIGMA constants in place the block
        // function scrambles the state (the all-zero *input block* is a
        // fixed point of the raw permutation, which is why real ChaCha
        // always carries the constants).
        let seeded = ChaCha8Rng::seed_from_u64(0);
        let mut out = [0u32; 16];
        ChaCha8Rng::block_fn(&seeded.input, &mut out);
        assert_ne!(out, seeded.input);
        assert!(out.iter().any(|&w| w != 0));
    }
}
