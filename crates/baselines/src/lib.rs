//! # mmdiag-baselines
//!
//! Naive reference diagnosers the `O(Δ·N)` driver of [`mmdiag_core`] is
//! benchmarked — and cross-checked — against.
//!
//! The paper's §6 argument is that `Set_Builder` consults far fewer syndrome
//! entries than the whole table. To make that claim measurable, this crate
//! implements the obvious table-first algorithm a practitioner would write
//! without the paper:
//!
//! 1. **Snapshot the full syndrome** — materialise a
//!    [`mmdiag_syndrome::SyndromeTable`] by reading *every* entry
//!    `s_u(v, w)` through the shared [`SyndromeSource`] interface
//!    (`Σ_u C(deg u, 2)` lookups, `O(N·Δ²)`). This is the cost
//!    Chiang–Tan-style algorithms pay up front and the driver avoids.
//! 2. **Per-seed neighbourhood-consensus growth** — for each node `u0` in
//!    order, grow a candidate healthy cluster by following `Agree` results
//!    in the snapshot (the same health-propagation rule as `Set_Builder`,
//!    minus the partition machinery), and accept the first cluster whose
//!    spanning tree has more than `fault_bound` internal nodes — the §4.1
//!    certificate, whose soundness does not depend on how the seed was
//!    chosen. Worst case `O(N · Δ·N)` work on top of the snapshot.
//! 3. **Consensus post-check** — re-scan the full table and verify that
//!    every claimed-healthy tester's entries are exactly what the claimed
//!    fault set predicts under the MM model.
//!
//! Because step 2 reuses the certificate, a successful run returns exactly
//! the planted fault set whenever the driver would (same model assumptions:
//! `|F| ≤ fault_bound ≤ κ`), so [`diagnose_baseline`] is interchangeable
//! with [`mmdiag_core::diagnose`] — the cross-check suite in
//! `tests/cross_check.rs` (facade crate) holds them to that.
//!
//! [`mmdiag_core`]: ../mmdiag_core/index.html
//! [`mmdiag_core::diagnose`]: ../mmdiag_core/driver/fn.diagnose.html
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sampled;

pub use sampled::{sampled_check, SampledCheck};

use mmdiag_syndrome::{SyndromeSource, SyndromeTable};
use mmdiag_topology::{NodeId, Partitionable, Topology};

/// A successful baseline diagnosis.
#[derive(Clone, Debug)]
pub struct BaselineDiagnosis {
    /// The diagnosed fault set, ascending.
    pub faults: Vec<NodeId>,
    /// The seed whose cluster produced the certificate.
    pub certified_seed: NodeId,
    /// How many seeds were tried before the certificate (≥ 1).
    pub seeds_tried: usize,
    /// Size of the certified healthy cluster.
    pub healthy_count: usize,
    /// Syndrome entries consulted — always the full table size.
    pub lookups_used: u64,
}

/// Why the baseline could not complete. `#[non_exhaustive]` like
/// `mmdiag_core::DiagnosisError`, so new failure modes do not break
/// downstream matches.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BaselineError {
    /// No seed's cluster reached the internal-node certificate. Under the
    /// model assumptions (`|F| ≤ fault_bound ≤ κ`, `N` large enough for the
    /// certificate to be reachable) this cannot happen.
    NoSeedCertified,
    /// A certified cluster plus its boundary failed to label every node —
    /// the health-propagation argument did not cover the graph, which
    /// violates the `κ ≥ δ` connectivity assumption.
    IncompleteLabeling {
        /// Nodes left neither claimed-healthy nor claimed-faulty.
        unlabeled: usize,
    },
    /// A certified cluster's diagnosis contradicts the snapshot — the
    /// syndrome violates the model assumptions.
    Inconsistent {
        /// The tester whose recorded result mismatched the prediction.
        tester: NodeId,
    },
    /// The certified cluster's neighbourhood exceeds the fault bound.
    TooManyFaults {
        /// Number of claimed-faulty nodes found.
        found: usize,
        /// The bound the run used.
        bound: usize,
    },
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::NoSeedCertified => {
                write!(f, "no seed produced a certified healthy cluster")
            }
            BaselineError::IncompleteLabeling { unlabeled } => {
                write!(
                    f,
                    "{unlabeled} nodes left unlabeled by every certified cluster"
                )
            }
            BaselineError::Inconsistent { tester } => {
                write!(f, "syndrome inconsistent with diagnosis at tester {tester}")
            }
            BaselineError::TooManyFaults { found, bound } => {
                write!(f, "{found} claimed faults exceed the bound {bound}")
            }
        }
    }
}

impl std::error::Error for BaselineError {}

/// Baseline diagnosis with the instance's canonical fault bound — the
/// drop-in counterpart of [`mmdiag_core::diagnose`].
///
/// The baseline never uses the decomposition; the [`Partitionable`] bound
/// exists only to read [`Partitionable::driver_fault_bound`] so both
/// algorithms solve the *same* problem instance.
///
/// [`mmdiag_core::diagnose`]: ../mmdiag_core/driver/fn.diagnose.html
pub fn diagnose_baseline<T, S>(g: &T, s: &S) -> Result<BaselineDiagnosis, BaselineError>
where
    T: Partitionable + ?Sized,
    S: SyndromeSource + ?Sized,
{
    diagnose_naive(g, s, g.driver_fault_bound())
}

/// Baseline diagnosis with an explicit fault bound.
///
/// Reads the entire syndrome up front, then tries every node in order as a
/// cluster seed until the §4.1 certificate fires; see the crate docs for the
/// full procedure and its cost.
pub fn diagnose_naive<T, S>(
    g: &T,
    s: &S,
    fault_bound: usize,
) -> Result<BaselineDiagnosis, BaselineError>
where
    T: Topology + ?Sized,
    S: SyndromeSource + ?Sized,
{
    let start_lookups = s.lookups();
    let snap = SyndromeTable::capture(g, s);
    let lookups_used = s.lookups().saturating_sub(start_lookups);
    let n = g.node_count();

    let mut in_cluster = vec![false; n];
    let mut parent = vec![0 as NodeId; n];
    let mut members: Vec<NodeId> = Vec::new();
    let mut deferred: Option<BaselineError> = None;
    for seed in 0..n {
        grow_cluster(&snap, seed, &mut in_cluster, &mut parent, &mut members);
        if certified(&parent, &members, fault_bound) {
            let faults = cluster_boundary(g, &in_cluster, &members);
            if faults.len() > fault_bound {
                return Err(BaselineError::TooManyFaults {
                    found: faults.len(),
                    bound: fault_bound,
                });
            }
            // The diagnosis must label every node (certified-healthy cluster
            // plus its all-faulty boundary) and survive the full-table
            // consensus re-check; a certified cluster that fails either is
            // skipped in favour of a later seed, and the first such failure
            // is reported if no seed ever succeeds.
            if members.len() + faults.len() < n {
                deferred.get_or_insert(BaselineError::IncompleteLabeling {
                    unlabeled: n - members.len() - faults.len(),
                });
                continue;
            }
            match consensus_check(&snap, n, &faults, &members) {
                Ok(()) => {
                    return Ok(BaselineDiagnosis {
                        faults,
                        certified_seed: seed,
                        seeds_tried: seed + 1,
                        healthy_count: members.len(),
                        lookups_used,
                    })
                }
                Err(e) => {
                    deferred.get_or_insert(e);
                    continue;
                }
            }
        }
    }
    Err(deferred.unwrap_or(BaselineError::NoSeedCertified))
}

/// `s_u(v, w) == Agree`, answered from the snapshot.
#[inline]
fn agrees(snap: &SyndromeTable, u: NodeId, v: NodeId, w: NodeId) -> bool {
    snap.lookup(u, v, w).is_agree()
}

/// Grow the Agree-following cluster from `seed` using only the snapshot.
///
/// Level 1 adds every neighbour `v` of the seed with a witness pair
/// `s_seed(v, w) = Agree`; later levels add `v` adjacent to a member `u`
/// when `s_u(v, t(u)) = Agree` — the same propagation rule as
/// `Set_Builder`, so the same health-soundness argument applies.
fn grow_cluster(
    snap: &SyndromeTable,
    seed: NodeId,
    in_cluster: &mut [bool],
    parent: &mut [NodeId],
    members: &mut Vec<NodeId>,
) {
    for &m in members.iter() {
        in_cluster[m] = false;
    }
    members.clear();
    in_cluster[seed] = true;
    parent[seed] = seed;
    members.push(seed);

    let seed_nbrs = snap.neighbors_slice(seed);
    for (i, &v) in seed_nbrs.iter().enumerate() {
        let witnessed = seed_nbrs
            .iter()
            .enumerate()
            .any(|(j, &w)| j != i && agrees(snap, seed, v, w));
        if witnessed {
            in_cluster[v] = true;
            parent[v] = seed;
            members.push(v);
        }
    }

    let mut head = 1; // members[0] is the seed, already expanded.
    while head < members.len() {
        let u = members[head];
        head += 1;
        let tu = parent[u];
        for &v in snap.neighbors_slice(u) {
            if !in_cluster[v] && v != tu && agrees(snap, u, v, tu) {
                in_cluster[v] = true;
                parent[v] = u;
                members.push(v);
            }
        }
    }
}

/// The §4.1 certificate: strictly more distinct internal (parent) nodes than
/// the fault bound.
fn certified(parent: &[NodeId], members: &[NodeId], fault_bound: usize) -> bool {
    if members.len() <= 1 {
        return false;
    }
    let mut internals: Vec<NodeId> = members[1..].iter().map(|&v| parent[v]).collect();
    internals.sort_unstable();
    internals.dedup();
    internals.len() > fault_bound
}

/// `N(U) \ U` — the claimed fault set, ascending.
fn cluster_boundary<T: Topology + ?Sized>(
    g: &T,
    in_cluster: &[bool],
    members: &[NodeId],
) -> Vec<NodeId> {
    let mut flagged = vec![false; in_cluster.len()];
    let mut out = Vec::new();
    let mut buf = Vec::new();
    for &m in members {
        g.neighbors_into(m, &mut buf);
        for &v in &buf {
            if !in_cluster[v] && !flagged[v] {
                flagged[v] = true;
                out.push(v);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Verify the diagnosis against the whole snapshot: every claimed-healthy
/// tester's entries must be exactly what MM semantics predict for the
/// claimed fault set.
fn consensus_check(
    snap: &SyndromeTable,
    n: usize,
    faults: &[NodeId],
    members: &[NodeId],
) -> Result<(), BaselineError> {
    let mut faulty = vec![false; n];
    for &f in faults {
        faulty[f] = true;
    }
    for &u in members {
        let neigh = snap.neighbors_slice(u);
        for i in 0..neigh.len() {
            for j in (i + 1)..neigh.len() {
                let predicted_agree = !faulty[neigh[i]] && !faulty[neigh[j]];
                if agrees(snap, u, neigh[i], neigh[j]) != predicted_agree {
                    return Err(BaselineError::Inconsistent { tester: u });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdiag_core::diagnose;
    use mmdiag_syndrome::{behavior_sweep, FaultSet, OracleSyndrome, TesterBehavior};
    use mmdiag_topology::families::{Hypercube, KAryNCube, StarGraph};
    use rand::SeedableRng;

    #[test]
    fn snapshot_counts_the_whole_table() {
        let g = Hypercube::new(7);
        let s = OracleSyndrome::new(FaultSet::empty(128), TesterBehavior::AllZero);
        let snap = SyndromeTable::capture(&g, &s);
        // 128 testers × C(7,2) pairs.
        assert_eq!(snap.entry_count(), 128 * 21);
        assert_eq!(s.lookups(), 128 * 21);
    }

    #[test]
    fn recovers_planted_faults_across_behaviors() {
        let g = Hypercube::new(7);
        let faults = [3usize, 64, 90];
        for b in behavior_sweep(5) {
            let s = OracleSyndrome::new(FaultSet::new(128, &faults), b);
            let d = diagnose_baseline(&g, &s).unwrap_or_else(|e| panic!("{e} ({b:?})"));
            assert_eq!(d.faults, faults, "{b:?}");
            assert_eq!(d.healthy_count, 125, "{b:?}");
            assert_eq!(d.lookups_used, 128 * 21, "{b:?}");
        }
    }

    #[test]
    fn no_faults_certifies_from_first_seed() {
        let g = Hypercube::new(7);
        let s = OracleSyndrome::new(FaultSet::empty(128), TesterBehavior::AllZero);
        let d = diagnose_baseline(&g, &s).unwrap();
        assert!(d.faults.is_empty());
        assert_eq!(d.certified_seed, 0);
        assert_eq!(d.seeds_tried, 1);
        assert_eq!(d.healthy_count, 128);
    }

    #[test]
    fn faulty_low_seeds_are_skipped() {
        // Seeds 0..7 are all faulty (and AllOne makes their clusters tiny):
        // the baseline must walk past them and still answer correctly.
        let g = Hypercube::new(7);
        let faults: Vec<usize> = (0..7).collect();
        let s = OracleSyndrome::new(FaultSet::new(128, &faults), TesterBehavior::AllOne);
        let d = diagnose_baseline(&g, &s).unwrap();
        assert_eq!(d.faults, faults);
        assert!(d.seeds_tried > 1);
    }

    #[test]
    fn matches_driver_on_random_instances() {
        let g = KAryNCube::new(3, 6); // 729 nodes, bound 12
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(31);
        for trial in 0..4u64 {
            let f = FaultSet::random(729, (3 * trial as usize) % 13, &mut rng);
            let s = OracleSyndrome::new(f.clone(), TesterBehavior::Random { seed: trial });
            let drv = diagnose(&g, &s).unwrap();
            let base = diagnose_baseline(&g, &s).unwrap();
            assert_eq!(drv.faults, base.faults, "trial {trial}");
            assert_eq!(base.faults, f.members(), "trial {trial}");
        }
    }

    #[test]
    fn permutation_family_handled() {
        let g = StarGraph::new(6); // 720 nodes, bound 5
        let faults = [0usize, 100, 350, 719];
        for b in behavior_sweep(9) {
            let s = OracleSyndrome::new(FaultSet::new(720, &faults), b);
            let d = diagnose_baseline(&g, &s).unwrap_or_else(|e| panic!("{e} ({b:?})"));
            assert_eq!(d.faults, faults, "{b:?}");
        }
    }

    #[test]
    fn over_bound_fault_load_is_rejected_not_misreported() {
        // 30 > δ faults with AllOne testers: every cluster stays small, so
        // the baseline must fail rather than return a wrong answer.
        let g = Hypercube::new(7);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(123);
        let f = FaultSet::random(128, 30, &mut rng);
        let s = OracleSyndrome::new(f.clone(), TesterBehavior::AllOne);
        match diagnose_baseline(&g, &s) {
            Err(_) => {}
            Ok(d) => assert_eq!(
                d.faults,
                f.members(),
                "a certified answer must still be the truth"
            ),
        }
    }

    #[test]
    fn explicit_bound_variant_agrees() {
        let g = Hypercube::new(7);
        let s = OracleSyndrome::new(FaultSet::new(128, &[9, 17]), TesterBehavior::Inverted);
        let auto = diagnose_baseline(&g, &s).unwrap();
        let manual = diagnose_naive(&g, &s, 7).unwrap();
        assert_eq!(auto.faults, manual.faults);
    }
}
