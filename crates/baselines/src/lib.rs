pub fn placeholder() {}
