//! The sampled spot-checker: an independent cross-check for instances too
//! large for the full-table baseline.
//!
//! [`crate::diagnose_baseline`] reads all `Σ C(deg u, 2)` syndrome entries
//! — infeasible from ~10⁵ nodes, which is why the scale axis historically
//! ran driver-only (`"baseline": null`). [`sampled_check`] restores an
//! independent verdict at a cost the 10⁶–10⁷-node implicit path can pay:
//!
//! 1. **Certificate re-derivation** — re-grow the restricted probe tree at
//!    the claimed certified part straight from the syndrome source (the
//!    same level rules and child-spreading parent reassignment as
//!    `Set_Builder`, replicated here over hash-map state so memory stays
//!    `O(|part|)`), and require that it certifies (> `fault_bound`
//!    internal nodes) and is disjoint from the claimed fault set.
//! 2. **Sampled label re-check** — a seeded random walk inside every part
//!    picks `k` nodes; for each sampled node `u`, every test about `u` by
//!    a claimed-healthy tester `t` (`s_t(u, x)` over `t`'s other
//!    neighbours `x`) must equal what the claimed labelling predicts under
//!    MM semantics. A correct labelling can never trip this (healthy
//!    testers answer honestly), and a wrong label at a sampled node is
//!    always caught provided the node has a healthy neighbour with degree
//!    ≥ 2 — guaranteed by `κ ≥ δ ≥ |F|` on every catalog family.
//!
//! What this does **not** prove, versus the full baseline: labels of
//! unsampled nodes are only vouched for transitively (they fed the
//! driver's certificate, not this check), and no full-table consensus scan
//! happens. It is a spot-check with one-sided error — `agree = false` is
//! always a genuine inconsistency, `agree = true` is evidence proportional
//! to the sample rate.

use mmdiag_syndrome::SyndromeSource;
use mmdiag_topology::{NodeId, Partitionable};
use std::collections::{HashMap, HashSet};

/// Outcome of a [`sampled_check`] run.
#[derive(Clone, Debug)]
pub struct SampledCheck {
    /// The nodes the seeded walks sampled (ascending, deduplicated).
    /// Deterministic in `(g, seed, samples_per_part)` — independent of the
    /// claimed labelling, so a test can plant a wrong label at a node it
    /// knows will be sampled.
    pub samples: Vec<NodeId>,
    /// Syndrome entries consulted by the label re-checks.
    pub checked_tests: u64,
    /// Sampled nodes whose neighbourhood tests contradict the claimed
    /// labelling (ascending).
    pub disagreements: Vec<NodeId>,
    /// Did the re-derived probe tree at the certified part certify and
    /// stay disjoint from the claimed fault set?
    pub certificate_ok: bool,
    /// `certificate_ok` and no disagreements and the claimed set respects
    /// the fault bound.
    pub agree: bool,
}

/// Spot-check a claimed diagnosis against the live syndrome source. See
/// the module docs for semantics; `O(parts · k · Δ²)` lookups and
/// `O(|part| + |F| + parts·k)` memory — no `O(N)` state anywhere, so this
/// runs on implicit topologies at any scale the driver itself reaches.
pub fn sampled_check<T, S>(
    g: &T,
    s: &S,
    claimed_faults: &[NodeId],
    certified_part: usize,
    fault_bound: usize,
    samples_per_part: usize,
    seed: u64,
) -> SampledCheck
where
    T: Partitionable + ?Sized,
    S: SyndromeSource + ?Sized,
{
    let claimed: HashSet<NodeId> = claimed_faults.iter().copied().collect();
    let bound_ok = claimed.len() <= fault_bound;

    let certificate_ok = bound_ok && recertify_part(g, s, certified_part, fault_bound, &claimed);

    let samples = sample_nodes(g, samples_per_part, seed);
    let mut checked_tests = 0u64;
    let mut disagreements = Vec::new();
    let mut tbuf = Vec::new();
    let mut xbuf = Vec::new();
    for &u in &samples {
        g.neighbors_into(u, &mut tbuf);
        let mut consistent = true;
        'testers: for &t in &tbuf {
            if claimed.contains(&t) {
                // A claimed-faulty tester's answers carry no information
                // under the MM model; skip.
                continue;
            }
            g.neighbors_into(t, &mut xbuf);
            for &x in &xbuf {
                if x == u {
                    continue;
                }
                let predicted_agree = !claimed.contains(&u) && !claimed.contains(&x);
                checked_tests += 1;
                if s.lookup(t, u, x).is_agree() != predicted_agree {
                    consistent = false;
                    break 'testers;
                }
            }
        }
        if !consistent {
            disagreements.push(u);
        }
    }
    disagreements.sort_unstable();

    let agree = bound_ok && certificate_ok && disagreements.is_empty();
    SampledCheck {
        samples,
        checked_tests,
        disagreements,
        certificate_ok,
        agree,
    }
}

/// Re-grow the restricted probe tree at `part` from the syndrome source —
/// the exact `Set_Builder` level rules (level-1 witness pairs, layered
/// growth, child-spreading parent reassignment) over hash-map state — and
/// check the §4.1 certificate plus disjointness from the claimed faults.
///
/// This deliberately re-implements the growth rules instead of calling
/// `mmdiag_core::set_builder`: a verifier that shared the driver's kernel
/// would rubber-stamp any bug in that kernel. The price is a fourth copy
/// of the rules (core, the two honest-probe variants in
/// `mmdiag_topology::partition`, and this); the cross-checks that keep
/// them from drifting are `correct_diagnosis_always_agrees` below (a
/// divergent re-derivation fails against real driver output, behaviour
/// sweep included) and the bench, where every driver-only cell asserts
/// this certificate fires on the driver's certified part.
fn recertify_part<T, S>(
    g: &T,
    s: &S,
    part: usize,
    fault_bound: usize,
    claimed: &HashSet<NodeId>,
) -> bool
where
    T: Partitionable + ?Sized,
    S: SyndromeSource + ?Sized,
{
    if part >= g.part_count() {
        return false;
    }
    let u0 = g.representative(part);
    let in_part = |v: NodeId| g.part_of(v) == part;

    #[derive(Clone, Copy)]
    struct Node {
        parent: NodeId,
        layer: u32,
        claims: u32,
    }
    let mut state: HashMap<NodeId, Node> = HashMap::new();
    state.insert(
        u0,
        Node {
            parent: u0,
            layer: 0,
            claims: 0,
        },
    );

    // Level 1: in-part neighbour pairs of the seed.
    let mut candidates: Vec<NodeId> = g
        .neighbors(u0)
        .into_iter()
        .filter(|&v| in_part(v))
        .collect();
    candidates.sort_unstable();
    let mut frontier = Vec::new();
    {
        let mut joined = vec![false; candidates.len()];
        for i in 0..candidates.len() {
            for j in (i + 1)..candidates.len() {
                if joined[i] && joined[j] {
                    continue;
                }
                if s.lookup(u0, candidates[i], candidates[j]).is_agree() {
                    joined[i] = true;
                    joined[j] = true;
                }
            }
        }
        for (idx, &v) in candidates.iter().enumerate() {
            if joined[idx] {
                state.insert(
                    v,
                    Node {
                        parent: u0,
                        layer: 1,
                        claims: 0,
                    },
                );
                frontier.push(v);
            }
        }
    }
    if frontier.is_empty() {
        return false;
    }
    let mut internals: HashSet<NodeId> = HashSet::new();
    internals.insert(u0);

    let mut buf = Vec::new();
    let mut next: Vec<NodeId> = Vec::new();
    let mut cur_layer = 1u32;
    let mut certified = internals.len() > fault_bound;
    while !frontier.is_empty() {
        next.clear();
        cur_layer += 1;
        frontier.sort_unstable();
        for &u in &frontier {
            let tu = state[&u].parent;
            g.neighbors_into(u, &mut buf);
            for &v in &buf {
                if v == tu || !in_part(v) {
                    continue;
                }
                if let Some(&seen) = state.get(&v) {
                    // Spread heuristic — same eligibility test as
                    // `Set_Builder`: move a same-layer child to a childless
                    // eligible parent, witnessed by s_u(v, t(u)) = Agree.
                    if !certified
                        && seen.layer == cur_layer
                        && state[&seen.parent].claims > 1
                        && state[&u].claims == 0
                        && s.lookup(u, v, tu).is_agree()
                    {
                        state.get_mut(&seen.parent).expect("parent visited").claims -= 1;
                        state.get_mut(&u).expect("frontier visited").claims += 1;
                        state.get_mut(&v).expect("child visited").parent = u;
                    }
                    continue;
                }
                if s.lookup(u, v, tu).is_agree() {
                    state.insert(
                        v,
                        Node {
                            parent: u,
                            layer: cur_layer,
                            claims: 0,
                        },
                    );
                    state.get_mut(&u).expect("frontier visited").claims += 1;
                    next.push(v);
                }
            }
        }
        for &u in &frontier {
            state.get_mut(&u).expect("frontier visited").claims = 0;
        }
        for &v in &next {
            internals.insert(state[&v].parent);
        }
        certified = certified || internals.len() > fault_bound;
        std::mem::swap(&mut frontier, &mut next);
    }
    // Certificate plus consistency: a certified tree proves its members
    // healthy, so none may be claimed faulty.
    certified && state.keys().all(|v| !claimed.contains(v))
}

/// SplitMix64 finaliser — seeded, allocation-free index selection for the
/// in-part walks.
#[inline]
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Up to `k` distinct nodes per part, gathered by a seeded random walk
/// from the representative that never leaves the part. Returns the union,
/// ascending. Depends only on `(g, k, seed)`.
fn sample_nodes<T: Partitionable + ?Sized>(g: &T, k: usize, seed: u64) -> Vec<NodeId> {
    let mut samples: Vec<NodeId> = Vec::new();
    let mut buf = Vec::new();
    for part in 0..g.part_count() {
        let mut cur = g.representative(part);
        let mut picked: Vec<NodeId> = vec![cur];
        let mut step = 0u64;
        while picked.len() < k && step < (8 * k as u64 + 8) {
            g.neighbors_into(cur, &mut buf);
            buf.retain(|&v| g.part_of(v) == part);
            buf.sort_unstable();
            if buf.is_empty() {
                break;
            }
            let idx = (mix(seed ^ mix(part as u64) ^ mix(step)) % buf.len() as u64) as usize;
            cur = buf[idx];
            if !picked.contains(&cur) {
                picked.push(cur);
            }
            step += 1;
        }
        samples.extend(picked.into_iter().take(k.max(1)));
    }
    samples.sort_unstable();
    samples.dedup();
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use mmdiag_core::diagnose;
    use mmdiag_syndrome::{behavior_sweep, FaultSet, OnDemandOracle, OracleSyndrome};
    use mmdiag_topology::families::{Hypercube, KAryNCube, StarGraph};
    use mmdiag_topology::Topology;

    #[test]
    fn correct_diagnosis_always_agrees() {
        let g = Hypercube::new(7);
        let faults = [3usize, 64, 90];
        for b in behavior_sweep(41) {
            let s = OracleSyndrome::new(FaultSet::new(128, &faults), b);
            let d = diagnose(&g, &s).unwrap();
            let check = sampled_check(&g, &s, &d.faults, d.certified_part, 7, 3, 0xC0FFEE);
            assert!(check.agree, "{b:?}: {:?}", check.disagreements);
            assert!(check.certificate_ok, "{b:?}");
            assert!(check.checked_tests > 0);
            assert!(!check.samples.is_empty());
        }
    }

    #[test]
    fn sampling_is_deterministic_and_label_independent() {
        let g = KAryNCube::new(3, 6);
        let a = sample_nodes(&g, 2, 7);
        let b = sample_nodes(&g, 2, 7);
        assert_eq!(a, b);
        let c = sample_nodes(&g, 2, 8);
        assert_ne!(a, c, "different seeds should sample differently");
        // Every part is represented.
        for part in 0..g.part_count() {
            assert!(
                a.iter().any(|&u| g.part_of(u) == part),
                "part {part} unsampled"
            );
        }
    }

    #[test]
    fn planted_wrong_label_at_a_sampled_node_is_caught() {
        let g = Hypercube::new(7);
        let truth = [3usize, 64, 90];
        let s = OracleSyndrome::new(
            FaultSet::new(128, &truth),
            mmdiag_syndrome::TesterBehavior::AllZero,
        );
        let d = diagnose(&g, &s).unwrap();
        let honest = sampled_check(&g, &s, &d.faults, d.certified_part, 7, 3, 99);
        assert!(honest.agree);

        // Flip a sampled healthy node to claimed-faulty: sampling is
        // label-independent, so the same seed re-samples the same node.
        let victim = *honest
            .samples
            .iter()
            .find(|u| !truth.contains(u))
            .expect("some healthy node is sampled");
        let mut wrong: Vec<NodeId> = d.faults.clone();
        wrong.push(victim);
        wrong.sort_unstable();
        let caught = sampled_check(&g, &s, &wrong, d.certified_part, 7, 3, 99);
        assert!(
            !caught.agree,
            "flipped healthy->faulty label must be caught"
        );
        assert!(
            caught.disagreements.contains(&victim) || !caught.certificate_ok,
            "the planted node must be flagged (or the certificate tripped): {caught:?}"
        );

        // And the other direction: claim a truly faulty node healthy. A
        // wrong label is caught when it sits within the 2-neighbourhood of
        // a sampled node (the check reads every test *about* each sampled
        // node); sample generously so node 3's neighbourhood is covered.
        let dropped: Vec<NodeId> = d.faults.iter().copied().filter(|&f| f != 3).collect();
        let caught = sampled_check(&g, &s, &dropped, d.certified_part, 7, 12, 99);
        assert!(
            !caught.agree,
            "dropping a true fault must be caught: {caught:?}"
        );
    }

    #[test]
    fn works_over_the_streaming_oracle_and_permutation_families() {
        let g = StarGraph::new(6);
        let members = [0usize, 100, 350, 719];
        let s = OnDemandOracle::new(
            g.node_count(),
            &members,
            mmdiag_syndrome::TesterBehavior::Random { seed: 5 },
        );
        let d = diagnose(&g, &s).unwrap();
        assert_eq!(d.faults, members);
        let check = sampled_check(&g, &s, &d.faults, d.certified_part, 5, 4, 1234);
        assert!(check.agree, "{:?}", check.disagreements);
    }

    #[test]
    fn over_bound_claims_are_rejected() {
        let g = Hypercube::new(7);
        let s = OracleSyndrome::new(
            FaultSet::empty(128),
            mmdiag_syndrome::TesterBehavior::AllZero,
        );
        let too_many: Vec<NodeId> = (0..9).collect();
        let check = sampled_check(&g, &s, &too_many, 0, 7, 2, 0);
        assert!(!check.agree);
        assert!(!check.certificate_ok);
    }
}
