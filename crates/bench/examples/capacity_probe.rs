//! Per-part certificate-capacity audit across the family catalog.
//!
//! For every catalog instance, probes each part of a fault-free syndrome
//! with the restricted `Set_Builder` and reports the worst-case contributor
//! count versus the instance's `driver_fault_bound` — the diagnostic that
//! exposed the original over-optimistic fault bounds (see
//! `mmdiag_topology::certified_fault_capacity`).
//!
//! Run: `cargo run --release -p mmdiag-bench --example capacity_probe`

use mmdiag_core::set_builder::{set_builder_in_part, Workspace};
use mmdiag_syndrome::{FaultSet, OracleSyndrome, TesterBehavior};
use mmdiag_topology::families::*;
use mmdiag_topology::Partitionable;

fn probe<T: Partitionable>(g: &T) {
    let n = g.node_count();
    let s = OracleSyndrome::new(FaultSet::empty(n), TesterBehavior::AllZero);
    let mut ws = Workspace::new(n);
    let bound = g.driver_fault_bound();
    let mut worst = usize::MAX;
    let mut certified = 0;
    for p in 0..g.part_count() {
        let out = set_builder_in_part(g, &s, g.representative(p), bound, &mut ws);
        if out.all_healthy {
            certified += 1;
        }
        worst = worst.min(out.contributors);
    }
    println!(
        "{:24} bound={:2} parts={:3} part_sz={:4} worst_contrib={:3} certified={}/{}",
        g.name(),
        bound,
        g.part_count(),
        g.part_size(0),
        worst,
        certified,
        g.part_count()
    );
}

fn main() {
    probe(&Hypercube::new(7));
    probe(&Hypercube::new(8));
    probe(&CrossedCube::new(7));
    probe(&CrossedCube::new(8));
    probe(&TwistedCube::new(7));
    probe(&TwistedCube::new(8));
    probe(&TwistedNCube::new(7));
    probe(&TwistedNCube::new(8));
    probe(&FoldedHypercube::new(8));
    probe(&FoldedHypercube::new(9));
    probe(&EnhancedHypercube::new(8, 3));
    probe(&EnhancedHypercube::new(9, 3));
    probe(&AugmentedCube::new(10));
    probe(&ShuffleCube::new(10));
    probe(&KAryNCube::new(4, 4));
    probe(&KAryNCube::new(3, 6));
    probe(&AugmentedKAryNCube::new(4, 4));
    probe(&StarGraph::new(6));
    probe(&StarGraph::new(7));
    probe(&NKStar::new(6, 3));
    probe(&NKStar::new(7, 3));
    probe(&Pancake::new(6));
    probe(&Pancake::new(7));
    probe(&Arrangement::new(6, 3));
    probe(&Arrangement::new(7, 3));
}
