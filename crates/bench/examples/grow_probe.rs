//! Grow-phase wall-clock probe for the frontier-parallel sweep.
//!
//! Runs one implicit hypercube cell — the sequential driver leg, then the
//! auto leg — and prints the phase and per-round split, so engine changes
//! can be timed at Q_23/Q_25 without a full bench sweep.
//!
//! Run: `cargo run --release -p mmdiag-bench --example grow_probe -- 23 random`
//! (dimension defaults to 23; second arg `random`/`allzero`). The usual
//! knobs steer it: `MMDIAG_POOL_THREADS` sizes the auto leg's pool,
//! `MMDIAG_GROW_CUTOVER` forces the growth engine either way.

use mmdiag::Diagnoser;
use mmdiag_bench::scatter_faults;
use mmdiag_implicit::ImplicitTopology;
use mmdiag_syndrome::{OnDemandOracle, SyndromeSource, TesterBehavior};
use mmdiag_topology::families::Hypercube;
use mmdiag_topology::{Partitionable, Topology};
use mmdiag_trace::clock::Stopwatch;

fn main() {
    let mut args = std::env::args().skip(1);
    let dim: usize = args
        .next()
        .map(|a| a.parse().expect("dimension"))
        .unwrap_or(23);
    let behavior = match args.next().as_deref() {
        Some("random") => TesterBehavior::Random { seed: 0xE1A7_5EED },
        _ => TesterBehavior::AllZero,
    };
    let reps: usize = args
        .next()
        .map(|a| a.parse().expect("reps"))
        .unwrap_or(1)
        .max(1);
    let g = ImplicitTopology::new(Hypercube::new_certified(dim));
    let n = g.node_count();
    let bound = g.driver_fault_bound();
    let faults = scatter_faults(n, bound, 0x6E0B ^ dim as u64);
    let s = OnDemandOracle::new(n, faults.members(), behavior);
    eprintln!(
        "Q_{dim}: {n} nodes, {bound} faults, {behavior:?}, {} pool threads, grow cutover {}",
        mmdiag_exec::global().threads(),
        mmdiag_core::grow_cutover(),
    );

    let mut seq = None;
    for rep in 0..reps {
        s.reset_lookups();
        let t = Stopwatch::start();
        let r = Diagnoser::new(&g).run(&s).expect("sequential leg");
        let seq_wall = u128::from(t.elapsed_ns());
        eprintln!(
            "seq#{rep} [{}]: wall {:>7.3}s  probe {:>7.3}s  grow {:>7.3}s  grow_lookups {}",
            r.backend,
            seq_wall as f64 / 1e9,
            r.telemetry.probe_nanos as f64 / 1e9,
            r.telemetry.grow_nanos as f64 / 1e9,
            r.telemetry.grow_lookups,
        );
        seq = Some(r);
    }
    let seq = seq.expect("at least one rep");

    let mut auto = None;
    for rep in 0..reps {
        s.reset_lookups();
        let t = Stopwatch::start();
        let r = Diagnoser::new(&g).auto().run(&s).expect("auto leg");
        let auto_wall = u128::from(t.elapsed_ns());
        eprintln!(
            "auto#{rep} [{}]: wall {:>7.3}s  probe {:>7.3}s  grow {:>7.3}s  grow_lookups {}",
            r.backend,
            auto_wall as f64 / 1e9,
            r.telemetry.probe_nanos as f64 / 1e9,
            r.telemetry.grow_nanos as f64 / 1e9,
            r.telemetry.grow_lookups,
        );
        auto = Some(r);
    }
    let auto = auto.expect("at least one rep");
    let rounds = &auto.telemetry.grow_rounds;
    let par_ns: u128 = rounds.iter().filter(|r| r.parallel).map(|r| r.nanos).sum();
    let pre_ns: u128 = rounds.iter().filter(|r| !r.parallel).map(|r| r.nanos).sum();
    eprintln!(
        "auto rounds: {} ({} parallel, {:.3}s; prefix {:.3}s)",
        rounds.len(),
        rounds.iter().filter(|r| r.parallel).count(),
        par_ns as f64 / 1e9,
        pre_ns as f64 / 1e9,
    );
    for r in rounds.iter() {
        eprintln!(
            "  frontier {:>9}  accepted {:>9}  lookups {:>9}  {:>9.1}ms  {}",
            r.frontier,
            r.accepted,
            r.lookups,
            r.nanos as f64 / 1e6,
            if r.parallel { "par" } else { "seq" },
        );
    }
    assert_eq!(seq.diagnosis.faults, auto.diagnosis.faults, "legs disagree");
    assert_eq!(
        seq.telemetry.grow_lookups, auto.telemetry.grow_lookups,
        "lookup counts drifted"
    );
}
