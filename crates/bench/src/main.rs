//! The `mmdiag-bench` harness binary.
//!
//! Sweeps the family catalog, cross-checks driver vs parallel driver vs
//! baseline vs event-level simulator on every cell, runs the
//! simulator-only scenario sweep (latency skew, mid-protocol injection),
//! and writes the machine-readable trajectory file.
//!
//! ```text
//! mmdiag-bench [--quick] [--out PATH]
//!   --quick   one (smallest) instance per family instead of the full
//!             sweep; also skips the baseline on the largest instance per
//!             family so the smoke run stays well under ~10 s
//!   --out     output path (default BENCH_2.json in the working directory)
//! ```

use mmdiag_bench::{distsim_scenarios, full_catalog, small_catalog, sweep, to_json};

/// The trajectory id this binary emits (`BENCH_<pr>`).
const BENCH_ID: &str = "BENCH_2";

fn main() {
    let mut quick = false;
    let mut out_path = format!("{BENCH_ID}.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_path = args
                    .next()
                    .unwrap_or_else(|| die("--out needs a path argument"));
            }
            "--help" | "-h" => {
                eprintln!("usage: mmdiag-bench [--quick] [--out PATH]");
                return;
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }

    let catalog = if quick {
        small_catalog()
    } else {
        full_catalog()
    };
    eprintln!(
        "sweeping {} instances across 14 families (driver / parallel x4 / baseline / distsim)…",
        catalog.len()
    );
    eprintln!(
        "{:<22} {:>6} {:>7} {:>12} {:>12} {:>9} {:>9} {:>6}",
        "instance", "nodes", "faults", "driver µs", "baseline µs", "speedup", "lookup×", "sim"
    );
    let records = sweep(&catalog, quick, &mut |rec| {
        eprintln!(
            "{:<22} {:>6} {:>7} {:>12.1} {:>12} {:>9} {:>9} {:>6}",
            rec.instance,
            rec.nodes,
            rec.num_faults,
            rec.driver_nanos as f64 / 1e3,
            if rec.baseline_skipped {
                "skip".to_string()
            } else {
                format!("{:.1}", rec.baseline_nanos as f64 / 1e3)
            },
            if rec.baseline_skipped {
                "-".to_string()
            } else {
                format!(
                    "{:.1}x",
                    rec.baseline_nanos as f64 / rec.driver_nanos.max(1) as f64
                )
            },
            if rec.baseline_skipped {
                "-".to_string()
            } else {
                format!(
                    "{:.1}x",
                    rec.baseline_lookups as f64 / rec.driver_lookups.max(1) as f64
                )
            },
            if rec.distsim.matches_model && rec.distsim.agree {
                "ok"
            } else {
                "FAIL"
            },
        );
    });

    eprintln!("running distsim scenario sweep (latency skew + mid-protocol injection)…");
    let scenarios = distsim_scenarios(&catalog);
    for s in &scenarios {
        eprintln!(
            "{:<22} {:<13} vtime {:>5} (unit {:>4})  depth {:>2} (model {:>2})  {}",
            s.instance,
            s.kind,
            s.virtual_time,
            s.unit_virtual_time,
            s.max_wave_depth,
            s.model_wave_depth,
            if s.ok { "ok" } else { "FAIL" }
        );
    }

    let disagreements = records.iter().filter(|r| !r.agree).count()
        + records
            .iter()
            .filter(|r| !r.distsim.matches_model || !r.distsim.agree)
            .count()
        + scenarios.iter().filter(|s| !s.ok).count();
    let json = to_json(BENCH_ID, &records, &scenarios);
    std::fs::write(&out_path, &json)
        .unwrap_or_else(|e| die(&format!("cannot write {out_path}: {e}")));
    eprintln!(
        "\n{} records + {} scenarios ({} families) -> {out_path}; disagreements: {disagreements}",
        records.len(),
        scenarios.len(),
        mmdiag_bench::families_covered(&records),
    );
    if disagreements > 0 {
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("mmdiag-bench: {msg}");
    std::process::exit(2);
}
