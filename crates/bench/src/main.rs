//! The `mmdiag-bench` harness binary.
//!
//! Sweeps the family catalog, cross-checks driver vs parallel driver vs
//! baseline on every cell, and writes the machine-readable trajectory file.
//!
//! ```text
//! mmdiag-bench [--quick] [--out PATH]
//!   --quick   one (smallest) instance per family instead of the full sweep
//!   --out     output path (default BENCH_1.json in the working directory)
//! ```

use mmdiag_bench::{full_catalog, small_catalog, sweep, to_json};

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_1.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out_path = args
                    .next()
                    .unwrap_or_else(|| die("--out needs a path argument"));
            }
            "--help" | "-h" => {
                eprintln!("usage: mmdiag-bench [--quick] [--out PATH]");
                return;
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }

    let catalog = if quick {
        small_catalog()
    } else {
        full_catalog()
    };
    eprintln!(
        "sweeping {} instances across 14 families (driver / parallel x4 / baseline)…",
        catalog.len()
    );
    eprintln!(
        "{:<22} {:>6} {:>7} {:>12} {:>12} {:>9} {:>9}",
        "instance", "nodes", "faults", "driver µs", "baseline µs", "speedup", "lookup×"
    );
    let records = sweep(&catalog, &mut |rec| {
        eprintln!(
            "{:<22} {:>6} {:>7} {:>12.1} {:>12.1} {:>8.1}x {:>8.1}x",
            rec.instance,
            rec.nodes,
            rec.num_faults,
            rec.driver_nanos as f64 / 1e3,
            rec.baseline_nanos as f64 / 1e3,
            rec.baseline_nanos as f64 / rec.driver_nanos.max(1) as f64,
            rec.baseline_lookups as f64 / rec.driver_lookups.max(1) as f64,
        );
    });

    let disagreements = records.iter().filter(|r| !r.agree).count();
    let json = to_json("BENCH_1", &records);
    std::fs::write(&out_path, &json)
        .unwrap_or_else(|e| die(&format!("cannot write {out_path}: {e}")));
    eprintln!(
        "\n{} records ({} families) -> {out_path}; disagreements: {disagreements}",
        records.len(),
        mmdiag_bench::families_covered(&records),
    );
    if disagreements > 0 {
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("mmdiag-bench: {msg}");
    std::process::exit(2);
}
