//! The `mmdiag-bench` harness binary.
//!
//! Sweeps the family catalog, cross-checks driver vs pooled backends vs
//! strided search vs baseline vs event-level simulator on every cell,
//! re-submits each instance's syndromes as one batched submission per
//! backend, runs the simulator-only scenario sweep (latency skew,
//! mid-protocol injection) on the shared pool, and writes the
//! machine-readable trajectory file.
//!
//! ```text
//! mmdiag-bench [--quick] [--large] [--xlarge] [--xxlarge] [--profile] [--throughput] [--online] [--out PATH]
//!   --quick   one (smallest) instance per family instead of the full
//!             sweep; also skips the baseline on the largest instance per
//!             family so the smoke run stays well under ~10 s. With
//!             --large/--xlarge/--xxlarge, caps each scale axis at its
//!             single smallest instance. MMDIAG_QUICK=1 in the environment means
//!             the same thing (the one quick knob shared with the distsim
//!             property suite).
//!   --large   extend the catalog with the 10⁵⁺-node scale axis (Q_17,
//!             S_8, large k-ary tori) — driver-only cells; the sampled
//!             spot-checker replaces the baseline/simulator legs (JSON
//!             null)
//!   --xlarge  extend the catalog with the 10⁶–10⁷-node implicit axis
//!             (Q_20…Q_23, Q^3_13, Q^4_11, S_10) — CSR-free adjacency,
//!             streaming syndromes, sampled cross-check; a
//!             materialisation guard asserts no Cached copy is built
//!   --xxlarge extend the catalog with the 10⁷–10⁸-node axis (Q_25,
//!             Q^3_17, Q_27 — 134 217 728 nodes) served by the
//!             frontier-parallel growth sweep; same slimmed protocol and
//!             sampled verification as --xlarge
//!   --profile run one extra fully observed rep per cell — tracing session
//!             on an instrumented pool — writing one Chrome trace-event
//!             file per cell (Perfetto-loadable) into a directory derived
//!             from --out (BENCH_6.json → BENCH_6-traces/). Every trace is
//!             validated as JSON before it is written and its rollups are
//!             embedded additively in the v2 records under "profile"
//!   --throughput run the fleet axis after the sweep: 8 (4 with --quick)
//!             concurrent Diagnoser sessions on separate threads — mixed
//!             families and verification policies — all attached to the
//!             process-wide MetricsHub, with sync-layer contention
//!             profiling on. Reports diagnoses/sec, per-diagnosis
//!             latency quantiles, the lock-wait/park/queue-depth
//!             contention rollups and the instrumentation-overhead
//!             verdict under the additive top-level "throughput" key,
//!             and streams periodic MetricsHub deltas to
//!             <out-stem>-stats.jsonl (interval MMDIAG_STATS ms,
//!             default 200)
//!   --online  run the epoch-loop monitor axis after the sweep: one
//!             long-lived MonitorSession per small-catalog family
//!             replaying a seeded Poisson fault timeline (MMDIAG_EPOCHS
//!             epochs, default 24 or 8 with --quick). Every epoch's
//!             incremental labelling is checked bit-for-bit against a
//!             from-scratch diagnose; reports detection latency and
//!             amortised lookups/epoch vs from-scratch under the
//!             additive top-level "online" key. Any disagreement or a
//!             family whose sparse epochs fail to beat from-scratch
//!             fails the binary
//!   --out     output path (default BENCH_8.json in the working directory)
//! ```
//!
//! At startup the binary recalibrates `diagnose_auto`'s sequential cutover
//! from the best `BENCH_*.json` already in the working directory
//! (`MMDIAG_CUTOVER=<nodes>` pins it instead; no trajectory means the
//! compiled-in 1024 stays).
#![forbid(unsafe_code)]

use mmdiag_bench::{
    calibrate_cutover, distsim_scenarios, full_catalog, large_catalog, run_online, run_throughput,
    small_catalog, sweep_profiled, to_json, xlarge_catalog, xxlarge_catalog, ProfileConfig,
};

/// The trajectory id this binary emits (`BENCH_<pr>`).
const BENCH_ID: &str = "BENCH_8";

fn main() {
    // `--quick` and MMDIAG_QUICK=1 are the same knob (parsed once for the
    // whole workspace by `mmdiag_exec::knobs`): the env var is what the
    // distsim `sim_vs_model` property suite honours, so one setting
    // shrinks every harness in the workspace.
    let mut quick = mmdiag_exec::knobs().quick;
    let mut large = false;
    let mut xlarge = false;
    let mut xxlarge = false;
    let mut profile = false;
    let mut throughput_axis = false;
    let mut online_axis = false;
    let mut out_path = format!("{BENCH_ID}.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--large" => large = true,
            "--xlarge" => xlarge = true,
            "--xxlarge" => xxlarge = true,
            "--profile" => profile = true,
            "--throughput" => throughput_axis = true,
            "--online" => online_axis = true,
            "--out" => {
                out_path = args
                    .next()
                    .unwrap_or_else(|| die("--out needs a path argument"));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: mmdiag-bench [--quick] [--large] [--xlarge] [--xxlarge] \
                     [--profile] [--throughput] [--online] [--out PATH]"
                );
                return;
            }
            other => die(&format!("unknown argument: {other}")),
        }
    }
    // --profile writes one Chrome trace per cell next to the trajectory
    // file: BENCH_7.json → BENCH_7-traces/.
    let profile_cfg = if profile {
        let stem = out_path.strip_suffix(".json").unwrap_or(&out_path);
        let dir = std::path::PathBuf::from(format!("{stem}-traces"));
        std::fs::create_dir_all(&dir)
            .unwrap_or_else(|e| die(&format!("cannot create {}: {e}", dir.display())));
        Some(ProfileConfig { trace_dir: dir })
    } else {
        None
    };

    match calibrate_cutover() {
        Some(cal) => eprintln!(
            "cutover calibrated from {}: sequential below {} nodes ({} measured sizes)",
            cal.source, cal.cutover, cal.groups
        ),
        None => eprintln!(
            "no BENCH_*.json trajectory here; sequential cutover stays at {}",
            mmdiag_core::sequential_cutover()
        ),
    }

    let mut catalog = if quick {
        small_catalog()
    } else {
        full_catalog()
    };
    if large {
        let mut axis = large_catalog();
        if quick {
            axis.truncate(1); // the CI smoke leg: one capped large instance
        }
        catalog.extend(axis);
    }
    if xlarge {
        let mut axis = xlarge_catalog();
        if quick {
            axis.truncate(1); // CI smoke: the smallest 10⁶-node cell (Q_20)
        }
        catalog.extend(axis);
    }
    if xxlarge {
        let mut axis = xxlarge_catalog();
        if quick {
            axis.truncate(1); // CI smoke: the smallest 10⁷-node cell (Q_25)
        }
        catalog.extend(axis);
    }
    eprintln!(
        "sweeping {} instances across 14 families on a {}-worker pool \
         (driver / pooled / auto / strided x4 / baseline / distsim)…",
        catalog.len(),
        mmdiag_exec::global().threads(),
    );
    eprintln!(
        "{:<22} {:>7} {:>7} {:>12} {:>12} {:>12} {:>9} {:>9} {:>6}",
        "instance",
        "nodes",
        "faults",
        "driver µs",
        "auto µs",
        "baseline µs",
        "speedup",
        "lookup×",
        "sim"
    );
    let (records, batches) = sweep_profiled(&catalog, quick, profile_cfg.as_ref(), &mut |rec| {
        eprintln!(
            "{:<22} {:>7} {:>7} {:>12.1} {:>12.1} {:>12} {:>9} {:>9} {:>6}",
            rec.instance,
            rec.nodes,
            rec.num_faults,
            rec.driver_nanos as f64 / 1e3,
            rec.auto.nanos as f64 / 1e3,
            match &rec.baseline {
                Some(b) => format!("{:.1}", b.nanos as f64 / 1e3),
                None => "-".to_string(),
            },
            match &rec.baseline {
                Some(b) => format!("{:.1}x", b.nanos as f64 / rec.driver_nanos.max(1) as f64),
                None => "-".to_string(),
            },
            match &rec.baseline {
                Some(b) => format!(
                    "{:.1}x",
                    b.lookups as f64 / rec.driver_lookups.max(1) as f64
                ),
                None => "-".to_string(),
            },
            match (&rec.distsim, &rec.sampled) {
                (Some(d), _) if d.matches_model && d.agree => "ok",
                (Some(_), _) => "FAIL",
                (None, Some(c)) if c.agree => "spot",
                (None, Some(_)) => "FAIL",
                (None, None) => "-",
            },
        );
    });

    eprintln!("batched submissions (diagnose_batch, sequential vs pooled, per instance)…");
    for b in &batches {
        eprintln!(
            "{:<22} {:>2} cells  seq {:>10.1} µs  pooled {:>10.1} µs  {}",
            b.instance,
            b.cells,
            b.seq_nanos as f64 / 1e3,
            b.pooled_nanos as f64 / 1e3,
            if b.agree { "ok" } else { "FAIL" }
        );
    }

    eprintln!(
        "running distsim scenario sweep on the pool (latency skew + mid-protocol injection)…"
    );
    let scenarios = distsim_scenarios(&catalog);
    for s in &scenarios {
        eprintln!(
            "{:<22} {:<13} vtime {:>5} (unit {:>4})  depth {:>2} (model {:>2})  {}",
            s.instance,
            s.kind,
            s.virtual_time,
            s.unit_virtual_time,
            s.max_wave_depth,
            s.model_wave_depth,
            if s.ok { "ok" } else { "FAIL" }
        );
    }

    // The --throughput fleet axis runs after the sweep so its contention
    // window reflects only its own fleet, and streams live MetricsHub
    // deltas to <stem>-stats.jsonl while it runs.
    let throughput = if throughput_axis {
        let stem = out_path.strip_suffix(".json").unwrap_or(&out_path);
        let stats_path = format!("{stem}-stats.jsonl");
        let interval_ms = mmdiag_exec::knobs().stats.unwrap_or(200);
        let file = std::fs::File::create(&stats_path)
            .unwrap_or_else(|e| die(&format!("cannot create {stats_path}: {e}")));
        let reporter = mmdiag_exec::start_stats_reporter(
            mmdiag_trace::MetricsHub::global(),
            std::time::Duration::from_millis(interval_ms),
            file,
        )
        .unwrap_or_else(|e| die(&format!("cannot start stats reporter: {e}")));
        eprintln!(
            "running --throughput fleet axis ({} concurrent sessions, stats every {interval_ms} ms -> {stats_path})…",
            if quick { 4 } else { 8 },
        );
        let rec = run_throughput(quick);
        reporter.stop();
        // Every streamed line must be valid JSON — same bar as the
        // Chrome traces the --profile axis writes.
        let stream = std::fs::read_to_string(&stats_path)
            .unwrap_or_else(|e| die(&format!("cannot read back {stats_path}: {e}")));
        let samples = stream.lines().count();
        for line in stream.lines() {
            mmdiag_trace::export::validate_json(line)
                .unwrap_or_else(|e| die(&format!("invalid stats line in {stats_path}: {e}")));
        }
        eprintln!(
            "throughput: {:.1} diagnoses/s over {} sessions ({} diagnoses, p50 {} µs, p99 {} µs); \
             lock-wait p99 {} ns over {} acquires; overhead {}; {} validated stats samples",
            rec.diagnoses_per_sec,
            rec.sessions,
            rec.total_diagnoses,
            rec.latency_ns.p50() / 1_000,
            rec.latency_ns.p99() / 1_000,
            rec.lock_wait_ns.p99(),
            rec.lock_wait_ns.count,
            if rec.overhead.within_tolerance {
                "ok"
            } else {
                "REGRESSED"
            },
            samples,
        );
        Some(rec)
    } else {
        None
    };

    // The --online axis replays a Poisson fault timeline through a
    // long-lived MonitorSession per family, checking every epoch
    // bit-for-bit against a from-scratch diagnosis.
    let online = if online_axis {
        let epochs = mmdiag_exec::config::knobs()
            .epochs
            .unwrap_or(if quick { 8 } else { 24 });
        eprintln!(
            "running --online monitor axis ({epochs} epochs per family, incremental vs from-scratch)…"
        );
        let rec = run_online(quick);
        for f in &rec.families {
            eprintln!(
                "{:<22} {:>3} epochs  {:>2} escalated  {:>2} quiescent  \
                 sparse {:>8.1} vs {:>8.1} lookups/epoch  {}",
                f.instance,
                f.epochs,
                f.escalated,
                f.quiescent,
                f.amortized_incremental,
                f.amortized_scratch,
                if f.disagreements == 0 && f.sparse_cheaper {
                    "ok"
                } else {
                    "FAIL"
                },
            );
        }
        Some(rec)
    } else {
        None
    };

    let disagreements = records.iter().filter(|r| !r.agree).count()
        + records
            .iter()
            .filter(|r| {
                r.distsim
                    .as_ref()
                    .is_some_and(|d| !d.matches_model || !d.agree)
            })
            .count()
        + records
            .iter()
            .filter(|r| r.sampled.as_ref().is_some_and(|c| !c.agree))
            .count()
        + batches.iter().filter(|b| !b.agree).count()
        + scenarios.iter().filter(|s| !s.ok).count()
        + throughput.as_ref().map_or(0, |t| {
            t.disagreements as usize + usize::from(!t.overhead.within_tolerance)
        })
        + online
            .as_ref()
            .map_or(0, |o| o.disagreements as usize + o.families_without_savings);
    let small_regressions = records.iter().filter(|r| !r.auto_no_regression).count();
    let json = to_json(
        BENCH_ID,
        &records,
        &batches,
        &scenarios,
        throughput.as_ref(),
        online.as_ref(),
    );
    std::fs::write(&out_path, &json)
        .unwrap_or_else(|e| die(&format!("cannot write {out_path}: {e}")));
    eprintln!(
        "\n{} records + {} batches + {} scenarios ({} families) -> {out_path}; \
         disagreements: {disagreements}; small-instance regressions: {small_regressions}",
        records.len(),
        batches.len(),
        scenarios.len(),
        mmdiag_bench::families_covered(&records),
    );
    if let Some(cfg) = &profile_cfg {
        eprintln!(
            "{} validated Chrome traces -> {}/",
            records.iter().filter(|r| r.profile.is_some()).count(),
            cfg.trace_dir.display()
        );
    }
    if disagreements > 0 {
        std::process::exit(1);
    }
}

fn die(msg: &str) -> ! {
    eprintln!("mmdiag-bench: {msg}");
    std::process::exit(2);
}
