//! The `--online` axis: epoch-based monitoring vs from-scratch.
//!
//! Every other bench axis diagnoses each cell once; this one measures
//! the long-lived service story — a [`mmdiag::MonitorSession`] per
//! small-catalog family replaying a seeded Poisson fault timeline
//! ([`mmdiag::distsim::EpochTimeline`]) and re-diagnosing incrementally
//! each epoch. Per family the record rolls up:
//!
//! * **correctness** — every epoch's incremental labelling is compared
//!   bit-for-bit against a from-scratch `diagnose` on the same
//!   instantaneous fault set (faults, certified part, probe count,
//!   healthy count, spanning tree); any difference counts as a
//!   disagreement and fails the binary. Every fourth epoch the sampled
//!   spot-checker re-verifies the labelling independently.
//! * **amortised cost** — over the *sparse* epochs (delta touching ≤ 1
//!   part, not escalated), the monitor's lookups per epoch against the
//!   from-scratch lookups on the same syndromes. The monitor's whole
//!   claim is that this ratio is below one on every family.
//! * **detection latency** — wall time (the epoch's phase spans) of the
//!   epochs whose labelling gained at least one new fault: how long the
//!   service takes to *notice* an onset, as a latency histogram.
//! * **escalation honesty** — escalated epochs are counted separately;
//!   their full from-scratch cost stays in the per-epoch totals rather
//!   than being laundered out of the average.
//!
//! Epoch count: `MMDIAG_EPOCHS` (through the exec config door), else 8
//! under `--quick`, else 24.

use crate::fault_sizes;
use mmdiag::diagnosis::{diagnose, Diagnosis};
use mmdiag::distsim::EpochTimeline;
use mmdiag::syndrome::{OracleSyndrome, TesterBehavior};
use mmdiag::topology::Partitionable;
use mmdiag::Diagnoser;
use mmdiag_trace::{Histogram, HistogramSummary};

/// One family's epoch-loop rollup.
#[derive(Clone, Debug)]
pub struct OnlineFamilyRecord {
    /// Family key (matches the sweep records).
    pub family: &'static str,
    /// Instance name.
    pub instance: String,
    /// Node count.
    pub nodes: usize,
    /// Decomposition parts.
    pub parts: usize,
    /// Epochs replayed.
    pub epochs: usize,
    /// Epochs that escalated to a full from-scratch walk (the initial
    /// epoch included).
    pub escalated: usize,
    /// Epochs with an empty delta (labelling reused at zero lookups).
    pub quiescent: usize,
    /// Sparse epochs: non-escalated with ≤ 1 dirty part (quiescent
    /// included) — the regime the amortised comparison is over.
    pub sparse_epochs: usize,
    /// Monitor lookups summed over the sparse epochs.
    pub sparse_incremental_lookups: u64,
    /// From-scratch lookups on the same syndromes, same epochs.
    pub sparse_scratch_lookups: u64,
    /// Monitor lookups summed over *all* epochs (escalations at full
    /// cost included — the honest total).
    pub total_incremental_lookups: u64,
    /// From-scratch lookups summed over all epochs.
    pub total_scratch_lookups: u64,
    /// `sparse_incremental_lookups / sparse_epochs`.
    pub amortized_incremental: f64,
    /// `sparse_scratch_lookups / sparse_epochs`.
    pub amortized_scratch: f64,
    /// Amortised sparse-epoch cost strictly below from-scratch — the
    /// axis's acceptance bar, per family.
    pub sparse_cheaper: bool,
    /// Wall time of the epochs that detected a new fault onset.
    pub detection_latency_ns: HistogramSummary,
    /// Sampled spot-checks run (every fourth epoch).
    pub verified: usize,
    /// Epochs whose labelling differed from from-scratch in any field,
    /// or whose spot-check disagreed.
    pub disagreements: u64,
}

/// The whole `--online` axis outcome, rendered additively into the v2
/// trajectory document under the top-level `"online"` key.
#[derive(Clone, Debug)]
pub struct OnlineRecord {
    /// Epochs replayed per family.
    pub epochs_per_family: usize,
    /// Poisson onset rate (expected new faults per epoch).
    pub onset_rate: f64,
    /// Poisson recovery rate (expected repairs per epoch).
    pub recovery_rate: f64,
    /// Per-family rollups, small-catalog order.
    pub families: Vec<OnlineFamilyRecord>,
    /// Sum of per-family disagreements. Folded into the binary's exit
    /// code.
    pub disagreements: u64,
    /// Families whose amortised sparse-epoch cost failed to beat
    /// from-scratch — must be zero for the axis to pass.
    pub families_without_savings: usize,
}

/// Expected fault onsets per epoch. Low enough that most epochs move at
/// most one node (the sparse regime the monitor exists for), high enough
/// that every family sees onsets, escalations and recoveries within the
/// default epoch budget.
const ONSET_RATE: f64 = 0.6;
/// Expected fault recoveries per epoch (applied to currently-faulty
/// nodes; capped by how many there are).
const RECOVERY_RATE: f64 = 0.45;

fn bit_identical(got: &Diagnosis, want: &Diagnosis) -> bool {
    got.faults == want.faults
        && got.certified_part == want.certified_part
        && got.probes == want.probes
        && got.healthy_count == want.healthy_count
        && got.tree.edges() == want.tree.edges()
}

/// Run the online axis over the small catalog (all fourteen families).
/// `quick` shrinks the epoch budget, not the family coverage — the
/// per-family savings bar is the point of the axis.
pub fn run_online(quick: bool) -> OnlineRecord {
    let epochs = mmdiag_exec::config::knobs()
        .epochs
        .unwrap_or(if quick { 8 } else { 24 });
    let mut families = Vec::new();
    for (fi, inst) in crate::small_catalog().iter().enumerate() {
        let g: &(dyn Partitionable + Sync) = inst.graph.as_ref();
        let n = g.node_count();
        let bound = g.driver_fault_bound();
        // Cap concurrent faults below the bound so every epoch is
        // diagnosable; reuse the sweep's fault ladder to stay consistent.
        let max_faults = fault_sizes(bound).into_iter().max().unwrap_or(1);
        let behavior = TesterBehavior::Random {
            seed: 0x0A11 + fi as u64,
        };
        let timeline = EpochTimeline::poisson(
            n,
            epochs,
            ONSET_RATE,
            RECOVERY_RATE,
            max_faults,
            0x0E9 + fi as u64,
            behavior,
        );
        let session = Diagnoser::new(g).verify_sampled(2, 0x51 + fi as u64);
        let mut monitor = session.monitor().expect("in-process session");
        let detection = Histogram::new();
        let mut rec = OnlineFamilyRecord {
            family: inst.family,
            instance: g.name(),
            nodes: n,
            parts: g.part_count(),
            epochs,
            escalated: 0,
            quiescent: 0,
            sparse_epochs: 0,
            sparse_incremental_lookups: 0,
            sparse_scratch_lookups: 0,
            total_incremental_lookups: 0,
            total_scratch_lookups: 0,
            amortized_incremental: 0.0,
            amortized_scratch: 0.0,
            sparse_cheaper: false,
            detection_latency_ns: HistogramSummary::empty(),
            verified: 0,
            disagreements: 0,
        };
        let mut prev_faults: Vec<usize> = Vec::new();
        for e in 0..timeline.epoch_count() {
            let faults = timeline.faults_at(e);
            let s = OracleSyndrome::new(faults.clone(), behavior);
            let report = match monitor.ingest(&s, &timeline.delta_at(e)) {
                Ok(r) => r,
                Err(_) => {
                    // The timeline is capped under the bound, so a failed
                    // epoch is itself a disagreement with the model.
                    rec.disagreements += 1;
                    continue;
                }
            };
            let scratch = OracleSyndrome::new(faults.clone(), behavior);
            let want = match diagnose(g, &scratch) {
                Ok(d) => d,
                Err(_) => {
                    rec.disagreements += 1;
                    continue;
                }
            };
            if !bit_identical(&report.diagnosis, &want) {
                rec.disagreements += 1;
            }
            if report.escalation.is_some() {
                rec.escalated += 1;
            }
            if report.quiescent {
                rec.quiescent += 1;
            }
            rec.total_incremental_lookups += report.lookups;
            rec.total_scratch_lookups += want.lookups_used;
            if report.escalation.is_none() && report.dirty_parts <= 1 {
                rec.sparse_epochs += 1;
                rec.sparse_incremental_lookups += report.lookups;
                rec.sparse_scratch_lookups += want.lookups_used;
            }
            if report
                .diagnosis
                .faults
                .iter()
                .any(|f| !prev_faults.contains(f))
            {
                let nanos = report.telemetry.total_nanos();
                detection.record(u64::try_from(nanos).unwrap_or(u64::MAX));
            }
            if e % 4 == 3 {
                rec.verified += 1;
                let verdict = session.verify_claim(
                    &s,
                    &report.diagnosis.faults,
                    report.diagnosis.certified_part,
                );
                if !verdict.agreed_or_unverified() {
                    rec.disagreements += 1;
                }
            }
            prev_faults = report.diagnosis.faults.clone();
        }
        if rec.sparse_epochs > 0 {
            rec.amortized_incremental =
                rec.sparse_incremental_lookups as f64 / rec.sparse_epochs as f64;
            rec.amortized_scratch = rec.sparse_scratch_lookups as f64 / rec.sparse_epochs as f64;
            rec.sparse_cheaper = rec.amortized_incremental < rec.amortized_scratch;
        }
        rec.detection_latency_ns = detection.snapshot();
        families.push(rec);
    }
    let disagreements = families.iter().map(|f| f.disagreements).sum();
    let families_without_savings = families.iter().filter(|f| !f.sparse_cheaper).count();
    OnlineRecord {
        epochs_per_family: epochs,
        onset_rate: ONSET_RATE,
        recovery_rate: RECOVERY_RATE,
        families,
        disagreements,
        families_without_savings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_axis_quick_covers_every_family_and_agrees() {
        let rec = run_online(true);
        assert_eq!(rec.families.len(), 14, "all fourteen families replayed");
        assert_eq!(rec.disagreements, 0, "every epoch bit-identical");
        assert_eq!(
            rec.families_without_savings,
            0,
            "sparse epochs beat from-scratch on every family: {:?}",
            rec.families
                .iter()
                .filter(|f| !f.sparse_cheaper)
                .map(|f| (
                    f.family,
                    f.sparse_epochs,
                    f.amortized_incremental,
                    f.amortized_scratch
                ))
                .collect::<Vec<_>>()
        );
        for f in &rec.families {
            assert!(
                f.escalated >= 1,
                "{}: the initial epoch escalates",
                f.family
            );
            assert!(f.sparse_epochs > 0, "{}: no sparse epoch seen", f.family);
            assert!(
                f.total_incremental_lookups <= f.total_scratch_lookups,
                "{}: honest totals still at or below from-scratch",
                f.family
            );
        }
    }
}
