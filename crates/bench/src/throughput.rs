//! The `--throughput` fleet axis: N concurrent [`Diagnoser`] sessions.
//!
//! Every other bench axis measures one session at a time; this one
//! measures the *fleet* story ISSUE 9 adds — several sessions on separate
//! threads, all attached to the process-wide
//! [`mmdiag_trace::MetricsHub`], all contending for the shared
//! [`mmdiag_exec`] pool with sync-layer contention profiling switched on.
//! The record rolls up:
//!
//! * **throughput** — diagnoses per second across the whole fleet, wall
//!   clock from first spawn to last join;
//! * **latency** — a per-diagnosis wall-time histogram (p50/p90/p99 via
//!   the shared log-bucket [`Histogram`]), every session recording into
//!   one cell;
//! * **contention** — the sync facade's lock-wait and condvar-park
//!   histograms over exactly this window
//!   ([`HistogramSummary::delta_since`] against a pre-run snapshot) plus
//!   the queue-depth high-water gauges;
//! * **correctness** — every diagnosis (timed runs and batched
//!   submissions alike) is cross-checked against its planted fault set,
//!   and the count of disagreements rides on the record;
//! * **overhead** — the [`overhead_guard`] companion: a fully
//!   instrumented single-session run must stay within the existing
//!   [`REGRESSION_TOLERANCE`](crate::REGRESSION_TOLERANCE) of the bare
//!   run on a small instance, so observability never becomes a tax the
//!   sweep would flag as a regression elsewhere.
//!
//! The sessions deliberately mix instance families, backend-visible
//! sizes and verification policies (none / sampled / full baseline) —
//! fleet contention with homogeneous sessions would under-represent the
//! lock-hold-time variance the profiler exists to expose.

use crate::{best_of, scatter_faults, within_regression_tolerance};
use mmdiag::syndrome::{OracleSyndrome, TesterBehavior};
use mmdiag::topology::families::{CrossedCube, Hypercube, Pancake, StarGraph};
use mmdiag::{BatchJob, Diagnoser};
use mmdiag_trace::clock;
use mmdiag_trace::{Histogram, HistogramSummary};
use std::sync::Arc;

/// The overhead verdict: a fully observed session (tracing + hub
/// attachment + contention profiling) timed against the bare session on
/// the same small instance, under the sweep's own regression tolerance.
#[derive(Clone, Debug)]
pub struct OverheadGuard {
    /// Best-of-reps wall time of the uninstrumented run.
    pub bare_nanos: u128,
    /// Best-of-reps wall time of the fully instrumented run.
    pub instrumented_nanos: u128,
    /// `instrumented` within [`crate::REGRESSION_TOLERANCE`] (or the
    /// absolute noise floor) of `bare` — the same verdict the sweep's
    /// `no_regression` flag uses.
    pub within_tolerance: bool,
}

/// One `--throughput` axis outcome, rendered additively into the v2
/// trajectory document under the top-level `"throughput"` key.
#[derive(Clone, Debug)]
pub struct ThroughputRecord {
    /// Concurrent sessions in the fleet.
    pub sessions: usize,
    /// Submission rounds each session ran.
    pub rounds: usize,
    /// Diagnoses per round per session (timed runs + batched jobs).
    pub jobs_per_round: usize,
    /// Total diagnoses completed across the fleet.
    pub total_diagnoses: u64,
    /// Wall time of the whole fleet window, first spawn to last join.
    pub wall_nanos: u128,
    /// `total_diagnoses / wall_nanos`, in diagnoses per second.
    pub diagnoses_per_sec: f64,
    /// Per-diagnosis wall time (timed `run` calls only — batch
    /// submissions amortise their timing and would skew the quantiles).
    pub latency_ns: HistogramSummary,
    /// Sync-facade lock-acquire wait time over exactly this window.
    pub lock_wait_ns: HistogramSummary,
    /// Sync-facade condvar park time over exactly this window.
    pub park_ns: HistogramSummary,
    /// High-water mark of the pool's injector queue depth gauge.
    pub injector_depth_peak: u64,
    /// High-water mark of the per-worker deque depth gauge.
    pub deque_depth_peak: u64,
    /// Diagnoses whose result (or verification verdict) disagreed with
    /// the planted truth. Folded into the binary's exit code.
    pub disagreements: u64,
    /// The single-session instrumentation-overhead verdict.
    pub overhead: OverheadGuard,
}

/// Timed `Diagnoser::run` calls per session per round.
const RUNS_PER_ROUND: usize = 3;
/// Planted jobs in each session's per-round batched submission.
const BATCH_JOBS: usize = 2;

/// Build session `i`'s diagnoser: instance family by `i % 4`, backend
/// pooled (the fleet contends for the shared global pool — the point),
/// verification policy by `i % 3`, hub-attached as `"throughput-{i}"`.
fn fleet_session(i: usize) -> Diagnoser<'static> {
    let session = match i % 4 {
        0 => Diagnoser::cached(&Hypercube::new(7)),
        1 => Diagnoser::cached(&CrossedCube::new(7)),
        2 => Diagnoser::cached(&StarGraph::new(6)),
        _ => Diagnoser::cached(&Pancake::new(6)),
    };
    let session = match i % 3 {
        0 => session,
        1 => session.verify_sampled(2, 11 + i as u64),
        _ => session.verify_full(),
    };
    session.pooled().stats(&format!("throughput-{i}"))
}

/// Run one fleet session to completion: `rounds` rounds of individually
/// timed runs plus one batched submission, every outcome cross-checked
/// against its planted fault set. Returns (diagnoses, disagreements).
fn run_fleet_session(i: usize, rounds: usize, latency: Arc<Histogram>) -> (u64, u64) {
    let session = fleet_session(i);
    let n = session.topology().node_count();
    let bound = session.topology().driver_fault_bound();
    let fault_count = bound.clamp(1, 3);
    let mut diagnoses = 0u64;
    let mut disagreements = 0u64;
    for round in 0..rounds {
        for j in 0..RUNS_PER_ROUND {
            let salt = (i * 1009 + round * 97 + j) as u64;
            let faults = scatter_faults(n, fault_count, salt);
            let expected = faults.members().to_vec();
            let s = OracleSyndrome::new(faults, TesterBehavior::AllZero);
            let t0 = clock::now_ns();
            let out = session.run(&s);
            latency.record(clock::now_ns().saturating_sub(t0));
            diagnoses += 1;
            let ok = out
                .map(|r| r.diagnosis.faults == expected && r.verification.agreed_or_unverified())
                .unwrap_or(false);
            if !ok {
                disagreements += 1;
            }
        }
        let planted: Vec<_> = (0..BATCH_JOBS)
            .map(|j| scatter_faults(n, fault_count, (i * 5003 + round * 31 + j) as u64))
            .collect();
        let jobs: Vec<BatchJob> = planted
            .iter()
            .map(|f| BatchJob::Planted {
                faults: f.clone(),
                behavior: TesterBehavior::AllZero,
            })
            .collect();
        for (f, out) in planted.iter().zip(session.submit_batch(&jobs)) {
            diagnoses += 1;
            let ok = out.map(|o| o.faults() == f.members()).unwrap_or(false);
            if !ok {
                disagreements += 1;
            }
        }
    }
    (diagnoses, disagreements)
}

/// Run the `--throughput` fleet axis: 4 (`quick`) or 8 concurrent
/// sessions on separate named threads, contention profiling forced on
/// for the window (restored afterwards), all contention deltas scoped to
/// exactly this window. Includes the [`overhead_guard`] verdict.
pub fn run_throughput(quick: bool) -> ThroughputRecord {
    // The overhead guard runs *before* the fleet window so its bare leg
    // is not polluted by leftover profiling state.
    let overhead = overhead_guard();

    let sessions = if quick { 4 } else { 8 };
    let rounds = if quick { 2 } else { 3 };

    let was_profiling = mmdiag_exec::contention_enabled();
    mmdiag_exec::set_contention_profiling(true);
    let sync = mmdiag_exec::sync_stats();
    let lock_before = sync.lock_wait_ns.snapshot();
    let park_before = sync.park_ns.snapshot();

    let latency = Arc::new(Histogram::new());
    let t0 = clock::now_ns();
    let handles: Vec<_> = (0..sessions)
        .map(|i| {
            let latency = Arc::clone(&latency);
            mmdiag_exec::sync::thread::spawn_named(format!("throughput-{i}"), move || {
                run_fleet_session(i, rounds, latency)
            })
            .expect("spawn fleet session thread")
        })
        .collect();
    let mut total_diagnoses = 0u64;
    let mut disagreements = 0u64;
    for h in handles {
        let (d, bad) = h.join().expect("fleet session thread panicked");
        total_diagnoses += d;
        disagreements += bad;
    }
    let wall_nanos = u128::from(clock::now_ns().saturating_sub(t0)).max(1);

    let lock_wait_ns = sync.lock_wait_ns.snapshot().delta_since(&lock_before);
    let park_ns = sync.park_ns.snapshot().delta_since(&park_before);
    let record = ThroughputRecord {
        sessions,
        rounds,
        jobs_per_round: RUNS_PER_ROUND + BATCH_JOBS,
        total_diagnoses,
        wall_nanos,
        diagnoses_per_sec: total_diagnoses as f64 * 1e9 / wall_nanos as f64,
        latency_ns: latency.snapshot(),
        lock_wait_ns,
        park_ns,
        injector_depth_peak: sync.injector_depth.max(),
        deque_depth_peak: sync.deque_depth.max(),
        disagreements,
        overhead,
    };
    if !was_profiling {
        mmdiag_exec::set_contention_profiling(false);
    }
    record
}

/// Time one small-instance diagnosis bare (no tracing, contention
/// profiling off) and once fully instrumented (tracing session, hub
/// attachment, contention profiling on), best-of-reps each, and apply
/// the sweep's own `no_regression` verdict. Restores the profiling flag
/// it found.
pub fn overhead_guard() -> OverheadGuard {
    let was_profiling = mmdiag_exec::contention_enabled();
    let g = Hypercube::new(7);
    let faults = scatter_faults(128, 3, 0xBEEF);
    let expected = faults.members().to_vec();
    let s = OracleSyndrome::new(faults, TesterBehavior::AllZero);

    mmdiag_exec::set_contention_profiling(false);
    let bare_session = Diagnoser::new(&g).pooled();
    let (bare_nanos, report) = best_of(|| bare_session.run(&s).expect("bare run diagnoses"));
    assert_eq!(report.diagnosis.faults, expected, "bare run agrees");

    mmdiag_exec::set_contention_profiling(true);
    let instrumented = Diagnoser::new(&g).pooled().stats("overhead-guard");
    let (instrumented_nanos, report) =
        best_of(|| instrumented.run(&s).expect("instrumented run diagnoses"));
    assert_eq!(report.diagnosis.faults, expected, "instrumented run agrees");

    mmdiag_exec::set_contention_profiling(was_profiling);
    OverheadGuard {
        bare_nanos,
        instrumented_nanos,
        within_tolerance: within_regression_tolerance(instrumented_nanos, bare_nanos),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both tests toggle the process-wide contention-profiling flag —
    /// serialise them so neither observes the other's window.
    static FLEET_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn instrumentation_overhead_stays_within_the_sweep_tolerance() {
        let _flag = FLEET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let guard = overhead_guard();
        assert!(guard.bare_nanos > 0 && guard.instrumented_nanos > 0);
        assert!(
            guard.within_tolerance,
            "fully instrumented single-session run regressed beyond tolerance: \
             bare {} ns vs instrumented {} ns",
            guard.bare_nanos, guard.instrumented_nanos
        );
    }

    #[test]
    fn quick_fleet_reports_throughput_and_no_disagreements() {
        let _flag = FLEET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let rec = run_throughput(true);
        assert_eq!(rec.sessions, 4);
        assert_eq!(
            rec.total_diagnoses,
            (rec.sessions * rec.rounds * rec.jobs_per_round) as u64
        );
        assert_eq!(rec.disagreements, 0, "fleet diagnoses all agree");
        assert!(rec.diagnoses_per_sec > 0.0);
        assert_eq!(rec.latency_ns.count, (rec.sessions * rec.rounds * 3) as u64);
        // Contention profiling was on for the window: the pooled backend
        // takes the injector lock at least once per diagnosis.
        assert!(rec.lock_wait_ns.count > 0, "lock-wait histogram populated");
    }
}
