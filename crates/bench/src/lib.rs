//! # mmdiag-bench
//!
//! Benchmark harness for the `O(Δ·N)` diagnosis driver: sweeps all fourteen
//! interconnection-network families of §5 across multiple sizes and fault
//! loads, runs the sequential driver, the pooled-executor backends
//! (forced-pooled, size-directed auto, and the 1/2/4/8-lane strided
//! search), the naive full-table baseline **and the event-level distributed
//! simulator** on identical instances, asserts they all agree with the
//! planted truth, and renders the measurements as a machine-readable JSON
//! trajectory file (`BENCH_<pr>.json`).
//!
//! The interesting measured quantity besides wall time is **syndrome
//! lookups**: the §6 claim is that the driver consults `O(Δ·N)` entries
//! while any table-first algorithm pays for all `Σ C(deg u, 2)` of them.
//! Both counts come from the same [`mmdiag_syndrome::SyndromeSource`]
//! accounting, so the comparison is apples-to-apples.
//!
//! Since ISSUE 3 the harness itself runs on the shared
//! [`mmdiag_exec`] pool: every instance's fault loads are additionally
//! evaluated as one **batched submission** (`diagnose_batch`, workspaces
//! pooled per worker) and the simulator-only scenario sweep dispatches its
//! per-instance cells on the pool. The `--large` flag extends the catalog
//! to 10⁵⁺-node instances (`Q_17`, `S_8`, large k-ary tori) where the
//! full-table baseline and the event simulator are infeasible — those
//! cells are **driver-only** and carry `"baseline": null` /
//! `"distsim": null` in the JSON.
//!
//! Since ISSUE 4 the scale story goes further on three axes:
//!
//! * **`--xlarge`** sweeps 10⁶–10⁷-node instances served by
//!   [`mmdiag_implicit::ImplicitTopology`] — adjacency straight from the
//!   generator math, no `Cached` CSR anywhere (a
//!   [`mmdiag_implicit::MaterialisationGuard`] asserts exactly that per
//!   cell) — with syndromes from the `O(|F|)`-state
//!   [`mmdiag_syndrome::OnDemandOracle`];
//! * every driver-only cell (both `--large` and `--xlarge`) regains an
//!   independent verdict from the **sampled spot-checker**
//!   ([`mmdiag_baselines::sampled_check`]), recorded as the JSON
//!   `"sampled_check"` object where `"baseline"` is `null`;
//! * at startup the binary **recalibrates `diagnose_auto`'s cutover** from
//!   the best available `BENCH_*.json` trajectory ([`calibrate_cutover`])
//!   instead of trusting the compiled-in 1024.
//!
//! Since ISSUE 5 the harness drives everything through the
//! [`mmdiag::Diagnoser`] session front door: every leg is one builder
//! policy away from the next (sequential / pooled / auto / strided lanes
//! / event simulation), the baseline and sampled-checker legs run as the
//! session's *verification policy* (`verify_claim` against the already
//! finished diagnosis — no re-diagnosis), and batch submissions go
//! through `Diagnoser::submit_batch`. The emitted schema is
//! **`mmdiag-bench/v2`**, a strict superset of v1: every record gains a
//! `"phases"` object (probe/certify/grow wall times and lookup counts
//! from the session's [`PhaseTelemetry`]) and a `"verification"` object
//! (the per-cell [`VerificationVerdict`]). The v1 line-oriented reader
//! ([`calibrate_cutover_in`]) keeps parsing both generations, so cutover
//! recalibration works across the v1→v2 trajectory boundary.
//!
//! Since ISSUE 8 the unrestricted growth sweep is frontier-parallel on
//! the pool (above the `MMDIAG_GROW_CUTOVER`-tunable node cutover, on
//! sorted-adjacency representations), which opens the **`--xxlarge`**
//! axis: Q_25, Q^3_17 and Q_27 (134 217 728 nodes) through the same
//! slimmed [`run_scale_cell`] protocol. Scale cells now record the
//! `"phases"` of the *auto* leg — the production pooled path with the
//! frontier sweep — and every record's `"phases"` object gains a
//! `"grow_rounds"` array with the per-frontier-round
//! frontier/accepted/lookup/time split.
//!
//! Criterion is not available in the offline build environment; the
//! `benches/sweep.rs` target (`harness = false`) and the `mmdiag-bench`
//! binary both drive the sweep below with plain wall-clock timing.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mmdiag::{BatchJob, Diagnoser, VerificationVerdict};
use mmdiag_core::{sequential_cutover, Diagnosis, PhaseTelemetry};
use mmdiag_distsim::{plan, FaultTimeline, LatencyModel};
use mmdiag_exec::Pool;
use mmdiag_implicit::{ImplicitTopology, MaterialisationGuard};
use mmdiag_syndrome::{FaultSet, OnDemandOracle, OracleSyndrome, SyndromeSource, TesterBehavior};
use mmdiag_topology::families::{
    Arrangement, AugmentedCube, AugmentedKAryNCube, CrossedCube, EnhancedHypercube,
    FoldedHypercube, Hypercube, KAryNCube, NKStar, Pancake, ShuffleCube, StarGraph, TwistedCube,
    TwistedNCube,
};
use mmdiag_topology::{Cached, NodeId, Partitionable, Topology};
use mmdiag_trace::clock::Stopwatch;
use mmdiag_trace::{HistogramSummary, MetricValue, TraceConfig, TraceSummary};

pub mod online;
pub mod throughput;
pub use online::{run_online, OnlineFamilyRecord, OnlineRecord};
pub use throughput::{overhead_guard, run_throughput, OverheadGuard, ThroughputRecord};

/// Lane widths exercised by the strided-search leg of every run (the
/// historical "parallel driver x threads" trajectory axis — the lanes now
/// run on the shared pool instead of freshly spawned scoped threads).
pub const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Baseline timing repetitions per backend leg (each leg reports its
/// minimum). The driver/auto pair runs interleaved with extra reps on
/// sub-cutover cells, where the two are the identical code path measured
/// at microsecond scale.
pub const TIMING_REPS: usize = 3;

/// Noise tolerance for the per-cell `no_regression` verdict: the auto
/// backend counts as "not slower than the sequential driver" when its
/// best-rep time is within 10% of the driver's. Below the cutover the two
/// run the *identical* code path, so anything beyond that is measurement
/// noise, not a regression.
pub const REGRESSION_TOLERANCE: f64 = 1.10;

/// Absolute grace on the `no_regression` verdict, alongside the relative
/// [`REGRESSION_TOLERANCE`]: one scheduler preemption costs tens of
/// microseconds regardless of cell size, so on microsecond-scale
/// sub-cutover cells a min-over-reps floor can sit a whole quantum above
/// the other leg's without any code-path difference (both legs run the
/// identical sequential driver there). 50 µs is far below the 10%
/// relative band everywhere a genuine auto-dispatch regression could
/// register — any cell whose 10% band is tighter than this runs in under
/// half a millisecond.
pub const REGRESSION_NOISE_FLOOR_NANOS: u128 = 50_000;

/// The `no_regression` verdict shared by the timing loop's early-exit
/// and the recorded flag: within 10% of the driver leg, or within one
/// scheduler quantum of it.
fn within_regression_tolerance(auto_nanos: u128, driver_nanos: u128) -> bool {
    (auto_nanos as f64) <= (driver_nanos as f64) * REGRESSION_TOLERANCE
        || auto_nanos <= driver_nanos + REGRESSION_NOISE_FLOOR_NANOS
}

/// A named benchmark instance. The topology is a trait object — every
/// consumer is already generic over `Partitionable + ?Sized`, so CSR
/// (`Cached`) and generator-math ([`ImplicitTopology`]) instances flow
/// through the same code paths; `implicit` records which representation
/// sits inside.
pub struct Instance {
    /// Family key (stable across sizes, e.g. `"hypercube"`).
    pub family: &'static str,
    /// The topology — materialised CSR or implicit generator math.
    pub graph: Box<dyn Partitionable + Sync>,
    /// Served CSR-free from the generator math (no `Cached` copy).
    pub implicit: bool,
    /// Large-scale instance on which only the driver-family legs run: the
    /// full-table baseline and the event simulator are infeasible there
    /// and their cells carry JSON `null`s. Since ISSUE 4 these cells run
    /// the sampled spot-checker instead.
    pub driver_only: bool,
    /// 10⁶⁺-node `--xlarge` instance: slimmed measurement protocol (one
    /// timed rep per leg, no strided sweep, no batch submission) and a
    /// materialisation guard around every cell.
    pub scale: bool,
}

impl Instance {
    fn new<T: Partitionable + ?Sized>(family: &'static str, g: &T) -> Self {
        Instance {
            family,
            graph: Box::new(Cached::new(g)),
            implicit: false,
            driver_only: false,
            scale: false,
        }
    }

    fn driver_only<T: Partitionable + ?Sized>(family: &'static str, g: &T) -> Self {
        Instance {
            family,
            graph: Box::new(Cached::new(g)),
            implicit: false,
            driver_only: true,
            scale: false,
        }
    }

    /// A mid-size CSR-free instance that still runs every leg (baseline,
    /// simulator included) — proving the whole harness is
    /// representation-agnostic.
    fn implicit<T: Partitionable + Sync + 'static>(family: &'static str, g: T) -> Self {
        Instance {
            family,
            graph: Box::new(ImplicitTopology::new(g)),
            implicit: true,
            driver_only: false,
            scale: false,
        }
    }

    /// A 10⁶⁺-node `--xlarge` instance: implicit adjacency, driver +
    /// sampled-checker legs only.
    fn implicit_scale<T: Partitionable + Sync + 'static>(family: &'static str, g: T) -> Self {
        Instance {
            family,
            graph: Box::new(ImplicitTopology::new(g)),
            implicit: true,
            driver_only: true,
            scale: true,
        }
    }
}

/// One smallest valid instance per family — the quick sweep used by tests
/// and the `cargo bench` smoke target.
pub fn small_catalog() -> Vec<Instance> {
    vec![
        Instance::new("hypercube", &Hypercube::new(7)),
        Instance::new("crossed_cube", &CrossedCube::new(7)),
        Instance::new("twisted_cube", &TwistedCube::new(7)),
        Instance::new("twisted_n_cube", &TwistedNCube::new(7)),
        Instance::new("folded_hypercube", &FoldedHypercube::new(8)),
        Instance::new("enhanced_hypercube", &EnhancedHypercube::new(8, 3)),
        Instance::new("augmented_cube", &AugmentedCube::new(10)),
        Instance::new("shuffle_cube", &ShuffleCube::new(10)),
        Instance::new("kary", &KAryNCube::new(4, 4)),
        Instance::new("augmented_kary", &AugmentedKAryNCube::new(4, 4)),
        Instance::new("star", &StarGraph::new(6)),
        Instance::new("nk_star", &NKStar::new(6, 3)),
        Instance::new("pancake", &Pancake::new(6)),
        Instance::new("arrangement", &Arrangement::new(6, 3)),
    ]
}

/// The full sweep: every family at the sizes of [`small_catalog`] plus at
/// least one larger size where the next valid parameterisation stays below
/// ~5k nodes.
pub fn full_catalog() -> Vec<Instance> {
    let mut v = small_catalog();
    v.extend([
        Instance::new("hypercube", &Hypercube::new(8)),
        Instance::new("crossed_cube", &CrossedCube::new(8)),
        Instance::new("twisted_cube", &TwistedCube::new(8)),
        Instance::new("twisted_n_cube", &TwistedNCube::new(8)),
        Instance::new("folded_hypercube", &FoldedHypercube::new(9)),
        Instance::new("enhanced_hypercube", &EnhancedHypercube::new(9, 3)),
        Instance::new("kary", &KAryNCube::new(3, 6)),
        Instance::new("star", &StarGraph::new(7)),
        Instance::new("nk_star", &NKStar::new(7, 3)),
        Instance::new("pancake", &Pancake::new(7)),
        Instance::new("arrangement", &Arrangement::new(7, 3)),
        // Mid-size CSR-free cells: every leg runs — baseline and the event
        // simulator included — over implicit generator-math adjacency, so
        // representation-agnosticism is exercised where the full
        // cross-check machinery still applies (Q_10 needs m = 5: 16-node
        // subcubes cannot certify bound 10 — the capacity phenomenon the
        // certified constructors exist for).
        Instance::implicit("hypercube", Hypercube::new_certified(10)),
        Instance::implicit("kary", KAryNCube::new_certified(4, 5)),
    ]);
    v
}

/// The 10⁵⁺-node scale axis behind `--large`, smallest first (the
/// `--quick` smoke leg runs only the first entry). All driver-only: the
/// baseline's full table and the event simulator's per-message replay are
/// infeasible at these sizes — the sampled spot-checker supplies the
/// independent verdict instead.
///
/// `Q^3_11` historically hand-pinned `m = 4`: the default rule
/// (`k^m > 2n`) picks 27-node parts whose probe trees top out at 15
/// internal nodes — below the fault bound 22, so no part could ever
/// certify. The capacity-aware [`KAryNCube::new_certified`] now derives
/// the same `m = 4` (81-node parts, 48 contributors, 2 187 parts) from a
/// single part-local probe, so the pin is gone.
pub fn large_catalog() -> Vec<Instance> {
    vec![
        Instance::driver_only("star", &StarGraph::new(8)), // 40 320 nodes
        Instance::driver_only("hypercube", &Hypercube::new(17)), // 131 072 nodes
        Instance::driver_only("kary", &KAryNCube::new_certified(3, 11)), // 177 147 nodes
        Instance::driver_only("kary", &KAryNCube::new(4, 9)), // 262 144 nodes
    ]
}

/// The 10⁶–10⁷-node `--xlarge` axis, smallest first (the `--quick` smoke
/// leg runs only the first entry). Every instance is served implicitly —
/// generator-math adjacency, no CSR — with the certified partition
/// dimension, syndromes streamed from `O(|F|)` state, and the sampled
/// spot-checker as the independent cross-check. A
/// [`MaterialisationGuard`] around each cell asserts `Cached::new` never
/// ran.
pub fn xlarge_catalog() -> Vec<Instance> {
    vec![
        Instance::implicit_scale("hypercube", Hypercube::new_certified(20)), // 1 048 576 nodes
        Instance::implicit_scale("kary", KAryNCube::new_certified(3, 13)),   // 1 594 323 nodes
        Instance::implicit_scale("hypercube", Hypercube::new_certified(21)), // 2 097 152 nodes
        Instance::implicit_scale("star", StarGraph::new(10)),                // 3 628 800 nodes
        Instance::implicit_scale("kary", KAryNCube::new_certified(4, 11)),   // 4 194 304 nodes
        Instance::implicit_scale("hypercube", Hypercube::new_certified(23)), // 8 388 608 nodes
    ]
}

/// The 10⁷–10⁸-node `--xxlarge` axis, smallest first (the `--quick` smoke
/// leg runs only the first entry). Same slimmed [`run_scale_cell`]
/// protocol as `--xlarge` — implicit adjacency, streaming syndromes,
/// sampled verification, materialisation guard — at the sizes the
/// frontier-parallel growth sweep exists for. All three use the certified
/// constructors: `Q_27`'s default partition rule would pick subcubes whose
/// probe trees cannot certify fault bound 27.
pub fn xxlarge_catalog() -> Vec<Instance> {
    vec![
        Instance::implicit_scale("hypercube", Hypercube::new_certified(25)), // 33 554 432 nodes
        Instance::implicit_scale("kary", KAryNCube::new_certified(3, 17)),   // 129 140 163 nodes
        Instance::implicit_scale("hypercube", Hypercube::new_certified(27)), // 134 217 728 nodes
    ]
}

/// Wall time of one strided-search leg.
#[derive(Clone, Debug)]
pub struct ParallelLeg {
    /// Lane width requested.
    pub threads: usize,
    /// Wall time in nanoseconds.
    pub nanos: u128,
}

/// Wall time of one executor-backend leg (forced-pooled or auto).
#[derive(Clone, Debug)]
pub struct BackendLeg {
    /// Which backend actually ran (`"sequential"` / `"pooled"`).
    pub backend: &'static str,
    /// Best-of-[`TIMING_REPS`] wall time in nanoseconds.
    pub nanos: u128,
}

/// The baseline leg of one cell (absent on driver-only cells and on the
/// quick-mode skip set).
#[derive(Clone, Debug)]
pub struct BaselineLeg {
    /// Wall time in nanoseconds.
    pub nanos: u128,
    /// Syndrome lookups (always the full table size).
    pub lookups: u64,
}

/// The sampled spot-checker leg of one driver-only cell — the independent
/// verdict that replaces the infeasible full-table baseline at scale.
#[derive(Clone, Debug)]
pub struct SampledLeg {
    /// Wall time of the check (ns).
    pub nanos: u128,
    /// Nodes sampled across all parts.
    pub samples: usize,
    /// Syndrome entries consulted by the label re-checks.
    pub checked_tests: u64,
    /// Sampled nodes whose neighbourhood contradicted the diagnosis.
    pub disagreements: usize,
    /// Did the re-derived probe tree at the certified part certify?
    pub certificate_ok: bool,
    /// No disagreements, certificate re-derived, bound respected.
    pub agree: bool,
}

/// The event-level simulator's unit-latency leg of one cell.
#[derive(Clone, Debug)]
pub struct DistsimLeg {
    /// Wall time of the simulation (ns).
    pub nanos: u128,
    /// Concurrent probe-phase wave depth (max over parts).
    pub probe_rounds: usize,
    /// Total probe-phase exchanges across all parts.
    pub probe_messages: usize,
    /// Growth-wave depth.
    pub growth_rounds: usize,
    /// Virtual time the whole protocol took.
    pub virtual_time: u64,
    /// Messages the event engine delivered.
    pub events: u64,
    /// Observed (rounds, messages) equal the `plan` cost model per part.
    pub matches_model: bool,
    /// Simulated diagnosis equals the driver's (faults + certified part).
    pub agree: bool,
}

/// All measurements for one (instance, fault set, behavior) cell.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Family key.
    pub family: &'static str,
    /// Instance display name (`Topology::name`).
    pub instance: String,
    /// `N`.
    pub nodes: usize,
    /// `Δ`.
    pub max_degree: usize,
    /// Parts in the §5 decomposition.
    pub parts: usize,
    /// The driver's fault bound for this instance.
    pub fault_bound: usize,
    /// Planted fault count.
    pub num_faults: usize,
    /// Faulty-tester behaviour label.
    pub behavior: String,
    /// Full syndrome table size `Σ C(deg u, 2)` — the baseline's lookup bill.
    pub table_entries: u64,
    /// Sequential driver wall time (ns, best of [`TIMING_REPS`]).
    pub driver_nanos: u128,
    /// Sequential driver syndrome lookups.
    pub driver_lookups: u64,
    /// Restricted probes the driver ran before certifying.
    pub driver_probes: usize,
    /// Forced-pooled backend leg on the shared pool.
    pub pooled: BackendLeg,
    /// Size-directed `diagnose_auto` leg (the production entry point).
    pub auto: BackendLeg,
    /// Sub-cutover cells: did the auto entry point stay within
    /// [`REGRESSION_TOLERANCE`] of the sequential driver? (Trivially true
    /// at or above the cutover, where auto is *expected* to diverge —
    /// upward.)
    pub auto_no_regression: bool,
    /// Strided-search legs, one per [`THREAD_SWEEP`] entry.
    pub parallel: Vec<ParallelLeg>,
    /// Baseline leg; `None` on driver-only cells and the quick-skip set.
    pub baseline: Option<BaselineLeg>,
    /// Sampled spot-checker leg; `Some` exactly on driver-only cells,
    /// where the full baseline is `None`.
    pub sampled: Option<SampledLeg>,
    /// Event-simulator leg (unit latencies, static faults); `None` on
    /// driver-only cells.
    pub distsim: Option<DistsimLeg>,
    /// Per-phase session telemetry (probe/certify/grow wall times +
    /// lookup counts) of the driver leg's best-timed rep — the v2 schema
    /// addition.
    pub phases: PhaseTelemetry,
    /// The session verification verdict for this cell: `FullBaseline`
    /// where the baseline leg ran, `Sampled` on driver-only cells,
    /// `Unverified` on the quick-mode skip set.
    pub verification: VerificationVerdict,
    /// The `--profile` leg: one extra fully observed rep (traced session
    /// on an instrumented pool) with its Chrome trace written to disk.
    /// `None` unless the sweep ran with a [`ProfileConfig`].
    pub profile: Option<ProfileLeg>,
    /// Did every leg that ran return the planted set?
    pub agree: bool,
}

/// Where `--profile` writes its per-cell Chrome traces (directory derived
/// from `--out`: `BENCH_6.json` → `BENCH_6-traces/`).
#[derive(Clone, Debug)]
pub struct ProfileConfig {
    /// Directory receiving one `<seq>-<instance>-….trace.json` per cell.
    pub trace_dir: std::path::PathBuf,
}

/// The `--profile` leg of one cell: one extra rep on a tracing session
/// driving an instrumented pool, exported as a Chrome trace-event file
/// (validated as JSON before it is written — the CI smoke leg relies on
/// the nonzero exit when that fails) with its rollups embedded additively
/// in the v2 record.
#[derive(Clone, Debug)]
pub struct ProfileLeg {
    /// Path of the Chrome trace file written for this cell.
    pub trace_file: String,
    /// Spans recorded in the trace.
    pub spans: usize,
    /// Events lost to ring wraparound before the drain (0 unless the
    /// cell overflows the default ring capacity).
    pub dropped: u64,
    /// Phase telemetry of the profiled rep — asserted identical to the
    /// trace's own rollup before the file is written.
    pub phases: PhaseTelemetry,
    /// The unified `oracle.lookups` metric after the profiled rep (the
    /// same cell the report's `lookups_used` reads).
    pub oracle_lookups: u64,
    /// Tasks the instrumented pool executed during the rep.
    pub tasks: u64,
    /// Task run-time distribution across all workers (ns).
    pub run_ns: HistogramSummary,
}

/// One per-instance batched submission: all the instance's sweep
/// syndromes evaluated through `diagnose_batch` on both backends.
#[derive(Clone, Debug)]
pub struct BatchRecord {
    /// Family key.
    pub family: &'static str,
    /// Instance display name.
    pub instance: String,
    /// Number of syndromes in the submission.
    pub cells: usize,
    /// Total wall time of the sequential batch (ns).
    pub seq_nanos: u128,
    /// Total wall time of the pooled batch (ns).
    pub pooled_nanos: u128,
    /// Both backends returned bit-identical diagnoses for every syndrome.
    pub agree: bool,
}

/// Fault sizes exercised per instance: empty, singleton, half bound, full
/// bound (deduplicated, ascending).
pub fn fault_sizes(bound: usize) -> Vec<usize> {
    let mut v = vec![0, 1, bound / 2, bound];
    v.sort_unstable();
    v.dedup();
    v
}

/// Deterministically scatter `count` faults over `0..n` — SplitMix64-style
/// index hopping, no RNG dependency in the harness crate.
pub fn scatter_faults(n: usize, count: usize, salt: u64) -> FaultSet {
    assert!(count <= n, "cannot scatter {count} faults over {n} nodes");
    let mut picked = vec![false; n];
    let mut members = Vec::with_capacity(count);
    let mut x = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03;
    while members.len() < count {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let idx = ((z ^ (z >> 31)) % n as u64) as usize;
        if !picked[idx] {
            picked[idx] = true;
            members.push(idx);
        }
    }
    FaultSet::new(n, &members)
}

/// `Σ_u C(deg u, 2)` — the size of the full syndrome table.
pub fn table_size<T: Topology + ?Sized>(g: &T) -> u64 {
    (0..g.node_count())
        .map(|u| {
            let d = g.degree(u) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum()
}

/// Time `f` over [`TIMING_REPS`] runs, returning (best nanos, last result).
fn best_of<R>(mut f: impl FnMut() -> R) -> (u128, R) {
    let mut best = u128::MAX;
    let mut result = None;
    for _ in 0..TIMING_REPS {
        let t0 = Stopwatch::start();
        let r = f();
        best = best.min(u128::from(t0.elapsed_ns()));
        result = Some(r);
    }
    (best, result.expect("TIMING_REPS >= 1"))
}

/// Run one (instance, fault count, behavior) cell with every applicable
/// leg on the shared global pool; panic if any leg disagrees with the
/// planted truth.
pub fn run_cell(inst: &Instance, faults: &FaultSet, behavior: TesterBehavior) -> RunRecord {
    run_cell_opts(inst, faults, behavior, true)
}

/// [`run_cell`] with the baseline leg optional — quick mode skips it on
/// the largest instance per family, where the full syndrome table
/// dominates CI wall time. Driver-only instances skip the baseline *and*
/// the simulator leg regardless of `with_baseline`.
pub fn run_cell_opts(
    inst: &Instance,
    faults: &FaultSet,
    behavior: TesterBehavior,
    with_baseline: bool,
) -> RunRecord {
    let g = inst.graph.as_ref();
    let s = OracleSyndrome::new(faults.clone(), behavior);

    // One session per backend policy — the whole cell is "the same front
    // door, different builder calls".
    let seq_session = Diagnoser::new(g);
    let auto_session = Diagnoser::new(g).auto();
    let pooled_session = Diagnoser::new(g).pooled();

    // Driver and auto legs run interleaved (driver, auto, driver, auto, …)
    // after an untimed warmup, each reporting its best rep: on sub-cutover
    // cells the two are the *same* code path measured at microsecond
    // scale, and interleaving keeps slow drift (frequency scaling, a busy
    // sibling process) from landing on one leg only. Sub-cutover cells
    // additionally keep sampling pairs (up to a cap) while the regression
    // verdict is failing: each leg's reported time is a floor estimate
    // (min over reps), extra samples only tighten both estimates toward
    // the true floor, so a genuinely slower path still fails — only a
    // preemption-spiked measurement converges back to parity.
    let sub_cutover = g.node_count() < sequential_cutover();
    let (min_pairs, max_pairs) = if sub_cutover {
        (TIMING_REPS + 4, 40)
    } else {
        (TIMING_REPS, TIMING_REPS)
    };
    let drv = seq_session
        .run(&s)
        .unwrap_or_else(|e| panic!("{}: driver failed: {e}", g.name()))
        .diagnosis;
    assert_eq!(
        drv.faults,
        faults.members(),
        "{}: driver missed the planted set",
        g.name()
    );
    let mut driver_nanos = u128::MAX;
    let mut auto_nanos = u128::MAX;
    let mut phases = PhaseTelemetry::default();
    let mut auto = None;
    for pair in 0..max_pairs {
        if pair >= min_pairs && within_regression_tolerance(auto_nanos, driver_nanos) {
            break;
        }
        let t0 = Stopwatch::start();
        let d = seq_session
            .run(&s)
            .unwrap_or_else(|e| panic!("{}: driver failed: {e}", g.name()));
        let elapsed = u128::from(t0.elapsed_ns());
        if elapsed < driver_nanos {
            driver_nanos = elapsed;
            phases = d.telemetry;
        }
        debug_assert!(semantically_equal(&d.diagnosis, &drv));
        let t0 = Stopwatch::start();
        let a = auto_session
            .run(&s)
            .unwrap_or_else(|e| panic!("{}: auto backend failed: {e}", g.name()));
        auto_nanos = auto_nanos.min(u128::from(t0.elapsed_ns()));
        auto = Some(a);
    }
    let auto = auto.expect("at least one timing pair runs");
    let (pooled_nanos, pooled) = best_of(|| {
        pooled_session
            .run(&s)
            .unwrap_or_else(|e| panic!("{}: pooled backend failed: {e}", g.name()))
    });
    let backend_agree =
        semantically_equal(&auto.diagnosis, &drv) && semantically_equal(&pooled.diagnosis, &drv);
    assert!(backend_agree, "{}: backend legs disagree", g.name());
    let auto_no_regression = g.node_count() >= sequential_cutover()
        || within_regression_tolerance(auto_nanos, driver_nanos);

    let mut parallel = Vec::with_capacity(THREAD_SWEEP.len());
    let mut par_agree = true;
    for threads in THREAD_SWEEP {
        let lane_session = Diagnoser::new(g).lanes(threads);
        let t0 = Stopwatch::start();
        let par = lane_session
            .run(&s)
            .unwrap_or_else(|e| panic!("{}: parallel driver failed: {e}", g.name()));
        parallel.push(ParallelLeg {
            threads,
            nanos: u128::from(t0.elapsed_ns()),
        });
        par_agree &= par.diagnosis.faults == drv.faults
            && par.diagnosis.certified_part == drv.certified_part;
    }

    // Event-level simulator leg, through the session's simulation door:
    // unit latencies, static timeline — the regime where observation must
    // reproduce both the cost model and the driver exactly. Infeasible
    // per-message at 10⁵⁺ nodes: driver-only instances skip it.
    let distsim = if inst.driver_only {
        None
    } else {
        let sim_session = Diagnoser::new(g).simulated(LatencyModel::Unit);
        let timeline = FaultTimeline::static_faults(faults.clone(), behavior);
        let t0 = Stopwatch::start();
        let sim = sim_session
            .simulate(&timeline)
            .unwrap_or_else(|e| panic!("{}: distsim failed: {e}", g.name()));
        let sim_nanos = u128::from(t0.elapsed_ns());
        let model = plan(g);
        let matches_model = match sim.check_against_plan(&model) {
            Ok(()) => true,
            Err(e) => panic!("{}: simulator diverged from cost model: {e}", g.name()),
        };
        let sim_agree = sim.faults == drv.faults
            && sim.certified_part == drv.certified_part
            && sim.probes_until_certificate == drv.probes;
        assert!(sim_agree, "{}: simulator/driver disagree", g.name());
        Some(DistsimLeg {
            nanos: sim_nanos,
            probe_rounds: sim.probes.iter().map(|p| p.rounds).max().unwrap_or(0),
            probe_messages: sim.probes.iter().map(|p| p.messages).sum(),
            growth_rounds: sim.growth.rounds,
            virtual_time: sim.total_time,
            events: sim.events_delivered,
            matches_model,
            agree: sim_agree,
        })
    };

    // Verification: the session policy appropriate to the cell kind,
    // re-checking the already finished diagnosis (no re-diagnosis). The
    // legacy BaselineLeg/SampledLeg views are derived from the verdict so
    // the v1 schema fields keep their meaning.
    let (verification, baseline, sampled) = if inst.driver_only {
        let verdict = Diagnoser::new(g)
            .verify_sampled(samples_per_part(), 0x5A3D ^ faults.len() as u64)
            .verify_claim(&s, &drv.faults, drv.certified_part);
        let leg = sampled_leg_from(&verdict, g.name());
        (verdict, None, Some(leg))
    } else if with_baseline {
        s.reset_lookups();
        let verdict =
            Diagnoser::new(g)
                .verify_full()
                .verify_claim(&s, &drv.faults, drv.certified_part);
        let (lookups, agree, nanos) = match verdict.clone() {
            VerificationVerdict::FullBaseline {
                lookups,
                agree,
                nanos,
            } => (lookups, agree, nanos),
            VerificationVerdict::Failed { error, .. } => {
                panic!("{}: baseline failed: {error}", g.name())
            }
            other => unreachable!("verify_full yields a FullBaseline verdict, got {other:?}"),
        };
        assert!(agree, "{}: baseline disagrees", g.name());
        (verdict, Some(BaselineLeg { nanos, lookups }), None)
    } else {
        (VerificationVerdict::Unverified, None, None)
    };

    let agree = par_agree
        && backend_agree
        && distsim.as_ref().is_none_or(|d| d.agree)
        && sampled.as_ref().is_none_or(|c| c.agree)
        && verification.agreed_or_unverified();
    assert!(agree, "{}: legs disagree", g.name());

    // Lookup accounting for the driver comes from its own run, measured
    // once more so backend reps above cannot pollute it.
    s.reset_lookups();
    let drv_clean = seq_session.run(&s).unwrap().diagnosis;

    RunRecord {
        family: inst.family,
        instance: g.name(),
        nodes: g.node_count(),
        max_degree: g.max_degree(),
        parts: g.part_count(),
        fault_bound: g.driver_fault_bound(),
        num_faults: faults.len(),
        behavior: format!("{behavior:?}"),
        table_entries: table_size(g),
        driver_nanos,
        driver_lookups: drv_clean.lookups_used,
        driver_probes: drv_clean.probes,
        pooled: BackendLeg {
            backend: "pooled",
            nanos: pooled_nanos,
        },
        auto: BackendLeg {
            backend: auto.backend,
            nanos: auto_nanos,
        },
        auto_no_regression,
        parallel,
        baseline,
        sampled,
        distsim,
        phases,
        verification,
        profile: None,
        agree,
    }
}

/// Samples per part for the spot-checker leg (`MMDIAG_SAMPLES`, default 2
/// — parsed once through [`mmdiag_exec::knobs`]).
fn samples_per_part() -> usize {
    mmdiag_exec::knobs().samples_per_part.unwrap_or(2)
}

/// View a sampled session verdict as the legacy [`SampledLeg`] (the v1
/// schema's `"sampled_check"` object), panicking on disagreement — at
/// these sizes a disagreement means a genuine bug, not noise.
fn sampled_leg_from(verdict: &VerificationVerdict, instance: String) -> SampledLeg {
    let VerificationVerdict::Sampled {
        samples,
        checked_tests,
        disagreements,
        certificate_ok,
        agree,
        nanos,
    } = verdict.clone()
    else {
        unreachable!("sampled policy yields a Sampled verdict")
    };
    assert!(
        agree,
        "{instance}: sampled check disagrees with the driver ({disagreements} disagreements)"
    );
    SampledLeg {
        nanos,
        samples,
        checked_tests,
        disagreements,
        certificate_ok,
        agree,
    }
}

/// One `--xlarge` cell: the slimmed measurement protocol for 10⁶⁺-node
/// implicit instances. A timed sequential-driver leg, a timed leg on the
/// auto backend (pooled at these sizes unless the calibrated cutover says
/// otherwise), the sampled spot-checker — and a [`MaterialisationGuard`]
/// proving no `Cached::new` happened anywhere in the cell. Syndromes
/// stream from the `O(|F|)`-state [`OnDemandOracle`].
///
/// Timing follows the workspace's min-over-reps protocol where it is
/// affordable: cells up to `2^24` nodes run [`TIMING_REPS`] reps per leg
/// and record the best (diagnosis determinism makes every rep's *output*
/// identical, so only the clock varies); larger cells run once — a Q_27
/// rep is minutes, and scheduler noise is amortised at that length anyway.
pub fn run_scale_cell(inst: &Instance, members: &[NodeId], behavior: TesterBehavior) -> RunRecord {
    assert!(inst.scale, "run_scale_cell is the --xlarge protocol");
    let g = inst.graph.as_ref();
    let guard = MaterialisationGuard::begin();
    let s = OnDemandOracle::new(g.node_count(), members, behavior);
    let seq_session = Diagnoser::new(g);
    let auto_session = Diagnoser::new(g).auto();
    let reps = if g.node_count() <= 1 << 24 {
        TIMING_REPS
    } else {
        1
    };

    let mut driver_nanos = u128::MAX;
    let mut drv = None;
    for _ in 0..reps {
        s.reset_lookups();
        let t0 = Stopwatch::start();
        let report = seq_session
            .run(&s)
            .unwrap_or_else(|e| panic!("{}: driver failed: {e}", g.name()));
        let nanos = u128::from(t0.elapsed_ns());
        if nanos < driver_nanos {
            driver_nanos = nanos;
            drv = Some(report.diagnosis);
        }
    }
    let drv = drv.expect("at least one driver rep");
    assert_eq!(
        drv.faults,
        s.planted_members(),
        "{}: driver missed the planted set",
        g.name()
    );
    let driver_lookups = drv.lookups_used;

    let mut auto_nanos = u128::MAX;
    let mut auto = None;
    for _ in 0..reps {
        s.reset_lookups();
        let t0 = Stopwatch::start();
        let report = auto_session
            .run(&s)
            .unwrap_or_else(|e| panic!("{}: auto backend failed: {e}", g.name()));
        let nanos = u128::from(t0.elapsed_ns());
        if nanos < auto_nanos {
            auto_nanos = nanos;
            auto = Some(report);
        }
    }
    let auto = auto.expect("at least one auto rep");
    assert!(
        semantically_equal(&auto.diagnosis, &drv),
        "{}: auto backend disagrees",
        g.name()
    );
    // The recorded phases are the *production* path's: at these sizes the
    // auto leg runs pooled with the frontier-parallel growth sweep, so its
    // `grow_nanos` (and per-round `grow_rounds`) are what the trajectory
    // comparison across BENCH files should track, not the sequential
    // reference leg's.
    let phases = auto.telemetry.clone();

    let verification = Diagnoser::new(g)
        .verify_sampled(samples_per_part(), 0x51AE ^ members.len() as u64)
        .verify_claim(&s, &drv.faults, drv.certified_part);
    let sampled = sampled_leg_from(&verification, g.name());
    guard.assert_unchanged(&g.name());

    RunRecord {
        family: inst.family,
        instance: g.name(),
        nodes: g.node_count(),
        max_degree: g.max_degree(),
        parts: g.part_count(),
        fault_bound: g.driver_fault_bound(),
        num_faults: members.len(),
        behavior: format!("{behavior:?}"),
        table_entries: table_size(g),
        driver_nanos,
        driver_lookups,
        driver_probes: drv.probes,
        // The auto leg *is* the pooled-or-sequential production path at
        // this size; a separate forced-pooled rep would double multi-second
        // cell cost for no extra information on a calibrated cutover.
        pooled: BackendLeg {
            backend: auto.backend,
            nanos: auto_nanos,
        },
        auto: BackendLeg {
            backend: auto.backend,
            nanos: auto_nanos,
        },
        auto_no_regression: true,
        parallel: Vec::new(),
        baseline: None,
        sampled: Some(sampled),
        distsim: None,
        phases,
        verification,
        profile: None,
        agree: true,
    }
}

/// Run one extra, fully observed rep of a cell: a tracing session on a
/// fresh instrumented pool, the phase spans cross-checked for *exact*
/// agreement with the report telemetry, and the Chrome trace-event
/// document validated ([`mmdiag_trace::export::validate_json`]) and
/// written to `cfg.trace_dir`. Panics — a nonzero bench exit — if the
/// emitted trace is malformed or disagrees with the telemetry, which is
/// precisely what the `--profile --quick` CI smoke leg checks.
pub fn profile_cell<S: SyndromeSource + Sync + ?Sized>(
    inst: &Instance,
    s: &S,
    num_faults: usize,
    behavior: &str,
    cfg: &ProfileConfig,
    seq: usize,
) -> ProfileLeg {
    let g = inst.graph.as_ref();
    s.reset_lookups();
    let pool = Pool::new_instrumented(mmdiag_exec::global().threads());
    let session = Diagnoser::new(g)
        .pooled_on(&pool)
        .trace(TraceConfig::default());
    let report = session
        .run(s)
        .unwrap_or_else(|e| panic!("{}: profiled rep failed: {e}", g.name()));
    let tracer = session.tracer();
    let events = tracer.drain();
    let summary = TraceSummary::from_events(&events, tracer.dropped());
    // The trace *is* the telemetry: the spans returned the very values the
    // report stores, so the rollup must agree exactly — ns and lookups.
    assert_eq!(summary.probe_nanos, report.telemetry.probe_nanos);
    assert_eq!(summary.certify_nanos, report.telemetry.certify_nanos);
    assert_eq!(summary.grow_nanos, report.telemetry.grow_nanos);
    assert_eq!(summary.probe_lookups, report.telemetry.probe_lookups);
    assert_eq!(summary.grow_lookups, report.telemetry.grow_lookups);

    let metrics = tracer.metrics().expect("tracing session").snapshot();
    let oracle_lookups = metrics
        .iter()
        .find(|m| m.name == "oracle.lookups")
        .and_then(|m| match m.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        })
        .unwrap_or_else(|| s.lookups());

    let doc = mmdiag_trace::export::chrome_trace(&events, &metrics);
    mmdiag_trace::export::validate_json(&doc)
        .unwrap_or_else(|e| panic!("{}: emitted Chrome trace is not valid JSON: {e}", g.name()));
    let file = cfg.trace_dir.join(format!(
        "{seq:03}-{}-f{num_faults}-{}.trace.json",
        file_stem(&g.name()),
        file_stem(behavior),
    ));
    std::fs::write(&file, &doc).unwrap_or_else(|e| panic!("cannot write {}: {e}", file.display()));

    let stats = pool.stats().expect("instrumented pool");
    let totals = stats.totals();
    ProfileLeg {
        trace_file: file.display().to_string(),
        spans: summary.span_count,
        dropped: summary.dropped,
        phases: report.telemetry,
        oracle_lookups,
        tasks: totals.tasks,
        run_ns: totals.run_ns,
    }
}

/// Collapse a display name into a filesystem-safe file stem.
fn file_stem(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut dash = false;
    for c in s.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
            dash = false;
        } else if !dash && !out.is_empty() {
            out.push('-');
            dash = true;
        }
    }
    while out.ends_with('-') {
        out.pop();
    }
    out
}

/// Semantic equality of two diagnoses: the deterministic contract every
/// backend must honour (accounting fields excluded — see
/// `mmdiag_core::backend`).
fn semantically_equal(a: &Diagnosis, b: &Diagnosis) -> bool {
    a.faults == b.faults
        && a.certified_part == b.certified_part
        && a.healthy_count == b.healthy_count
        && a.tree.edges() == b.tree.edges()
}

/// Sweep a catalog: for every instance, every [`fault_sizes`] load under a
/// seeded `Random` tester behaviour, plus the full-bound load under the
/// adversarial `AllZero` behaviour — then the instance's syndromes once
/// more as one batched submission per backend. In `quick` mode the
/// baseline leg is skipped on the largest non-driver-only instance of
/// each family, keeping the CI smoke run well under ~10 s.
pub fn sweep(
    catalog: &[Instance],
    quick: bool,
    progress: &mut dyn FnMut(&RunRecord),
) -> (Vec<RunRecord>, Vec<BatchRecord>) {
    sweep_profiled(catalog, quick, None, progress)
}

/// [`sweep`] with the `--profile` leg: when `profile` is `Some`, every
/// cell additionally runs one fully observed rep ([`profile_cell`]) whose
/// Chrome trace lands in the config's directory and whose rollups ride
/// along in the cell's [`RunRecord::profile`].
pub fn sweep_profiled(
    catalog: &[Instance],
    quick: bool,
    profile: Option<&ProfileConfig>,
    progress: &mut dyn FnMut(&RunRecord),
) -> (Vec<RunRecord>, Vec<BatchRecord>) {
    // Largest node count per family — the baseline-skip set in quick mode.
    // Driver-only instances never run the baseline, so they do not shift
    // which regular instance counts as a family's largest.
    let mut family_max: Vec<(&'static str, usize)> = Vec::new();
    for inst in catalog.iter().filter(|i| !i.driver_only) {
        let n = inst.graph.node_count();
        match family_max.iter_mut().find(|(f, _)| *f == inst.family) {
            Some(entry) => entry.1 = entry.1.max(n),
            None => family_max.push((inst.family, n)),
        }
    }
    let mut records = Vec::new();
    let mut batches = Vec::new();
    for (i, inst) in catalog.iter().enumerate() {
        let g = inst.graph.as_ref();
        g.check_partition_preconditions()
            .unwrap_or_else(|e| panic!("catalog instance unusable: {e}"));
        if inst.scale {
            // --xlarge protocol: one seeded-random and one adversarial
            // AllZero cell at the full fault bound, driver + auto + sampled
            // checker only — no strided sweep, no batch submission (each
            // extra leg is a multi-second full-graph pass out here).
            let bound = g.driver_fault_bound();
            let salt = 0xE1A6_0000 + i as u64;
            // Both behaviours replay the same planted set (the scatter is
            // an O(N) pass — worth doing once per instance out here).
            let faults = scatter_faults(g.node_count(), bound, salt);
            for behavior in [
                TesterBehavior::Random { seed: salt },
                TesterBehavior::AllZero,
            ] {
                let mut rec = run_scale_cell(inst, faults.members(), behavior);
                if let Some(cfg) = profile {
                    let ps = OnDemandOracle::new(g.node_count(), faults.members(), behavior);
                    rec.profile = Some(profile_cell(
                        inst,
                        &ps,
                        faults.len(),
                        &format!("{behavior:?}"),
                        cfg,
                        records.len(),
                    ));
                }
                progress(&rec);
                records.push(rec);
            }
            continue;
        }
        let is_family_largest = !inst.driver_only
            && family_max
                .iter()
                .any(|&(f, n)| f == inst.family && n == g.node_count());
        let with_baseline = !(quick && is_family_largest);
        let bound = g.driver_fault_bound();
        let mut cell_syndromes = Vec::new();
        for (j, &k) in fault_sizes(bound).iter().enumerate() {
            let salt = (i as u64) << 16 | j as u64;
            let faults = scatter_faults(g.node_count(), k, salt);
            let behavior = TesterBehavior::Random { seed: salt };
            let mut rec = run_cell_opts(inst, &faults, behavior, with_baseline);
            if let Some(cfg) = profile {
                let ps = OracleSyndrome::new(faults.clone(), behavior);
                rec.profile = Some(profile_cell(
                    inst,
                    &ps,
                    faults.len(),
                    &format!("{behavior:?}"),
                    cfg,
                    records.len(),
                ));
            }
            progress(&rec);
            records.push(rec);
            cell_syndromes.push(OracleSyndrome::new(faults, behavior));
        }
        let faults = scatter_faults(g.node_count(), bound, 0xA110_0000 + i as u64);
        let mut rec = run_cell_opts(inst, &faults, TesterBehavior::AllZero, with_baseline);
        if let Some(cfg) = profile {
            let ps = OracleSyndrome::new(faults.clone(), TesterBehavior::AllZero);
            rec.profile = Some(profile_cell(
                inst,
                &ps,
                faults.len(),
                "AllZero",
                cfg,
                records.len(),
            ));
        }
        progress(&rec);
        records.push(rec);
        cell_syndromes.push(OracleSyndrome::new(faults, TesterBehavior::AllZero));
        batches.push(batch_submission(inst, &cell_syndromes));
    }
    (records, batches)
}

/// Evaluate one instance's sweep syndromes as a single
/// `Diagnoser::submit_batch` submission per backend policy and
/// cross-check the two.
fn batch_submission(inst: &Instance, syndromes: &[OracleSyndrome]) -> BatchRecord {
    let g = inst.graph.as_ref();
    let jobs: Vec<BatchJob> = syndromes
        .iter()
        .map(|s| BatchJob::Source(s as &(dyn SyndromeSource + Sync)))
        .collect();
    let seq_session = Diagnoser::new(g);
    let pooled_session = Diagnoser::new(g).pooled();
    let t0 = Stopwatch::start();
    let seq = seq_session.submit_batch(&jobs);
    let seq_nanos = u128::from(t0.elapsed_ns());
    let t0 = Stopwatch::start();
    let pooled = pooled_session.submit_batch(&jobs);
    let pooled_nanos = u128::from(t0.elapsed_ns());
    let agree = seq.len() == pooled.len()
        && seq.iter().zip(&pooled).all(|(a, b)| match (a, b) {
            (Ok(a), Ok(b)) => match (a.report(), b.report()) {
                (Some(a), Some(b)) => {
                    // Batched scans are in-order on both backends, so even
                    // the accounting must match.
                    semantically_equal(&a.diagnosis, &b.diagnosis)
                        && a.diagnosis.probes == b.diagnosis.probes
                }
                _ => false,
            },
            _ => false,
        });
    assert!(agree, "{}: batched backends disagree", g.name());
    BatchRecord {
        family: inst.family,
        instance: g.name(),
        cells: syndromes.len(),
        seq_nanos,
        pooled_nanos,
        agree,
    }
}

/// One simulator-only scenario — a regime the closed-form cost model (and
/// the centralised driver) cannot express.
#[derive(Clone, Debug)]
pub struct ScenarioRecord {
    /// Family key.
    pub family: &'static str,
    /// Instance display name.
    pub instance: String,
    /// `"latency_skew"` or `"mid_injection"`.
    pub kind: &'static str,
    /// Human-readable scenario parameters.
    pub detail: String,
    /// Virtual completion time of the unit-latency reference run.
    pub unit_virtual_time: u64,
    /// Virtual completion time of the scenario run.
    pub virtual_time: u64,
    /// Deepest observed wave (probe or growth) in the scenario run.
    pub max_wave_depth: usize,
    /// Deepest wave the unit-latency cost model predicts.
    pub model_wave_depth: usize,
    /// Faults the scenario run diagnosed.
    pub diagnosed: usize,
    /// Faults in force once the timeline finished.
    pub final_faults: usize,
    /// Did the scenario behave as the regime predicts (see
    /// [`distsim_scenarios`])?
    pub ok: bool,
}

/// Run the simulator-only sweep, with each instance's scenario cells
/// dispatched on the shared executor pool: per instance, one latency-skew
/// scenario (seeded-random link latencies; the diagnosis must not change,
/// virtual time must stretch) and one mid-protocol injection scenario (a
/// healthy node turns faulty after the probe phase; the diagnosis must
/// pick it up even though every probe certified without it). Driver-only
/// instances are skipped — event-level replay is infeasible at 10⁵⁺
/// nodes.
pub fn distsim_scenarios(catalog: &[Instance]) -> Vec<ScenarioRecord> {
    let pool = mmdiag_exec::global();
    let eligible: Vec<&Instance> = catalog.iter().filter(|i| !i.driver_only).collect();
    let per_instance: Vec<Vec<ScenarioRecord>> =
        pool.map(&eligible, |i, inst| instance_scenarios(inst, i));
    per_instance.into_iter().flatten().collect()
}

/// The two scenario cells of one instance. The unit-latency reference and
/// the skewed run are one `submit_batch` each on a simulated session (the
/// session's latency model is a per-session policy, so the two regimes
/// are two sessions over the same instance); the injection run depends on
/// the reference's observed growth onset and follows once that is known.
fn instance_scenarios(inst: &Instance, i: usize) -> Vec<ScenarioRecord> {
    let g = inst.graph.as_ref();
    let n = g.node_count();
    let bound = g.driver_fault_bound();
    let model = plan(g);
    let model_wave_depth = model.probe_rounds_concurrent.max(model.growth_rounds_worst);
    let mut out = Vec::with_capacity(2);

    // --- Latency skew: same static faults, jittered links.
    let faults = scatter_faults(n, bound, 0x5CE_0000 + i as u64);
    let behavior = TesterBehavior::Random { seed: i as u64 };
    let timeline = FaultTimeline::static_faults(faults.clone(), behavior);
    let skew = LatencyModel::SeededRandom {
        seed: 0xBEEF + i as u64,
        min: 1,
        max: 8,
    };
    let unit_session = Diagnoser::new(g).simulated(LatencyModel::Unit);
    let skew_session = Diagnoser::new(g).simulated(skew);
    // Two latency regimes are two sessions; dispatch their single sims as
    // one pooled submission so they run concurrently like the historical
    // 2-job `simulate_batch` call did.
    let legs: [(&Diagnoser, &str); 2] = [(&unit_session, "unit"), (&skew_session, "skewed")];
    let mut reports = mmdiag_exec::global().map(&legs, |_, (session, label)| {
        session
            .simulate(&timeline)
            .unwrap_or_else(|e| panic!("{}: {label} sim failed: {e}", g.name()))
    });
    let skewed = reports.pop().expect("two simulation legs");
    let unit = reports.pop().expect("two simulation legs");
    let skew_ok = skewed.faults == faults.members()
        && skewed.faults == unit.faults
        && skewed.total_time > unit.total_time;
    assert!(skew_ok, "{}: latency skew changed the diagnosis", g.name());
    out.push(ScenarioRecord {
        family: inst.family,
        instance: g.name(),
        kind: "latency_skew",
        detail: format!("seeded-random link latencies 1..=8, {} faults", bound),
        unit_virtual_time: unit.total_time,
        virtual_time: skewed.total_time,
        max_wave_depth: skewed
            .probes
            .iter()
            .map(|p| p.rounds)
            .max()
            .unwrap_or(0)
            .max(skewed.growth.rounds),
        model_wave_depth,
        diagnosed: skewed.faults.len(),
        final_faults: faults.len(),
        ok: skew_ok,
    });

    // --- Mid-protocol injection: base load below the bound, one
    // healthy victim turns faulty right after the probe phase.
    let base_load = bound.saturating_sub(1) / 2;
    let base = scatter_faults(n, base_load, 0x1EC7_0000 + i as u64);
    let victim = (0..n)
        .find(|&u| !base.contains(u) && (0..g.part_count()).all(|p| g.representative(p) != u))
        .expect("some non-representative healthy node exists");
    let onset = unit.growth.started + 1;
    let inj_timeline = FaultTimeline::with_onsets(base.clone(), &[(onset, victim)], behavior);
    let injected = unit_session
        .simulate(&inj_timeline)
        .unwrap_or_else(|e| panic!("{}: injection sim failed: {e}", g.name()));
    let expected: Vec<usize> = inj_timeline.final_faults().members().to_vec();
    let inj_ok = injected.faults == expected;
    assert!(
        inj_ok,
        "{}: mid-protocol injection not diagnosed: got {:?}, want {expected:?}",
        g.name(),
        injected.faults
    );
    out.push(ScenarioRecord {
        family: inst.family,
        instance: g.name(),
        kind: "mid_injection",
        detail: format!(
            "{base_load} base faults, node {victim} turns faulty at t={onset} \
             (after all probes certified)"
        ),
        unit_virtual_time: unit.total_time,
        virtual_time: injected.total_time,
        max_wave_depth: injected
            .probes
            .iter()
            .map(|p| p.rounds)
            .max()
            .unwrap_or(0)
            .max(injected.growth.rounds),
        model_wave_depth,
        diagnosed: injected.faults.len(),
        final_faults: expected.len(),
        ok: inj_ok,
    });
    out
}

/// Render a session verification verdict as its v2 JSON object.
fn verification_json(v: &VerificationVerdict) -> String {
    match v {
        VerificationVerdict::Unverified => "{\"method\": \"none\"}".to_string(),
        VerificationVerdict::Sampled {
            samples,
            checked_tests,
            disagreements,
            certificate_ok,
            agree,
            nanos,
        } => format!(
            concat!(
                "{{\"method\": \"sampled\", \"samples\": {}, \"checked_tests\": {}, ",
                "\"disagreements\": {}, \"certificate_ok\": {}, \"agree\": {}, \"nanos\": {}}}"
            ),
            samples, checked_tests, disagreements, certificate_ok, agree, nanos,
        ),
        VerificationVerdict::FullBaseline {
            lookups,
            agree,
            nanos,
        } => format!(
            "{{\"method\": \"full_baseline\", \"lookups\": {lookups}, \"agree\": {agree}, \
             \"nanos\": {nanos}}}"
        ),
        VerificationVerdict::Failed { method, error } => format!(
            "{{\"method\": \"{}\", \"failed\": true, \"error\": \"{}\", \"agree\": false}}",
            json_escape(method),
            json_escape(error),
        ),
        // The enum is non_exhaustive upstream; render unknown variants
        // conservatively rather than failing the whole emission.
        _ => "{\"method\": \"unknown\"}".to_string(),
    }
}

/// Render a [`HistogramSummary`] as its JSON object (count / sum / min /
/// max / mean and the log-bucket quantiles).
fn histogram_json(h: &HistogramSummary) -> String {
    format!(
        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \
         \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
        h.count,
        h.sum,
        h.min,
        h.max,
        h.mean(),
        h.p50(),
        h.p90(),
        h.p99()
    )
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Schema version stamped into every trajectory document [`to_json`]
/// writes. Bump it together with [`READER_ACCEPTED_SCHEMAS`]: the xtask
/// linter's `bench-schema-agreement` pass fails the build whenever the
/// writer emits a version the cutover reader would refuse, and when a
/// drifting copy of the literal appears anywhere outside these two
/// declarations.
pub const SCHEMA_VERSION: &str = "mmdiag-bench/v2";

/// Schema versions [`calibrate_cutover_in`] accepts. v2 is a strict
/// superset of v1 (same line-oriented record layout plus extra keys), so
/// one reader parses both; a document stamped with any *other* version is
/// rejected rather than half-parsed.
pub const READER_ACCEPTED_SCHEMAS: &[&str] = &["mmdiag-bench/v1", "mmdiag-bench/v2"];

/// Render records as the `BENCH_<pr>.json` trajectory document
/// (**`mmdiag-bench/v2`** schema — a strict superset of v1). Additions
/// over v1: every record carries a `"phases"` object (the session's
/// probe/certify/grow wall times and lookup counts) and a
/// `"verification"` object (the per-cell session verdict: method,
/// agreement, cost — `"method": "none"` on the quick-mode skip set).
/// Every v1 key is preserved unchanged, so the line-oriented v1 reader
/// ([`calibrate_cutover_in`]) parses v2 files too.
///
/// Hand-rolled serialisation — serde is not available offline, and the
/// schema is flat enough that this stays readable.
pub fn to_json(
    bench_id: &str,
    records: &[RunRecord],
    batches: &[BatchRecord],
    scenarios: &[ScenarioRecord],
    throughput: Option<&ThroughputRecord>,
    online: Option<&OnlineRecord>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{SCHEMA_VERSION}\",\n"));
    out.push_str(&format!("  \"bench_id\": \"{}\",\n", json_escape(bench_id)));
    out.push_str(&format!(
        "  \"exec\": {{\"pool_threads\": {}, \"sequential_cutover_nodes\": {}, \
         \"timing_reps\": {}, \"regression_tolerance\": {:.2}}},\n",
        mmdiag_exec::global().threads(),
        sequential_cutover(),
        TIMING_REPS,
        REGRESSION_TOLERANCE,
    ));
    out.push_str(&format!(
        "  \"thread_sweep\": [{}],\n",
        THREAD_SWEEP.map(|t| t.to_string()).join(", ")
    ));
    out.push_str(&format!("  \"record_count\": {},\n", records.len()));
    out.push_str(&format!(
        "  \"families_covered\": {},\n",
        families_covered(records)
    ));
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let par: Vec<String> = r
            .parallel
            .iter()
            .map(|leg| format!("{{\"threads\": {}, \"nanos\": {}}}", leg.threads, leg.nanos))
            .collect();
        // Skipped legs render as JSON nulls, not misleading zeros —
        // trajectory readers averaging speedups across BENCH_<pr>.json
        // files must not silently ingest zeros.
        let baseline = match &r.baseline {
            Some(b) => format!("{{\"nanos\": {}, \"lookups\": {}}}", b.nanos, b.lookups),
            None => "null".to_string(),
        };
        let (speedup_vs_baseline, lookup_ratio) = match &r.baseline {
            Some(b) => (
                format!("{:.3}", b.nanos as f64 / r.driver_nanos.max(1) as f64),
                format!("{:.3}", b.lookups as f64 / r.driver_lookups.max(1) as f64),
            ),
            None => ("null".to_string(), "null".to_string()),
        };
        let sampled = match &r.sampled {
            Some(c) => format!(
                concat!(
                    "{{\"nanos\": {}, \"samples\": {}, \"checked_tests\": {}, ",
                    "\"disagreements\": {}, \"certificate_ok\": {}, \"agree\": {}}}"
                ),
                c.nanos, c.samples, c.checked_tests, c.disagreements, c.certificate_ok, c.agree,
            ),
            None => "null".to_string(),
        };
        let distsim = match &r.distsim {
            Some(d) => format!(
                concat!(
                    "{{\"nanos\": {}, \"probe_rounds\": {}, \"probe_messages\": {}, ",
                    "\"growth_rounds\": {}, \"virtual_time\": {}, \"events\": {}, ",
                    "\"matches_model\": {}, \"agree\": {}}}"
                ),
                d.nanos,
                d.probe_rounds,
                d.probe_messages,
                d.growth_rounds,
                d.virtual_time,
                d.events,
                d.matches_model,
                d.agree,
            ),
            None => "null".to_string(),
        };
        // v2 additions: the session's per-phase telemetry and the
        // verification verdict of this cell. `grow_rounds` (additive key)
        // is the frontier-parallel sweep's per-round split: empty on cells
        // the sequential growth tail served.
        let rounds: Vec<String> = r
            .phases
            .grow_rounds
            .iter()
            .map(|round| {
                format!(
                    "{{\"frontier\": {}, \"accepted\": {}, \"lookups\": {}, \
                     \"round_nanos\": {}, \"parallel\": {}}}",
                    round.frontier, round.accepted, round.lookups, round.nanos, round.parallel
                )
            })
            .collect();
        let phases = format!(
            concat!(
                "{{\"probe_nanos\": {}, \"certify_nanos\": {}, \"grow_nanos\": {}, ",
                "\"probe_lookups\": {}, \"grow_lookups\": {}, \"grow_rounds\": [{}]}}"
            ),
            r.phases.probe_nanos,
            r.phases.certify_nanos,
            r.phases.grow_nanos,
            r.phases.probe_lookups,
            r.phases.grow_lookups,
            rounds.join(", "),
        );
        let verification = verification_json(&r.verification);
        // The `--profile` addition — additive key, schema stamp unchanged.
        let profile = match &r.profile {
            Some(p) => format!(
                concat!(
                    "{{\"trace_file\": \"{}\", \"spans\": {}, \"dropped\": {}, ",
                    "\"phases\": {{\"probe_nanos\": {}, \"certify_nanos\": {}, ",
                    "\"grow_nanos\": {}, \"probe_lookups\": {}, \"grow_lookups\": {}}}, ",
                    "\"oracle_lookups\": {}, \"tasks\": {}, \"run_ns\": {}}}"
                ),
                json_escape(&p.trace_file),
                p.spans,
                p.dropped,
                p.phases.probe_nanos,
                p.phases.certify_nanos,
                p.phases.grow_nanos,
                p.phases.probe_lookups,
                p.phases.grow_lookups,
                p.oracle_lookups,
                p.tasks,
                histogram_json(&p.run_ns),
            ),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            concat!(
                "    {{\"family\": \"{}\", \"instance\": \"{}\", \"nodes\": {}, ",
                "\"max_degree\": {}, \"parts\": {}, \"fault_bound\": {}, ",
                "\"num_faults\": {}, \"behavior\": \"{}\", \"table_entries\": {}, ",
                "\"driver\": {{\"nanos\": {}, \"lookups\": {}, \"probes\": {}}}, ",
                "\"pooled\": {{\"nanos\": {}}}, ",
                "\"auto\": {{\"backend\": \"{}\", \"nanos\": {}, ",
                "\"speedup_vs_driver\": {:.3}, \"no_regression\": {}}}, ",
                "\"parallel\": [{}], ",
                "\"baseline\": {}, ",
                "\"sampled_check\": {}, ",
                "\"distsim\": {}, ",
                "\"phases\": {}, ",
                "\"verification\": {}, ",
                "\"profile\": {}, ",
                "\"speedup_vs_baseline\": {}, \"lookup_ratio\": {}, ",
                "\"driver_only\": {}, \"agree\": {}}}{}\n"
            ),
            json_escape(r.family),
            json_escape(&r.instance),
            r.nodes,
            r.max_degree,
            r.parts,
            r.fault_bound,
            r.num_faults,
            json_escape(&r.behavior),
            r.table_entries,
            r.driver_nanos,
            r.driver_lookups,
            r.driver_probes,
            r.pooled.nanos,
            json_escape(r.auto.backend),
            r.auto.nanos,
            r.driver_nanos as f64 / r.auto.nanos.max(1) as f64,
            r.auto_no_regression,
            par.join(", "),
            baseline,
            sampled,
            distsim,
            phases,
            verification,
            profile,
            speedup_vs_baseline,
            lookup_ratio,
            r.baseline.is_none() && r.distsim.is_none(),
            r.agree,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"batch_submissions\": [\n");
    for (i, b) in batches.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"family\": \"{}\", \"instance\": \"{}\", \"cells\": {}, ",
                "\"seq_nanos\": {}, \"pooled_nanos\": {}, \"agree\": {}}}{}\n"
            ),
            json_escape(b.family),
            json_escape(&b.instance),
            b.cells,
            b.seq_nanos,
            b.pooled_nanos,
            b.agree,
            if i + 1 == batches.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"distsim_scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"family\": \"{}\", \"instance\": \"{}\", \"kind\": \"{}\", ",
                "\"detail\": \"{}\", \"unit_virtual_time\": {}, \"virtual_time\": {}, ",
                "\"max_wave_depth\": {}, \"model_wave_depth\": {}, ",
                "\"diagnosed\": {}, \"final_faults\": {}, \"ok\": {}}}{}\n"
            ),
            json_escape(s.family),
            json_escape(&s.instance),
            json_escape(s.kind),
            json_escape(&s.detail),
            s.unit_virtual_time,
            s.virtual_time,
            s.max_wave_depth,
            s.model_wave_depth,
            s.diagnosed,
            s.final_faults,
            s.ok,
            if i + 1 == scenarios.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    // The --throughput fleet axis — additive v2 key, `null` when the
    // axis did not run. Rendered as one line per nested object so the
    // line-oriented cutover reader's section skip stays trivial.
    match throughput {
        Some(t) => {
            out.push_str("  \"throughput\": {\n");
            out.push_str(&format!(
                "    \"sessions\": {}, \"rounds\": {}, \"jobs_per_round\": {},\n",
                t.sessions, t.rounds, t.jobs_per_round
            ));
            out.push_str(&format!(
                "    \"total_diagnoses\": {}, \"wall_nanos\": {}, \"diagnoses_per_sec\": {:.3},\n",
                t.total_diagnoses, t.wall_nanos, t.diagnoses_per_sec
            ));
            out.push_str(&format!(
                "    \"latency_ns\": {},\n",
                histogram_json(&t.latency_ns)
            ));
            out.push_str(&format!(
                "    \"contention\": {{\"lock_wait_ns\": {}, \"park_ns\": {}, \
                 \"injector_depth_peak\": {}, \"deque_depth_peak\": {}}},\n",
                histogram_json(&t.lock_wait_ns),
                histogram_json(&t.park_ns),
                t.injector_depth_peak,
                t.deque_depth_peak,
            ));
            out.push_str(&format!("    \"disagreements\": {},\n", t.disagreements));
            out.push_str(&format!(
                "    \"overhead\": {{\"bare_nanos\": {}, \"instrumented_nanos\": {}, \
                 \"within_tolerance\": {}}}\n",
                t.overhead.bare_nanos, t.overhead.instrumented_nanos, t.overhead.within_tolerance,
            ));
            out.push_str("  },\n");
        }
        None => out.push_str("  \"throughput\": null,\n"),
    }
    // The --online epoch-monitoring axis — additive v2 key, `null` when
    // the axis did not run. Same one-line-per-nested-object discipline
    // as "throughput", for the same line-oriented reader-skip reason.
    match online {
        Some(o) => {
            out.push_str("  \"online\": {\n");
            out.push_str(&format!(
                "    \"epochs_per_family\": {}, \"onset_rate\": {:.3}, \"recovery_rate\": {:.3},\n",
                o.epochs_per_family, o.onset_rate, o.recovery_rate
            ));
            out.push_str(&format!(
                "    \"disagreements\": {}, \"families_without_savings\": {},\n",
                o.disagreements, o.families_without_savings
            ));
            out.push_str("    \"families\": [\n");
            for (i, f) in o.families.iter().enumerate() {
                out.push_str(&format!(
                    concat!(
                        "      {{\"family\": \"{}\", \"instance\": \"{}\", \"node_count\": {}, ",
                        "\"parts\": {}, \"epochs\": {}, \"escalated\": {}, \"quiescent\": {}, ",
                        "\"sparse_epochs\": {}, \"sparse_incremental_lookups\": {}, ",
                        "\"sparse_scratch_lookups\": {}, \"total_incremental_lookups\": {}, ",
                        "\"total_scratch_lookups\": {}, \"amortized_incremental\": {:.3}, ",
                        "\"amortized_scratch\": {:.3}, \"sparse_cheaper\": {}, ",
                        "\"detection_latency_ns\": {}, \"verified\": {}, ",
                        "\"disagreements\": {}}}{}\n"
                    ),
                    json_escape(f.family),
                    json_escape(&f.instance),
                    f.nodes,
                    f.parts,
                    f.epochs,
                    f.escalated,
                    f.quiescent,
                    f.sparse_epochs,
                    f.sparse_incremental_lookups,
                    f.sparse_scratch_lookups,
                    f.total_incremental_lookups,
                    f.total_scratch_lookups,
                    f.amortized_incremental,
                    f.amortized_scratch,
                    f.sparse_cheaper,
                    histogram_json(&f.detection_latency_ns),
                    f.verified,
                    f.disagreements,
                    if i + 1 == o.families.len() { "" } else { "," }
                ));
            }
            out.push_str("    ]\n");
            out.push_str("  }\n");
        }
        None => out.push_str("  \"online\": null\n"),
    }
    out.push_str("}\n");
    out
}

/// Outcome of a trajectory-based cutover calibration.
#[derive(Clone, Debug)]
pub struct CutoverCalibration {
    /// The node count below which `diagnose_auto` should stay sequential.
    pub cutover: usize,
    /// Which trajectory file supplied the measurements.
    pub source: String,
    /// Distinct instance sizes the decision was based on.
    pub groups: usize,
}

/// Extract the first integer following `key` in `hay` (`key` must end just
/// before the digits, e.g. `"\"nodes\": "`).
fn int_after(hay: &str, key: &str) -> Option<u128> {
    let at = hay.find(key)? + key.len();
    let digits: String = hay[at..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Cells a measured size must have before it can participate in cutover
/// calibration. The `--xlarge` scale cells time each leg exactly once, so
/// a single preemption spike there would otherwise veto the pooled
/// backend for *every* smaller size (observed: a one-rep `Q_23` cell 13%
/// over tolerance calibrated the cutover to 8.4M nodes). Sizes measured
/// with the full multi-rep protocol contribute ≥ 4 cells each.
pub const CALIBRATION_MIN_CELLS: usize = 3;

/// Read the highest-numbered `BENCH_*.json` in `dir` and derive the
/// smallest instance size from which the pooled backend keeps up with the
/// sequential driver: the smallest measured node count `t` such that on
/// *every* well-measured size `≥ t` the best pooled rep is within
/// [`REGRESSION_TOLERANCE`] of the best driver rep. Sizes with fewer than
/// [`CALIBRATION_MIN_CELLS`] cells (the single-rep `--xlarge` protocol)
/// are informational only — one noisy rep must not flip the backend for
/// everything below it. Returns `None` when no trajectory file (or no
/// usable record) exists — callers fall back to the compiled-in default.
///
/// The parse is line-oriented over the `mmdiag-bench/v1` layout this crate
/// itself emits (one record per line); anything unrecognised — a bad
/// directory entry, a non-UTF-8 name, an unreadable or hand-edited file —
/// is skipped, so corruption degrades to fewer groups, never a panic.
pub fn calibrate_cutover_in(dir: &std::path::Path) -> Option<CutoverCalibration> {
    let mut best: Option<(u64, std::path::PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()?.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(num) = name
            .strip_prefix("BENCH_")
            .and_then(|rest| rest.strip_suffix(".json"))
            .and_then(|n| n.parse::<u64>().ok())
        {
            if best.as_ref().is_none_or(|(b, _)| num > *b) {
                best = Some((num, path));
            }
        }
    }
    let (_, path) = best?;
    let text = std::fs::read_to_string(&path).ok()?;

    // A document stamped with a schema this reader does not understand is
    // rejected outright — half-parsing a future layout could calibrate
    // the cutover from garbage. Unstamped files (pre-schema hand edits)
    // still go through the lenient line-oriented parse below.
    if let Some(pos) = text.find("\"schema\": \"") {
        let stamp = text[pos + "\"schema\": \"".len()..]
            .split('"')
            .next()
            .unwrap_or("");
        if !READER_ACCEPTED_SCHEMAS.contains(&stamp) {
            return None;
        }
    }

    // Per measured size: cell count and the floor estimate (min over
    // cells) of driver and pooled wall time. The v2 additive top-level
    // sections (`"throughput"` fleet rollups, `"online"` epoch-monitor
    // rollups) are not per-instance records — they must never seed a
    // calibration group — so the loop skips each wholesale, tracking
    // brace depth from its opening line (none of the emitted string
    // values contain braces, so counting brace characters per line is
    // exact for documents this crate writes and safely lenient for
    // hand-edited ones).
    const ADDITIVE_SECTIONS: [&str; 2] = ["\"throughput\"", "\"online\""];
    let mut groups: Vec<(usize, usize, u128, u128)> = Vec::new();
    let mut skip_depth: i64 = 0;
    for line in text.lines() {
        let delta = line.matches('{').count() as i64 - line.matches('}').count() as i64;
        if skip_depth > 0 {
            skip_depth += delta;
            continue;
        }
        if ADDITIVE_SECTIONS.iter().any(|key| line.contains(key)) {
            // A one-line `"<key>": null` (or a complete object) ends
            // here; an opening line starts the skipped section.
            skip_depth = delta.max(0);
            continue;
        }
        let (Some(nodes), Some(driver), Some(pooled)) = (
            int_after(line, "\"nodes\": "),
            int_after(line, "\"driver\": {\"nanos\": "),
            int_after(line, "\"pooled\": {\"nanos\": "),
        ) else {
            continue;
        };
        let nodes = nodes as usize;
        match groups.iter_mut().find(|(n, ..)| *n == nodes) {
            Some(g) => {
                g.1 += 1;
                g.2 = g.2.min(driver);
                g.3 = g.3.min(pooled);
            }
            None => groups.push((nodes, 1, driver, pooled)),
        }
    }
    groups.retain(|&(_, cells, _, _)| cells >= CALIBRATION_MIN_CELLS);
    if groups.is_empty() {
        return None;
    }
    groups.sort_unstable_by_key(|&(n, ..)| n);

    // Walk sizes descending: the calibrated cutover is just above the
    // largest well-measured size where pooled still loses to the driver.
    let mut cutover = groups[0].0.min(64); // pooled wins everywhere measured
    for &(nodes, _, driver, pooled) in groups.iter().rev() {
        if (pooled as f64) > (driver as f64) * REGRESSION_TOLERANCE {
            cutover = nodes + 1;
            break;
        }
    }
    let cutover = cutover.clamp(64, 1 << 23);
    Some(CutoverCalibration {
        cutover,
        source: path.display().to_string(),
        groups: groups.len(),
    })
}

/// Calibrate from the working directory's best trajectory and install the
/// result as the live [`sequential_cutover`] (an `MMDIAG_CUTOVER` pin
/// still wins — `set_sequential_cutover` defers to it). Returns what was
/// installed, or `None` when offline (no trajectory): the compiled-in
/// default stays in force.
pub fn calibrate_cutover() -> Option<CutoverCalibration> {
    let mut cal = calibrate_cutover_in(std::path::Path::new("."))?;
    cal.cutover = mmdiag_core::set_sequential_cutover(cal.cutover);
    Some(cal)
}

/// Number of distinct family keys present in `records`.
pub fn families_covered(records: &[RunRecord]) -> usize {
    let mut fams: Vec<&str> = records.iter().map(|r| r.family).collect();
    fams.sort_unstable();
    fams.dedup();
    fams.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogs_cover_all_fourteen_families() {
        for catalog in [small_catalog(), full_catalog()] {
            let mut fams: Vec<&str> = catalog.iter().map(|i| i.family).collect();
            fams.sort_unstable();
            fams.dedup();
            assert_eq!(fams.len(), 14, "got {fams:?}");
        }
    }

    #[test]
    fn catalog_instances_satisfy_driver_preconditions() {
        for inst in full_catalog() {
            inst.graph
                .check_partition_preconditions()
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn large_catalog_reaches_1e5_nodes_and_certifies() {
        let catalog = large_catalog();
        assert!(catalog.iter().all(|i| i.driver_only));
        let big: Vec<&Instance> = catalog
            .iter()
            .filter(|i| i.graph.node_count() >= 100_000)
            .collect();
        assert!(
            big.len() >= 3,
            "need at least three 10^5+-node instances, got {}",
            big.len()
        );
        for inst in &catalog {
            inst.graph
                .check_partition_preconditions()
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn xlarge_catalog_reaches_1e6_nodes_without_materialising() {
        let guard = MaterialisationGuard::begin();
        let catalog = xlarge_catalog();
        assert!(catalog.iter().all(|i| i.scale && i.driver_only));
        let big = catalog
            .iter()
            .filter(|i| i.graph.node_count() >= 1_000_000)
            .count();
        assert!(
            big >= 3,
            "need at least three 10^6+-node instances, got {big}"
        );
        for inst in &catalog {
            inst.graph
                .check_partition_preconditions()
                .unwrap_or_else(|e| panic!("{e}"));
            assert!(inst.implicit);
        }
        // Constructing and validating the whole axis must not CSR anything.
        guard.assert_unchanged("xlarge catalog construction");
    }

    #[test]
    fn xxlarge_catalog_reaches_1e8_nodes_without_materialising() {
        let guard = MaterialisationGuard::begin();
        let catalog = xxlarge_catalog();
        assert!(catalog
            .iter()
            .all(|i| i.scale && i.driver_only && i.implicit));
        // The axis tops out at Q_27 and holds two 10⁸-node instances.
        assert_eq!(catalog.last().map(|i| i.graph.node_count()), Some(1 << 27));
        let big = catalog
            .iter()
            .filter(|i| i.graph.node_count() >= 100_000_000)
            .count();
        assert!(big >= 2, "need two 10^8-node instances, got {big}");
        for inst in &catalog {
            inst.graph
                .check_partition_preconditions()
                .unwrap_or_else(|e| panic!("{e}"));
        }
        guard.assert_unchanged("xxlarge catalog construction");
    }

    #[test]
    fn scale_cell_protocol_runs_and_stays_implicit() {
        // The --xlarge protocol on a debug-friendly implicit instance:
        // driver + auto + sampled checker, streaming syndrome, no
        // materialisation, no parallel/batch legs.
        let inst = Instance::implicit_scale("hypercube", Hypercube::new_certified(14));
        let faults = scatter_faults(1 << 14, 5, 77);
        let rec = run_scale_cell(&inst, faults.members(), TesterBehavior::Random { seed: 3 });
        assert!(rec.agree);
        assert!(rec.parallel.is_empty());
        assert!(rec.baseline.is_none() && rec.distsim.is_none());
        let sampled = rec.sampled.as_ref().expect("sampled leg present");
        assert!(sampled.agree && sampled.certificate_ok);
        assert_eq!(sampled.disagreements, 0);
        assert!(sampled.samples > 0 && sampled.checked_tests > 0);
        let json = to_json("BENCH_TEST", &[rec], &[], &[], None, None);
        assert!(json.contains("\"sampled_check\": {\"nanos\": "));
        assert!(json.contains("\"driver_only\": true"));
    }

    #[test]
    fn sweep_routes_scale_instances_through_the_slim_protocol() {
        let catalog = vec![
            Instance::new("hypercube", &Hypercube::new(7)),
            Instance::implicit_scale("hypercube", Hypercube::new_certified(14)),
        ];
        let (records, batches) = sweep(&catalog, true, &mut |_| {});
        // 5 regular cells + 2 scale cells; only the regular instance
        // submits a batch.
        assert_eq!(records.len(), 7);
        assert_eq!(batches.len(), 1);
        let scale: Vec<&RunRecord> = records.iter().filter(|r| r.nodes == 1 << 14).collect();
        assert_eq!(scale.len(), 2);
        assert!(scale
            .iter()
            .all(|r| r.sampled.as_ref().is_some_and(|c| c.agree)));
        assert!(scale.iter().any(|r| r.behavior == "AllZero"));
    }

    #[test]
    fn mid_size_implicit_cells_run_every_leg() {
        let inst = Instance::implicit("hypercube", Hypercube::new_certified(10));
        let faults = scatter_faults(1024, 4, 5);
        let rec = run_cell(&inst, &faults, TesterBehavior::Random { seed: 8 });
        assert!(rec.agree);
        assert!(
            rec.baseline.is_some(),
            "implicit mid-size cells keep the baseline"
        );
        assert!(rec.distsim.is_some(), "and the event simulator");
        assert!(
            rec.sampled.is_none(),
            "sampled checker is the driver-only fallback"
        );
    }

    #[test]
    fn cutover_calibration_reads_the_best_trajectory() {
        let dir = std::env::temp_dir().join(format!("mmdiag-cal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // An older file that must be ignored in favour of the newer one.
        std::fs::write(dir.join("BENCH_1.json"), "{}\n").unwrap();
        // A record line for one cell of a measured size.
        fn cell(nodes: usize, driver: u128, pooled: u128) -> String {
            format!(
                "    {{\"family\": \"h\", \"nodes\": {nodes}, \"driver\": {{\"nanos\": {driver}, \
                 \"lookups\": 1}}, \"pooled\": {{\"nanos\": {pooled}}}}},\n"
            )
        }
        // Three cells per size (the calibration quorum). Pooled loses at
        // 128 and 512, wins from 2048 up: cutover = 513. The 1 000 000
        // size has a single noisy cell where pooled loses badly — the
        // quorum rule must keep it from vetoing everything below.
        let mut body = String::from("{\"records\": [\n");
        for (nodes, driver, pooled) in [
            (128, 100, 500),
            (512, 400, 600),
            (2048, 2000, 1000),
            (8192, 9000, 3000),
        ] {
            for rep in 0..3u128 {
                body.push_str(&cell(nodes, driver + rep, pooled + rep));
            }
        }
        body.push_str(&cell(1_000_000, 1_000_000, 9_000_000));
        body.push_str("]}\n");
        std::fs::write(dir.join("BENCH_9.json"), body).unwrap();
        let cal = calibrate_cutover_in(&dir).expect("trajectory found");
        assert!(cal.source.ends_with("BENCH_9.json"));
        assert_eq!(cal.groups, 4, "the single-cell 1M size is excluded");
        assert_eq!(cal.cutover, 513);
        // Pooled winning everywhere clamps to the floor.
        let everywhere: String = (0..3).map(|r| cell(128, 100 + r, 90 + r)).collect();
        std::fs::write(dir.join("BENCH_10.json"), everywhere).unwrap();
        let cal = calibrate_cutover_in(&dir).unwrap();
        assert_eq!(cal.cutover, 64);
        // Only under-measured sizes: calibration declines entirely.
        std::fs::write(dir.join("BENCH_11.json"), cell(4096, 100, 900)).unwrap();
        assert!(calibrate_cutover_in(&dir).is_none());
        // No trajectory at all: same.
        let empty = dir.join("empty");
        std::fs::create_dir_all(&empty).unwrap();
        assert!(calibrate_cutover_in(&empty).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cutover_calibration_skips_the_throughput_section() {
        let dir = std::env::temp_dir().join(format!("mmdiag-tpcal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Three genuine cells at one size where pooled loses (cutover
        // must land just above 256), then an adversarial multi-line
        // "throughput" section whose lines carry decoy record keys. If
        // the reader ingested them it would see a second, pooled-winning
        // "size" at 999 nodes and a corrupted quorum.
        let mut body = String::from("{\"schema\": \"mmdiag-bench/v2\",\n\"records\": [\n");
        for rep in 0..3u128 {
            body.push_str(&format!(
                "    {{\"family\": \"h\", \"nodes\": 256, \"driver\": {{\"nanos\": {}, \
                 \"lookups\": 1}}, \"pooled\": {{\"nanos\": {}}}}},\n",
                100 + rep,
                900 + rep,
            ));
        }
        body.push_str("],\n");
        body.push_str("\"throughput\": {\n");
        for _ in 0..3 {
            body.push_str(
                "    {\"nodes\": 999, \"driver\": {\"nanos\": 5000}, \
                 \"pooled\": {\"nanos\": 1}},\n",
            );
        }
        body.push_str("    \"nested\": {\"deeper\": {\"nodes\": 999}}\n");
        body.push_str("}\n}\n");
        std::fs::write(dir.join("BENCH_8.json"), body).unwrap();
        let cal = calibrate_cutover_in(&dir).expect("the genuine records calibrate");
        assert_eq!(cal.groups, 1, "decoy throughput lines seed no groups");
        assert_eq!(cal.cutover, 257);
        // A document that is *only* a throughput section declines.
        std::fs::write(
            dir.join("BENCH_9.json"),
            "{\"throughput\": {\n    {\"nodes\": 64, \"driver\": {\"nanos\": 9}, \
             \"pooled\": {\"nanos\": 1}}\n}\n}\n",
        )
        .unwrap();
        assert!(calibrate_cutover_in(&dir).is_none());
        // The one-line `"throughput": null` form the writer emits when
        // the axis is off must not start a skip window.
        std::fs::write(
            dir.join("BENCH_10.json"),
            concat!(
                "{\n",
                "\"throughput\": null,\n",
                "    {\"nodes\": 512, \"driver\": {\"nanos\": 100, \"lookups\": 1}, \
                 \"pooled\": {\"nanos\": 900}},\n",
                "    {\"nodes\": 512, \"driver\": {\"nanos\": 101, \"lookups\": 1}, \
                 \"pooled\": {\"nanos\": 901}},\n",
                "    {\"nodes\": 512, \"driver\": {\"nanos\": 102, \"lookups\": 1}, \
                 \"pooled\": {\"nanos\": 902}}\n}\n",
            ),
        )
        .unwrap();
        let cal = calibrate_cutover_in(&dir).expect("records after the null still parse");
        assert_eq!(cal.cutover, 513);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cutover_calibration_skips_the_online_section() {
        let dir = std::env::temp_dir().join(format!("mmdiag-olcal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Genuine cells at one size, then an adversarial "online"
        // section whose family lines carry decoy v1 record keys
        // ("nodes"/"driver"/"pooled" — keys the real writer deliberately
        // never puts on online lines). If the reader ingested them it
        // would see a second, pooled-winning size at 777 nodes.
        let mut body = String::from("{\"schema\": \"mmdiag-bench/v2\",\n\"records\": [\n");
        for rep in 0..3u128 {
            body.push_str(&format!(
                "    {{\"family\": \"h\", \"nodes\": 128, \"driver\": {{\"nanos\": {}, \
                 \"lookups\": 1}}, \"pooled\": {{\"nanos\": {}}}}},\n",
                100 + rep,
                900 + rep,
            ));
        }
        body.push_str("],\n");
        body.push_str("\"online\": {\n");
        body.push_str("    \"families\": [\n");
        for _ in 0..3 {
            body.push_str(
                "    {\"nodes\": 777, \"driver\": {\"nanos\": 9000}, \
                 \"pooled\": {\"nanos\": 1}},\n",
            );
        }
        body.push_str("    ],\n");
        body.push_str("    \"nested\": {\"deeper\": {\"nodes\": 777}}\n");
        body.push_str("}\n}\n");
        std::fs::write(dir.join("BENCH_8.json"), body).unwrap();
        let cal = calibrate_cutover_in(&dir).expect("the genuine records calibrate");
        assert_eq!(cal.groups, 1, "decoy online lines seed no groups");
        assert_eq!(cal.cutover, 129);
        // The one-line `"online": null` form the writer emits when the
        // axis is off must not start a skip window either.
        std::fs::write(
            dir.join("BENCH_9.json"),
            concat!(
                "{\n",
                "\"online\": null\n",
                "    {\"nodes\": 512, \"driver\": {\"nanos\": 100, \"lookups\": 1}, \
                 \"pooled\": {\"nanos\": 900}},\n",
                "    {\"nodes\": 512, \"driver\": {\"nanos\": 101, \"lookups\": 1}, \
                 \"pooled\": {\"nanos\": 901}},\n",
                "    {\"nodes\": 512, \"driver\": {\"nanos\": 102, \"lookups\": 1}, \
                 \"pooled\": {\"nanos\": 902}}\n}\n",
            ),
        )
        .unwrap();
        let cal = calibrate_cutover_in(&dir).expect("records after the null still parse");
        assert_eq!(cal.cutover, 513);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn profiled_cell_emits_a_valid_chrome_trace() {
        let dir = std::env::temp_dir().join(format!("mmdiag-profile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = ProfileConfig {
            trace_dir: dir.clone(),
        };
        let inst = Instance::new("hypercube", &Hypercube::new(7));
        let faults = scatter_faults(128, 3, 9);
        let s = OracleSyndrome::new(faults.clone(), TesterBehavior::Random { seed: 9 });
        let leg = profile_cell(&inst, &s, faults.len(), "Random { seed: 9 }", &cfg, 0);
        assert!(leg.spans >= 3, "probe + certify + grow at minimum");
        assert_eq!(leg.dropped, 0);
        assert_eq!(
            leg.oracle_lookups,
            s.lookups(),
            "the metric and lookups() read the same cell"
        );
        assert_eq!(leg.tasks, leg.run_ns.count, "every pool task timed");
        let doc = std::fs::read_to_string(&leg.trace_file).unwrap();
        mmdiag_trace::export::validate_json(&doc).unwrap();
        assert!(doc.contains("\"ph\":\"X\""), "complete span events");
        assert!(doc.contains("mmdiag.metrics"), "trailing metrics event");
        assert!(doc.contains("oracle.lookups"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn profiled_sweep_attaches_legs_and_the_v2_profile_key() {
        let dir = std::env::temp_dir().join(format!("mmdiag-psweep-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let cfg = ProfileConfig {
            trace_dir: dir.clone(),
        };
        let catalog = vec![Instance::new("hypercube", &Hypercube::new(7))];
        let (records, _) = sweep_profiled(&catalog, true, Some(&cfg), &mut |_| {});
        assert!(!records.is_empty());
        for rec in &records {
            let leg = rec.profile.as_ref().expect("every cell profiled");
            assert!(leg.phases.probe_lookups > 0, "probe phase consults entries");
            assert!(std::path::Path::new(&leg.trace_file).is_file());
        }
        // One trace file per cell, embedded additively under "profile".
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), records.len());
        let json = to_json("BENCH_TEST", &records, &[], &[], None, None);
        assert!(json.contains("\"profile\": {\"trace_file\": "));
        assert!(json.contains("\"run_ns\": {\"count\": "));
        // The un-profiled sweep keeps the key as an explicit null.
        let (plain, _) = sweep(&catalog, true, &mut |_| {});
        let json = to_json("BENCH_TEST", &plain, &[], &[], None, None);
        assert!(json.contains("\"profile\": null"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_stem_is_filesystem_safe() {
        assert_eq!(file_stem("Q_17 (131072 nodes)"), "q-17-131072-nodes");
        assert_eq!(file_stem("Random { seed: 9 }"), "random-seed-9");
        assert_eq!(file_stem("AllZero"), "allzero");
    }

    #[test]
    fn scatter_is_exact_and_deterministic() {
        let a = scatter_faults(100, 7, 42);
        let b = scatter_faults(100, 7, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 7);
        let c = scatter_faults(100, 7, 43);
        assert_ne!(a, c, "different salts should differ");
    }

    #[test]
    fn fault_sizes_shape() {
        assert_eq!(fault_sizes(7), vec![0, 1, 3, 7]);
        assert_eq!(fault_sizes(1), vec![0, 1]);
        assert_eq!(fault_sizes(2), vec![0, 1, 2]);
    }

    #[test]
    fn run_cell_measures_and_agrees() {
        let inst = Instance::new("hypercube", &Hypercube::new(7));
        let faults = scatter_faults(128, 3, 9);
        let rec = run_cell(&inst, &faults, TesterBehavior::Random { seed: 5 });
        assert!(rec.agree);
        assert_eq!(rec.num_faults, 3);
        assert_eq!(rec.table_entries, 128 * 21);
        let base = rec.baseline.as_ref().expect("baseline leg present");
        assert_eq!(base.lookups, 128 * 21);
        assert!(
            rec.driver_lookups < base.lookups,
            "driver {} vs table {}",
            rec.driver_lookups,
            base.lookups
        );
        assert_eq!(rec.parallel.len(), THREAD_SWEEP.len());
        // Sub-cutover instance: auto must have taken the sequential path.
        assert_eq!(rec.auto.backend, "sequential");
        assert!(rec.pooled.nanos > 0 && rec.auto.nanos > 0);
        // The simulator leg agreed with both the cost model and the driver.
        let sim = rec.distsim.as_ref().expect("distsim leg present");
        assert!(sim.matches_model);
        assert!(sim.agree);
        assert_eq!(sim.probe_rounds, 4, "Q_4 subcube eccentricity");
        assert_eq!(sim.probe_messages, 8 * 16 * 4);
    }

    #[test]
    fn driver_only_cell_skips_baseline_and_distsim() {
        // Q_10 needs 32-node parts: the default 16-node subcubes top out
        // at 8 probe-tree internal nodes, below the fault bound 10 (the
        // same capacity phenomenon Q^3_11 hits in `large_catalog`).
        let inst = Instance::driver_only("hypercube", &Hypercube::with_partition_dim(10, 5));
        let faults = scatter_faults(1024, 4, 11);
        let rec = run_cell(&inst, &faults, TesterBehavior::Random { seed: 2 });
        assert!(rec.agree);
        assert!(rec.baseline.is_none());
        assert!(rec.distsim.is_none());
        // 1024 nodes sits at the cutover: auto goes pooled here.
        assert_eq!(rec.auto.backend, "pooled");
        let json = to_json("BENCH_TEST", &[rec], &[], &[], None, None);
        assert!(json.contains("\"baseline\": null"));
        assert!(json.contains("\"distsim\": null"));
        assert!(json.contains("\"driver_only\": true"));
        // v2: driver-only cells carry the sampled session verdict.
        assert!(json.contains("\"verification\": {\"method\": \"sampled\""));
    }

    #[test]
    fn v1_cutover_reader_parses_v2_records() {
        // The calibration reader is line-oriented over the `"nodes"` /
        // `"driver": {"nanos"` / `"pooled": {"nanos"` keys, which v2
        // preserves verbatim — a v2 trajectory must calibrate exactly like
        // a v1 one.
        let dir = std::env::temp_dir().join(format!("mmdiag-v2cal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let inst = Instance::new("hypercube", &Hypercube::new(7));
        let recs: Vec<RunRecord> = (0..CALIBRATION_MIN_CELLS)
            .map(|i| {
                run_cell(
                    &inst,
                    &scatter_faults(128, 2, i as u64),
                    TesterBehavior::AllZero,
                )
            })
            .collect();
        let json = to_json("BENCH_12", &recs, &[], &[], None, None);
        assert!(json.contains("\"schema\": \"mmdiag-bench/v2\""));
        std::fs::write(dir.join("BENCH_12.json"), &json).unwrap();
        let cal = calibrate_cutover_in(&dir).expect("v2 trajectory parses");
        assert_eq!(cal.groups, 1);
        assert!(cal.source.ends_with("BENCH_12.json"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quick_sweep_skips_baseline_on_largest_instance_per_family() {
        // A two-size single-family catalog: quick mode must keep the
        // baseline on the small instance and skip it on the large one.
        let catalog = vec![
            Instance::new("hypercube", &Hypercube::new(7)),
            Instance::new("hypercube", &Hypercube::new(8)),
        ];
        let (records, batches) = sweep(&catalog, true, &mut |_| {});
        for rec in &records {
            let skipped = rec.nodes == 256;
            assert_eq!(
                rec.baseline.is_none(),
                skipped,
                "{}: baseline skip must target only the largest instance",
                rec.instance
            );
            assert!(rec.agree);
        }
        assert_eq!(batches.len(), 2);
        assert!(batches.iter().all(|b| b.agree && b.cells == 5));
        // Skipped cells render null ratios, never a misleading 0.000.
        let json = to_json("BENCH_TEST", &records, &batches, &[], None, None);
        assert!(json.contains("\"speedup_vs_baseline\": null"));
        assert!(!json.contains("\"speedup_vs_baseline\": 0.000"));
        // Full mode never skips.
        let (records, _) = sweep(&catalog, false, &mut |_| {});
        assert!(records.iter().all(|r| r.baseline.is_some()));
    }

    #[test]
    fn scenarios_cover_skew_and_injection() {
        let catalog = vec![
            Instance::new("hypercube", &Hypercube::new(7)),
            Instance::driver_only("hypercube", &Hypercube::new(10)),
        ];
        let scenarios = distsim_scenarios(&catalog);
        // The driver-only instance contributes no scenario cells.
        assert_eq!(scenarios.len(), 2);
        assert_eq!(scenarios[0].kind, "latency_skew");
        assert!(scenarios[0].virtual_time > scenarios[0].unit_virtual_time);
        assert_eq!(scenarios[1].kind, "mid_injection");
        assert_eq!(scenarios[1].diagnosed, scenarios[1].final_faults);
        assert!(scenarios.iter().all(|s| s.ok));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let inst = Instance::new("hypercube", &Hypercube::new(7));
        let rec = run_cell(&inst, &scatter_faults(128, 1, 3), TesterBehavior::AllZero);
        let scenarios = distsim_scenarios(&[inst]);
        let batch = BatchRecord {
            family: "hypercube",
            instance: "Q_7".into(),
            cells: 5,
            seq_nanos: 10,
            pooled_nanos: 8,
            agree: true,
        };
        let json = to_json("BENCH_TEST", &[rec], &[batch], &scenarios, None, None);
        // Balanced braces/brackets and the fields the trajectory reader keys on.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for needle in [
            "\"schema\": \"mmdiag-bench/v2\"",
            "\"bench_id\": \"BENCH_TEST\"",
            "\"phases\": {\"probe_nanos\": ",
            "\"verification\": {\"method\": \"full_baseline\"",
            "\"exec\": {\"pool_threads\": ",
            "\"families_covered\": 1",
            "\"driver\"",
            "\"pooled\"",
            "\"auto\"",
            "\"no_regression\": true",
            "\"baseline\"",
            "\"distsim\"",
            "\"matches_model\": true",
            "\"batch_submissions\"",
            "\"distsim_scenarios\"",
            "\"latency_skew\"",
            "\"mid_injection\"",
            "\"agree\": true",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn json_escaping() {
        assert_eq!(super::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
