//! # mmdiag-bench
//!
//! Benchmark harness for the `O(Δ·N)` diagnosis driver: sweeps all fourteen
//! interconnection-network families of §5 across multiple sizes and fault
//! loads, runs the sequential driver, the parallel driver (1/2/4/8 threads),
//! the naive full-table baseline **and the event-level distributed
//! simulator** on identical instances, asserts all four agree with the
//! planted truth, and renders the measurements as a machine-readable JSON
//! trajectory file (`BENCH_<pr>.json`).
//!
//! The interesting measured quantity besides wall time is **syndrome
//! lookups**: the §6 claim is that the driver consults `O(Δ·N)` entries
//! while any table-first algorithm pays for all `Σ C(deg u, 2)` of them.
//! Both counts come from the same [`mmdiag_syndrome::SyndromeSource`]
//! accounting, so the comparison is apples-to-apples.
//!
//! The distsim leg additionally checks, per cell, that the simulator's
//! observed (rounds, messages) under unit latencies reproduce the
//! closed-form `mmdiag_distsim::plan` cost model exactly; the separate
//! [`distsim_scenarios`] sweep exercises the regimes only the simulator
//! can express — latency skew and mid-protocol fault injection.
//!
//! Criterion is not available in the offline build environment; the
//! `benches/sweep.rs` target (`harness = false`) and the `mmdiag-bench`
//! binary both drive the sweep below with plain wall-clock timing.

#![warn(missing_docs)]

use mmdiag_baselines::diagnose_baseline;
use mmdiag_core::{diagnose, diagnose_parallel};
use mmdiag_distsim::{plan, simulate, FaultTimeline, LatencyModel};
use mmdiag_syndrome::{FaultSet, OracleSyndrome, SyndromeSource, TesterBehavior};
use mmdiag_topology::families::{
    Arrangement, AugmentedCube, AugmentedKAryNCube, CrossedCube, EnhancedHypercube,
    FoldedHypercube, Hypercube, KAryNCube, NKStar, Pancake, ShuffleCube, StarGraph, TwistedCube,
    TwistedNCube,
};
use mmdiag_topology::{Cached, Partitionable, Topology};
use std::time::Instant;

/// Thread counts exercised by the parallel-driver leg of every run.
pub const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// A named, materialised benchmark instance.
pub struct Instance {
    /// Family key (stable across sizes, e.g. `"hypercube"`).
    pub family: &'static str,
    /// The materialised topology (CSR adjacency + cached part labels).
    pub graph: Cached,
}

impl Instance {
    fn new<T: Partitionable + ?Sized>(family: &'static str, g: &T) -> Self {
        Instance {
            family,
            graph: Cached::new(g),
        }
    }
}

/// One smallest valid instance per family — the quick sweep used by tests
/// and the `cargo bench` smoke target.
pub fn small_catalog() -> Vec<Instance> {
    vec![
        Instance::new("hypercube", &Hypercube::new(7)),
        Instance::new("crossed_cube", &CrossedCube::new(7)),
        Instance::new("twisted_cube", &TwistedCube::new(7)),
        Instance::new("twisted_n_cube", &TwistedNCube::new(7)),
        Instance::new("folded_hypercube", &FoldedHypercube::new(8)),
        Instance::new("enhanced_hypercube", &EnhancedHypercube::new(8, 3)),
        Instance::new("augmented_cube", &AugmentedCube::new(10)),
        Instance::new("shuffle_cube", &ShuffleCube::new(10)),
        Instance::new("kary", &KAryNCube::new(4, 4)),
        Instance::new("augmented_kary", &AugmentedKAryNCube::new(4, 4)),
        Instance::new("star", &StarGraph::new(6)),
        Instance::new("nk_star", &NKStar::new(6, 3)),
        Instance::new("pancake", &Pancake::new(6)),
        Instance::new("arrangement", &Arrangement::new(6, 3)),
    ]
}

/// The full sweep: every family at the sizes of [`small_catalog`] plus at
/// least one larger size where the next valid parameterisation stays below
/// ~5k nodes.
pub fn full_catalog() -> Vec<Instance> {
    let mut v = small_catalog();
    v.extend([
        Instance::new("hypercube", &Hypercube::new(8)),
        Instance::new("crossed_cube", &CrossedCube::new(8)),
        Instance::new("twisted_cube", &TwistedCube::new(8)),
        Instance::new("twisted_n_cube", &TwistedNCube::new(8)),
        Instance::new("folded_hypercube", &FoldedHypercube::new(9)),
        Instance::new("enhanced_hypercube", &EnhancedHypercube::new(9, 3)),
        Instance::new("kary", &KAryNCube::new(3, 6)),
        Instance::new("star", &StarGraph::new(7)),
        Instance::new("nk_star", &NKStar::new(7, 3)),
        Instance::new("pancake", &Pancake::new(7)),
        Instance::new("arrangement", &Arrangement::new(7, 3)),
    ]);
    v
}

/// Wall time and lookup count of one parallel-driver leg.
#[derive(Clone, Debug)]
pub struct ParallelLeg {
    /// Worker-thread count requested.
    pub threads: usize,
    /// Wall time in nanoseconds.
    pub nanos: u128,
}

/// The event-level simulator's unit-latency leg of one cell.
#[derive(Clone, Debug)]
pub struct DistsimLeg {
    /// Wall time of the simulation (ns).
    pub nanos: u128,
    /// Concurrent probe-phase wave depth (max over parts).
    pub probe_rounds: usize,
    /// Total probe-phase exchanges across all parts.
    pub probe_messages: usize,
    /// Growth-wave depth.
    pub growth_rounds: usize,
    /// Virtual time the whole protocol took.
    pub virtual_time: u64,
    /// Messages the event engine delivered.
    pub events: u64,
    /// Observed (rounds, messages) equal the `plan` cost model per part.
    pub matches_model: bool,
    /// Simulated diagnosis equals the driver's (faults + certified part).
    pub agree: bool,
}

/// All measurements for one (instance, fault set, behavior) cell.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Family key.
    pub family: &'static str,
    /// Instance display name (`Topology::name`).
    pub instance: String,
    /// `N`.
    pub nodes: usize,
    /// `Δ`.
    pub max_degree: usize,
    /// Parts in the §5 decomposition.
    pub parts: usize,
    /// The driver's fault bound for this instance.
    pub fault_bound: usize,
    /// Planted fault count.
    pub num_faults: usize,
    /// Faulty-tester behaviour label.
    pub behavior: String,
    /// Full syndrome table size `Σ C(deg u, 2)` — the baseline's lookup bill.
    pub table_entries: u64,
    /// Sequential driver wall time (ns).
    pub driver_nanos: u128,
    /// Sequential driver syndrome lookups.
    pub driver_lookups: u64,
    /// Restricted probes the driver ran before certifying.
    pub driver_probes: usize,
    /// Parallel-driver legs, one per [`THREAD_SWEEP`] entry.
    pub parallel: Vec<ParallelLeg>,
    /// Baseline wall time (ns); 0 when the baseline was skipped.
    pub baseline_nanos: u128,
    /// Baseline syndrome lookups (always `table_entries`); 0 when skipped.
    pub baseline_lookups: u64,
    /// Was the baseline leg skipped (quick mode, largest instance per
    /// family — the full table there dominates CI wall time)?
    pub baseline_skipped: bool,
    /// The event-level simulator's leg (unit latencies, static faults).
    pub distsim: DistsimLeg,
    /// Did driver, parallel driver, baseline (unless skipped) and the
    /// event simulator all return the planted set?
    pub agree: bool,
}

/// Fault sizes exercised per instance: empty, singleton, half bound, full
/// bound (deduplicated, ascending).
pub fn fault_sizes(bound: usize) -> Vec<usize> {
    let mut v = vec![0, 1, bound / 2, bound];
    v.sort_unstable();
    v.dedup();
    v
}

/// Deterministically scatter `count` faults over `0..n` — SplitMix64-style
/// index hopping, no RNG dependency in the harness crate.
pub fn scatter_faults(n: usize, count: usize, salt: u64) -> FaultSet {
    assert!(count <= n, "cannot scatter {count} faults over {n} nodes");
    let mut picked = vec![false; n];
    let mut members = Vec::with_capacity(count);
    let mut x = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03;
    while members.len() < count {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let idx = ((z ^ (z >> 31)) % n as u64) as usize;
        if !picked[idx] {
            picked[idx] = true;
            members.push(idx);
        }
    }
    FaultSet::new(n, &members)
}

/// `Σ_u C(deg u, 2)` — the size of the full syndrome table.
pub fn table_size<T: Topology + ?Sized>(g: &T) -> u64 {
    (0..g.node_count())
        .map(|u| {
            let d = g.degree(u) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum()
}

/// Run one (instance, fault count, behavior) cell: sequential driver,
/// parallel driver at every [`THREAD_SWEEP`] width, baseline, event-level
/// simulator; panic if any of them disagrees with the planted truth.
pub fn run_cell(inst: &Instance, faults: &FaultSet, behavior: TesterBehavior) -> RunRecord {
    run_cell_opts(inst, faults, behavior, true)
}

/// [`run_cell`] with the baseline leg optional — quick mode skips it on
/// the largest instance per family, where the full syndrome table
/// dominates CI wall time.
pub fn run_cell_opts(
    inst: &Instance,
    faults: &FaultSet,
    behavior: TesterBehavior,
    with_baseline: bool,
) -> RunRecord {
    let g = &inst.graph;
    let s = OracleSyndrome::new(faults.clone(), behavior);

    let t0 = Instant::now();
    let drv = diagnose(g, &s).unwrap_or_else(|e| panic!("{}: driver failed: {e}", g.name()));
    let driver_nanos = t0.elapsed().as_nanos();
    assert_eq!(
        drv.faults,
        faults.members(),
        "{}: driver missed the planted set",
        g.name()
    );

    let mut parallel = Vec::with_capacity(THREAD_SWEEP.len());
    let mut par_agree = true;
    for threads in THREAD_SWEEP {
        let t0 = Instant::now();
        let par = diagnose_parallel(g, &s, threads)
            .unwrap_or_else(|e| panic!("{}: parallel driver failed: {e}", g.name()));
        parallel.push(ParallelLeg {
            threads,
            nanos: t0.elapsed().as_nanos(),
        });
        par_agree &= par.faults == drv.faults && par.certified_part == drv.certified_part;
    }

    // Event-level simulator leg: unit latencies, static timeline — the
    // regime where observation must reproduce both the cost model and the
    // driver exactly.
    let timeline = FaultTimeline::static_faults(faults.clone(), behavior);
    let t0 = Instant::now();
    let sim = simulate(g, &timeline, &LatencyModel::Unit)
        .unwrap_or_else(|e| panic!("{}: distsim failed: {e}", g.name()));
    let sim_nanos = t0.elapsed().as_nanos();
    let model = plan(g);
    let matches_model = match sim.check_against_plan(&model) {
        Ok(()) => true,
        Err(e) => panic!("{}: simulator diverged from cost model: {e}", g.name()),
    };
    let sim_agree = sim.faults == drv.faults
        && sim.certified_part == drv.certified_part
        && sim.probes_until_certificate == drv.probes;
    assert!(sim_agree, "{}: simulator/driver disagree", g.name());
    let distsim = DistsimLeg {
        nanos: sim_nanos,
        probe_rounds: sim.probes.iter().map(|p| p.rounds).max().unwrap_or(0),
        probe_messages: sim.probes.iter().map(|p| p.messages).sum(),
        growth_rounds: sim.growth.rounds,
        virtual_time: sim.total_time,
        events: sim.events_delivered,
        matches_model,
        agree: sim_agree,
    };

    let (baseline_nanos, baseline_lookups, base_agree) = if with_baseline {
        s.reset_lookups();
        let t0 = Instant::now();
        let base = diagnose_baseline(g, &s)
            .unwrap_or_else(|e| panic!("{}: baseline failed: {e}", g.name()));
        (
            t0.elapsed().as_nanos(),
            base.lookups_used,
            base.faults == drv.faults,
        )
    } else {
        (0, 0, true)
    };
    let agree = par_agree && base_agree && sim_agree;
    assert!(agree, "{}: driver/parallel/baseline/sim disagree", g.name());

    RunRecord {
        family: inst.family,
        instance: g.name(),
        nodes: g.node_count(),
        max_degree: g.max_degree(),
        parts: g.part_count(),
        fault_bound: g.driver_fault_bound(),
        num_faults: faults.len(),
        behavior: format!("{behavior:?}"),
        table_entries: table_size(g),
        driver_nanos,
        driver_lookups: drv.lookups_used,
        driver_probes: drv.probes,
        parallel,
        baseline_nanos,
        baseline_lookups,
        baseline_skipped: !with_baseline,
        distsim,
        agree,
    }
}

/// Sweep a catalog: for every instance, every [`fault_sizes`] load under a
/// seeded `Random` tester behaviour, plus the full-bound load under the
/// adversarial `AllZero` behaviour. In `quick` mode the baseline leg is
/// skipped on the largest instance of each family, keeping the CI smoke
/// run well under ~10 s.
pub fn sweep(
    catalog: &[Instance],
    quick: bool,
    progress: &mut dyn FnMut(&RunRecord),
) -> Vec<RunRecord> {
    // Largest node count per family — the baseline-skip set in quick mode.
    let mut family_max: Vec<(&'static str, usize)> = Vec::new();
    for inst in catalog {
        let n = inst.graph.node_count();
        match family_max.iter_mut().find(|(f, _)| *f == inst.family) {
            Some(entry) => entry.1 = entry.1.max(n),
            None => family_max.push((inst.family, n)),
        }
    }
    let mut records = Vec::new();
    for (i, inst) in catalog.iter().enumerate() {
        let g = &inst.graph;
        g.check_partition_preconditions()
            .unwrap_or_else(|e| panic!("catalog instance unusable: {e}"));
        let is_family_largest = family_max
            .iter()
            .any(|&(f, n)| f == inst.family && n == g.node_count());
        let with_baseline = !(quick && is_family_largest);
        let bound = g.driver_fault_bound();
        for (j, &k) in fault_sizes(bound).iter().enumerate() {
            let salt = (i as u64) << 16 | j as u64;
            let faults = scatter_faults(g.node_count(), k, salt);
            let rec = run_cell_opts(
                inst,
                &faults,
                TesterBehavior::Random { seed: salt },
                with_baseline,
            );
            progress(&rec);
            records.push(rec);
        }
        let faults = scatter_faults(g.node_count(), bound, 0xA110_0000 + i as u64);
        let rec = run_cell_opts(inst, &faults, TesterBehavior::AllZero, with_baseline);
        progress(&rec);
        records.push(rec);
    }
    records
}

/// One simulator-only scenario — a regime the closed-form cost model (and
/// the centralised driver) cannot express.
#[derive(Clone, Debug)]
pub struct ScenarioRecord {
    /// Family key.
    pub family: &'static str,
    /// Instance display name.
    pub instance: String,
    /// `"latency_skew"` or `"mid_injection"`.
    pub kind: &'static str,
    /// Human-readable scenario parameters.
    pub detail: String,
    /// Virtual completion time of the unit-latency reference run.
    pub unit_virtual_time: u64,
    /// Virtual completion time of the scenario run.
    pub virtual_time: u64,
    /// Deepest observed wave (probe or growth) in the scenario run.
    pub max_wave_depth: usize,
    /// Deepest wave the unit-latency cost model predicts.
    pub model_wave_depth: usize,
    /// Faults the scenario run diagnosed.
    pub diagnosed: usize,
    /// Faults in force once the timeline finished.
    pub final_faults: usize,
    /// Did the scenario behave as the regime predicts (see
    /// [`distsim_scenarios`])?
    pub ok: bool,
}

/// Run the simulator-only sweep: per instance, one latency-skew scenario
/// (seeded-random link latencies; the diagnosis must not change, virtual
/// time must stretch) and one mid-protocol injection scenario (a healthy
/// node turns faulty after the probe phase; the diagnosis must pick it up
/// even though every probe certified without it).
pub fn distsim_scenarios(catalog: &[Instance]) -> Vec<ScenarioRecord> {
    let mut out = Vec::new();
    for (i, inst) in catalog.iter().enumerate() {
        let g = &inst.graph;
        let n = g.node_count();
        let bound = g.driver_fault_bound();
        let model = plan(g);
        let model_wave_depth = model.probe_rounds_concurrent.max(model.growth_rounds_worst);

        // --- Latency skew: same static faults, jittered links.
        let faults = scatter_faults(n, bound, 0x5CE_0000 + i as u64);
        let behavior = TesterBehavior::Random { seed: i as u64 };
        let timeline = FaultTimeline::static_faults(faults.clone(), behavior);
        let unit = simulate(g, &timeline, &LatencyModel::Unit)
            .unwrap_or_else(|e| panic!("{}: unit sim failed: {e}", g.name()));
        let skew = LatencyModel::SeededRandom {
            seed: 0xBEEF + i as u64,
            min: 1,
            max: 8,
        };
        let skewed = simulate(g, &timeline, &skew)
            .unwrap_or_else(|e| panic!("{}: skewed sim failed: {e}", g.name()));
        let skew_ok = skewed.faults == faults.members()
            && skewed.faults == unit.faults
            && skewed.total_time > unit.total_time;
        assert!(skew_ok, "{}: latency skew changed the diagnosis", g.name());
        out.push(ScenarioRecord {
            family: inst.family,
            instance: g.name(),
            kind: "latency_skew",
            detail: format!("seeded-random link latencies 1..=8, {} faults", bound),
            unit_virtual_time: unit.total_time,
            virtual_time: skewed.total_time,
            max_wave_depth: skewed
                .probes
                .iter()
                .map(|p| p.rounds)
                .max()
                .unwrap_or(0)
                .max(skewed.growth.rounds),
            model_wave_depth,
            diagnosed: skewed.faults.len(),
            final_faults: faults.len(),
            ok: skew_ok,
        });

        // --- Mid-protocol injection: base load below the bound, one
        // healthy victim turns faulty right after the probe phase.
        let base_load = bound.saturating_sub(1) / 2;
        let base = scatter_faults(n, base_load, 0x1EC7_0000 + i as u64);
        let victim = (0..n)
            .find(|&u| !base.contains(u) && (0..g.part_count()).all(|p| g.representative(p) != u))
            .expect("some non-representative healthy node exists");
        let onset = unit.growth.started + 1;
        let inj_timeline = FaultTimeline::with_onsets(base.clone(), &[(onset, victim)], behavior);
        let injected = simulate(g, &inj_timeline, &LatencyModel::Unit)
            .unwrap_or_else(|e| panic!("{}: injection sim failed: {e}", g.name()));
        let expected: Vec<usize> = inj_timeline.final_faults().members().to_vec();
        let inj_ok = injected.faults == expected;
        assert!(
            inj_ok,
            "{}: mid-protocol injection not diagnosed: got {:?}, want {expected:?}",
            g.name(),
            injected.faults
        );
        out.push(ScenarioRecord {
            family: inst.family,
            instance: g.name(),
            kind: "mid_injection",
            detail: format!(
                "{base_load} base faults, node {victim} turns faulty at t={onset} \
                 (after all probes certified)"
            ),
            unit_virtual_time: unit.total_time,
            virtual_time: injected.total_time,
            max_wave_depth: injected
                .probes
                .iter()
                .map(|p| p.rounds)
                .max()
                .unwrap_or(0)
                .max(injected.growth.rounds),
            model_wave_depth,
            diagnosed: injected.faults.len(),
            final_faults: expected.len(),
            ok: inj_ok,
        });
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render records as the `BENCH_<pr>.json` trajectory document
/// (`mmdiag-bench/v1` schema; the per-record `distsim` object, the
/// `baseline.skipped` flag and the top-level `distsim_scenarios` array are
/// additive fields — v1 readers keying on the original fields are
/// unaffected).
///
/// Hand-rolled serialisation — serde is not available offline, and the
/// schema is flat enough that this stays readable.
pub fn to_json(bench_id: &str, records: &[RunRecord], scenarios: &[ScenarioRecord]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"mmdiag-bench/v1\",\n");
    out.push_str(&format!("  \"bench_id\": \"{}\",\n", json_escape(bench_id)));
    out.push_str(&format!(
        "  \"thread_sweep\": [{}],\n",
        THREAD_SWEEP.map(|t| t.to_string()).join(", ")
    ));
    out.push_str(&format!("  \"record_count\": {},\n", records.len()));
    out.push_str(&format!(
        "  \"families_covered\": {},\n",
        families_covered(records)
    ));
    out.push_str("  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        let par: Vec<String> = r
            .parallel
            .iter()
            .map(|leg| format!("{{\"threads\": {}, \"nanos\": {}}}", leg.threads, leg.nanos))
            .collect();
        // Skipped-baseline cells get JSON nulls, not a misleading 0.000 —
        // trajectory readers averaging speedups across BENCH_<pr>.json
        // files must not silently ingest zeros.
        let (speedup_vs_baseline, lookup_ratio) = if r.baseline_skipped {
            ("null".to_string(), "null".to_string())
        } else {
            (
                format!(
                    "{:.3}",
                    r.baseline_nanos as f64 / r.driver_nanos.max(1) as f64
                ),
                format!(
                    "{:.3}",
                    r.baseline_lookups as f64 / r.driver_lookups.max(1) as f64
                ),
            )
        };
        out.push_str(&format!(
            concat!(
                "    {{\"family\": \"{}\", \"instance\": \"{}\", \"nodes\": {}, ",
                "\"max_degree\": {}, \"parts\": {}, \"fault_bound\": {}, ",
                "\"num_faults\": {}, \"behavior\": \"{}\", \"table_entries\": {}, ",
                "\"driver\": {{\"nanos\": {}, \"lookups\": {}, \"probes\": {}}}, ",
                "\"parallel\": [{}], ",
                "\"baseline\": {{\"nanos\": {}, \"lookups\": {}, \"skipped\": {}}}, ",
                "\"distsim\": {{\"nanos\": {}, \"probe_rounds\": {}, ",
                "\"probe_messages\": {}, \"growth_rounds\": {}, ",
                "\"virtual_time\": {}, \"events\": {}, \"matches_model\": {}, ",
                "\"agree\": {}}}, ",
                "\"speedup_vs_baseline\": {}, \"lookup_ratio\": {}, ",
                "\"agree\": {}}}{}\n"
            ),
            json_escape(r.family),
            json_escape(&r.instance),
            r.nodes,
            r.max_degree,
            r.parts,
            r.fault_bound,
            r.num_faults,
            json_escape(&r.behavior),
            r.table_entries,
            r.driver_nanos,
            r.driver_lookups,
            r.driver_probes,
            par.join(", "),
            r.baseline_nanos,
            r.baseline_lookups,
            r.baseline_skipped,
            r.distsim.nanos,
            r.distsim.probe_rounds,
            r.distsim.probe_messages,
            r.distsim.growth_rounds,
            r.distsim.virtual_time,
            r.distsim.events,
            r.distsim.matches_model,
            r.distsim.agree,
            speedup_vs_baseline,
            lookup_ratio,
            r.agree,
            if i + 1 == records.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"distsim_scenarios\": [\n");
    for (i, s) in scenarios.iter().enumerate() {
        out.push_str(&format!(
            concat!(
                "    {{\"family\": \"{}\", \"instance\": \"{}\", \"kind\": \"{}\", ",
                "\"detail\": \"{}\", \"unit_virtual_time\": {}, \"virtual_time\": {}, ",
                "\"max_wave_depth\": {}, \"model_wave_depth\": {}, ",
                "\"diagnosed\": {}, \"final_faults\": {}, \"ok\": {}}}{}\n"
            ),
            json_escape(s.family),
            json_escape(&s.instance),
            json_escape(s.kind),
            json_escape(&s.detail),
            s.unit_virtual_time,
            s.virtual_time,
            s.max_wave_depth,
            s.model_wave_depth,
            s.diagnosed,
            s.final_faults,
            s.ok,
            if i + 1 == scenarios.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Number of distinct family keys present in `records`.
pub fn families_covered(records: &[RunRecord]) -> usize {
    let mut fams: Vec<&str> = records.iter().map(|r| r.family).collect();
    fams.sort_unstable();
    fams.dedup();
    fams.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogs_cover_all_fourteen_families() {
        for catalog in [small_catalog(), full_catalog()] {
            let mut fams: Vec<&str> = catalog.iter().map(|i| i.family).collect();
            fams.sort_unstable();
            fams.dedup();
            assert_eq!(fams.len(), 14, "got {fams:?}");
        }
    }

    #[test]
    fn catalog_instances_satisfy_driver_preconditions() {
        for inst in full_catalog() {
            inst.graph
                .check_partition_preconditions()
                .unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn scatter_is_exact_and_deterministic() {
        let a = scatter_faults(100, 7, 42);
        let b = scatter_faults(100, 7, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 7);
        let c = scatter_faults(100, 7, 43);
        assert_ne!(a, c, "different salts should differ");
    }

    #[test]
    fn fault_sizes_shape() {
        assert_eq!(fault_sizes(7), vec![0, 1, 3, 7]);
        assert_eq!(fault_sizes(1), vec![0, 1]);
        assert_eq!(fault_sizes(2), vec![0, 1, 2]);
    }

    #[test]
    fn run_cell_measures_and_agrees() {
        let inst = Instance::new("hypercube", &Hypercube::new(7));
        let faults = scatter_faults(128, 3, 9);
        let rec = run_cell(&inst, &faults, TesterBehavior::Random { seed: 5 });
        assert!(rec.agree);
        assert_eq!(rec.num_faults, 3);
        assert_eq!(rec.table_entries, 128 * 21);
        assert_eq!(rec.baseline_lookups, 128 * 21);
        assert!(!rec.baseline_skipped);
        assert!(
            rec.driver_lookups < rec.baseline_lookups,
            "driver {} vs table {}",
            rec.driver_lookups,
            rec.baseline_lookups
        );
        assert_eq!(rec.parallel.len(), THREAD_SWEEP.len());
        // The simulator leg agreed with both the cost model and the driver.
        assert!(rec.distsim.matches_model);
        assert!(rec.distsim.agree);
        assert_eq!(rec.distsim.probe_rounds, 4, "Q_4 subcube eccentricity");
        assert_eq!(rec.distsim.probe_messages, 8 * 16 * 4);
    }

    #[test]
    fn quick_sweep_skips_baseline_on_largest_instance_per_family() {
        // A two-size single-family catalog: quick mode must keep the
        // baseline on the small instance and skip it on the large one.
        let catalog = vec![
            Instance::new("hypercube", &Hypercube::new(7)),
            Instance::new("hypercube", &Hypercube::new(8)),
        ];
        let records = sweep(&catalog, true, &mut |_| {});
        for rec in &records {
            let skipped = rec.nodes == 256;
            assert_eq!(
                rec.baseline_skipped, skipped,
                "{}: baseline skip must target only the largest instance",
                rec.instance
            );
            assert_eq!(rec.baseline_lookups == 0, skipped);
            assert!(rec.agree);
        }
        // Skipped cells render null ratios, never a misleading 0.000.
        let json = to_json("BENCH_TEST", &records, &[]);
        assert!(json.contains("\"speedup_vs_baseline\": null"));
        assert!(!json.contains("\"speedup_vs_baseline\": 0.000"));
        // Full mode never skips.
        let records = sweep(&catalog, false, &mut |_| {});
        assert!(records.iter().all(|r| !r.baseline_skipped));
    }

    #[test]
    fn scenarios_cover_skew_and_injection() {
        let catalog = vec![Instance::new("hypercube", &Hypercube::new(7))];
        let scenarios = distsim_scenarios(&catalog);
        assert_eq!(scenarios.len(), 2);
        assert_eq!(scenarios[0].kind, "latency_skew");
        assert!(scenarios[0].virtual_time > scenarios[0].unit_virtual_time);
        assert_eq!(scenarios[1].kind, "mid_injection");
        assert_eq!(scenarios[1].diagnosed, scenarios[1].final_faults);
        assert!(scenarios.iter().all(|s| s.ok));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let inst = Instance::new("hypercube", &Hypercube::new(7));
        let rec = run_cell(&inst, &scatter_faults(128, 1, 3), TesterBehavior::AllZero);
        let scenarios = distsim_scenarios(&[inst]);
        let json = to_json("BENCH_TEST", &[rec], &scenarios);
        // Balanced braces/brackets and the fields the trajectory reader keys on.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for needle in [
            "\"schema\": \"mmdiag-bench/v1\"",
            "\"bench_id\": \"BENCH_TEST\"",
            "\"families_covered\": 1",
            "\"driver\"",
            "\"baseline\"",
            "\"distsim\"",
            "\"matches_model\": true",
            "\"distsim_scenarios\"",
            "\"latency_skew\"",
            "\"mid_injection\"",
            "\"agree\": true",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn json_escaping() {
        assert_eq!(super::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
