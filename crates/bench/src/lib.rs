//! Criterion bench harness crate. See `benches/`.
