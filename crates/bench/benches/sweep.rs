//! `cargo bench -p mmdiag-bench` smoke target.
//!
//! Criterion is unavailable offline, so this is a plain wall-clock harness
//! (`harness = false`) over the quick catalog: one smallest instance per
//! family, full fault bound, adversarial `AllZero` testers. It exists so
//! `cargo bench` gives an at-a-glance driver-vs-baseline picture without the
//! full `mmdiag-bench` sweep.

use mmdiag_bench::{run_cell, scatter_faults, small_catalog};
use mmdiag_syndrome::TesterBehavior;

fn main() {
    println!(
        "{:<22} {:>6} {:>12} {:>12} {:>9}",
        "instance", "nodes", "driver µs", "baseline µs", "lookup×"
    );
    for inst in small_catalog() {
        let g = &inst.graph;
        let faults = scatter_faults(g.node_count(), g.driver_fault_bound(), 7);
        let rec = run_cell(&inst, &faults, TesterBehavior::AllZero);
        let base = rec.baseline.as_ref().expect("smoke target runs baselines");
        println!(
            "{:<22} {:>6} {:>12.1} {:>12.1} {:>8.1}x",
            rec.instance,
            rec.nodes,
            rec.driver_nanos as f64 / 1e3,
            base.nanos as f64 / 1e3,
            base.lookups as f64 / rec.driver_lookups.max(1) as f64,
        );
        assert!(rec.agree);
    }
}
