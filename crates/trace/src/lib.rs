//! # mmdiag-trace
//!
//! The workspace's structured tracing + metrics layer: dependency-free
//! (the offline policy), sitting *below* every other crate so the
//! executor, driver, oracles, simulator and bench can all instrument
//! themselves without cycles.
//!
//! Four pieces:
//!
//! * **Clock door** ([`clock`]) — the single sanctioned wall-clock read;
//!   `cargo run -p xtask -- lint` forbids `Instant::now()` anywhere else
//!   outside `cfg(test)`, mirroring the `MMDIAG_*` env single door.
//! * **Spans + sink** ([`Tracer`], [`Span`], [`TraceSink`]) — guard-style
//!   spans recording monotonic start/duration, thread id and one
//!   attribute into per-thread ring buffers; the disabled tracer stores
//!   nothing and costs one `Option` check per record.
//! * **Metrics** ([`Counter`], [`Gauge`], [`Histogram`],
//!   [`MetricsRegistry`]) — atomic counters/gauges and a log-bucketed
//!   histogram with mergeable snapshots and factor-of-two quantiles.
//! * **Fleet hub** ([`MetricsHub`], [`StatsReporter`]) — per-session
//!   registries attach to one process-wide hub that merges them into a
//!   fleet snapshot (counters summed, gauges last-write, histograms
//!   merged) and streams periodic JSON-lines deltas; the sampler thread
//!   itself lives in `mmdiag_exec` (thread single door), driven by the
//!   `MMDIAG_STATS` knob.
//! * **Exporters** ([`export`]) — JSON-lines and Chrome trace-event
//!   format (loadable in `chrome://tracing` / Perfetto), plus
//!   [`export::validate_json`] so CI can check emitted traces parse
//!   without external tools. [`TraceSummary`] rolls a drained trace back
//!   up into the `PhaseTelemetry` shape for report-vs-trace equality
//!   tests.
//!
//! Tracing is enabled per session through `Diagnoser::trace(...)` or
//! process-wide via the `MMDIAG_TRACE` knob (read once by
//! `mmdiag_exec::config::knobs()` — this crate deliberately reads no
//! environment itself).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod export;
mod hist;
mod hub;
mod metrics;
mod sink;
mod summary;

pub use hub::{merge_snapshots, HubSession, MetricsHub, StatsReporter};

pub use hist::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, Histogram, HistogramSummary, BUCKETS,
};
pub use metrics::{checked_delta, Counter, Gauge, MetricSnapshot, MetricValue, MetricsRegistry};
pub use sink::{current_tid, Span, TraceConfig, TraceEvent, TraceSink, Tracer};
pub use summary::{
    NameStat, TraceSummary, CAT_MONITOR, CAT_PHASE, MONITOR_EPOCH, PHASE_CERTIFY, PHASE_GROW,
    PHASE_GROW_ROUND, PHASE_PROBE,
};
