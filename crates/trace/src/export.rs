//! Trace exporters: JSON-lines and Chrome trace-event format, plus the
//! minimal JSON well-formedness checker the bench `--profile` smoke leg
//! uses to validate emitted traces without external tooling.
//!
//! The Chrome format ([`chrome_trace`]) emits one complete (`"ph": "X"`)
//! event per span with microsecond timestamps, which loads directly in
//! `chrome://tracing` and Perfetto (`ui.perfetto.dev` → *Open trace
//! file*). Registered metrics ride along as a single instant event named
//! `mmdiag.metrics` at the end of the timeline, so one file carries both
//! the timeline and the counters/histograms that summarise it.

use crate::hist::HistogramSummary;
use crate::metrics::{MetricSnapshot, MetricValue};
use crate::sink::TraceEvent;
use std::fmt::Write as _;

/// Escape a string for a JSON string literal (no surrounding quotes).
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Nanoseconds → microseconds with 3 decimals (the Chrome `ts` unit).
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn histogram_json(h: &HistogramSummary, out: &mut String) {
    let _ = write!(
        out,
        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
        h.count,
        h.sum,
        h.min,
        h.max,
        h.mean(),
        h.p50(),
        h.p90(),
        h.p99()
    );
}

fn metric_value_json(v: &MetricValue, out: &mut String) {
    match v {
        MetricValue::Counter(c) => {
            let _ = write!(out, "{c}");
        }
        MetricValue::Gauge(cur, max) => {
            let _ = write!(out, "{{\"value\":{cur},\"max\":{max}}}");
        }
        MetricValue::Histogram(h) => histogram_json(h, out),
    }
}

/// One JSON object per line, one line per event — the grep-friendly
/// format for ad-hoc analysis.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str("{\"name\":\"");
        escape(e.name, &mut out);
        out.push_str("\",\"cat\":\"");
        escape(e.cat, &mut out);
        let _ = writeln!(
            out,
            "\",\"start_ns\":{},\"dur_ns\":{},\"tid\":{},\"value\":{}}}",
            e.start_ns, e.dur_ns, e.tid, e.value
        );
    }
    out
}

/// The full Chrome trace-event JSON document for `events` plus
/// `metrics`. Spans become complete (`"X"`) events; metrics become one
/// trailing instant event whose `args` hold every registered reading.
pub fn chrome_trace(events: &[TraceEvent], metrics: &[MetricSnapshot]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let mut end_ns = 0u64;
    for e in events {
        if !first {
            out.push(',');
        }
        first = false;
        end_ns = end_ns.max(e.start_ns + e.dur_ns);
        out.push_str("{\"name\":\"");
        escape(e.name, &mut out);
        out.push_str("\",\"cat\":\"");
        escape(e.cat, &mut out);
        let ph = if e.dur_ns == 0 { "i" } else { "X" };
        let _ = write!(
            out,
            "\",\"ph\":\"{ph}\",\"pid\":1,\"tid\":{},\"ts\":{}",
            e.tid,
            micros(e.start_ns)
        );
        if e.dur_ns > 0 {
            let _ = write!(out, ",\"dur\":{}", micros(e.dur_ns));
        } else {
            out.push_str(",\"s\":\"t\"");
        }
        let _ = write!(out, ",\"args\":{{\"value\":{}}}}}", e.value);
    }
    if !metrics.is_empty() {
        if !first {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"mmdiag.metrics\",\"cat\":\"metrics\",\"ph\":\"i\",\"pid\":1,\"tid\":0,\
             \"ts\":{},\"s\":\"g\",\"args\":{{",
            micros(end_ns)
        );
        for (i, m) in metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape(&m.name, &mut out);
            out.push_str("\":");
            metric_value_json(&m.value, &mut out);
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Check that `s` is one well-formed JSON value (the whole input). This
/// is a validator, not a parser — it allocates nothing and reports the
/// byte offset of the first violation. The bench `--profile` leg runs
/// every emitted Chrome trace through it, so CI catches a malformed
/// exporter without needing an external JSON tool.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    value(b, &mut pos, 0)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

const MAX_DEPTH: usize = 128;

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth > MAX_DEPTH {
        return Err(format!("nesting deeper than {MAX_DEPTH} at byte {pos}"));
    }
    match b.get(*pos) {
        Some(b'{') => object(b, pos, depth),
        Some(b'[') => array(b, pos, depth),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {pos}")),
        None => Err(format!("unexpected end of input at byte {pos}")),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("malformed literal at byte {pos}"))
    }
}

fn object(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos, depth + 1)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos, depth + 1)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {pos}"));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| -> usize {
        let s = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos - s
    };
    if digits(b, pos) == 0 {
        return Err(format!("malformed number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if digits(b, pos) == 0 {
            return Err(format!("malformed fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if digits(b, pos) == 0 {
            return Err(format!("malformed exponent at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                name: "probe",
                cat: "phase",
                start_ns: 1_500,
                dur_ns: 2_000,
                tid: 1,
                value: 12,
            },
            TraceEvent {
                name: "mark",
                cat: "phase",
                start_ns: 4_000,
                dur_ns: 0,
                tid: 2,
                value: 0,
            },
        ]
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let out = to_jsonl(&sample_events());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            validate_json(line).unwrap();
        }
        assert!(out.contains("\"start_ns\":1500"));
        assert!(out.contains("\"value\":12"));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_fields() {
        let reg = MetricsRegistry::new();
        reg.counter("syndrome.lookups").add(7);
        reg.histogram("task_ns").record(1000);
        let doc = chrome_trace(&sample_events(), &reg.snapshot());
        validate_json(&doc).unwrap();
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ts\":1.500"));
        assert!(doc.contains("\"dur\":2.000"));
        assert!(doc.contains("\"ph\":\"i\""), "instant event: {doc}");
        assert!(doc.contains("mmdiag.metrics"));
        assert!(doc.contains("\"syndrome.lookups\":7"));
        assert!(doc.contains("\"p99\":"));
    }

    #[test]
    fn chrome_trace_of_nothing_is_still_valid() {
        let doc = chrome_trace(&[], &[]);
        validate_json(&doc).unwrap();
        assert!(doc.contains("\"traceEvents\":[]"));
    }

    #[test]
    fn validator_accepts_json_shapes() {
        for ok in [
            "null",
            "true",
            " false ",
            "0",
            "-12.5e+3",
            "\"a\\nb\\u00e9\"",
            "[]",
            "[1,2,[3]]",
            "{}",
            "{\"a\":{\"b\":[1,null]},\"c\":\"\"}",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok:?}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "}",
            "[1,]",
            "{\"a\"}",
            "{\"a\":1,}",
            "{a:1}",
            "\"unterminated",
            "\"bad\\q\"",
            "01x",
            "1 2",
            "nul",
            "--3",
            "1.",
            "1e",
        ] {
            assert!(validate_json(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn escape_handles_specials() {
        let mut s = String::new();
        escape("a\"b\\c\nd\u{1}", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }
}
