//! Atomic counters, gauges and the metrics registry.
//!
//! A [`Counter`] is the workspace's one way to count monotonically —
//! the syndrome oracles store their lookup counts in one, so
//! `SyndromeSource::lookups()` and the exported trace metric read the
//! *same* cell rather than two values that happen to agree. A
//! [`MetricsRegistry`] names a set of counters/gauges/histograms for
//! export; handles are `Arc`-shared so a component can both own its
//! metric and register it.

use crate::hist::{Histogram, HistogramSummary};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// A last-value-wins atomic gauge (with a running maximum).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
    max: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge {
            value: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Set the current value (also advances the running maximum).
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Largest value ever set.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }
}

/// The checked difference of two readings of a monotonic counter.
///
/// `PhaseTelemetry` used to derive its per-phase lookup deltas with
/// silent `saturating_sub` chains, so a counter anomaly (a reset mid-run,
/// a reordered read) would quietly report zero instead of failing. This
/// is the one door both phases go through now: debug builds assert the
/// monotonicity that the subtraction assumes; release builds keep the
/// saturating behaviour as a hard floor.
pub fn checked_delta(now: u64, earlier: u64) -> u64 {
    debug_assert!(
        now >= earlier,
        "monotonic counter went backwards: now {now} < earlier {earlier}"
    );
    now.saturating_sub(earlier)
}

/// A named metric handle held by a [`MetricsRegistry`].
#[derive(Clone, Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A point-in-time reading of one registered metric.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading: `(current, max)`.
    Gauge(u64, u64),
    /// Histogram snapshot (boxed: a summary carries its full bucket
    /// array, far larger than the scalar variants).
    Histogram(Box<HistogramSummary>),
}

/// One named reading out of [`MetricsRegistry::snapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// The registered name.
    pub name: String,
    /// The reading.
    pub value: MetricValue,
}

/// A named collection of metrics, snapshot-able for export.
///
/// Registration is get-or-create by name; re-registering a name returns
/// the existing handle so two instrumentation sites naming the same
/// metric share one cell.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<(String, Metric)>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut entries = self.entries.lock().unwrap();
        if let Some((_, m)) = entries.iter().find(|(n, _)| n == name) {
            return m.clone();
        }
        let m = make();
        entries.push((name.to_string(), m.clone()));
        m
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Adopt an existing counter under `name` (the oracle-unification
    /// path: the component keeps ownership, the registry exports it).
    pub fn register_counter(&self, name: &str, counter: Arc<Counter>) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(counter)) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Adopt an existing gauge under `name` (e.g. the sync facade's
    /// queue-depth gauges, owned by the executor and exported here).
    pub fn register_gauge(&self, name: &str, gauge: Arc<Gauge>) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(gauge)) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Adopt an existing histogram under `name`.
    pub fn register_histogram(&self, name: &str, hist: Arc<Histogram>) -> Arc<Histogram> {
        match self.get_or_insert(name, || Metric::Histogram(hist)) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Read every registered metric, in registration order.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        self.entries
            .lock()
            .unwrap()
            .iter()
            .map(|(name, m)| MetricSnapshot {
                name: name.clone(),
                value: match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get(), g.max()),
                    Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.reset(), 10);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_tracks_current_and_max() {
        let g = Gauge::new();
        g.set(5);
        g.set(3);
        assert_eq!(g.get(), 3);
        assert_eq!(g.max(), 5);
    }

    #[test]
    fn checked_delta_subtracts() {
        assert_eq!(checked_delta(10, 4), 6);
        assert_eq!(checked_delta(4, 4), 0);
    }

    #[test]
    #[should_panic(expected = "went backwards")]
    #[cfg(debug_assertions)]
    fn checked_delta_rejects_backwards_counters_in_debug() {
        let _ = checked_delta(3, 4);
    }

    #[test]
    fn registry_shares_handles_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
        let owned = Arc::new(Counter::new());
        owned.add(7);
        let adopted = reg.register_counter("oracle.lookups", Arc::clone(&owned));
        assert!(Arc::ptr_eq(&owned, &adopted));
        let owned_gauge = Arc::new(Gauge::new());
        let adopted_gauge = reg.register_gauge("sync.depth", Arc::clone(&owned_gauge));
        assert!(Arc::ptr_eq(&owned_gauge, &adopted_gauge));
        owned_gauge.set(2);
        reg.gauge("depth").set(4);
        reg.histogram("h").record(100);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 5);
        assert_eq!(snap[0].name, "x");
        assert_eq!(snap[0].value, MetricValue::Counter(3));
        assert_eq!(snap[1].value, MetricValue::Counter(7));
        assert_eq!(snap[2].value, MetricValue::Gauge(2, 2));
        assert_eq!(snap[3].value, MetricValue::Gauge(4, 4));
        match &snap[4].value {
            MetricValue::Histogram(h) => assert_eq!(h.count, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_kind_confusion() {
        let reg = MetricsRegistry::new();
        reg.counter("m");
        reg.gauge("m");
    }
}
