//! Rolling a drained trace back up into the `PhaseTelemetry` shape.
//!
//! `mmdiag_core` names its three phases with the constants below and
//! stores, in `PhaseTelemetry`, exactly the values its phase spans
//! recorded (the span's `finish` return *is* the telemetry field). A
//! [`TraceSummary`] built from the drained events therefore must agree
//! with the report — nanosecond-exact for durations of a single run,
//! and exact for lookup counts, which the workspace test-suite asserts.

use crate::sink::TraceEvent;

/// Category every diagnosis phase span carries.
pub const CAT_PHASE: &str = "phase";
/// The restricted-probe phase span name.
pub const PHASE_PROBE: &str = "probe";
/// The certificate-scan phase span name.
pub const PHASE_CERTIFY: &str = "certify";
/// The grow-and-sweep phase span name.
pub const PHASE_GROW: &str = "grow";
/// Per-frontier-round span name, nested inside [`PHASE_GROW`] by the
/// frontier-parallel growth sweep. Aggregated per-name like every other
/// span, so the probe/certify/grow phase totals are untouched.
pub const PHASE_GROW_ROUND: &str = "grow.round";
/// Category the epoch monitor's spans carry (`mmdiag-monitor`).
pub const CAT_MONITOR: &str = "monitor";
/// One monitoring epoch: delta ingest → re-probe walk → growth. The
/// span's value attribute is the epoch's total syndrome lookups, and the
/// per-phase spans of any re-probe/growth work nest inside it.
pub const MONITOR_EPOCH: &str = "monitor.epoch";

/// Aggregate of all spans sharing one name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NameStat {
    /// The span name.
    pub name: String,
    /// Spans with this name.
    pub count: u64,
    /// Sum of their durations (ns).
    pub total_ns: u128,
    /// Sum of their `value` attributes.
    pub value_sum: u64,
}

/// A drained trace rolled up per span name, with the three diagnosis
/// phases surfaced in the `PhaseTelemetry` shape.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total `probe` span time (= `PhaseTelemetry::probe_nanos` summed
    /// over the traced runs).
    pub probe_nanos: u128,
    /// Total `certify` span time.
    pub certify_nanos: u128,
    /// Total `grow` span time.
    pub grow_nanos: u128,
    /// Syndrome lookups attributed to probe spans.
    pub probe_lookups: u64,
    /// Syndrome lookups attributed to grow spans.
    pub grow_lookups: u64,
    /// Events summarised.
    pub span_count: usize,
    /// Events lost to ring wraparound before the drain.
    pub dropped: u64,
    /// Every span name's aggregate, ordered by first appearance.
    pub names: Vec<NameStat>,
}

impl TraceSummary {
    /// Summarise drained `events` (`dropped` from `Tracer::dropped`).
    pub fn from_events(events: &[TraceEvent], dropped: u64) -> Self {
        let mut names: Vec<NameStat> = Vec::new();
        for e in events {
            let stat = match names.iter_mut().find(|s| s.name == e.name) {
                Some(s) => s,
                None => {
                    names.push(NameStat {
                        name: e.name.to_string(),
                        ..NameStat::default()
                    });
                    names.last_mut().expect("just pushed")
                }
            };
            stat.count += 1;
            stat.total_ns += u128::from(e.dur_ns);
            stat.value_sum += e.value;
        }
        let get = |name: &str| -> (u128, u64) {
            names
                .iter()
                .find(|s| s.name == name)
                .map_or((0, 0), |s| (s.total_ns, s.value_sum))
        };
        let (probe_nanos, probe_lookups) = get(PHASE_PROBE);
        let (certify_nanos, _) = get(PHASE_CERTIFY);
        let (grow_nanos, grow_lookups) = get(PHASE_GROW);
        TraceSummary {
            probe_nanos,
            certify_nanos,
            grow_nanos,
            probe_lookups,
            grow_lookups,
            span_count: events.len(),
            dropped,
            names,
        }
    }

    /// Total duration of all spans named `name` (0 when absent).
    pub fn total_ns(&self, name: &str) -> u128 {
        self.names
            .iter()
            .find(|s| s.name == name)
            .map_or(0, |s| s.total_ns)
    }

    /// Sum of `value` attributes of all spans named `name`.
    pub fn value_sum(&self, name: &str) -> u64 {
        self.names
            .iter()
            .find(|s| s.name == name)
            .map_or(0, |s| s.value_sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(name: &'static str, dur: u64, value: u64) -> TraceEvent {
        TraceEvent {
            name,
            cat: CAT_PHASE,
            start_ns: 0,
            dur_ns: dur,
            tid: 1,
            value,
        }
    }

    #[test]
    fn phases_roll_up_into_telemetry_shape() {
        let events = [
            phase(PHASE_PROBE, 100, 12),
            phase(PHASE_CERTIFY, 50, 0),
            phase(PHASE_GROW, 200, 30),
            phase(PHASE_PROBE, 10, 3),
        ];
        let s = TraceSummary::from_events(&events, 2);
        assert_eq!(s.probe_nanos, 110);
        assert_eq!(s.certify_nanos, 50);
        assert_eq!(s.grow_nanos, 200);
        assert_eq!(s.probe_lookups, 15);
        assert_eq!(s.grow_lookups, 30);
        assert_eq!(s.span_count, 4);
        assert_eq!(s.dropped, 2);
        assert_eq!(s.names.len(), 3);
        assert_eq!(s.total_ns(PHASE_PROBE), 110);
        assert_eq!(s.value_sum(PHASE_PROBE), 15);
        assert_eq!(s.total_ns("absent"), 0);
    }

    #[test]
    fn empty_trace_summarises_to_default() {
        let s = TraceSummary::from_events(&[], 0);
        assert_eq!(s, TraceSummary::default());
    }
}
