//! The workspace's single timing door.
//!
//! Every wall-clock read in the workspace goes through [`now_ns`] (or the
//! [`Stopwatch`] built on it) — `cargo run -p xtask -- lint` forbids
//! `Instant::now()` everywhere outside this crate and `cfg(test)`, the
//! same single-door treatment `MMDIAG_*` env reads get. One door means
//! one clock: a span's recorded duration, a `PhaseTelemetry` field, and a
//! bench measurement can be compared without wondering which time source
//! each one sampled.
//!
//! Readings are monotonic nanoseconds since the first read in the
//! process (the anchor), so they are directly usable as Chrome
//! trace-event timestamps and fit `u64` for ~584 years of uptime.

use std::sync::OnceLock;
use std::time::Instant;

/// The process-wide anchor: all readings are offsets from the first call.
fn anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the process's first clock read.
pub fn now_ns() -> u64 {
    anchor().elapsed().as_nanos() as u64
}

/// A started timer: the `Instant::now()` / `.elapsed()` idiom behind the
/// single door.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: u64,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch { start: now_ns() }
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_ns(&self) -> u64 {
        now_ns().saturating_sub(self.start)
    }

    /// The raw start reading (same scale as [`now_ns`]).
    pub fn start_ns(&self) -> u64 {
        self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readings_are_monotonic() {
        let a = now_ns();
        let b = now_ns();
        let c = now_ns();
        assert!(a <= b && b <= c, "{a} {b} {c}");
    }

    #[test]
    fn stopwatch_measures_forward_time() {
        let sw = Stopwatch::start();
        let mut spin = 0u64;
        for i in 0..10_000u64 {
            spin = spin.wrapping_add(i);
        }
        assert!(spin > 0);
        let e1 = sw.elapsed_ns();
        let e2 = sw.elapsed_ns();
        assert!(e2 >= e1);
        assert!(sw.start_ns() <= now_ns());
    }
}
