//! A hand-rolled log-bucketed histogram: power-of-two buckets, atomic
//! recording, mergeable plain snapshots, quantile estimation.
//!
//! Bucket layout: bucket 0 holds exactly the value 0; bucket `k`
//! (`1..=64`) holds values in `[2^(k-1), 2^k - 1]`. Quantile estimates
//! return the bucket's upper bound clamped into the observed `[min, max]`
//! range, so for any recorded distribution the estimate `e` of a true
//! quantile `t` satisfies `t ≤ e < 2·t` (and `e == t` exactly when `t`
//! is the observed maximum of its bucket) — the usual log-histogram
//! guarantee, asserted by the adversarial tests below.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per bit position of `u64`.
pub const BUCKETS: usize = 65;

/// Bucket index of a value: 0 for 0, else `1 + floor(log2(v))`.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Smallest value landing in bucket `idx` (0, 1, 2, 4, 8, …).
pub fn bucket_lower_bound(idx: usize) -> u64 {
    match idx {
        0 => 0,
        k => 1u64 << (k - 1),
    }
}

/// Largest value landing in bucket `idx` (0, 1, 3, 7, 15, …).
pub fn bucket_upper_bound(idx: usize) -> u64 {
    match idx {
        0 => 0,
        64 => u64::MAX,
        k => (1u64 << k) - 1,
    }
}

/// A concurrent log-bucketed histogram. Recording is a handful of relaxed
/// atomic adds — cheap enough for per-task instrumentation; read it out
/// with [`Histogram::snapshot`].
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: Vec<AtomicU64>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record one value.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// A plain-data copy of the current state.
    pub fn snapshot(&self) -> HistogramSummary {
        let mut buckets = [0u64; BUCKETS];
        for (b, a) in buckets.iter_mut().zip(&self.buckets) {
            *b = a.load(Ordering::Relaxed);
        }
        let count = self.count.load(Ordering::Relaxed);
        HistogramSummary {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Immutable histogram state: mergeable, comparable, serialisable by the
/// exporters. This is the form that crosses crate boundaries (bench
/// records, `SimReport`), keeping the atomics private to the recorder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values (saturating only at `u64::MAX` totals).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Per-bucket counts (see [`bucket_index`]).
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSummary {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSummary {
    /// The summary of zero recordings.
    pub fn empty() -> Self {
        HistogramSummary {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// Combine two summaries; associative and commutative with
    /// [`HistogramSummary::empty`] as identity (tested below).
    pub fn merge(&self, other: &Self) -> Self {
        let mut buckets = [0u64; BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets[i] + other.buckets[i];
        }
        let min = match (self.count, other.count) {
            (0, _) => other.min,
            (_, 0) => self.min,
            _ => self.min.min(other.min),
        };
        HistogramSummary {
            count: self.count + other.count,
            sum: self.sum.saturating_add(other.sum),
            min,
            max: self.max.max(other.max),
            buckets,
        }
    }

    /// The recordings that happened between `earlier` and `self`, as a
    /// summary of their own: counts, sums and buckets subtract pairwise
    /// (saturating, with a debug assertion that the cumulative reading
    /// really is monotone — the histogram atomics never decrease).
    ///
    /// `min`/`max` are **not** restorable from two cumulative readings,
    /// so the delta keeps `self`'s observed extremes: quantiles of a
    /// delta clamp into the cumulative range, which can only widen them.
    /// This is what the periodic stats sampler and the bench contention
    /// rollups use to attribute recordings to one window.
    pub fn delta_since(&self, earlier: &Self) -> Self {
        debug_assert!(
            self.count >= earlier.count,
            "cumulative histogram went backwards: {} < {}",
            self.count,
            earlier.count
        );
        let mut buckets = [0u64; BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        let count = self.count.saturating_sub(earlier.count);
        HistogramSummary {
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            min: if count == 0 { 0 } else { self.min },
            max: if count == 0 { 0 } else { self.max },
            buckets,
        }
    }

    /// Mean recorded value, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// bucket containing the rank-`ceil(q·count)` value, clamped into the
    /// observed `[min, max]`. Within a factor of 2 above the true value by
    /// construction; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        // Every boundary value v = 2^k starts bucket k+1; v = 2^k - 1 ends
        // bucket k.
        for k in 0..63usize {
            let low = 1u64 << k;
            assert_eq!(bucket_index(low), k + 1, "2^{k}");
            assert_eq!(bucket_index(low + (low - 1)), k + 1, "2^{}-1", k + 1);
            if low > 1 {
                assert_eq!(bucket_index(low - 1), k, "2^{k}-1");
            }
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        for idx in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_lower_bound(idx)), idx);
            assert_eq!(bucket_index(bucket_upper_bound(idx)), idx);
            assert!(bucket_lower_bound(idx) <= bucket_upper_bound(idx));
        }
    }

    #[test]
    fn record_and_snapshot_account_everything() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 7, 8, 1000, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[1], 2); // the two ones
        assert_eq!(s.buckets[3], 1); // 7
        assert_eq!(s.buckets[4], 1); // 8
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSummary::empty());
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0);
    }

    fn summarise(values: &[u64]) -> HistogramSummary {
        let h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        h.snapshot()
    }

    #[test]
    fn merge_is_associative_and_commutative_with_identity() {
        let a = summarise(&[1, 2, 3, 100]);
        let b = summarise(&[0, 0, 7]);
        let c = summarise(&[u64::MAX, 42]);
        let abc1 = a.merge(&b).merge(&c);
        let abc2 = a.merge(&b.merge(&c));
        assert_eq!(abc1, abc2, "associativity");
        assert_eq!(a.merge(&b), b.merge(&a), "commutativity");
        assert_eq!(a.merge(&HistogramSummary::empty()), a, "right identity");
        assert_eq!(HistogramSummary::empty().merge(&a), a, "left identity");
        // A merge equals recording the concatenation.
        let all = summarise(&[1, 2, 3, 100, 0, 0, 7, u64::MAX, 42]);
        assert_eq!(abc1, all);
    }

    /// The log-histogram quantile guarantee `t ≤ estimate < 2·t` (and
    /// `estimate ≤ max`) must hold even on distributions built to stress
    /// it: heavy point masses at bucket edges, huge dynamic range, a
    /// single outlier dominating p99.
    #[test]
    fn p99_on_adversarial_distributions_stays_within_a_factor_of_two() {
        let cases: Vec<Vec<u64>> = vec![
            // 99 tiny values and one huge one: p99 rank lands on the tiny.
            {
                let mut v = vec![3u64; 99];
                v.push(u64::MAX / 2);
                v
            },
            // 100 values at a power-of-two boundary exactly.
            vec![1024; 100],
            // One below, one at, one above a boundary, many times over.
            (0..34).flat_map(|_| [1023u64, 1024, 1025]).collect(),
            // Geometric sweep across the whole range.
            (0..63).map(|k| 1u64 << k).collect(),
            // All zeros except a tail of maxima.
            {
                let mut v = vec![0u64; 990];
                v.extend([u64::MAX; 10]);
                v
            },
        ];
        for values in cases {
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let s = summarise(&values);
            for q in [0.5, 0.9, 0.99] {
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                let truth = sorted[rank - 1];
                let est = s.quantile(q);
                assert!(est >= truth, "q={q} est {est} < truth {truth}");
                assert!(est <= s.max, "q={q} est {est} > max {}", s.max);
                if let Some(ratio) = est.checked_div(truth) {
                    assert!(
                        ratio < 2 || est == truth,
                        "q={q} est {est} not within 2x of {truth}"
                    );
                } else {
                    // truth == 0 lives in bucket 0, whose upper bound is 0 —
                    // but clamping to min can only raise it to min == 0 here.
                    assert!(est == 0 || s.min > 0, "q={q} est {est}");
                }
            }
        }
    }

    #[test]
    fn delta_since_recovers_a_window() {
        let h = Histogram::new();
        for v in [1u64, 2, 3] {
            h.record(v);
        }
        let before = h.snapshot();
        for v in [100u64, 200] {
            h.record(v);
        }
        let after = h.snapshot();
        let delta = after.delta_since(&before);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 300);
        assert_eq!(delta.buckets.iter().sum::<u64>(), 2);
        // Extremes stay cumulative (documented): min is the overall min.
        assert_eq!(delta.min, 1);
        assert_eq!(delta.max, 200);
        // An empty window is the empty summary.
        assert_eq!(after.delta_since(&after), HistogramSummary::empty());
        // Identity: delta against the empty summary is the reading itself.
        assert_eq!(after.delta_since(&HistogramSummary::empty()), after);
    }

    #[test]
    fn quantiles_are_clamped_into_observed_range() {
        // Bucket upper bound (2047) exceeds the observed max (1500): the
        // estimate must report 1500, never a value that was not possible.
        let s = summarise(&[1500, 1500, 1500]);
        assert_eq!(s.quantile(0.99), 1500);
        assert_eq!(s.quantile(0.0), 1500);
        let s = summarise(&[9]);
        assert_eq!(s.p50(), 9);
        assert_eq!(s.p99(), 9);
    }
}
