//! The fleet observability layer: a process-wide hub of per-session
//! metrics registries, plus the periodic stats sampler.
//!
//! PR 7's tracing observes one session at a time; a fleet serving many
//! concurrent diagnoses needs the *cross-session* view — the shared
//! pool, the shared caches, the shared cutover are contended by all of
//! them at once. A [`MetricsHub`] is a registry of registries: every
//! live session attaches its own [`MetricsRegistry`] (the same `Arc` its
//! tracer records into, not a copy), and the hub can merge all of them
//! into one fleet snapshot at any instant:
//!
//! * **counters** sum across sessions,
//! * **gauges** are last-write-wins for the current value (attach order
//!   breaks ties; the running maximum is the max across sessions),
//! * **histograms** merge via [`crate::HistogramSummary::merge`].
//!
//! [`StatsReporter`] turns that merged view into a JSON-lines time
//! series: each [`StatsReporter::sample`] emits one self-contained JSON
//! object with per-metric deltas since the previous sample. The sampler
//! *thread* driving it lives in `mmdiag_exec` (`start_stats_reporter`) —
//! thread creation stays inside the executor crate, and the sampling
//! interval is the `MMDIAG_STATS` knob parsed once by
//! `mmdiag_exec::config::knobs()`. Timestamps only ever come from
//! [`crate::clock`], like every other time read in the workspace.

use crate::clock;
use crate::metrics::{MetricSnapshot, MetricValue, MetricsRegistry};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One attached session: the name it registered under and the live
/// registry handle (shared with the session's sink, not copied).
struct Attachment {
    id: u64,
    name: String,
    registry: Arc<MetricsRegistry>,
}

/// A process-wide collection of live per-session metrics registries.
///
/// `attach` returns a RAII guard; dropping it (or the session that owns
/// it) detaches the registry, so the hub only ever aggregates sessions
/// that are actually alive. Use [`MetricsHub::global`] for the one hub
/// the whole process shares, or `new` for an isolated hub in tests.
#[derive(Default)]
pub struct MetricsHub {
    sessions: Mutex<Vec<Attachment>>,
    next_id: AtomicU64,
    /// Total attachments ever made — lets a reporter distinguish "no
    /// sessions yet" from "sessions came and went".
    attached_total: AtomicU64,
}

impl MetricsHub {
    /// An empty hub (tests; production code uses [`MetricsHub::global`]).
    pub fn new() -> Self {
        MetricsHub::default()
    }

    /// The process-wide hub every session's `.stats(...)` attaches to.
    pub fn global() -> &'static MetricsHub {
        static HUB: OnceLock<MetricsHub> = OnceLock::new();
        HUB.get_or_init(MetricsHub::new)
    }

    /// Attach a live registry under `name`. The returned guard detaches
    /// on drop; names need not be unique (two sessions may both call
    /// themselves `"probe"` — merge semantics are by *metric* name, not
    /// session name).
    pub fn attach(&self, name: &str, registry: Arc<MetricsRegistry>) -> HubSession<'_> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.attached_total.fetch_add(1, Ordering::Relaxed);
        self.sessions.lock().unwrap().push(Attachment {
            id,
            name: name.to_string(),
            registry,
        });
        HubSession { hub: self, id }
    }

    /// Number of currently attached sessions.
    pub fn sessions(&self) -> usize {
        self.sessions.lock().unwrap().len()
    }

    /// Total attachments over the hub's lifetime (never decreases).
    pub fn attached_total(&self) -> u64 {
        self.attached_total.load(Ordering::Relaxed)
    }

    /// Snapshot every attached session: `(session name, readings)` in
    /// attach order.
    pub fn snapshot_sessions(&self) -> Vec<(String, Vec<MetricSnapshot>)> {
        self.sessions
            .lock()
            .unwrap()
            .iter()
            .map(|a| (a.name.clone(), a.registry.snapshot()))
            .collect()
    }

    /// The fleet view: snapshot every attached registry and merge by
    /// metric name (see the module docs for the per-kind rules). Note
    /// each registry is snapshot atomically per *metric*, not per hub —
    /// a counter incremented mid-merge lands in this reading or the
    /// next, never nowhere.
    pub fn merged_snapshot(&self) -> Vec<MetricSnapshot> {
        let per_session: Vec<Vec<MetricSnapshot>> = self
            .sessions
            .lock()
            .unwrap()
            .iter()
            .map(|a| a.registry.snapshot())
            .collect();
        merge_snapshots(&per_session)
    }

    fn detach(&self, id: u64) {
        self.sessions.lock().unwrap().retain(|a| a.id != id);
    }
}

/// RAII guard for one hub attachment; dropping it detaches the session's
/// registry from the hub.
pub struct HubSession<'a> {
    hub: &'a MetricsHub,
    id: u64,
}

impl HubSession<'_> {
    /// The hub-unique attachment id (diagnostics).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for HubSession<'_> {
    fn drop(&mut self) {
        self.hub.detach(self.id);
    }
}

/// Merge any number of snapshot sets by metric name: counters sum,
/// gauges keep the **last** writer's current value (input order) and the
/// max of maxima, histograms merge via [`crate::HistogramSummary::merge`].
/// Output order is first-seen order. A name registered with two
/// different kinds keeps its first kind and ignores readings of the
/// other (kind confusion is already a panic within one registry; across
/// sessions it only means the sessions disagree on a name).
pub fn merge_snapshots(sets: &[Vec<MetricSnapshot>]) -> Vec<MetricSnapshot> {
    let mut out: Vec<MetricSnapshot> = Vec::new();
    for set in sets {
        for m in set {
            match out.iter_mut().find(|o| o.name == m.name) {
                None => out.push(m.clone()),
                Some(existing) => match (&mut existing.value, &m.value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(cur, max), MetricValue::Gauge(c, m2)) => {
                        *cur = *c;
                        *max = (*max).max(*m2);
                    }
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                        **a = a.merge(b);
                    }
                    _ => {} // kind mismatch across sessions: first kind wins
                },
            }
        }
    }
    out
}

/// The periodic-delta sampler over a [`MetricsHub`].
///
/// Each [`StatsReporter::sample`] produces one JSON line (no trailing
/// newline) describing the time since the previous sample: counters
/// carry `total` and `delta`, gauges `value`/`max`, histograms their
/// cumulative `count`/quantiles plus the window's `delta_count`. The
/// reporter is deliberately passive — it owns no thread and reads no
/// environment; `mmdiag_exec::start_stats_reporter` drives it on a
/// sampler thread at the `MMDIAG_STATS` interval.
pub struct StatsReporter<'a> {
    hub: &'a MetricsHub,
    prev: Vec<MetricSnapshot>,
    seq: u64,
}

impl<'a> StatsReporter<'a> {
    /// A reporter over `hub` whose first sample reports all-time deltas.
    pub fn new(hub: &'a MetricsHub) -> Self {
        StatsReporter {
            hub,
            prev: Vec::new(),
            seq: 0,
        }
    }

    /// Take one sample: merge the hub now, diff against the previous
    /// sample, and render one JSON object (one line of the time series).
    pub fn sample(&mut self) -> String {
        let merged = self.hub.merged_snapshot();
        let mut line = String::with_capacity(256);
        let _ = write!(
            line,
            "{{\"seq\":{},\"t_ns\":{},\"sessions\":{},\"metrics\":[",
            self.seq,
            clock::now_ns(),
            self.hub.sessions()
        );
        for (i, m) in merged.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let prev = self.prev.iter().find(|p| p.name == m.name);
            line.push_str("{\"name\":\"");
            json_escape(&m.name, &mut line);
            line.push_str("\",");
            match &m.value {
                MetricValue::Counter(total) => {
                    let earlier = match prev.map(|p| &p.value) {
                        Some(MetricValue::Counter(e)) => *e,
                        _ => 0,
                    };
                    let _ = write!(
                        line,
                        "\"kind\":\"counter\",\"total\":{total},\"delta\":{}",
                        total.saturating_sub(earlier)
                    );
                }
                MetricValue::Gauge(cur, max) => {
                    let _ = write!(line, "\"kind\":\"gauge\",\"value\":{cur},\"max\":{max}");
                }
                MetricValue::Histogram(h) => {
                    let earlier_count = match prev.map(|p| &p.value) {
                        Some(MetricValue::Histogram(e)) => e.count,
                        _ => 0,
                    };
                    let _ = write!(
                        line,
                        "\"kind\":\"histogram\",\"count\":{},\"delta_count\":{},\
                         \"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p99\":{}",
                        h.count,
                        h.count.saturating_sub(earlier_count),
                        h.sum,
                        h.min,
                        h.max,
                        h.p50(),
                        h.p99()
                    );
                }
            }
            line.push('}');
        }
        line.push_str("]}");
        self.prev = merged;
        self.seq += 1;
        line
    }

    /// Samples taken so far.
    pub fn samples(&self) -> u64 {
        self.seq
    }
}

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::validate_json;

    #[test]
    fn attach_detach_tracks_live_sessions() {
        let hub = MetricsHub::new();
        assert_eq!(hub.sessions(), 0);
        let a = Arc::new(MetricsRegistry::new());
        let b = Arc::new(MetricsRegistry::new());
        let ga = hub.attach("a", Arc::clone(&a));
        let gb = hub.attach("b", Arc::clone(&b));
        assert_eq!(hub.sessions(), 2);
        assert_eq!(hub.attached_total(), 2);
        drop(ga);
        assert_eq!(hub.sessions(), 1);
        assert_eq!(hub.snapshot_sessions()[0].0, "b");
        drop(gb);
        assert_eq!(hub.sessions(), 0);
        assert_eq!(hub.attached_total(), 2, "lifetime total never decreases");
    }

    #[test]
    fn merge_sums_counters_lastwrites_gauges_merges_histograms() {
        let hub = MetricsHub::new();
        let a = Arc::new(MetricsRegistry::new());
        let b = Arc::new(MetricsRegistry::new());
        a.counter("lookups").add(10);
        b.counter("lookups").add(5);
        b.counter("only_b").add(1);
        a.gauge("depth").set(7); // max 7
        a.gauge("depth").set(2); // value 2
        b.gauge("depth").set(3);
        a.histogram("lat").record(100);
        b.histogram("lat").record(200);
        let _ga = hub.attach("a", Arc::clone(&a));
        let _gb = hub.attach("b", Arc::clone(&b));
        let merged = hub.merged_snapshot();
        let get = |name: &str| {
            merged
                .iter()
                .find(|m| m.name == name)
                .unwrap()
                .value
                .clone()
        };
        assert_eq!(get("lookups"), MetricValue::Counter(15));
        assert_eq!(get("only_b"), MetricValue::Counter(1));
        // Gauge: last attach order wins the value; max is max of maxima.
        assert_eq!(get("depth"), MetricValue::Gauge(3, 7));
        match get("lat") {
            MetricValue::Histogram(h) => {
                assert_eq!(h.count, 2);
                assert_eq!(h.sum, 300);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn merged_equals_manual_merge_of_session_snapshots() {
        // The hub's merge is definitionally the merge of the per-session
        // snapshots — the exact-aggregation contract the umbrella's
        // concurrent-session test asserts end to end.
        let hub = MetricsHub::new();
        let regs: Vec<Arc<MetricsRegistry>> =
            (0..4).map(|_| Arc::new(MetricsRegistry::new())).collect();
        let _guards: Vec<HubSession<'_>> = regs
            .iter()
            .enumerate()
            .map(|(i, r)| {
                r.counter("c").add(i as u64 + 1);
                r.histogram("h").record(1 << i);
                hub.attach(&format!("s{i}"), Arc::clone(r))
            })
            .collect();
        let manual: Vec<Vec<MetricSnapshot>> = regs.iter().map(|r| r.snapshot()).collect();
        assert_eq!(hub.merged_snapshot(), merge_snapshots(&manual));
        let merged = hub.merged_snapshot();
        assert_eq!(merged[0].value, MetricValue::Counter(1 + 2 + 3 + 4));
    }

    #[test]
    fn kind_mismatch_across_sessions_keeps_first_kind() {
        let a = Arc::new(MetricsRegistry::new());
        let b = Arc::new(MetricsRegistry::new());
        a.counter("m").add(2);
        b.gauge("m").set(9);
        let merged = merge_snapshots(&[a.snapshot(), b.snapshot()]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].value, MetricValue::Counter(2));
    }

    #[test]
    fn reporter_emits_valid_jsonl_with_deltas() {
        let hub = MetricsHub::new();
        let reg = Arc::new(MetricsRegistry::new());
        let _g = hub.attach("s", Arc::clone(&reg));
        reg.counter("c").add(10);
        reg.histogram("h").record(50);
        let mut rep = StatsReporter::new(&hub);
        let l1 = rep.sample();
        validate_json(&l1).unwrap();
        assert!(l1.contains("\"seq\":0"), "{l1}");
        assert!(l1.contains("\"sessions\":1"), "{l1}");
        assert!(l1.contains("\"total\":10"), "{l1}");
        assert!(l1.contains("\"delta\":10"), "{l1}");
        reg.counter("c").add(3);
        reg.histogram("h").record(60);
        reg.histogram("h").record(70);
        let l2 = rep.sample();
        validate_json(&l2).unwrap();
        assert!(l2.contains("\"seq\":1"), "{l2}");
        assert!(l2.contains("\"total\":13"), "{l2}");
        assert!(l2.contains("\"delta\":3"), "{l2}");
        assert!(l2.contains("\"delta_count\":2"), "{l2}");
        assert_eq!(rep.samples(), 2);
        // t_ns is monotone between samples (single clock door).
        let t = |l: &str| {
            let at = l.find("\"t_ns\":").unwrap() + 7;
            l[at..l[at..].find(',').unwrap() + at]
                .parse::<u64>()
                .unwrap()
        };
        assert!(t(&l2) >= t(&l1));
    }

    #[test]
    fn global_hub_is_one_instance() {
        let a = MetricsHub::global() as *const MetricsHub;
        let b = MetricsHub::global() as *const MetricsHub;
        assert_eq!(a, b);
    }
}
