//! Spans, events, per-thread ring buffers and the session-owned sink.
//!
//! A [`Tracer`] is a cheap-to-clone handle that is either *disabled* —
//! the zero-cost default: recording is a single `Option` check and no
//! event storage exists at all — or backed by a shared [`TraceSink`]
//! of per-thread ring buffers. Each recording thread writes into its own
//! shard (selected by a process-unique small thread id), so the shard
//! lock is never contended in steady state and a push never waits on
//! another thread; a full ring overwrites its oldest event and counts
//! the loss, so tracing can never stall or OOM the traced workload.
//!
//! Span guards sample the monotonic clock at construction and on
//! `finish`/drop, and [`Span::finish`] hands the elapsed nanoseconds
//! back to the caller — `PhaseTelemetry` stores exactly the value the
//! trace records, which is what makes the report-vs-trace equality
//! tests exact rather than approximate.

use crate::clock;
use crate::metrics::MetricsRegistry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One recorded span or instant event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Static event name — the small fixed key set keeps events `Copy`
    /// and the ring buffer allocation-free.
    pub name: &'static str,
    /// Static category (Chrome trace `cat`): `"phase"`, `"task"`, ….
    pub cat: &'static str,
    /// Start, monotonic nanoseconds ([`clock::now_ns`] scale).
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instant events).
    pub dur_ns: u64,
    /// Small process-unique id of the recording thread.
    pub tid: u64,
    /// One free attribute (lookup counts, sizes, …); exported as
    /// `args.value`.
    pub value: u64,
}

/// Sizing of a [`Tracer`]'s ring buffers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Shards (≈ concurrent recording threads before two share a lock).
    pub shards: usize,
    /// Events each shard retains before overwriting its oldest.
    pub shard_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            shards: 16,
            shard_capacity: 16 * 1024,
        }
    }
}

/// A fixed-capacity overwrite-oldest event buffer.
#[derive(Debug)]
struct Ring {
    slots: Vec<TraceEvent>,
    /// Next slot to overwrite once `slots.len() == capacity`.
    next: usize,
    capacity: usize,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Ring {
            slots: Vec::with_capacity(capacity),
            next: 0,
            capacity,
        }
    }

    /// Push, returning `true` when an older event was overwritten.
    fn push(&mut self, ev: TraceEvent) -> bool {
        if self.slots.len() < self.capacity {
            self.slots.push(ev);
            false
        } else {
            self.slots[self.next] = ev;
            self.next = (self.next + 1) % self.capacity;
            true
        }
    }

    /// Drain in recording order (oldest first).
    fn drain(&mut self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        out.extend_from_slice(&self.slots[self.next..]);
        out.extend_from_slice(&self.slots[..self.next]);
        self.slots.clear();
        self.next = 0;
        out
    }
}

/// The session-owned event store behind an enabled [`Tracer`].
#[derive(Debug)]
pub struct TraceSink {
    shards: Vec<Mutex<Ring>>,
    dropped: AtomicU64,
    /// `Arc`-held so a session can hand the *same* registry to the
    /// process-wide [`crate::MetricsHub`] (fleet aggregation) while the
    /// sink keeps recording into it.
    metrics: Arc<MetricsRegistry>,
}

impl TraceSink {
    fn new(cfg: TraceConfig) -> Self {
        let shards = cfg.shards.max(1);
        let capacity = cfg.shard_capacity.max(1);
        TraceSink {
            shards: (0..shards)
                .map(|_| Mutex::new(Ring::new(capacity)))
                .collect(),
            dropped: AtomicU64::new(0),
            metrics: Arc::new(MetricsRegistry::new()),
        }
    }

    fn record(&self, ev: TraceEvent) {
        let shard = (ev.tid % self.shards.len() as u64) as usize;
        if self.shards[shard].lock().unwrap().push(ev) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Small dense per-thread ids (1, 2, 3, …) — Chrome trace `tid`s that
/// stay readable, unlike hashed `std::thread::ThreadId`s.
pub fn current_tid() -> u64 {
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Handle to a tracing session; clone freely (both states are a pointer
/// copy). The default is [`Tracer::disabled`].
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    sink: Option<Arc<TraceSink>>,
}

impl Tracer {
    /// A tracer recording into a fresh sink sized by `cfg`.
    pub fn new(cfg: TraceConfig) -> Self {
        Tracer {
            sink: Some(Arc::new(TraceSink::new(cfg))),
        }
    }

    /// The no-op tracer: spans still measure (callers need the elapsed
    /// time for telemetry either way) but nothing is stored — recording
    /// is one `Option` check.
    pub fn disabled() -> Self {
        Tracer { sink: None }
    }

    /// Whether events are being retained.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Start a span; it records when finished or dropped.
    pub fn span(&self, cat: &'static str, name: &'static str) -> Span<'_> {
        Span {
            tracer: self,
            cat,
            name,
            start_ns: clock::now_ns(),
            value: 0,
            armed: true,
        }
    }

    /// Record an instant event carrying `value`.
    pub fn event(&self, cat: &'static str, name: &'static str, value: u64) {
        if self.sink.is_some() {
            self.record(TraceEvent {
                name,
                cat,
                start_ns: clock::now_ns(),
                dur_ns: 0,
                tid: current_tid(),
                value,
            });
        }
    }

    /// Record a pre-built event (no-op when disabled).
    pub fn record(&self, ev: TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.record(ev);
        }
    }

    /// The tracer's metrics registry, when enabled.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.sink.as_deref().map(|s| &*s.metrics)
    }

    /// A shareable handle to the same registry, when enabled — the form
    /// [`crate::MetricsHub::attach`] adopts, so the hub and the sink read
    /// one set of cells rather than two copies.
    pub fn metrics_handle(&self) -> Option<Arc<MetricsRegistry>> {
        self.sink.as_deref().map(|s| Arc::clone(&s.metrics))
    }

    /// Events overwritten because a ring was full.
    pub fn dropped(&self) -> u64 {
        self.sink
            .as_deref()
            .map_or(0, |s| s.dropped.load(Ordering::Relaxed))
    }

    /// Drain every shard, returning all retained events ordered by
    /// `(start_ns, tid)`. The sink is empty afterwards; metrics are
    /// unaffected.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let Some(sink) = &self.sink else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for shard in &sink.shards {
            out.extend(shard.lock().unwrap().drain());
        }
        out.sort_by_key(|e| (e.start_ns, e.tid));
        out
    }
}

/// An in-flight span: measures from construction to [`Span::finish`] (or
/// drop), then records one [`TraceEvent`] if the tracer is enabled.
#[derive(Debug)]
pub struct Span<'a> {
    tracer: &'a Tracer,
    cat: &'static str,
    name: &'static str,
    start_ns: u64,
    value: u64,
    armed: bool,
}

impl Span<'_> {
    /// Attach the event's free attribute (e.g. a lookup delta).
    pub fn set_value(&mut self, v: u64) {
        self.value = v;
    }

    fn close(&mut self) -> u64 {
        self.armed = false;
        let dur_ns = clock::now_ns().saturating_sub(self.start_ns);
        self.tracer.record(TraceEvent {
            name: self.name,
            cat: self.cat,
            start_ns: self.start_ns,
            dur_ns,
            tid: current_tid(),
            value: self.value,
        });
        dur_ns
    }

    /// Stop the span, record it, and return the elapsed nanoseconds —
    /// the *same* number the trace retains, so telemetry derived from
    /// this return value is exactly consistent with the trace.
    pub fn finish(mut self) -> u64 {
        self.close()
    }

    /// [`Span::finish`] with the attribute set in the same call.
    pub fn finish_with_value(mut self, v: u64) -> u64 {
        self.value = v;
        self.close()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.close();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, start: u64) -> TraceEvent {
        TraceEvent {
            name,
            cat: "t",
            start_ns: start,
            dur_ns: 1,
            tid: current_tid(),
            value: 0,
        }
    }

    #[test]
    fn disabled_tracer_measures_but_stores_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let sp = t.span("phase", "probe");
        let ns = sp.finish();
        let _ = ns; // elapsed is still usable
        t.event("x", "y", 3);
        assert!(t.drain().is_empty());
        assert_eq!(t.dropped(), 0);
        assert!(t.metrics().is_none());
    }

    #[test]
    fn spans_record_on_finish_and_on_drop() {
        let t = Tracer::new(TraceConfig::default());
        let ns = t.span("phase", "probe").finish_with_value(42);
        {
            let _guard = t.span("phase", "grow");
        }
        let events = t.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "probe");
        assert_eq!(events[0].value, 42);
        assert_eq!(events[0].dur_ns, ns);
        assert_eq!(events[1].name, "grow");
        assert!(events[0].start_ns <= events[1].start_ns);
        // Drained means gone.
        assert!(t.drain().is_empty());
    }

    #[test]
    fn ring_wraparound_keeps_newest_and_counts_drops() {
        let t = Tracer::new(TraceConfig {
            shards: 1,
            shard_capacity: 4,
        });
        for i in 0..10u64 {
            t.record(ev("e", i));
        }
        assert_eq!(t.dropped(), 6);
        let events = t.drain();
        assert_eq!(events.len(), 4);
        let starts: Vec<u64> = events.iter().map(|e| e.start_ns).collect();
        assert_eq!(starts, vec![6, 7, 8, 9], "newest four retained in order");
    }

    #[test]
    fn drain_merges_shards_sorted_by_start() {
        let t = Tracer::new(TraceConfig {
            shards: 4,
            shard_capacity: 8,
        });
        // Force distinct shards by synthesising tids.
        for (tid, start) in [(0u64, 5u64), (1, 3), (2, 4), (3, 1)] {
            t.record(TraceEvent {
                name: "e",
                cat: "t",
                start_ns: start,
                dur_ns: 0,
                tid,
                value: 0,
            });
        }
        let starts: Vec<u64> = t.drain().iter().map(|e| e.start_ns).collect();
        assert_eq!(starts, vec![1, 3, 4, 5]);
    }

    #[test]
    fn tids_are_small_and_stable_per_thread() {
        let a = current_tid();
        let b = current_tid();
        assert_eq!(a, b);
        assert!(a >= 1);
    }

    #[test]
    fn metrics_live_on_the_sink() {
        let t = Tracer::new(TraceConfig::default());
        t.metrics().unwrap().counter("c").add(5);
        let snap = t.metrics().unwrap().snapshot();
        assert_eq!(snap.len(), 1);
        // The shareable handle reads the same cells, not a copy.
        let handle = t.metrics_handle().unwrap();
        handle.counter("c").add(2);
        assert_eq!(t.metrics().unwrap().counter("c").get(), 7);
        assert!(Tracer::disabled().metrics_handle().is_none());
    }
}
