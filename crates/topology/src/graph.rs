//! Core graph abstractions: the [`Topology`] trait and a compact CSR
//! adjacency representation ([`AdjGraph`]).
//!
//! Every interconnection network in this crate is exposed through
//! [`Topology`]: nodes are dense indices `0..node_count()`, and adjacency is
//! generated on demand (most families compute neighbours arithmetically from
//! the node index, so no edge storage is required). [`AdjGraph`] materialises
//! any topology into CSR form when repeated neighbour scans must be cheap.

/// A node identifier. Nodes of every topology are densely numbered
/// `0..node_count()`.
pub type NodeId = usize;

/// An undirected interconnection network with dense node ids.
///
/// Implementations must present a *simple* undirected graph: no self loops,
/// no duplicate edges, and symmetric adjacency (`v ∈ N(u)` iff `u ∈ N(v)`).
/// These invariants are what the diagnosis algorithms rely on and are
/// enforced for every family by the `structure` test-suite helpers in
/// [`crate::verify`].
pub trait Topology {
    /// Number of nodes `N = |V|`.
    fn node_count(&self) -> usize;

    /// Append the neighbours of `u` to `out` (which is cleared first).
    ///
    /// The order is deterministic for a given implementation but otherwise
    /// unspecified. `u` must be `< node_count()`.
    fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>);

    /// Append the neighbours of `u` to `out` (cleared first) in **ascending
    /// node order**.
    ///
    /// The default generates via [`Topology::neighbors_into`] and sorts;
    /// families whose arithmetic can emit neighbours already ascending
    /// (e.g. the hypercube) override this to skip the sort, and CSR-backed
    /// representations copy their sorted slices directly. The
    /// frontier-parallel growth sweep leans on this: its deterministic
    /// merge reproduces the sequential visit order only when adjacency is
    /// scanned ascending.
    fn neighbors_into_sorted(&self, u: NodeId, out: &mut Vec<NodeId>) {
        self.neighbors_into(u, out);
        out.sort_unstable();
    }

    /// Visit the neighbours of `u` in **ascending node order**, stopping
    /// early when `visit` returns `false`.
    ///
    /// The frontier-parallel growth sweep resolves each candidate by
    /// consulting witnesses ascending until the first agreement — almost
    /// always the first or second neighbour — so materialising the full
    /// `Δ`-entry list per candidate is mostly wasted work at 10⁷⁺ nodes.
    /// Arithmetic families and CSR-backed representations override this
    /// to generate (or walk) lazily; the default allocates and defers to
    /// [`Topology::neighbors_into_sorted`], which is fine for the small
    /// instances that are the only users of the default.
    fn neighbors_sorted_until(&self, u: NodeId, visit: &mut dyn FnMut(NodeId) -> bool) {
        let mut out = Vec::new();
        self.neighbors_into_sorted(u, &mut out);
        for &w in &out {
            if !visit(w) {
                return;
            }
        }
    }

    /// Whether [`Topology::neighbors_into`] itself already yields
    /// neighbours in ascending order for every node.
    ///
    /// `false` by default (raw arithmetic families enumerate in generator
    /// order); `true` for CSR-backed representations. Callers that need
    /// order-sensitive bit-identity with a CSR reference (the
    /// frontier-parallel growth sweep) only engage when this holds.
    fn has_sorted_adjacency(&self) -> bool {
        false
    }

    /// Convenience wrapper allocating a fresh vector of neighbours.
    fn neighbors(&self, u: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.neighbors_into(u, &mut out);
        out
    }

    /// Degree of `u`.
    fn degree(&self, u: NodeId) -> usize {
        self.neighbors(u).len()
    }

    /// Maximal degree `Δ` over all nodes. Regular families override this
    /// with a constant.
    fn max_degree(&self) -> usize {
        (0..self.node_count())
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// Minimal degree `d` over all nodes.
    fn min_degree(&self) -> usize {
        (0..self.node_count())
            .map(|u| self.degree(u))
            .min()
            .unwrap_or(0)
    }

    /// The diagnosability `δ` of the network under the MM model, as
    /// established by the literature the paper cites (\[6, 14, 23, 28\] etc.).
    ///
    /// A syndrome produced by any fault set `F` with `|F| ≤ δ` determines
    /// `F` uniquely.
    fn diagnosability(&self) -> usize;

    /// The (vertex) connectivity `κ` claimed for this family by the
    /// literature. Theorem 1 requires `κ ≥ δ`; small instances of every
    /// family are machine-verified against this value by a max-flow Menger
    /// computation in the test-suite.
    fn connectivity(&self) -> usize {
        self.diagnosability()
    }

    /// Human-readable family name with parameters, e.g. `"Q_7"` or
    /// `"AQ(3,4)"`. Used in benchmark and experiment reports.
    fn name(&self) -> String;

    /// Whether `u` and `v` are adjacent. The default scans `N(u)`.
    fn are_adjacent(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).contains(&v)
    }

    /// Total number of undirected edges.
    fn edge_count(&self) -> usize {
        let deg_sum: usize = (0..self.node_count()).map(|u| self.degree(u)).sum();
        deg_sum / 2
    }
}

/// Blanket impl so `&T` can be used wherever a `Topology` is expected.
impl<T: Topology + ?Sized> Topology for &T {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }
    fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        (**self).neighbors_into(u, out)
    }
    fn neighbors_into_sorted(&self, u: NodeId, out: &mut Vec<NodeId>) {
        (**self).neighbors_into_sorted(u, out)
    }
    fn neighbors_sorted_until(&self, u: NodeId, visit: &mut dyn FnMut(NodeId) -> bool) {
        (**self).neighbors_sorted_until(u, visit)
    }
    fn has_sorted_adjacency(&self) -> bool {
        (**self).has_sorted_adjacency()
    }
    fn degree(&self, u: NodeId) -> usize {
        (**self).degree(u)
    }
    fn max_degree(&self) -> usize {
        (**self).max_degree()
    }
    fn min_degree(&self) -> usize {
        (**self).min_degree()
    }
    fn diagnosability(&self) -> usize {
        (**self).diagnosability()
    }
    fn connectivity(&self) -> usize {
        (**self).connectivity()
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn are_adjacent(&self, u: NodeId, v: NodeId) -> bool {
        (**self).are_adjacent(u, v)
    }
    fn edge_count(&self) -> usize {
        (**self).edge_count()
    }
}

/// A materialised graph in compressed-sparse-row (CSR) form.
///
/// Neighbour lists are stored sorted, enabling `O(log Δ)` adjacency tests
/// and cache-friendly scans. Built either from an explicit edge list
/// ([`AdjGraph::from_edges`]) or by materialising any [`Topology`]
/// ([`AdjGraph::from_topology`]).
#[derive(Clone, Debug)]
pub struct AdjGraph {
    offsets: Vec<usize>,
    targets: Vec<NodeId>,
    max_deg: usize,
    min_deg: usize,
    diagnosability: usize,
    connectivity: usize,
    name: String,
}

impl AdjGraph {
    /// Build from an undirected edge list over nodes `0..n`.
    ///
    /// Duplicate edges and self loops are rejected with a panic: they would
    /// silently break the MM-model test semantics.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)], name: impl Into<String>) -> Self {
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range for n={n}");
            assert_ne!(a, b, "self loop at node {a}");
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(edges.len() * 2);
        offsets.push(0);
        for (u, list) in adj.iter_mut().enumerate() {
            list.sort_unstable();
            if list.windows(2).any(|w| w[0] == w[1]) {
                panic!("duplicate edge incident to node {u}");
            }
            targets.extend_from_slice(list);
            offsets.push(targets.len());
        }
        let max_deg = adj.iter().map(Vec::len).max().unwrap_or(0);
        let min_deg = adj.iter().map(Vec::len).min().unwrap_or(0);
        AdjGraph {
            offsets,
            targets,
            max_deg,
            min_deg,
            // Placeholder values; callers constructing raw graphs should use
            // `with_diagnosability` if they intend to run diagnosis on them.
            diagnosability: min_deg.saturating_sub(0),
            connectivity: 0,
            name: name.into(),
        }
    }

    /// Materialise any [`Topology`] into CSR form, inheriting its
    /// diagnosability, connectivity and name.
    pub fn from_topology<T: Topology + ?Sized>(t: &T) -> Self {
        let n = t.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::new();
        let mut buf = Vec::new();
        offsets.push(0);
        let mut max_deg = 0;
        let mut min_deg = usize::MAX;
        for u in 0..n {
            t.neighbors_into(u, &mut buf);
            buf.sort_unstable();
            max_deg = max_deg.max(buf.len());
            min_deg = min_deg.min(buf.len());
            targets.extend_from_slice(&buf);
            offsets.push(targets.len());
        }
        if n == 0 {
            min_deg = 0;
        }
        AdjGraph {
            offsets,
            targets,
            max_deg,
            min_deg,
            diagnosability: t.diagnosability(),
            connectivity: t.connectivity(),
            name: t.name(),
        }
    }

    /// Override the diagnosability recorded on this graph.
    pub fn with_diagnosability(mut self, delta: usize) -> Self {
        self.diagnosability = delta;
        self
    }

    /// Override the connectivity recorded on this graph.
    pub fn with_connectivity(mut self, kappa: usize) -> Self {
        self.connectivity = kappa;
        self
    }

    /// Neighbour slice of `u` (sorted).
    #[inline]
    pub fn neighbors_slice(&self, u: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[u]..self.offsets[u + 1]]
    }
}

impl Topology for AdjGraph {
    fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }
    fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend_from_slice(self.neighbors_slice(u));
    }
    fn neighbors_into_sorted(&self, u: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend_from_slice(self.neighbors_slice(u));
    }
    fn neighbors_sorted_until(&self, u: NodeId, visit: &mut dyn FnMut(NodeId) -> bool) {
        for &w in self.neighbors_slice(u) {
            if !visit(w) {
                return;
            }
        }
    }
    fn has_sorted_adjacency(&self) -> bool {
        true
    }
    fn degree(&self, u: NodeId) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }
    fn max_degree(&self) -> usize {
        self.max_deg
    }
    fn min_degree(&self) -> usize {
        self.min_deg
    }
    fn diagnosability(&self) -> usize {
        self.diagnosability
    }
    fn connectivity(&self) -> usize {
        self.connectivity
    }
    fn name(&self) -> String {
        self.name.clone()
    }
    fn are_adjacent(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors_slice(u).binary_search(&v).is_ok()
    }
    fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> AdjGraph {
        AdjGraph::from_edges(3, &[(0, 1), (1, 2)], "P3")
    }

    #[test]
    fn csr_basics() {
        let g = path3();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.neighbors(1), vec![0, 2]);
        assert_eq!(g.neighbors(0), vec![1]);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
        assert_eq!(g.min_degree(), 1);
        assert!(g.are_adjacent(0, 1));
        assert!(!g.are_adjacent(0, 2));
    }

    #[test]
    #[should_panic(expected = "self loop")]
    fn rejects_self_loop() {
        AdjGraph::from_edges(2, &[(0, 0)], "bad");
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate_edge() {
        AdjGraph::from_edges(2, &[(0, 1), (1, 0)], "bad");
    }

    #[test]
    fn from_topology_roundtrip() {
        let g = path3();
        let h = AdjGraph::from_topology(&g);
        assert_eq!(h.node_count(), 3);
        assert_eq!(h.neighbors(1), vec![0, 2]);
        assert_eq!(h.name(), "P3");
    }

    #[test]
    fn reference_forwarding() {
        let g = path3();
        let r: &dyn Topology = &g;
        assert_eq!(r.node_count(), 3);
        // Exercise the blanket `impl Topology for &T` explicitly.
        assert_eq!(Topology::degree(&&g, 1), 2);
    }

    #[test]
    fn sorted_adjacency_contract() {
        // CSR graphs are sorted by construction and say so.
        let g = path3();
        assert!(g.has_sorted_adjacency());
        assert!(
            Topology::has_sorted_adjacency(&&g),
            "blanket impl forwards the flag"
        );
        let mut buf = Vec::new();
        g.neighbors_into_sorted(1, &mut buf);
        assert_eq!(buf, vec![0, 2]);
        Topology::neighbors_into_sorted(&&g, 1, &mut buf);
        assert_eq!(buf, vec![0, 2]);

        // A deliberately unsorted implementation still yields sorted output
        // through the default `neighbors_into_sorted`, but reports false.
        struct Backwards;
        impl Topology for Backwards {
            fn node_count(&self) -> usize {
                4
            }
            fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
                out.clear();
                out.extend((0..4).rev().filter(|&v| v != u));
            }
            fn diagnosability(&self) -> usize {
                1
            }
            fn name(&self) -> String {
                "backwards".into()
            }
        }
        let b = Backwards;
        assert!(!b.has_sorted_adjacency());
        b.neighbors_into(1, &mut buf);
        assert_eq!(buf, vec![3, 2, 0]);
        b.neighbors_into_sorted(1, &mut buf);
        assert_eq!(buf, vec![0, 2, 3]);
    }

    #[test]
    fn empty_graph() {
        let g = AdjGraph::from_edges(0, &[], "empty");
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.min_degree(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
