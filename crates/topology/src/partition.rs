//! The decomposition hook used by the paper's general algorithm (§5).
//!
//! Theorem 1 turns `Set_Builder` into a complete diagnosis procedure as soon
//! as the network can be *partitioned into enough sizeable connected
//! subgraphs*: if the number of parts exceeds the fault bound, some part is
//! entirely healthy, and running `Set_Builder` restricted to each part's
//! representative in turn is guaranteed to find a certified-healthy seed.
//!
//! Every family in [`crate::families`] implements [`Partitionable`] with the
//! exact decomposition the paper names for it (prefix-fixed subcubes for the
//! hypercube-like families, last-symbol classes for the permutation
//! families).

use crate::graph::{NodeId, Topology};

/// A topology equipped with the paper's canonical decomposition into
/// node-disjoint connected subgraphs.
pub trait Partitionable: Topology {
    /// Number of parts in the decomposition.
    fn part_count(&self) -> usize;

    /// The part containing node `u`.
    fn part_of(&self, u: NodeId) -> usize;

    /// A designated seed node inside `part` — the `(v, 0, 0, …, 0)` node of
    /// §5.1 for prefix decompositions.
    fn representative(&self, part: usize) -> NodeId;

    /// Number of nodes in `part`. Parts of the paper's decompositions are
    /// equal-sized; the default divides evenly.
    fn part_size(&self, part: usize) -> usize {
        let _ = part;
        self.node_count() / self.part_count()
    }

    /// The number of faults the partition-driven algorithm supports for this
    /// instance.
    ///
    /// Usually equal to [`Topology::diagnosability`], but strictly smaller
    /// when the paper says so: Theorem 7 diagnoses at most `n − 1` faults in
    /// the arrangement graph `A_{n,k}` even though its diagnosability is
    /// `k(n−k)`, because its decomposition only has `n` parts.
    fn driver_fault_bound(&self) -> usize {
        self.diagnosability()
    }

    /// Check the structural preconditions of the general algorithm for this
    /// instance: more parts than the fault bound, and each part with more
    /// than `bound + 1` nodes (a tree on `bound + 1` nodes has at most
    /// `bound` internal nodes, so the all-healthy certificate could never
    /// fire — see [`crate::families::minimal_partition_dim`]). Returns a
    /// human-readable reason on failure.
    fn check_partition_preconditions(&self) -> Result<(), String> {
        let bound = self.driver_fault_bound();
        let parts = self.part_count();
        if parts <= bound {
            return Err(format!(
                "{}: {parts} parts is not more than the fault bound {bound}",
                self.name()
            ));
        }
        for p in 0..parts {
            let sz = self.part_size(p);
            if sz <= bound + 1 {
                return Err(format!(
                    "{}: part {p} has {sz} nodes; the certificate needs more than {} \
                     so its spanning tree can exceed {bound} internal nodes",
                    self.name(),
                    bound + 1
                ));
            }
        }
        Ok(())
    }
}

impl<T: Partitionable + ?Sized> Partitionable for &T {
    fn part_count(&self) -> usize {
        (**self).part_count()
    }
    fn part_of(&self, u: NodeId) -> usize {
        (**self).part_of(u)
    }
    fn representative(&self, part: usize) -> NodeId {
        (**self).representative(part)
    }
    fn part_size(&self, part: usize) -> usize {
        (**self).part_size(part)
    }
    fn driver_fault_bound(&self) -> usize {
        (**self).driver_fault_bound()
    }
}

/// Contributors (internal nodes) of the tree the restricted `Set_Builder`
/// probe grows inside `part` when **every** test answers `Agree` — i.e. the
/// tree a fault-free part produces, which is a pure graph invariant of the
/// decomposition.
///
/// This mirrors `mmdiag_core::set_builder_in_part` exactly (level-1 witness
/// pairs, layered growth, the child-spreading parent reassignment) with the
/// syndrome fixed to all-`Agree`; the core test-suite cross-checks the two
/// against each other so they cannot drift apart.
///
/// Why it matters: the §4.1 certificate fires only when the probe's tree has
/// *more than `fault_bound`* internal nodes, and for dense low-diameter
/// parts the maximal-growth tree is shallow — its internal-node count can
/// sit far below the part's node count (e.g. a 16-node augmented-`k`-ary
/// part yields only 7). A fault bound at or above this value makes
/// certification impossible even with zero faults, so
/// [`Partitionable::driver_fault_bound`] implementations must stay below it.
pub fn honest_probe_contributors<T: Partitionable + ?Sized>(g: &T, part: usize) -> usize {
    let n = g.node_count();
    let u0 = g.representative(part);
    let in_part = |v: NodeId| g.part_of(v) == part;

    let mut seen = vec![false; n];
    let mut parent = vec![0 as NodeId; n];
    let mut layer = vec![0u32; n];
    let mut claims = vec![0u32; n];
    let mut contributed = vec![false; n];
    seen[u0] = true;

    // Level 1: every in-part neighbour pair of the seed agrees, so all
    // in-part neighbours join — provided there are at least two of them to
    // form a witness pair.
    let mut candidates: Vec<NodeId> = g
        .neighbors(u0)
        .into_iter()
        .filter(|&v| in_part(v))
        .collect();
    candidates.sort_unstable();
    if candidates.len() < 2 {
        return 0;
    }
    let mut frontier = candidates;
    for &v in &frontier {
        seen[v] = true;
        parent[v] = u0;
        layer[v] = 1;
    }
    let mut contributors = 1usize; // u0
    contributed[u0] = true;

    let mut buf = Vec::new();
    let mut next: Vec<NodeId> = Vec::new();
    let mut cur_layer = 1u32;
    while !frontier.is_empty() {
        next.clear();
        cur_layer += 1;
        frontier.sort_unstable();
        for &u in &frontier {
            let tu = parent[u];
            g.neighbors_into(u, &mut buf);
            for &v in &buf {
                if v == tu || !in_part(v) {
                    continue;
                }
                if seen[v] {
                    // Spread heuristic: move a same-layer child to an unused
                    // eligible parent (all tests agree here, so eligibility
                    // is purely structural).
                    if layer[v] == cur_layer && claims[parent[v]] > 1 && claims[u] == 0 {
                        claims[parent[v]] -= 1;
                        claims[u] += 1;
                        parent[v] = u;
                    }
                    continue;
                }
                seen[v] = true;
                parent[v] = u;
                layer[v] = cur_layer;
                claims[u] += 1;
                next.push(v);
            }
        }
        for &u in &frontier {
            claims[u] = 0;
        }
        for &v in &next {
            let p = parent[v];
            if !contributed[p] {
                contributed[p] = true;
                contributors += 1;
            }
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    contributors
}

/// Part-local variant of [`honest_probe_contributors`]: identical growth,
/// identical result, but every scratch structure is a hash map keyed by the
/// nodes actually visited — `O(|part|)` memory instead of the `O(N)` arrays
/// above.
///
/// This is what makes capacity questions answerable at 10⁶⁺ nodes: probing
/// one 64-node part of `Q_22` must not allocate four-million-entry arrays.
/// The implicit-topology scale path and [`certified_partition_dim`] both
/// rely on it; the test-suites guard it against drift from the `O(N)`
/// version (which in turn is guarded against `mmdiag_core`'s real probe).
pub fn honest_probe_contributors_local<T: Partitionable + ?Sized>(g: &T, part: usize) -> usize {
    use std::collections::HashMap;

    let u0 = g.representative(part);
    let in_part = |v: NodeId| g.part_of(v) == part;

    // Per-visited-node state: (parent, layer, claims, contributed).
    #[derive(Clone, Copy)]
    struct Node {
        parent: NodeId,
        layer: u32,
        claims: u32,
        contributed: bool,
    }
    let mut state: HashMap<NodeId, Node> = HashMap::new();
    state.insert(
        u0,
        Node {
            parent: u0,
            layer: 0,
            claims: 0,
            contributed: false,
        },
    );

    let mut candidates: Vec<NodeId> = g
        .neighbors(u0)
        .into_iter()
        .filter(|&v| in_part(v))
        .collect();
    candidates.sort_unstable();
    if candidates.len() < 2 {
        return 0;
    }
    let mut frontier = candidates;
    for &v in &frontier {
        state.insert(
            v,
            Node {
                parent: u0,
                layer: 1,
                claims: 0,
                contributed: false,
            },
        );
    }
    let mut contributors = 1usize; // u0
    state.get_mut(&u0).expect("seed visited").contributed = true;

    let mut buf = Vec::new();
    let mut next: Vec<NodeId> = Vec::new();
    let mut cur_layer = 1u32;
    while !frontier.is_empty() {
        next.clear();
        cur_layer += 1;
        frontier.sort_unstable();
        for &u in &frontier {
            let tu = state[&u].parent;
            g.neighbors_into(u, &mut buf);
            for &v in &buf {
                if v == tu || !in_part(v) {
                    continue;
                }
                if let Some(&seen) = state.get(&v) {
                    // Same spread heuristic as the O(N) version.
                    if seen.layer == cur_layer
                        && state[&seen.parent].claims > 1
                        && state[&u].claims == 0
                    {
                        state.get_mut(&seen.parent).expect("parent visited").claims -= 1;
                        state.get_mut(&u).expect("frontier visited").claims += 1;
                        state.get_mut(&v).expect("child visited").parent = u;
                    }
                    continue;
                }
                state.insert(
                    v,
                    Node {
                        parent: u,
                        layer: cur_layer,
                        claims: 0,
                        contributed: false,
                    },
                );
                state.get_mut(&u).expect("frontier visited").claims += 1;
                next.push(v);
            }
        }
        for &u in &frontier {
            state.get_mut(&u).expect("frontier visited").claims = 0;
        }
        for &v in &next {
            let p = state[&v].parent;
            let pn = state.get_mut(&p).expect("parent visited");
            if !pn.contributed {
                pn.contributed = true;
                contributors += 1;
            }
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    contributors
}

/// Capacity-aware partition-dimension chooser: walk `m` upward from `lo`
/// and return the first dimension whose decomposition both keeps strictly
/// more parts than `bound` *and* certifies — the representative's honest
/// probe tree (computed part-locally, so this is cheap even on 10⁶⁺-node
/// instances) has strictly more than `bound` internal nodes.
///
/// This closes the gap [`crate::families::minimal_partition_dim`] leaves
/// open: the size inequality `radix^m > bound + 1` is necessary but not
/// sufficient, because dense low-diameter parts grow shallow probe trees
/// (the `Q^3_11` discovery: 27-node parts top out at 15 internal nodes
/// against fault bound 22). Only part 0 is probed — the prefix
/// decompositions this is used with induce the same subgraph in every part
/// (fixing the prefix does not change the low-coordinate adjacency rules),
/// so one part speaks for all of them.
pub fn certified_partition_dim<G, F>(n: usize, bound: usize, lo: usize, build: F) -> Option<usize>
where
    G: Partitionable,
    F: Fn(usize) -> G,
{
    for m in lo..n {
        let g = build(m);
        if g.part_count() <= bound {
            // Parts only get scarcer as m grows; no larger m can work.
            return None;
        }
        if honest_probe_contributors_local(&g, 0) > bound {
            return Some(m);
        }
    }
    None
}

/// The largest fault bound the partition-driven driver can support on this
/// decomposition: every part must be able to certify when fault-free
/// (strictly more probe-tree internal nodes than the bound) and the
/// pigeonhole argument needs strictly more parts than faults.
///
/// Families whose diagnosability exceeds this value must cap their
/// [`Partitionable::driver_fault_bound`] at it; otherwise `diagnose` cannot
/// complete even on a fault-free syndrome.
pub fn certified_fault_capacity<T: Partitionable + ?Sized>(g: &T) -> usize {
    let parts = g.part_count();
    let min_contrib = (0..parts)
        .map(|p| honest_probe_contributors(g, p))
        .min()
        .unwrap_or(0);
    min_contrib.saturating_sub(1).min(parts.saturating_sub(1))
}

/// Verify, by exhaustive scan, that a [`Partitionable`] implementation is a
/// genuine partition: every node belongs to exactly one part, representatives
/// lie in their own part, part sizes agree, and each part induces a connected
/// subgraph. Used by the family test-suites.
pub fn validate_partition<T: Partitionable + ?Sized>(g: &T) -> Result<(), String> {
    let n = g.node_count();
    let parts = g.part_count();
    let mut sizes = vec![0usize; parts];
    for u in 0..n {
        let p = g.part_of(u);
        if p >= parts {
            return Err(format!("node {u} maps to out-of-range part {p}"));
        }
        sizes[p] += 1;
    }
    for (p, &counted) in sizes.iter().enumerate() {
        if counted != g.part_size(p) {
            return Err(format!(
                "part {p}: claimed size {} but counted {}",
                g.part_size(p),
                counted
            ));
        }
        let rep = g.representative(p);
        if rep >= n {
            return Err(format!("representative {rep} of part {p} out of range"));
        }
        if g.part_of(rep) != p {
            return Err(format!(
                "representative {rep} of part {p} lies in part {}",
                g.part_of(rep)
            ));
        }
    }
    // Connectivity of each induced part via restricted DFS.
    let mut seen = vec![false; n];
    let mut buf = Vec::new();
    for (p, &expected) in sizes.iter().enumerate() {
        let rep = g.representative(p);
        let mut stack = vec![rep];
        let mut count = 0usize;
        seen[rep] = true;
        while let Some(u) = stack.pop() {
            count += 1;
            g.neighbors_into(u, &mut buf);
            for &v in &buf {
                if !seen[v] && g.part_of(v) == p {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        if count != expected {
            return Err(format!(
                "part {p} is disconnected: reached {count} of {expected} nodes"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::AdjGraph;

    /// Two disjoint triangles joined by a matching; parts = the triangles.
    struct TwoTriangles {
        g: AdjGraph,
    }

    impl TwoTriangles {
        fn new() -> Self {
            let edges = [
                (0, 1),
                (1, 2),
                (0, 2),
                (3, 4),
                (4, 5),
                (3, 5),
                (0, 3),
                (1, 4),
                (2, 5),
            ];
            TwoTriangles {
                g: AdjGraph::from_edges(6, &edges, "2K3"),
            }
        }
    }

    impl Topology for TwoTriangles {
        fn node_count(&self) -> usize {
            self.g.node_count()
        }
        fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
            self.g.neighbors_into(u, out)
        }
        fn diagnosability(&self) -> usize {
            1
        }
        fn name(&self) -> String {
            "2K3".into()
        }
    }

    impl Partitionable for TwoTriangles {
        fn part_count(&self) -> usize {
            2
        }
        fn part_of(&self, u: NodeId) -> usize {
            u / 3
        }
        fn representative(&self, part: usize) -> usize {
            part * 3
        }
    }

    #[test]
    fn valid_partition_passes() {
        let t = TwoTriangles::new();
        assert!(validate_partition(&t).is_ok());
        assert!(t.check_partition_preconditions().is_ok());
    }

    struct BadRep(TwoTriangles);
    impl Topology for BadRep {
        fn node_count(&self) -> usize {
            self.0.node_count()
        }
        fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
            self.0.neighbors_into(u, out)
        }
        fn diagnosability(&self) -> usize {
            1
        }
        fn name(&self) -> String {
            "bad".into()
        }
    }
    impl Partitionable for BadRep {
        fn part_count(&self) -> usize {
            2
        }
        fn part_of(&self, u: NodeId) -> usize {
            u / 3
        }
        fn representative(&self, _part: usize) -> usize {
            0 // wrong for part 1
        }
    }

    #[test]
    fn misplaced_representative_is_rejected() {
        let b = BadRep(TwoTriangles::new());
        let err = validate_partition(&b).unwrap_err();
        assert!(err.contains("representative"), "{err}");
    }

    #[test]
    fn honest_probe_on_triangle_parts() {
        // A triangle part: seed's two in-part neighbours form the witness
        // pair and both join at level 1 — the seed is the only internal
        // node.
        let t = TwoTriangles::new();
        assert_eq!(honest_probe_contributors(&t, 0), 1);
        assert_eq!(honest_probe_contributors(&t, 1), 1);
        // capacity = min(contributors − 1, parts − 1) = 0: the triangle
        // decomposition cannot certify any positive fault bound.
        assert_eq!(certified_fault_capacity(&t), 0);
    }

    /// A path part (0-1-2 | 3-4-5 as two paths joined by a matching): the
    /// representative has a single in-part neighbour, so the level-1
    /// witness pair never exists and the probe tree is the bare seed.
    struct TwoPaths {
        g: AdjGraph,
    }
    impl TwoPaths {
        fn new() -> Self {
            let edges = [(0, 1), (1, 2), (3, 4), (4, 5), (0, 3), (1, 4), (2, 5)];
            TwoPaths {
                g: AdjGraph::from_edges(6, &edges, "2P3"),
            }
        }
    }
    impl Topology for TwoPaths {
        fn node_count(&self) -> usize {
            6
        }
        fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
            self.g.neighbors_into(u, out)
        }
        fn diagnosability(&self) -> usize {
            1
        }
        fn name(&self) -> String {
            "2P3".into()
        }
    }
    impl Partitionable for TwoPaths {
        fn part_count(&self) -> usize {
            2
        }
        fn part_of(&self, u: NodeId) -> usize {
            u / 3
        }
        fn representative(&self, part: usize) -> usize {
            part * 3
        }
    }

    #[test]
    fn honest_probe_needs_a_witness_pair() {
        let t = TwoPaths::new();
        assert_eq!(honest_probe_contributors(&t, 0), 0);
        assert_eq!(certified_fault_capacity(&t), 0);
    }

    #[test]
    fn local_probe_matches_dense_probe() {
        // The O(|part|)-memory variant must agree with the O(N) arrays on
        // every part of both fixture decompositions, including the
        // degenerate no-witness-pair case.
        let tri = TwoTriangles::new();
        let paths = TwoPaths::new();
        for part in 0..2 {
            assert_eq!(
                honest_probe_contributors_local(&tri, part),
                honest_probe_contributors(&tri, part)
            );
            assert_eq!(
                honest_probe_contributors_local(&paths, part),
                honest_probe_contributors(&paths, part)
            );
        }
    }

    #[test]
    fn certified_dim_walks_past_uncertifiable_sizes() {
        use crate::families::Hypercube;
        // Q_10 with the size-minimal m = 4: 16-node parts top out at 8
        // probe-tree internal nodes, below the bound 10 — the chooser must
        // walk to m = 5 (32-node parts certify bound 10).
        let m = certified_partition_dim(10, 10, 4, |m| Hypercube::with_partition_dim(10, m));
        assert_eq!(m, Some(5));
        // An impossible bound exhausts the part-count budget and bails.
        assert_eq!(
            certified_partition_dim(10, 600, 4, |m| Hypercube::with_partition_dim(10, m)),
            None
        );
    }
}
