//! The decomposition hook used by the paper's general algorithm (§5).
//!
//! Theorem 1 turns `Set_Builder` into a complete diagnosis procedure as soon
//! as the network can be *partitioned into enough sizeable connected
//! subgraphs*: if the number of parts exceeds the fault bound, some part is
//! entirely healthy, and running `Set_Builder` restricted to each part's
//! representative in turn is guaranteed to find a certified-healthy seed.
//!
//! Every family in [`crate::families`] implements [`Partitionable`] with the
//! exact decomposition the paper names for it (prefix-fixed subcubes for the
//! hypercube-like families, last-symbol classes for the permutation
//! families).

use crate::graph::{NodeId, Topology};

/// A topology equipped with the paper's canonical decomposition into
/// node-disjoint connected subgraphs.
pub trait Partitionable: Topology {
    /// Number of parts in the decomposition.
    fn part_count(&self) -> usize;

    /// The part containing node `u`.
    fn part_of(&self, u: NodeId) -> usize;

    /// A designated seed node inside `part` — the `(v, 0, 0, …, 0)` node of
    /// §5.1 for prefix decompositions.
    fn representative(&self, part: usize) -> NodeId;

    /// Number of nodes in `part`. Parts of the paper's decompositions are
    /// equal-sized; the default divides evenly.
    fn part_size(&self, part: usize) -> usize {
        let _ = part;
        self.node_count() / self.part_count()
    }

    /// The number of faults the partition-driven algorithm supports for this
    /// instance.
    ///
    /// Usually equal to [`Topology::diagnosability`], but strictly smaller
    /// when the paper says so: Theorem 7 diagnoses at most `n − 1` faults in
    /// the arrangement graph `A_{n,k}` even though its diagnosability is
    /// `k(n−k)`, because its decomposition only has `n` parts.
    fn driver_fault_bound(&self) -> usize {
        self.diagnosability()
    }

    /// Check the structural preconditions of the general algorithm for this
    /// instance: more parts than the fault bound, and each part with more
    /// than `bound + 1` nodes (a tree on `bound + 1` nodes has at most
    /// `bound` internal nodes, so the all-healthy certificate could never
    /// fire — see [`crate::families::minimal_partition_dim`]). Returns a
    /// human-readable reason on failure.
    fn check_partition_preconditions(&self) -> Result<(), String> {
        let bound = self.driver_fault_bound();
        let parts = self.part_count();
        if parts <= bound {
            return Err(format!(
                "{}: {parts} parts is not more than the fault bound {bound}",
                self.name()
            ));
        }
        for p in 0..parts {
            let sz = self.part_size(p);
            if sz <= bound + 1 {
                return Err(format!(
                    "{}: part {p} has {sz} nodes; the certificate needs more than {} \
                     so its spanning tree can exceed {bound} internal nodes",
                    self.name(),
                    bound + 1
                ));
            }
        }
        Ok(())
    }
}

impl<T: Partitionable + ?Sized> Partitionable for &T {
    fn part_count(&self) -> usize {
        (**self).part_count()
    }
    fn part_of(&self, u: NodeId) -> usize {
        (**self).part_of(u)
    }
    fn representative(&self, part: usize) -> NodeId {
        (**self).representative(part)
    }
    fn part_size(&self, part: usize) -> usize {
        (**self).part_size(part)
    }
    fn driver_fault_bound(&self) -> usize {
        (**self).driver_fault_bound()
    }
}

/// Verify, by exhaustive scan, that a [`Partitionable`] implementation is a
/// genuine partition: every node belongs to exactly one part, representatives
/// lie in their own part, part sizes agree, and each part induces a connected
/// subgraph. Used by the family test-suites.
pub fn validate_partition<T: Partitionable + ?Sized>(g: &T) -> Result<(), String> {
    let n = g.node_count();
    let parts = g.part_count();
    let mut sizes = vec![0usize; parts];
    for u in 0..n {
        let p = g.part_of(u);
        if p >= parts {
            return Err(format!("node {u} maps to out-of-range part {p}"));
        }
        sizes[p] += 1;
    }
    for p in 0..parts {
        if sizes[p] != g.part_size(p) {
            return Err(format!(
                "part {p}: claimed size {} but counted {}",
                g.part_size(p),
                sizes[p]
            ));
        }
        let rep = g.representative(p);
        if rep >= n {
            return Err(format!("representative {rep} of part {p} out of range"));
        }
        if g.part_of(rep) != p {
            return Err(format!(
                "representative {rep} of part {p} lies in part {}",
                g.part_of(rep)
            ));
        }
    }
    // Connectivity of each induced part via restricted DFS.
    let mut seen = vec![false; n];
    let mut buf = Vec::new();
    for p in 0..parts {
        let rep = g.representative(p);
        let mut stack = vec![rep];
        let mut count = 0usize;
        seen[rep] = true;
        while let Some(u) = stack.pop() {
            count += 1;
            g.neighbors_into(u, &mut buf);
            for &v in &buf {
                if !seen[v] && g.part_of(v) == p {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        if count != sizes[p] {
            return Err(format!(
                "part {p} is disconnected: reached {count} of {} nodes",
                sizes[p]
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::AdjGraph;

    /// Two disjoint triangles joined by a matching; parts = the triangles.
    struct TwoTriangles {
        g: AdjGraph,
    }

    impl TwoTriangles {
        fn new() -> Self {
            let edges = [
                (0, 1),
                (1, 2),
                (0, 2),
                (3, 4),
                (4, 5),
                (3, 5),
                (0, 3),
                (1, 4),
                (2, 5),
            ];
            TwoTriangles {
                g: AdjGraph::from_edges(6, &edges, "2K3"),
            }
        }
    }

    impl Topology for TwoTriangles {
        fn node_count(&self) -> usize {
            self.g.node_count()
        }
        fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
            self.g.neighbors_into(u, out)
        }
        fn diagnosability(&self) -> usize {
            1
        }
        fn name(&self) -> String {
            "2K3".into()
        }
    }

    impl Partitionable for TwoTriangles {
        fn part_count(&self) -> usize {
            2
        }
        fn part_of(&self, u: NodeId) -> usize {
            u / 3
        }
        fn representative(&self, part: usize) -> usize {
            part * 3
        }
    }

    #[test]
    fn valid_partition_passes() {
        let t = TwoTriangles::new();
        assert!(validate_partition(&t).is_ok());
        assert!(t.check_partition_preconditions().is_ok());
    }

    struct BadRep(TwoTriangles);
    impl Topology for BadRep {
        fn node_count(&self) -> usize {
            self.0.node_count()
        }
        fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
            self.0.neighbors_into(u, out)
        }
        fn diagnosability(&self) -> usize {
            1
        }
        fn name(&self) -> String {
            "bad".into()
        }
    }
    impl Partitionable for BadRep {
        fn part_count(&self) -> usize {
            2
        }
        fn part_of(&self, u: NodeId) -> usize {
            u / 3
        }
        fn representative(&self, _part: usize) -> usize {
            0 // wrong for part 1
        }
    }

    #[test]
    fn misplaced_representative_is_rejected() {
        let b = BadRep(TwoTriangles::new());
        let err = validate_partition(&b).unwrap_err();
        assert!(err.contains("representative"), "{err}");
    }
}
