//! [`Cached`]: a materialised view of any partitionable topology.
//!
//! The permutation families compute `part_of` by unranking, which costs
//! `O(n²)` per call; the diagnosis driver calls it per visited edge. For
//! benchmarking, `Cached` precomputes the CSR adjacency *and* the part
//! label of every node, turning both operations into array reads while
//! preserving the family's metadata and decomposition.

use crate::graph::{AdjGraph, NodeId, Topology};
use crate::partition::Partitionable;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of [`Cached::new`] calls — the memory events the
/// implicit (CSR-free) scale path must never trigger. The `--xlarge` bench
/// sweep snapshots this before and after each implicit cell and asserts the
/// count did not move, turning "the implicit path materialises nothing"
/// from a convention into a checked invariant.
static MATERIALISATIONS: AtomicU64 = AtomicU64::new(0);

/// How many [`Cached::new`] materialisations have happened in this process.
pub fn materialisation_count() -> u64 {
    MATERIALISATIONS.load(Ordering::Relaxed)
}

/// A CSR-materialised topology with precomputed partition labels.
#[derive(Clone, Debug)]
pub struct Cached {
    csr: AdjGraph,
    part_labels: Vec<u32>,
    representatives: Vec<NodeId>,
    part_sizes: Vec<usize>,
    driver_fault_bound: usize,
}

impl Cached {
    /// Materialise `t`, caching adjacency, part labels, representatives and
    /// sizes.
    pub fn new<T: Partitionable + ?Sized>(t: &T) -> Self {
        MATERIALISATIONS.fetch_add(1, Ordering::Relaxed);
        let csr = AdjGraph::from_topology(t);
        let parts = t.part_count();
        let part_labels = (0..t.node_count())
            .map(|u| {
                let p = t.part_of(u);
                debug_assert!(p < parts);
                u32::try_from(p).expect("more than u32::MAX parts")
            })
            .collect();
        let representatives = (0..parts).map(|p| t.representative(p)).collect();
        let part_sizes = (0..parts).map(|p| t.part_size(p)).collect();
        Cached {
            csr,
            part_labels,
            representatives,
            part_sizes,
            driver_fault_bound: t.driver_fault_bound(),
        }
    }

    /// The underlying CSR graph.
    pub fn csr(&self) -> &AdjGraph {
        &self.csr
    }
}

impl Topology for Cached {
    fn node_count(&self) -> usize {
        self.csr.node_count()
    }
    fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        self.csr.neighbors_into(u, out)
    }
    fn neighbors_into_sorted(&self, u: NodeId, out: &mut Vec<NodeId>) {
        self.csr.neighbors_into_sorted(u, out)
    }
    fn neighbors_sorted_until(&self, u: NodeId, visit: &mut dyn FnMut(NodeId) -> bool) {
        self.csr.neighbors_sorted_until(u, visit)
    }
    fn has_sorted_adjacency(&self) -> bool {
        true
    }
    fn degree(&self, u: NodeId) -> usize {
        self.csr.degree(u)
    }
    fn max_degree(&self) -> usize {
        self.csr.max_degree()
    }
    fn min_degree(&self) -> usize {
        self.csr.min_degree()
    }
    fn diagnosability(&self) -> usize {
        self.csr.diagnosability()
    }
    fn connectivity(&self) -> usize {
        self.csr.connectivity()
    }
    fn name(&self) -> String {
        self.csr.name()
    }
    fn are_adjacent(&self, u: NodeId, v: NodeId) -> bool {
        self.csr.are_adjacent(u, v)
    }
    fn edge_count(&self) -> usize {
        self.csr.edge_count()
    }
}

impl Partitionable for Cached {
    fn part_count(&self) -> usize {
        self.representatives.len()
    }
    fn part_of(&self, u: NodeId) -> usize {
        self.part_labels[u] as usize
    }
    fn representative(&self, part: usize) -> NodeId {
        self.representatives[part]
    }
    fn part_size(&self, part: usize) -> usize {
        self.part_sizes[part]
    }
    fn driver_fault_bound(&self) -> usize {
        self.driver_fault_bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::{Pancake, StarGraph};
    use crate::partition::validate_partition;

    #[test]
    fn cached_star_matches_original() {
        let s = StarGraph::new(5);
        let c = Cached::new(&s);
        assert_eq!(c.node_count(), s.node_count());
        assert_eq!(c.part_count(), s.part_count());
        for u in (0..s.node_count()).step_by(7) {
            let mut a = s.neighbors(u);
            let mut b = c.neighbors(u);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
            assert_eq!(s.part_of(u), c.part_of(u));
        }
        validate_partition(&c).unwrap();
    }

    #[test]
    fn cached_preserves_metadata() {
        let p = Pancake::new(5);
        let c = Cached::new(&p);
        assert_eq!(c.diagnosability(), 4);
        assert_eq!(c.connectivity(), 4);
        assert_eq!(c.driver_fault_bound(), 4);
        assert_eq!(c.name(), "P_5");
    }
}
