//! Generic graph algorithms used by the diagnosis machinery and the
//! verification test-suite: BFS, connectivity, articulation checks and an
//! exact vertex-connectivity computation (Menger via vertex-capacitated
//! max-flow) for validating the `κ ≥ δ` hypothesis of Theorem 1 on small
//! instances of every family.

use crate::graph::{NodeId, Topology};

/// Breadth-first search from `src`, returning the visit order.
pub fn bfs_order<T: Topology + ?Sized>(g: &T, src: NodeId) -> Vec<NodeId> {
    let n = g.node_count();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = std::collections::VecDeque::new();
    let mut buf = Vec::new();
    seen[src] = true;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        g.neighbors_into(u, &mut buf);
        for &v in &buf {
            if !seen[v] {
                seen[v] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// BFS distances from `src`; `usize::MAX` marks unreachable nodes.
pub fn bfs_distances<T: Topology + ?Sized>(g: &T, src: NodeId) -> Vec<usize> {
    let n = g.node_count();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    let mut buf = Vec::new();
    dist[src] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        g.neighbors_into(u, &mut buf);
        for &v in &buf {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Whether the graph is connected (vacuously true for the empty graph).
pub fn is_connected<T: Topology + ?Sized>(g: &T) -> bool {
    let n = g.node_count();
    n == 0 || bfs_order(g, 0).len() == n
}

/// Whether the subgraph induced on `V \ removed` is connected.
///
/// Used to check the articulation-set dichotomy of §4.1: the neighbour set
/// `N(U_r)` either disconnects the graph or covers everything outside `U_r`.
pub fn is_connected_excluding<T: Topology + ?Sized>(g: &T, removed: &[NodeId]) -> bool {
    let n = g.node_count();
    let mut blocked = vec![false; n];
    for &r in removed {
        blocked[r] = true;
    }
    let Some(src) = (0..n).find(|&u| !blocked[u]) else {
        return true;
    };
    let mut seen = vec![false; n];
    let mut stack = vec![src];
    let mut count = 0usize;
    let mut buf = Vec::new();
    seen[src] = true;
    while let Some(u) = stack.pop() {
        count += 1;
        g.neighbors_into(u, &mut buf);
        for &v in &buf {
            if !seen[v] && !blocked[v] {
                seen[v] = true;
                stack.push(v);
            }
        }
    }
    count == n - removed.len()
}

/// Connected components as a label vector (labels are `0..k`, assigned in
/// ascending order of the smallest node in each component).
pub fn components<T: Topology + ?Sized>(g: &T) -> Vec<usize> {
    let n = g.node_count();
    let mut label = vec![usize::MAX; n];
    let mut next = 0usize;
    let mut buf = Vec::new();
    for s in 0..n {
        if label[s] != usize::MAX {
            continue;
        }
        let mut stack = vec![s];
        label[s] = next;
        while let Some(u) = stack.pop() {
            g.neighbors_into(u, &mut buf);
            for &v in &buf {
                if label[v] == usize::MAX {
                    label[v] = next;
                    stack.push(v);
                }
            }
        }
        next += 1;
    }
    label
}

/// The eccentricity-based diameter of a connected graph (exact; `O(N·M)`).
pub fn diameter<T: Topology + ?Sized>(g: &T) -> usize {
    let mut best = 0;
    for u in 0..g.node_count() {
        let d = bfs_distances(g, u);
        for &x in &d {
            if x != usize::MAX {
                best = best.max(x);
            }
        }
    }
    best
}

/// Exact vertex connectivity `κ(G)` via Menger's theorem.
///
/// Computes, for a fixed node `s` of minimum degree and every non-neighbour
/// `t` (plus all pairs of non-adjacent neighbours handled by the standard
/// `min over s ∪ N(s)` reduction), the maximum number of internally
/// node-disjoint `s`–`t` paths using vertex-splitting max-flow. Intended for
/// the verification suite on instances up to a few thousand nodes — not for
/// production-path use.
pub fn vertex_connectivity<T: Topology + ?Sized>(g: &T) -> usize {
    let n = g.node_count();
    if n <= 1 {
        return 0;
    }
    if !is_connected(g) {
        return 0;
    }
    // Complete graph: κ = n - 1.
    let min_deg = g.min_degree();
    if min_deg == n - 1 {
        return n - 1;
    }
    let mut kappa = usize::MAX;
    // Standard scheme: pick a minimum-degree vertex s; κ = min over
    // max-flow(s, t) for all t not adjacent to s, and max-flow(x, y) for
    // x ∈ N(s) and suitable y. A simpler (still correct, if slower) variant:
    // fix s of min degree, try all non-adjacent t; then repeat with every
    // neighbour of s as source against its own non-neighbours.
    let s = (0..n).min_by_key(|&u| g.degree(u)).unwrap();
    let mut sources = vec![s];
    sources.extend(g.neighbors(s));
    for &src in &sources {
        let nbrs = g.neighbors(src);
        for t in 0..n {
            if t == src || nbrs.contains(&t) {
                continue;
            }
            kappa = kappa.min(max_vertex_disjoint_paths(g, src, t));
            if kappa == min_deg.min(kappa) && kappa == 0 {
                return 0;
            }
        }
    }
    kappa.min(min_deg)
}

/// Maximum number of internally node-disjoint paths between non-adjacent
/// `s` and `t` (vertex-splitting max-flow with unit capacities, BFS
/// augmentation).
pub fn max_vertex_disjoint_paths<T: Topology + ?Sized>(g: &T, s: NodeId, t: NodeId) -> usize {
    assert_ne!(s, t);
    let n = g.node_count();
    // Split every node u into u_in (2u) and u_out (2u+1); arc u_in -> u_out
    // has capacity 1 (infinite for s and t). Every edge (u,v) becomes arcs
    // u_out -> v_in and v_out -> u_in with capacity 1 (effectively infinite
    // given the node capacities).
    #[derive(Clone)]
    struct Arc {
        to: usize,
        cap: u32,
        rev: usize,
    }
    let mut adj: Vec<Vec<Arc>> = vec![Vec::new(); 2 * n];
    let add_arc = |adj: &mut Vec<Vec<Arc>>, a: usize, b: usize, cap: u32| {
        let ra = adj[b].len();
        let rb = adj[a].len();
        adj[a].push(Arc {
            to: b,
            cap,
            rev: ra,
        });
        adj[b].push(Arc {
            to: a,
            cap: 0,
            rev: rb,
        });
    };
    for u in 0..n {
        let cap = if u == s || u == t { u32::MAX / 2 } else { 1 };
        add_arc(&mut adj, 2 * u, 2 * u + 1, cap);
    }
    let mut buf = Vec::new();
    for u in 0..n {
        g.neighbors_into(u, &mut buf);
        for &v in &buf {
            // Each undirected edge visited twice; add each direction once.
            add_arc(&mut adj, 2 * u + 1, 2 * v, 1);
        }
    }
    let src = 2 * s + 1;
    let dst = 2 * t;
    // Edmonds–Karp. Flow values are ≤ Δ, so the loop count is small.
    let mut flow = 0usize;
    loop {
        let mut prev: Vec<Option<(usize, usize)>> = vec![None; 2 * n];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(src);
        prev[src] = Some((src, usize::MAX));
        while let Some(u) = queue.pop_front() {
            if u == dst {
                break;
            }
            for (i, a) in adj[u].iter().enumerate() {
                if a.cap > 0 && prev[a.to].is_none() {
                    prev[a.to] = Some((u, i));
                    queue.push_back(a.to);
                }
            }
        }
        if prev[dst].is_none() {
            break;
        }
        // Unit capacities on node arcs -> augment by 1.
        let mut v = dst;
        while v != src {
            let (u, i) = prev[v].unwrap();
            adj[u][i].cap -= 1;
            let rev = adj[u][i].rev;
            adj[v][rev].cap += 1;
            v = u;
        }
        flow += 1;
    }
    flow
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::AdjGraph;

    fn cycle(n: usize) -> AdjGraph {
        let edges: Vec<_> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        AdjGraph::from_edges(n, &edges, format!("C{n}"))
    }

    fn complete(n: usize) -> AdjGraph {
        let mut edges = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                edges.push((i, j));
            }
        }
        AdjGraph::from_edges(n, &edges, format!("K{n}"))
    }

    #[test]
    fn bfs_visits_everything_once() {
        let g = cycle(7);
        let order = bfs_order(&g, 3);
        assert_eq!(order.len(), 7);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..7).collect::<Vec<_>>());
        assert_eq!(order[0], 3);
    }

    #[test]
    fn distances_on_cycle() {
        let g = cycle(8);
        let d = bfs_distances(&g, 0);
        assert_eq!(d[4], 4);
        assert_eq!(d[7], 1);
        assert_eq!(d[0], 0);
    }

    #[test]
    fn connectivity_of_cycle_is_two() {
        let g = cycle(9);
        assert!(is_connected(&g));
        assert_eq!(vertex_connectivity(&g), 2);
    }

    #[test]
    fn connectivity_of_complete_graph() {
        assert_eq!(vertex_connectivity(&complete(5)), 4);
    }

    #[test]
    fn connectivity_of_path_is_one() {
        let g = AdjGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], "P4");
        assert_eq!(vertex_connectivity(&g), 1);
    }

    #[test]
    fn disconnected_graph() {
        let g = AdjGraph::from_edges(4, &[(0, 1), (2, 3)], "2xP2");
        assert!(!is_connected(&g));
        assert_eq!(vertex_connectivity(&g), 0);
        let labels = components(&g);
        assert_eq!(labels, vec![0, 0, 1, 1]);
    }

    #[test]
    fn excluding_articulation_point_disconnects() {
        // 0-1-2 path: removing 1 disconnects.
        let g = AdjGraph::from_edges(3, &[(0, 1), (1, 2)], "P3");
        assert!(!is_connected_excluding(&g, &[1]));
        assert!(is_connected_excluding(&g, &[0]));
        assert!(is_connected_excluding(&g, &[]));
    }

    #[test]
    fn excluding_all_nodes_is_vacuously_connected() {
        let g = AdjGraph::from_edges(2, &[(0, 1)], "P2");
        assert!(is_connected_excluding(&g, &[0, 1]));
    }

    #[test]
    fn disjoint_paths_grid_corner() {
        // 2x2 grid: opposite corners are joined by 2 disjoint paths.
        let g = AdjGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)], "grid22");
        assert_eq!(max_vertex_disjoint_paths(&g, 0, 3), 2);
    }

    #[test]
    fn diameter_of_cycle() {
        assert_eq!(diameter(&cycle(8)), 4);
        assert_eq!(diameter(&cycle(9)), 4);
    }
}
