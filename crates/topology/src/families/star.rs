//! The star graph `S_n` (Akers, Harel & Krishnamurthy \[1\]).
//!
//! Nodes are the `n!` permutations of `1..=n` (numbered by lexicographic
//! rank); `u ∼ v` iff `v` is obtained from `u` by swapping the first symbol
//! with the symbol in some position `i ∈ {2, …, n}`. `S_n` is
//! `(n−1)`-regular with connectivity `n − 1` \[2\] and, for `n ≥ 4`,
//! diagnosability `n − 1` (Zheng et al. \[28\]).
//!
//! §5.2's decomposition (via `S_n ≅ S_{n,n−1}`): fixing the *last* symbol
//! partitions `S_n` into `n` induced copies of `S_{n−1}`.

use crate::graph::{NodeId, Topology};
use crate::partition::Partitionable;
use crate::perm::{factorial, rank_perm, unrank_perm};

/// The star graph `S_n` with the last-symbol decomposition.
#[derive(Clone, Debug)]
pub struct StarGraph {
    n: usize,
}

impl StarGraph {
    /// Build `S_n` (`2 ≤ n ≤ 12`; `12! ≈ 4.8·10⁸` is the enumeration
    /// ceiling).
    pub fn new(n: usize) -> Self {
        assert!((2..=12).contains(&n), "star graph supported for 2 ≤ n ≤ 12");
        StarGraph { n }
    }

    /// Symbol-set size `n`.
    pub fn dim(&self) -> usize {
        self.n
    }
}

impl Topology for StarGraph {
    fn node_count(&self) -> usize {
        factorial(self.n)
    }
    fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        let mut perm = Vec::with_capacity(self.n);
        unrank_perm(u, self.n, &mut perm);
        for i in 1..self.n {
            perm.swap(0, i);
            out.push(rank_perm(&perm, self.n));
            perm.swap(0, i);
        }
    }
    fn degree(&self, _u: NodeId) -> usize {
        self.n - 1
    }
    fn max_degree(&self) -> usize {
        self.n - 1
    }
    fn min_degree(&self) -> usize {
        self.n - 1
    }
    fn diagnosability(&self) -> usize {
        self.n - 1
    }
    fn connectivity(&self) -> usize {
        self.n - 1
    }
    fn name(&self) -> String {
        format!("S_{}", self.n)
    }
}

impl Partitionable for StarGraph {
    fn part_count(&self) -> usize {
        self.n
    }
    fn part_of(&self, u: NodeId) -> usize {
        let mut perm = Vec::with_capacity(self.n);
        unrank_perm(u, self.n, &mut perm);
        (perm[self.n - 1] - 1) as usize
    }
    fn representative(&self, part: usize) -> NodeId {
        // Smallest permutation ending in symbol `part + 1`.
        let c = (part + 1) as u8;
        let mut perm: Vec<u8> = (1..=self.n as u8).filter(|&x| x != c).collect();
        perm.push(c);
        rank_perm(&perm, self.n)
    }
    fn part_size(&self, _part: usize) -> usize {
        factorial(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::validate_partition;
    use crate::verify::assert_family_structure;

    #[test]
    fn s3_is_c6() {
        let g = StarGraph::new(3);
        assert_family_structure(&g, 6, 2, true);
        assert_eq!(crate::algorithms::diameter(&g), 3);
    }

    #[test]
    fn s4_structure() {
        // 24 nodes, 3-regular, κ = 3.
        assert_family_structure(&StarGraph::new(4), 24, 3, true);
    }

    #[test]
    fn s5_structure() {
        assert_family_structure(&StarGraph::new(5), 120, 4, true);
    }

    #[test]
    fn swaps_move_first_symbol() {
        let g = StarGraph::new(4);
        // identity [1,2,3,4] has rank 0; neighbours are [2,1,3,4],
        // [3,2,1,4], [4,2,3,1].
        let nb = g.neighbors(0);
        let mut perms = Vec::new();
        let mut buf = Vec::new();
        for v in nb {
            unrank_perm(v, 4, &mut buf);
            perms.push(buf.clone());
        }
        assert!(perms.contains(&vec![2, 1, 3, 4]));
        assert!(perms.contains(&vec![3, 2, 1, 4]));
        assert!(perms.contains(&vec![4, 2, 3, 1]));
    }

    #[test]
    fn star_is_bipartite() {
        // Star graphs are bipartite (swaps are transpositions).
        let g = StarGraph::new(4);
        let mut colour = vec![u8::MAX; g.node_count()];
        let mut stack = vec![0usize];
        colour[0] = 0;
        while let Some(u) = stack.pop() {
            for v in g.neighbors(u) {
                if colour[v] == u8::MAX {
                    colour[v] = colour[u] ^ 1;
                    stack.push(v);
                } else {
                    assert_ne!(colour[v], colour[u], "odd cycle in star graph");
                }
            }
        }
    }

    #[test]
    fn last_symbol_partition() {
        let g = StarGraph::new(5);
        validate_partition(&g).unwrap();
        assert_eq!(g.part_count(), 5);
        assert_eq!(g.part_size(0), 24);
        g.check_partition_preconditions().unwrap();
    }
}
