//! The augmented k-ary n-cube `AQ_{n,k}` (Xiang & Stewart \[25\]).
//!
//! `Q^k_n` extended the way `AQ_n` extends `Q_n`: besides the `2n` torus
//! edges, node `u` is adjacent to the `2(n−1)` nodes obtained by adding
//! `+1` or `−1` (mod k) to *every* digit of a suffix `u_0..u_i` of length
//! `≥ 2` (`1 ≤ i ≤ n−1`). Total degree `4n − 2`. `AQ_{n,k}` is
//! `(4n−2)`-regular with connectivity `4n − 2` \[25\] and, for
//! `(n,k) ≠ (2,3)`, diagnosability `4n − 2` (via \[6\]).
//!
//! It contains `Q^k_n` as a spanning subgraph, so §5.2 reuses the k-ary
//! prefix decomposition: parts are the prefix classes, each containing a
//! spanning (hence connected) `Q^k_m`.

use crate::families::minimal_partition_dim;
use crate::graph::{NodeId, Topology};
use crate::partition::Partitionable;
use std::sync::OnceLock;

/// The augmented k-ary n-cube `AQ_{n,k}` with the spanning-`Q^k_n` prefix
/// decomposition.
#[derive(Clone, Debug)]
pub struct AugmentedKAryNCube {
    k: usize,
    n: usize,
    m: usize,
    /// Memoised certified fault capacity (see `driver_fault_bound`).
    capacity: OnceLock<usize>,
}

impl AugmentedKAryNCube {
    /// Build `AQ_{n,k}` with the minimal partition dimension for fault
    /// bound `δ = 4n − 2`.
    pub fn new(n: usize, k: usize) -> Self {
        assert!(k >= 3, "augmented k-ary n-cube needs k ≥ 3");
        assert!(n >= 2, "augmented k-ary n-cube needs n ≥ 2");
        let m = minimal_partition_dim(k, n, 4 * n - 2)
            .unwrap_or_else(|| panic!("AQ_({n},{k}): no partition dimension satisfies §5.2"));
        AugmentedKAryNCube {
            k,
            n,
            m,
            capacity: OnceLock::new(),
        }
    }

    /// Build with an explicit partition dimension.
    pub fn with_partition_dim(n: usize, k: usize, m: usize) -> Self {
        assert!(k >= 3 && n >= 2 && m >= 1 && m < n);
        AugmentedKAryNCube {
            k,
            n,
            m,
            capacity: OnceLock::new(),
        }
    }

    /// Radix `k`.
    pub fn radix(&self) -> usize {
        self.k
    }

    /// Dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    fn pow(&self, e: usize) -> usize {
        self.k.pow(e as u32)
    }

    /// Add `delta ∈ {+1, k−1}` (mod k) to every digit in positions `0..=i`.
    fn shift_suffix(&self, u: NodeId, i: usize, delta: usize) -> NodeId {
        let mut v = u;
        let mut base = 1usize;
        for _ in 0..=i {
            let digit = (v / base) % self.k;
            let nd = (digit + delta) % self.k;
            v = v - digit * base + nd * base;
            base *= self.k;
        }
        v
    }
}

impl Topology for AugmentedKAryNCube {
    fn node_count(&self) -> usize {
        self.pow(self.n)
    }
    fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        // Torus edges.
        let mut base = 1usize;
        for _ in 0..self.n {
            let digit = (u / base) % self.k;
            let up = (digit + 1) % self.k;
            let down = (digit + self.k - 1) % self.k;
            out.push(u - digit * base + up * base);
            out.push(u - digit * base + down * base);
            base *= self.k;
        }
        // Suffix edges of length ≥ 2.
        for i in 1..self.n {
            out.push(self.shift_suffix(u, i, 1));
            out.push(self.shift_suffix(u, i, self.k - 1));
        }
    }
    fn degree(&self, _u: NodeId) -> usize {
        4 * self.n - 2
    }
    fn max_degree(&self) -> usize {
        4 * self.n - 2
    }
    fn min_degree(&self) -> usize {
        4 * self.n - 2
    }
    fn diagnosability(&self) -> usize {
        4 * self.n - 2
    }
    fn connectivity(&self) -> usize {
        4 * self.n - 2
    }
    fn name(&self) -> String {
        format!("AQ_({},{})", self.n, self.k)
    }
}

impl Partitionable for AugmentedKAryNCube {
    fn part_count(&self) -> usize {
        self.pow(self.n - self.m)
    }
    fn part_of(&self, u: NodeId) -> usize {
        u / self.pow(self.m)
    }
    fn representative(&self, part: usize) -> NodeId {
        part * self.pow(self.m)
    }
    fn part_size(&self, _part: usize) -> usize {
        self.pow(self.m)
    }
    fn driver_fault_bound(&self) -> usize {
        // Augmented tori have degree 4n − 2 ≈ their small parts' node
        // counts: a 16-node part of `AQ_(4,4)` certifies only 7 internal
        // nodes against δ = 14. Cap the bound at what every part can
        // certify. The O(Δ·N) capacity scan runs once per struct, memoised
        // behind a `OnceLock`.
        *self.capacity.get_or_init(|| {
            crate::partition::certified_fault_capacity(self).min(self.diagnosability())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::validate_partition;
    use crate::verify::assert_family_structure;

    #[test]
    fn aq_2_4_structure() {
        // n=2, k=4: 16 nodes, 6-regular, κ = 6.
        assert_family_structure(
            &AugmentedKAryNCube::with_partition_dim(2, 4, 1),
            16,
            6,
            true,
        );
    }

    #[test]
    fn aq_2_5_structure() {
        assert_family_structure(
            &AugmentedKAryNCube::with_partition_dim(2, 5, 1),
            25,
            6,
            true,
        );
    }

    #[test]
    fn aq_3_3_structure() {
        // n=3, k=3: 27 nodes, 10-regular, κ = 10.
        assert_family_structure(
            &AugmentedKAryNCube::with_partition_dim(3, 3, 1),
            27,
            10,
            true,
        );
    }

    #[test]
    fn suffix_shift_wraps_correctly() {
        let g = AugmentedKAryNCube::with_partition_dim(2, 3, 1);
        // node (2,2) = 8 in base 3; suffix i=1 with +1 -> (0,0) = 0.
        assert_eq!(g.shift_suffix(8, 1, 1), 0);
        assert_eq!(g.shift_suffix(0, 1, 2), 8);
    }

    #[test]
    fn contains_spanning_torus() {
        let g = AugmentedKAryNCube::with_partition_dim(3, 3, 1);
        let torus = super::super::kary::KAryNCube::with_partition_dim(3, 3, 1);
        for u in 0..27 {
            let aug = g.neighbors(u);
            for v in torus.neighbors(u) {
                assert!(aug.contains(&v), "torus edge {u}-{v} missing");
            }
        }
    }

    #[test]
    fn partition_matches_spanning_torus() {
        let g = AugmentedKAryNCube::with_partition_dim(3, 4, 2);
        validate_partition(&g).unwrap();
        assert_eq!(g.part_count(), 4);
        assert_eq!(g.part_size(0), 16);
    }

    #[test]
    fn default_for_3_4() {
        // n=3: δ = 10; k=4: m minimal with 4^m > 10 → 2; parts = 4 ≤ 10 →
        // invalid; so (3,4) has no default. (4,4): δ=14, m=2 (16>14),
        // parts=16>14 ✓.
        let g = AugmentedKAryNCube::new(4, 4);
        assert_eq!(g.m, 2);
        g.check_partition_preconditions().unwrap();
    }
}
