//! The folded hypercube `FQ_n` \[3\].
//!
//! `Q_n` plus the complement matching: every node `u` is additionally
//! adjacent to `ū` (all `n` bits flipped). `FQ_n` is `(n+1)`-regular with
//! connectivity `n + 1` and, for `n ≥ 4`, diagnosability `n + 1` (via \[6\]).
//!
//! For the general algorithm the paper uses the fact that `FQ_n` contains
//! `Q_n` as a spanning subgraph: the prefix decomposition of that spanning
//! hypercube into `Q_m(v)` copies still induces connected parts (each part
//! contains its `Q_m` spanning subgraph), which is all Theorem 1 needs. The
//! complement edges always leave the part since they flip the prefix.

use crate::families::minimal_partition_dim;
use crate::graph::{NodeId, Topology};
use crate::partition::Partitionable;
use std::sync::OnceLock;

/// The folded hypercube `FQ_n` with the spanning-`Q_n` prefix decomposition.
#[derive(Clone, Debug)]
pub struct FoldedHypercube {
    n: usize,
    m: usize,
    /// Memoised certified fault capacity (see `driver_fault_bound`).
    capacity: OnceLock<usize>,
}

impl FoldedHypercube {
    /// Build `FQ_n` with the minimal partition dimension for fault bound
    /// `δ = n + 1`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2 && n < usize::BITS as usize - 1);
        let m = minimal_partition_dim(2, n, n + 1).unwrap_or_else(|| {
            panic!("FQ_{n}: no partition dimension satisfies Theorem 3 (need n ≥ 9)")
        });
        FoldedHypercube {
            n,
            m,
            capacity: OnceLock::new(),
        }
    }

    /// Build `FQ_n` with an explicit subcube dimension.
    pub fn with_partition_dim(n: usize, m: usize) -> Self {
        assert!(m >= 1 && m < n);
        FoldedHypercube {
            n,
            m,
            capacity: OnceLock::new(),
        }
    }

    /// Dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    fn full_mask(&self) -> usize {
        (1 << self.n) - 1
    }
}

impl Topology for FoldedHypercube {
    fn node_count(&self) -> usize {
        1 << self.n
    }
    fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        for i in 0..self.n {
            out.push(u ^ (1 << i));
        }
        out.push(u ^ self.full_mask());
    }
    fn degree(&self, _u: NodeId) -> usize {
        self.n + 1
    }
    fn max_degree(&self) -> usize {
        self.n + 1
    }
    fn min_degree(&self) -> usize {
        self.n + 1
    }
    fn diagnosability(&self) -> usize {
        self.n + 1
    }
    fn connectivity(&self) -> usize {
        self.n + 1
    }
    fn name(&self) -> String {
        format!("FQ_{}", self.n)
    }
    fn are_adjacent(&self, u: NodeId, v: NodeId) -> bool {
        let d = (u ^ v).count_ones() as usize;
        d == 1 || d == self.n
    }
}

impl Partitionable for FoldedHypercube {
    fn part_count(&self) -> usize {
        1 << (self.n - self.m)
    }
    fn part_of(&self, u: NodeId) -> usize {
        u >> self.m
    }
    fn representative(&self, part: usize) -> NodeId {
        part << self.m
    }
    fn part_size(&self, _part: usize) -> usize {
        1 << self.m
    }
    fn driver_fault_bound(&self) -> usize {
        // The `Q_m` parts certify at most 10 internal nodes for m = 4,
        // which is below δ = n + 1 from `FQ_9` up; cap the bound at what
        // every part can certify. The O(Δ·N) capacity scan runs once per
        // struct, memoised behind a `OnceLock`.
        *self.capacity.get_or_init(|| {
            crate::partition::certified_fault_capacity(self).min(self.diagnosability())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::diameter;
    use crate::partition::validate_partition;
    use crate::verify::assert_family_structure;

    #[test]
    fn fq3_structure() {
        // FQ_3: 8 nodes, 4-regular, κ = 4.
        assert_family_structure(&FoldedHypercube::with_partition_dim(3, 2), 8, 4, true);
    }

    #[test]
    fn fq4_fq5_structure() {
        assert_family_structure(&FoldedHypercube::with_partition_dim(4, 2), 16, 5, true);
        assert_family_structure(&FoldedHypercube::with_partition_dim(5, 3), 32, 6, true);
    }

    #[test]
    fn folded_halves_the_diameter() {
        // diameter(FQ_n) = ⌈n/2⌉.
        assert_eq!(diameter(&FoldedHypercube::with_partition_dim(4, 2)), 2);
        assert_eq!(diameter(&FoldedHypercube::with_partition_dim(5, 3)), 3);
    }

    #[test]
    fn complement_edges_leave_every_part() {
        let g = FoldedHypercube::with_partition_dim(6, 3);
        for u in 0..g.node_count() {
            let comp = u ^ ((1 << 6) - 1);
            assert_ne!(g.part_of(u), g.part_of(comp), "u={u:06b}");
        }
        validate_partition(&g).unwrap();
    }

    #[test]
    fn default_partition_for_fq9() {
        let g = FoldedHypercube::new(9);
        // δ = 10, m minimal with 2^m > 10 → 4; parts = 2^5 = 32 > 10.
        assert_eq!(g.part_count(), 32);
        g.check_partition_preconditions().unwrap();
    }
}
