//! The (n,k)-star graph `S_{n,k}` (Chiang & Chen \[9\]).
//!
//! Nodes are the `n!/(n−k)!` k-permutations `(p_1, …, p_k)` of `1..=n`
//! (numbered by lexicographic rank). Two kinds of edges:
//!
//! * *i-edges*: swap `p_1` with `p_i` for `i ∈ {2, …, k}` (`k − 1`
//!   neighbours);
//! * *1-edges*: replace `p_1` with any of the `n − k` symbols not present
//!   in the permutation.
//!
//! Degree `n − 1`; connectivity `n − 1` \[9\]; diagnosability `n − 1` for
//! `(n,k) ≠ (3,2)` (via \[6\]). `S_{n,n−1} ≅ S_n` and `S_{n,1} = K_n`.
//!
//! §5.2's decomposition: fixing the k-th component partitions `S_{n,k}`
//! into `n` induced copies of `S_{n−1,k−1}`. Note the paper's size remark
//! is tight: for `k = 2` the parts are cliques `K_{n−1}` with exactly
//! `n − 1 = δ` nodes, which is *not* "more than δ" — the driver's
//! precondition check rejects `k = 2`, and `k ≥ 3` is required in
//! practice.

use crate::graph::{NodeId, Topology};
use crate::partition::Partitionable;
use crate::perm::{falling_factorial, rank_kperm, unrank_kperm};

/// The (n,k)-star `S_{n,k}` with the k-th-component decomposition.
#[derive(Clone, Debug)]
pub struct NKStar {
    n: usize,
    k: usize,
}

impl NKStar {
    /// Build `S_{n,k}` (`2 ≤ k ≤ n−1`, `n ≤ 12`).
    pub fn new(n: usize, k: usize) -> Self {
        assert!(n <= 12, "(n,k)-star supported for n ≤ 12");
        assert!(
            k >= 2 && k < n,
            "(n,k)-star needs 2 ≤ k ≤ n−1 (k=1 is a clique, k=n−1 the star graph)"
        );
        NKStar { n, k }
    }

    /// Symbol-set size `n`.
    pub fn symbols(&self) -> usize {
        self.n
    }

    /// Permutation length `k`.
    pub fn positions(&self) -> usize {
        self.k
    }
}

impl Topology for NKStar {
    fn node_count(&self) -> usize {
        falling_factorial(self.n, self.k)
    }
    fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        let mut perm = Vec::with_capacity(self.k);
        unrank_kperm(u, self.n, self.k, &mut perm);
        // i-edges.
        for i in 1..self.k {
            perm.swap(0, i);
            out.push(rank_kperm(&perm, self.n));
            perm.swap(0, i);
        }
        // 1-edges: p_1 <- any unused symbol.
        let mut used = [false; 17];
        for &p in &perm {
            used[p as usize] = true;
        }
        let old = perm[0];
        for s in 1..=self.n as u8 {
            if !used[s as usize] {
                perm[0] = s;
                out.push(rank_kperm(&perm, self.n));
            }
        }
        perm[0] = old;
    }
    fn degree(&self, _u: NodeId) -> usize {
        self.n - 1
    }
    fn max_degree(&self) -> usize {
        self.n - 1
    }
    fn min_degree(&self) -> usize {
        self.n - 1
    }
    fn diagnosability(&self) -> usize {
        self.n - 1
    }
    fn connectivity(&self) -> usize {
        self.n - 1
    }
    fn name(&self) -> String {
        format!("S_({},{})", self.n, self.k)
    }
}

impl Partitionable for NKStar {
    fn part_count(&self) -> usize {
        self.n
    }
    fn part_of(&self, u: NodeId) -> usize {
        let mut perm = Vec::with_capacity(self.k);
        unrank_kperm(u, self.n, self.k, &mut perm);
        (perm[self.k - 1] - 1) as usize
    }
    fn representative(&self, part: usize) -> NodeId {
        let c = (part + 1) as u8;
        let mut perm: Vec<u8> = (1..=self.n as u8)
            .filter(|&x| x != c)
            .take(self.k - 1)
            .collect();
        perm.push(c);
        rank_kperm(&perm, self.n)
    }
    fn part_size(&self, _part: usize) -> usize {
        falling_factorial(self.n - 1, self.k - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::AdjGraph;
    use crate::partition::validate_partition;
    use crate::verify::assert_family_structure;

    #[test]
    fn s42_structure() {
        // 12 nodes, 3-regular, κ = 3.
        assert_family_structure(&NKStar::new(4, 2), 12, 3, true);
    }

    #[test]
    fn s52_s53_structure() {
        assert_family_structure(&NKStar::new(5, 2), 20, 4, true);
        assert_family_structure(&NKStar::new(5, 3), 60, 4, true);
    }

    #[test]
    fn s_n_nminus1_is_star_graph() {
        use crate::families::star::StarGraph;
        // S_{4,3} ≅ S_4. The lexicographic ranks differ, so compare as
        // graphs via the canonical map (k-perm -> full perm by appending
        // the missing symbol).
        let nk = NKStar::new(4, 3);
        let s = StarGraph::new(4);
        assert_eq!(nk.node_count(), s.node_count());
        let map = |u: usize| -> usize {
            let mut perm = Vec::new();
            unrank_kperm(u, 4, 3, &mut perm);
            let missing = (1u8..=4).find(|s| !perm.contains(s)).unwrap();
            perm.push(missing);
            crate::perm::rank_perm(&perm, 4)
        };
        let ga = AdjGraph::from_topology(&nk);
        let gs = AdjGraph::from_topology(&s);
        for u in 0..ga.node_count() {
            let mut img: Vec<_> = ga.neighbors(u).into_iter().map(map).collect();
            img.sort_unstable();
            let mut want = gs.neighbors(map(u));
            want.sort_unstable();
            assert_eq!(img, want, "u={u}");
        }
    }

    #[test]
    fn one_edges_replace_first_symbol() {
        let g = NKStar::new(5, 2);
        // node (1,2): i-edge -> (2,1); 1-edges -> (3,2),(4,2),(5,2).
        let u = rank_kperm(&[1, 2], 5);
        let nb = g.neighbors(u);
        assert_eq!(nb.len(), 4);
        assert!(nb.contains(&rank_kperm(&[2, 1], 5)));
        assert!(nb.contains(&rank_kperm(&[3, 2], 5)));
        assert!(nb.contains(&rank_kperm(&[4, 2], 5)));
        assert!(nb.contains(&rank_kperm(&[5, 2], 5)));
    }

    #[test]
    fn kth_component_partition() {
        let g = NKStar::new(6, 3);
        validate_partition(&g).unwrap();
        assert_eq!(g.part_count(), 6);
        assert_eq!(g.part_size(2), 20);
        g.check_partition_preconditions().unwrap();
    }

    #[test]
    fn k2_fails_partition_preconditions() {
        // Parts are K_{n−1}: exactly δ nodes, not more.
        let g = NKStar::new(5, 2);
        assert!(g.check_partition_preconditions().is_err());
    }
}
