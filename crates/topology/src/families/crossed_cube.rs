//! The crossed cube `CQ_n` (Efe; topological properties in \[12\]).
//!
//! Nodes are `n`-bit strings. Writing `u = u_{n−1}…u_0`, nodes `u` and `v`
//! are adjacent iff there is a *dimension* `l` with
//!
//! 1. `u_{n−1…l+1} = v_{n−1…l+1}`,
//! 2. `u_l ≠ v_l`,
//! 3. `u_{l−1} = v_{l−1}` when `l` is odd, and
//! 4. each bit-pair `(u_{2i+1}u_{2i}, v_{2i+1}v_{2i})` with `2i + 1 < l`
//!    is *pair-related*: `(00,00), (10,10), (01,11), (11,01)`.
//!
//! The pair-related map is deterministic (`00↦00, 10↦10, 01↦11, 11↦01`, i.e.
//! flip the high bit of the pair iff the low bit is set), so each dimension
//! contributes exactly one neighbour and `CQ_n` is `n`-regular. `CQ_n` has
//! connectivity `n` \[16\] and diagnosability `n` for `n ≥ 4` \[14\].
//!
//! Fixing the first (high) bit splits `CQ_n` into two induced copies of
//! `CQ_{n−1}` \[12\]; iterating, fixing the first `n − m` bits yields
//! `2^{n−m}` copies of `CQ_m` — the decomposition used by Theorem 3.

use crate::families::minimal_partition_dim;
use crate::graph::{NodeId, Topology};
use crate::partition::Partitionable;
use std::sync::OnceLock;

/// The crossed cube `CQ_n` with a prefix decomposition into `CQ_m` copies.
#[derive(Clone, Debug)]
pub struct CrossedCube {
    n: usize,
    m: usize,
    /// Memoised certified fault capacity (see `driver_fault_bound`).
    capacity: OnceLock<usize>,
}

/// The dimension-`l` neighbour of `u` in any crossed cube of dimension
/// `> l`: flip bit `l`, then apply the pair-related map to every complete
/// bit-pair below `l`.
#[inline]
pub fn crossed_neighbor(u: NodeId, l: usize) -> NodeId {
    let mut v = u ^ (1 << l);
    // Pairs (2i+1, 2i) entirely below l: i < floor(l / 2).
    for i in 0..(l / 2) {
        if (u >> (2 * i)) & 1 == 1 {
            v ^= 1 << (2 * i + 1);
        }
    }
    v
}

impl CrossedCube {
    /// Build `CQ_n` with the paper's minimal partition dimension. Panics if
    /// Theorem 3's size constraints cannot be met (needs `n ≥ 7`).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1 && n < usize::BITS as usize);
        let m = minimal_partition_dim(2, n, n).unwrap_or_else(|| {
            panic!("CQ_{n}: no partition dimension satisfies Theorem 3 (need n ≥ 7)")
        });
        CrossedCube {
            n,
            m,
            capacity: OnceLock::new(),
        }
    }

    /// Build `CQ_n` with an explicit subcube dimension.
    pub fn with_partition_dim(n: usize, m: usize) -> Self {
        assert!(m >= 1 && m < n);
        CrossedCube {
            n,
            m,
            capacity: OnceLock::new(),
        }
    }

    /// Dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }
}

impl Topology for CrossedCube {
    fn node_count(&self) -> usize {
        1 << self.n
    }
    fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        for l in 0..self.n {
            out.push(crossed_neighbor(u, l));
        }
    }
    fn degree(&self, _u: NodeId) -> usize {
        self.n
    }
    fn max_degree(&self) -> usize {
        self.n
    }
    fn min_degree(&self) -> usize {
        self.n
    }
    fn diagnosability(&self) -> usize {
        self.n
    }
    fn connectivity(&self) -> usize {
        self.n
    }
    fn name(&self) -> String {
        format!("CQ_{}", self.n)
    }
}

impl Partitionable for CrossedCube {
    fn part_count(&self) -> usize {
        1 << (self.n - self.m)
    }
    fn part_of(&self, u: NodeId) -> usize {
        u >> self.m
    }
    fn representative(&self, part: usize) -> NodeId {
        part << self.m
    }
    fn part_size(&self, _part: usize) -> usize {
        1 << self.m
    }
    fn driver_fault_bound(&self) -> usize {
        // `CQ_m` parts grow shallow probe trees (8 internal nodes for
        // `CQ_4` parts, not enough for δ = 8 at `CQ_8`); cap the bound at
        // what every part can certify. The O(Δ·N) capacity scan runs once
        // per struct, memoised behind a `OnceLock`.
        *self.capacity.get_or_init(|| {
            crate::partition::certified_fault_capacity(self).min(self.diagnosability())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::diameter;
    use crate::partition::validate_partition;
    use crate::verify::assert_family_structure;

    #[test]
    fn cq1_is_k2() {
        let g = CrossedCube {
            n: 1,
            m: 1,
            capacity: OnceLock::new(),
        };
        assert_eq!(g.neighbors(0), vec![1]);
        assert_eq!(g.neighbors(1), vec![0]);
    }

    #[test]
    fn cq2_is_c4() {
        let g = CrossedCube::with_partition_dim(2, 1);
        assert_family_structure(&g, 4, 2, true);
        assert_eq!(diameter(&g), 2);
    }

    #[test]
    fn cq3_structure() {
        let g = CrossedCube::with_partition_dim(3, 2);
        assert_family_structure(&g, 8, 3, true);
    }

    #[test]
    fn cq4_cq5_structure() {
        assert_family_structure(&CrossedCube::with_partition_dim(4, 2), 16, 4, true);
        assert_family_structure(&CrossedCube::with_partition_dim(5, 3), 32, 5, true);
    }

    #[test]
    fn cq6_connectivity() {
        assert_family_structure(&CrossedCube::with_partition_dim(6, 3), 64, 6, true);
    }

    #[test]
    fn dimension_neighbours_are_involutions() {
        for n in 1..=8usize {
            for u in 0..(1usize << n) {
                for l in 0..n {
                    let v = crossed_neighbor(u, l);
                    assert_ne!(u, v);
                    assert_eq!(crossed_neighbor(v, l), u, "n={n} u={u:b} l={l}");
                    // bits above l agree
                    assert_eq!(u >> (l + 1), v >> (l + 1));
                    // bit l differs
                    assert_eq!((u >> l) & 1, 1 ^ ((v >> l) & 1));
                    if l % 2 == 1 {
                        // condition (3)
                        assert_eq!((u >> (l - 1)) & 1, (v >> (l - 1)) & 1);
                    }
                }
            }
        }
    }

    #[test]
    fn crossed_cube_has_smaller_diameter_than_hypercube() {
        // The hallmark of CQ_n: diameter ⌈(n+1)/2⌉ vs n for Q_n.
        let g = CrossedCube::with_partition_dim(5, 3);
        assert_eq!(diameter(&g), 3);
        let g6 = CrossedCube::with_partition_dim(6, 3);
        assert_eq!(diameter(&g6), 4); // ⌈7/2⌉ = 4
    }

    #[test]
    fn prefix_parts_induce_crossed_cubes() {
        let g = CrossedCube::with_partition_dim(5, 3);
        validate_partition(&g).unwrap();
        // Part p induces a graph isomorphic (by identity on low bits) to CQ_3.
        let sub = CrossedCube {
            n: 3,
            m: 1,
            capacity: OnceLock::new(),
        };
        for p in 0..g.part_count() {
            let base = p << 3;
            for x in 0..8usize {
                let mut expect: Vec<_> = sub.neighbors(x).iter().map(|&y| base | y).collect();
                let mut got: Vec<_> = g
                    .neighbors(base | x)
                    .into_iter()
                    .filter(|&v| v >> 3 == p)
                    .collect();
                expect.sort_unstable();
                got.sort_unstable();
                assert_eq!(expect, got, "part {p}, offset {x}");
            }
        }
    }

    #[test]
    fn default_partition_for_cq7() {
        let g = CrossedCube::new(7);
        assert_eq!(g.part_count(), 8);
        g.check_partition_preconditions().unwrap();
    }
}
