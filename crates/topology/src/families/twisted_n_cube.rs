//! The twisted N-cube `TQ′_n` (Esfahanian, Ni & Sagan \[13\]).
//!
//! `TQ′_n` is the hypercube `Q_n` with one pair of edges of a 4-cycle
//! "twisted": in the base case `TQ′_3`, the 4-cycle on `{000, 001, 011,
//! 010}` loses edges `000–001` and `010–011` and gains `000–011` and
//! `010–001`. For `n > 3`, `TQ′_n` consists of a copy of `Q_{n−1}`
//! (prefix 0) and a copy of `TQ′_{n−1}` (prefix 1) joined by the identity
//! matching — exactly the decomposition §5.1 quotes: fixing the first
//! component splits `TQ′_n` into a `Q_{n−1}` and a `TQ′_{n−1}`.
//!
//! `TQ′_n` is `n`-regular with connectivity `n` \[13\] and, for `n ≥ 4`,
//! diagnosability `n` (via \[6\]).
//!
//! The general-algorithm decomposition fixes the first `n − m` bits; every
//! part induces `Q_m` except the all-ones prefix, which induces `TQ′_m` —
//! all connected with `2^m` nodes, which is all Theorem 1 needs.

use crate::families::minimal_partition_dim;
use crate::graph::{NodeId, Topology};
use crate::partition::Partitionable;

/// The twisted N-cube `TQ′_n` with a prefix decomposition.
#[derive(Clone, Debug)]
pub struct TwistedNCube {
    n: usize,
    m: usize,
}

impl TwistedNCube {
    /// Build `TQ′_n` with the paper's minimal partition dimension
    /// (`n ≥ 7`; the partition dimension is forced to at least 3 so the
    /// twisted part stays intact).
    pub fn new(n: usize) -> Self {
        assert!(n >= 3 && n < usize::BITS as usize);
        let m = minimal_partition_dim(2, n, n)
            .unwrap_or_else(|| {
                panic!("TQ'_{n}: no partition dimension satisfies Theorem 3 (need n ≥ 7)")
            })
            .max(3);
        TwistedNCube { n, m }
    }

    /// Build `TQ′_n` with an explicit subcube dimension `3 ≤ m < n` (the
    /// lower bound keeps the twisted 4-cycle inside a single part).
    pub fn with_partition_dim(n: usize, m: usize) -> Self {
        assert!(n >= 3 && m >= 3 && m < n);
        TwistedNCube { n, m }
    }

    /// Dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }
}

/// Neighbours of `u` in the base case `TQ′_3`.
fn base3_neighbors(u: usize, out: &mut Vec<usize>, offset: usize) {
    out.push(offset | (u ^ 0b100));
    out.push(offset | (u ^ 0b010));
    if u >> 2 == 0 {
        // Twisted low edges: 000–011, 001–010.
        out.push(offset | (u ^ 0b011));
    } else {
        out.push(offset | (u ^ 0b001));
    }
}

impl Topology for TwistedNCube {
    fn node_count(&self) -> usize {
        1 << self.n
    }
    fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        // Peel levels n, n−1, …, 4: at level w the node sits either in the
        // Q_{w−1} half (bit w−1 = 0) — plain hypercube from here on — or in
        // the TQ′_{w−1} half; either way the matching edge flips bit w−1.
        let mut w = self.n;
        loop {
            if w == 3 {
                let offset = u >> 3 << 3;
                base3_neighbors(u & 0b111, out, offset);
                return;
            }
            out.push(u ^ (1 << (w - 1)));
            if (u >> (w - 1)) & 1 == 0 {
                // Inside Q_{w−1}: the rest is pure hypercube.
                for i in 0..(w - 1) {
                    out.push(u ^ (1 << i));
                }
                return;
            }
            w -= 1;
        }
    }
    fn degree(&self, _u: NodeId) -> usize {
        self.n
    }
    fn max_degree(&self) -> usize {
        self.n
    }
    fn min_degree(&self) -> usize {
        self.n
    }
    fn diagnosability(&self) -> usize {
        self.n
    }
    fn connectivity(&self) -> usize {
        self.n
    }
    fn name(&self) -> String {
        format!("TQ'_{}", self.n)
    }
}

impl Partitionable for TwistedNCube {
    fn part_count(&self) -> usize {
        1 << (self.n - self.m)
    }
    fn part_of(&self, u: NodeId) -> usize {
        u >> self.m
    }
    fn representative(&self, part: usize) -> NodeId {
        part << self.m
    }
    fn part_size(&self, _part: usize) -> usize {
        1 << self.m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::validate_partition;
    use crate::verify::assert_family_structure;

    #[test]
    fn tq3_structure() {
        let g = TwistedNCube { n: 3, m: 3 };
        assert_eq!(g.node_count(), 8);
        crate::verify::assert_simple_undirected(&g);
        crate::verify::assert_regular(&g, 3);
        assert_eq!(crate::algorithms::vertex_connectivity(&g), 3);
    }

    #[test]
    fn tq3_has_exactly_the_twisted_edges() {
        let g = TwistedNCube { n: 3, m: 3 };
        assert!(g.neighbors(0b000).contains(&0b011));
        assert!(g.neighbors(0b010).contains(&0b001));
        assert!(!g.neighbors(0b000).contains(&0b001));
        assert!(!g.neighbors(0b010).contains(&0b011));
        // Untouched upper 4-cycle.
        assert!(g.neighbors(0b100).contains(&0b101));
        assert!(g.neighbors(0b110).contains(&0b111));
    }

    #[test]
    fn tq4_tq5_structure() {
        assert_family_structure(&TwistedNCube::with_partition_dim(4, 3), 16, 4, true);
        assert_family_structure(&TwistedNCube::with_partition_dim(5, 3), 32, 5, true);
    }

    #[test]
    fn tq3_is_not_bipartite() {
        // The defining property of the twist: it creates odd cycles.
        let g = TwistedNCube { n: 3, m: 3 };
        let mut colour = [u8::MAX; 8];
        let mut stack = vec![0usize];
        colour[0] = 0;
        let mut bipartite = true;
        while let Some(u) = stack.pop() {
            for v in g.neighbors(u) {
                if colour[v] == u8::MAX {
                    colour[v] = colour[u] ^ 1;
                    stack.push(v);
                } else if colour[v] == colour[u] {
                    bipartite = false;
                }
            }
        }
        assert!(!bipartite);
    }

    #[test]
    fn zero_prefix_half_is_plain_hypercube() {
        let g = TwistedNCube::with_partition_dim(5, 3);
        for u in 0..16usize {
            // prefix-0 nodes: intra-half neighbours are Hamming-1.
            let intra: Vec<_> = g.neighbors(u).into_iter().filter(|&v| v < 16).collect();
            for v in &intra {
                assert_eq!((u ^ v).count_ones(), 1, "u={u:05b} v={v:05b}");
            }
            assert_eq!(intra.len(), 4);
        }
    }

    #[test]
    fn parts_are_valid_and_connected() {
        let g = TwistedNCube::with_partition_dim(6, 3);
        validate_partition(&g).unwrap();
    }

    #[test]
    fn default_partition_for_tqp7() {
        let g = TwistedNCube::new(7);
        assert_eq!(g.part_count(), 8);
        g.check_partition_preconditions().unwrap();
    }
}
