//! The `n`-dimensional hypercube `Q_n`.
//!
//! Nodes are the `2ⁿ` bit-strings of length `n`; two nodes are adjacent iff
//! they differ in exactly one bit. `Q_n` is `n`-regular with connectivity
//! `n` and, for `n ≥ 5`, diagnosability `n` under the MM model (Wang \[23\]).
//!
//! The paper's decomposition (§5.1): fixing the first `n − m` components
//! partitions `Q_n` into `2^{n−m}` node-disjoint copies of `Q_m`, with
//! `(v, 0^m)` the representative of the copy `Q_m(v)`.

use crate::families::minimal_partition_dim;
use crate::graph::{NodeId, Topology};
use crate::partition::{certified_partition_dim, Partitionable};

/// The hypercube `Q_n` with a prefix decomposition into subcubes `Q_m(v)`.
#[derive(Clone, Debug)]
pub struct Hypercube {
    n: usize,
    m: usize,
}

impl Hypercube {
    /// Build `Q_n` with the paper's minimal partition dimension
    /// (`m` minimal with `2^m > n`). Requires `n ≥ 7` so that the number of
    /// parts `2^{n−m}` also exceeds `n` (Theorem 2's hypothesis); smaller
    /// `n` panics — use [`Hypercube::with_partition_dim`] to experiment.
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 1 && n < usize::BITS as usize,
            "Q_n needs 1 ≤ n < word size"
        );
        let m = minimal_partition_dim(2, n, n).unwrap_or_else(|| {
            panic!("Q_{n}: no partition dimension satisfies Theorem 2 (need n ≥ 7)")
        });
        Hypercube { n, m }
    }

    /// Build `Q_n` with an explicit subcube dimension `1 ≤ m < n` (used by
    /// the ABL-PART ablation bench; preconditions are then checked by the
    /// driver rather than here).
    pub fn with_partition_dim(n: usize, m: usize) -> Self {
        assert!(m >= 1 && m < n, "need 1 ≤ m < n");
        Hypercube { n, m }
    }

    /// Build `Q_n` with the smallest subcube dimension whose parts
    /// *certify* — the representative's honest probe tree strictly exceeds
    /// the fault bound `n` in internal nodes ([`certified_partition_dim`]),
    /// not merely the size inequality of [`minimal_partition_dim`]. The
    /// search is part-local (one `2^m`-node probe per candidate `m`), so
    /// this stays cheap at 10⁶⁺-node scale.
    pub fn new_certified(n: usize) -> Self {
        assert!(
            n >= 1 && n < usize::BITS as usize,
            "Q_n needs 1 ≤ n < word size"
        );
        let lo = minimal_partition_dim(2, n, n).unwrap_or_else(|| {
            panic!("Q_{n}: no partition dimension satisfies Theorem 2 (need n ≥ 7)")
        });
        let m = certified_partition_dim(n, n, lo, |m| Hypercube::with_partition_dim(n, m))
            .unwrap_or_else(|| panic!("Q_{n}: no partition dimension certifies the bound {n}"));
        Hypercube { n, m }
    }

    /// Dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Subcube dimension `m` of the decomposition.
    pub fn partition_dim(&self) -> usize {
        self.m
    }
}

impl Topology for Hypercube {
    fn node_count(&self) -> usize {
        1 << self.n
    }
    fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        for i in 0..self.n {
            out.push(u ^ (1 << i));
        }
    }
    fn neighbors_into_sorted(&self, u: NodeId, out: &mut Vec<NodeId>) {
        // u ^ (1 << i) < u exactly when bit i of u is set, and within each
        // group the flipped value is monotone in i (downwards for set bits,
        // upwards for clear ones) — so emitting set bits high-to-low and
        // then clear bits low-to-high is ascending without a sort. Walking
        // the two bit masks directly keeps the loop bodies branch-free: a
        // per-bit `if` on a random node id mispredicts half the time, and
        // the growth sweep generates ~Δ·N neighbour lists per diagnosis.
        out.clear();
        let mut m = u;
        while m != 0 {
            let bit = 1usize << (usize::BITS - 1 - m.leading_zeros());
            out.push(u ^ bit);
            m ^= bit;
        }
        let mut m = !u & ((1usize << self.n) - 1);
        while m != 0 {
            let low = m & m.wrapping_neg();
            out.push(u ^ low);
            m ^= low;
        }
    }
    fn neighbors_sorted_until(&self, u: NodeId, visit: &mut dyn FnMut(NodeId) -> bool) {
        // Same ascending walk as `neighbors_into_sorted`, generated one
        // value at a time: the growth sweep's witness scan usually stops
        // at the first neighbour, so the remaining n − 1 are never built.
        let mut m = u;
        while m != 0 {
            let bit = 1usize << (usize::BITS - 1 - m.leading_zeros());
            if !visit(u ^ bit) {
                return;
            }
            m ^= bit;
        }
        let mut m = !u & ((1usize << self.n) - 1);
        while m != 0 {
            let low = m & m.wrapping_neg();
            if !visit(u ^ low) {
                return;
            }
            m ^= low;
        }
    }
    fn degree(&self, _u: NodeId) -> usize {
        self.n
    }
    fn max_degree(&self) -> usize {
        self.n
    }
    fn min_degree(&self) -> usize {
        self.n
    }
    fn diagnosability(&self) -> usize {
        self.n
    }
    fn connectivity(&self) -> usize {
        self.n
    }
    fn name(&self) -> String {
        format!("Q_{}", self.n)
    }
    fn are_adjacent(&self, u: NodeId, v: NodeId) -> bool {
        (u ^ v).count_ones() == 1
    }
    fn edge_count(&self) -> usize {
        self.n << (self.n - 1)
    }
}

impl Partitionable for Hypercube {
    fn part_count(&self) -> usize {
        1 << (self.n - self.m)
    }
    fn part_of(&self, u: NodeId) -> usize {
        u >> self.m
    }
    fn representative(&self, part: usize) -> NodeId {
        part << self.m
    }
    fn part_size(&self, _part: usize) -> usize {
        1 << self.m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::validate_partition;
    use crate::verify::assert_family_structure;

    #[test]
    fn q3_structure() {
        let q = Hypercube::with_partition_dim(3, 2);
        assert_family_structure(&q, 8, 3, true);
        assert_eq!(q.edge_count(), 12);
    }

    #[test]
    fn q5_structure() {
        let q = Hypercube::with_partition_dim(5, 3);
        assert_family_structure(&q, 32, 5, true);
    }

    #[test]
    fn q7_default_partition() {
        let q = Hypercube::new(7);
        assert_eq!(q.partition_dim(), 4);
        assert_eq!(q.part_count(), 8);
        assert_eq!(q.part_size(0), 16);
        validate_partition(&q).unwrap();
        q.check_partition_preconditions().unwrap();
    }

    #[test]
    fn q10_partition_counts() {
        let q = Hypercube::new(10);
        assert_eq!(q.partition_dim(), 4); // 2^4 = 16 > 10
        assert_eq!(q.part_count(), 64);
        validate_partition(&q).unwrap();
    }

    #[test]
    #[should_panic(expected = "Theorem 2")]
    fn q5_default_rejected() {
        Hypercube::new(5);
    }

    #[test]
    fn sorted_neighbors_match_raw_for_every_node() {
        for q in [
            Hypercube::with_partition_dim(4, 2),
            Hypercube::with_partition_dim(7, 4),
        ] {
            let mut raw = Vec::new();
            let mut srt = Vec::new();
            for u in 0..q.node_count() {
                q.neighbors_into(u, &mut raw);
                raw.sort_unstable();
                q.neighbors_into_sorted(u, &mut srt);
                assert_eq!(srt, raw, "Q_{}: u={u}", q.dim());
            }
        }
    }

    #[test]
    fn adjacency_is_hamming_distance_one() {
        let q = Hypercube::with_partition_dim(4, 2);
        assert!(q.are_adjacent(0b0000, 0b0100));
        assert!(!q.are_adjacent(0b0000, 0b0110));
        assert!(!q.are_adjacent(0b0101, 0b0101));
    }

    #[test]
    fn certified_partition_dim_actually_certifies() {
        use crate::partition::honest_probe_contributors_local;
        // Q_10's size-minimal m = 4 cannot certify bound 10 (16-node parts,
        // 8 internal nodes); the certified constructor must step to m = 5.
        let q = Hypercube::new_certified(10);
        assert_eq!(q.partition_dim(), 5);
        assert!(honest_probe_contributors_local(&q, 0) > 10);
        q.check_partition_preconditions().unwrap();
        // Q_7's size-minimal m = 4 already certifies: no change.
        assert_eq!(Hypercube::new_certified(7).partition_dim(), 4);
    }

    #[test]
    fn sorted_neighbor_generation_matches_sorted_default() {
        let q = Hypercube::with_partition_dim(6, 3);
        assert!(
            !q.has_sorted_adjacency(),
            "raw generator order is low-bit-first, not ascending"
        );
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        for u in 0..q.node_count() {
            q.neighbors_into_sorted(u, &mut fast);
            q.neighbors_into(u, &mut slow);
            slow.sort_unstable();
            assert_eq!(fast, slow, "node {u}");
        }
    }

    #[test]
    fn representative_is_v_zero_m() {
        let q = Hypercube::new(8); // m = 4
        assert_eq!(q.representative(0b1011), 0b1011_0000);
        assert_eq!(q.part_of(0b1011_0110), 0b1011);
    }
}
