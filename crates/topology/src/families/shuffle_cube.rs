//! The shuffle-cube `SQ_n` (Li, Tan, Hsu & Sung \[17\]), defined for
//! `n ≡ 2 (mod 4)`.
//!
//! `SQ_2 = Q_2`; `SQ_n` consists of 16 copies of `SQ_{n−4}` indexed by the
//! first (high) four bits, plus cross edges: a node `u` in the copy with
//! prefix `p` has four cross neighbours with prefixes `p ⊕ s`, `s ∈ S_c`,
//! where `c = u_1u_0` (the two lowest bits) and the `S_c` are fixed size-4
//! sets of nonzero 4-bit vectors. Cross neighbours keep all remaining bits,
//! so the edge relation is symmetric. Total degree: `(n − 4) + 4 = n`.
//!
//! The published definition specifies particular `S_c`; we fix concrete
//! sets (below) with the properties the paper's algorithm needs —
//! `n`-regularity, connectivity `n` (machine-verified for `SQ_6` by the
//! Menger check) and the 16-way decomposition into `SQ_{n−4}` copies used
//! by Theorem 3. See DESIGN.md, *Substitutions*.

use crate::graph::{NodeId, Topology};
use crate::partition::Partitionable;

/// Cross-edge prefix offsets keyed by the two lowest bits of the node.
/// Each set holds four distinct nonzero 4-bit vectors.
pub const CROSS_SETS: [[usize; 4]; 4] = [
    [0x1, 0x2, 0x4, 0x8], // c = 00
    [0x3, 0x6, 0xC, 0x9], // c = 01
    [0x5, 0xA, 0x7, 0xE], // c = 10
    [0xB, 0xD, 0xF, 0x1], // c = 11
];

/// The shuffle-cube `SQ_n` (`n ≡ 2 mod 4`) with a prefix decomposition
/// into `SQ_m` copies (`m ≡ 2 mod 4`).
#[derive(Clone, Debug)]
pub struct ShuffleCube {
    n: usize,
    m: usize,
}

impl ShuffleCube {
    /// Build `SQ_n` choosing the smallest legal partition dimension
    /// `m ∈ {2, 6, 10, …}` with `2^m > n` and `16^{(n−m)/4} > n`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2 && n % 4 == 2 && n < usize::BITS as usize);
        let mut m = 2;
        while m < n && (1usize << m) <= n + 1 {
            m += 4;
        }
        assert!(
            m < n && (1usize << (n - m)) > n,
            "SQ_{n}: no partition dimension satisfies Theorem 3 (need n ≥ 10)"
        );
        ShuffleCube { n, m }
    }

    /// Build `SQ_n` with an explicit subcube dimension (`m ≡ 2 mod 4`,
    /// `m < n`).
    pub fn with_partition_dim(n: usize, m: usize) -> Self {
        assert!(n % 4 == 2 && m % 4 == 2 && m >= 2 && m < n);
        ShuffleCube { n, m }
    }

    /// Dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }
}

impl Topology for ShuffleCube {
    fn node_count(&self) -> usize {
        1 << self.n
    }
    fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        // Base Q_2 on the two lowest bits.
        out.push(u ^ 1);
        out.push(u ^ 2);
        // Cross edges at each recursion level: level w joins the 16 copies
        // of SQ_{w−4} inside the enclosing SQ_w; prefix bits are w−4..w−1.
        let c = u & 0b11;
        let mut w = self.n;
        while w > 2 {
            for &s in &CROSS_SETS[c] {
                out.push(u ^ (s << (w - 4)));
            }
            w -= 4;
        }
    }
    fn degree(&self, _u: NodeId) -> usize {
        self.n
    }
    fn max_degree(&self) -> usize {
        self.n
    }
    fn min_degree(&self) -> usize {
        self.n
    }
    fn diagnosability(&self) -> usize {
        self.n
    }
    fn connectivity(&self) -> usize {
        self.n
    }
    fn name(&self) -> String {
        format!("SQ_{}", self.n)
    }
}

impl Partitionable for ShuffleCube {
    fn part_count(&self) -> usize {
        1 << (self.n - self.m)
    }
    fn part_of(&self, u: NodeId) -> usize {
        u >> self.m
    }
    fn representative(&self, part: usize) -> NodeId {
        part << self.m
    }
    fn part_size(&self, _part: usize) -> usize {
        1 << self.m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::validate_partition;
    use crate::verify::assert_family_structure;

    #[test]
    fn cross_sets_are_valid() {
        for set in CROSS_SETS {
            let mut sorted = set;
            sorted.sort_unstable();
            for w in sorted.windows(2) {
                assert_ne!(w[0], w[1], "duplicate cross offset");
            }
            for s in set {
                assert!(s > 0 && s < 16);
            }
        }
    }

    #[test]
    fn sq2_is_q2() {
        let g = ShuffleCube { n: 2, m: 2 };
        let mut nb = g.neighbors(0);
        nb.sort_unstable();
        assert_eq!(nb, vec![1, 2]);
    }

    #[test]
    fn sq6_structure() {
        // 64 nodes, 6-regular, κ = 6 — the key machine check for the chosen
        // cross sets.
        assert_family_structure(&ShuffleCube::with_partition_dim(6, 2), 64, 6, true);
    }

    #[test]
    fn sq10_regularity_and_partition() {
        let g = ShuffleCube::with_partition_dim(10, 6);
        assert_eq!(g.node_count(), 1024);
        crate::verify::assert_simple_undirected(&g);
        crate::verify::assert_regular(&g, 10);
        assert!(crate::algorithms::is_connected(&g));
        validate_partition(&g).unwrap();
    }

    #[test]
    fn parts_induce_shuffle_cubes() {
        let g = ShuffleCube::with_partition_dim(6, 2);
        let sub = ShuffleCube { n: 2, m: 2 };
        for p in 0..g.part_count() {
            let base = p << 2;
            for x in 0..4usize {
                let mut expect: Vec<_> = sub.neighbors(x).iter().map(|&y| base | y).collect();
                let mut got: Vec<_> = g
                    .neighbors(base | x)
                    .into_iter()
                    .filter(|&v| v >> 2 == p)
                    .collect();
                expect.sort_unstable();
                got.sort_unstable();
                assert_eq!(expect, got, "part {p}, offset {x}");
            }
        }
    }

    #[test]
    fn default_partition_for_sq10() {
        let g = ShuffleCube::new(10);
        // m = 6 (2^2 = 4 ≤ 10 at m=2, 2^6 = 64 > 10); parts = 16 > 10.
        assert_eq!(g.m, 6);
        assert_eq!(g.part_count(), 16);
        g.check_partition_preconditions().unwrap();
    }

    #[test]
    #[should_panic]
    fn odd_dimension_rejected() {
        ShuffleCube::new(7);
    }
}
