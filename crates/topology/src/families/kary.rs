//! The k-ary n-cube `Q^k_n` (torus; Lee-distance properties in \[5\]).
//!
//! Nodes are the `kⁿ` length-`n` strings of digits in `Z_k`; two nodes are
//! adjacent iff they agree in all but one coordinate and differ by `±1
//! (mod k)` there. For `k ≥ 3` the graph is `2n`-regular with connectivity
//! `2n` and (outside six small exceptional pairs listed in §5.2)
//! diagnosability `2n` (via \[6\]). `k = 2` degenerates to the hypercube and
//! is rejected here.
//!
//! §5.2's decomposition: fixing the first `n − m` digits partitions
//! `Q^k_n` into `k^{n−m}` copies of `Q^k_m` with representatives
//! `(v, 0^m)`.

use crate::families::minimal_partition_dim;
use crate::graph::{NodeId, Topology};
use crate::partition::{certified_partition_dim, Partitionable};

/// The exceptional parameter pairs of §5.2 for which diagnosability `2n`
/// is *not* guaranteed.
pub const EXCLUDED_PAIRS: [(usize, usize); 6] = [(3, 2), (3, 3), (3, 4), (4, 2), (4, 3), (5, 2)];

/// The k-ary n-cube `Q^k_n` with a prefix decomposition into `Q^k_m`
/// copies.
#[derive(Clone, Debug)]
pub struct KAryNCube {
    k: usize,
    n: usize,
    m: usize,
}

impl KAryNCube {
    /// Build `Q^k_n` with the paper's minimal partition dimension
    /// (`m` minimal with `k^m > 2n`, requiring `k^{n−m} > 2n` parts).
    /// Panics on `k < 3` or when no partition dimension exists.
    pub fn new(k: usize, n: usize) -> Self {
        assert!(k >= 3, "k-ary n-cube needs k ≥ 3 (k = 2 is the hypercube)");
        assert!(n >= 1);
        let m = minimal_partition_dim(k, n, 2 * n)
            .unwrap_or_else(|| panic!("Q^{k}_{n}: no partition dimension satisfies Theorem 4"));
        KAryNCube { k, n, m }
    }

    /// Build with an explicit partition dimension `1 ≤ m < n`.
    pub fn with_partition_dim(k: usize, n: usize, m: usize) -> Self {
        assert!(k >= 3 && m >= 1 && m < n);
        KAryNCube { k, n, m }
    }

    /// Build `Q^k_n` with the smallest partition dimension whose parts
    /// *certify* the fault bound `2n` ([`certified_partition_dim`]). This is
    /// what the `Q^3_11` discovery (ROADMAP, PR 3) asked for: the Theorem-4
    /// size inequality `k^m > 2n` admits 27-node parts whose probe trees
    /// top out at 15 internal nodes against bound 22 — certification needs
    /// one dimension more, and this constructor finds that automatically
    /// with one part-local probe per candidate `m`.
    pub fn new_certified(k: usize, n: usize) -> Self {
        assert!(k >= 3, "k-ary n-cube needs k ≥ 3 (k = 2 is the hypercube)");
        assert!(n >= 1);
        let lo = minimal_partition_dim(k, n, 2 * n)
            .unwrap_or_else(|| panic!("Q^{k}_{n}: no partition dimension satisfies Theorem 4"));
        let m = certified_partition_dim(n, 2 * n, lo, |m| KAryNCube::with_partition_dim(k, n, m))
            .unwrap_or_else(|| {
                panic!(
                    "Q^{k}_{n}: no partition dimension certifies the bound {}",
                    2 * n
                )
            });
        KAryNCube { k, n, m }
    }

    /// Radix `k`.
    pub fn radix(&self) -> usize {
        self.k
    }

    /// Dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Whether `(k, n)` is one of the exceptional pairs of §5.2.
    pub fn is_excluded_pair(&self) -> bool {
        EXCLUDED_PAIRS.contains(&(self.k, self.n))
    }

    /// `k^e`.
    fn pow(&self, e: usize) -> usize {
        self.k.pow(e as u32)
    }
}

impl Topology for KAryNCube {
    fn node_count(&self) -> usize {
        self.pow(self.n)
    }
    fn neighbors_into(&self, u: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        let mut base = 1usize;
        for _ in 0..self.n {
            let digit = (u / base) % self.k;
            let up = if digit + 1 == self.k {
                digit + 1 - self.k
            } else {
                digit + 1
            };
            let down = if digit == 0 { self.k - 1 } else { digit - 1 };
            out.push(u - digit * base + up * base);
            out.push(u - digit * base + down * base);
            base *= self.k;
        }
    }
    fn neighbors_into_sorted(&self, u: NodeId, out: &mut Vec<NodeId>) {
        // Per dimension `i` (stride `bᵢ = kⁱ`, digit `d`) the two
        // neighbours differ from `u` by a delta in {−(k−1)bᵢ, −bᵢ, +bᵢ,
        // +(k−1)bᵢ}: ±bᵢ for interior digits, both negatives when
        // `d = k−1` (the +1 step wraps down), both positives when `d = 0`
        // (the −1 step wraps up). Every dimension-`i` magnitude is below
        // every dimension-`(i+1)` magnitude ((k−1)kⁱ < kⁱ⁺¹), so emitting
        // negative deltas with dimensions descending (most negative
        // first) and then positive deltas with dimensions ascending is
        // ascending node order with no per-call sort — which the default
        // would otherwise pay on each of the ~Δ·N lists the growth sweep
        // generates.
        out.clear();
        let mut digits = [0u32; 64];
        let mut rest = u;
        for slot in digits.iter_mut().take(self.n) {
            *slot = (rest % self.k) as u32;
            rest /= self.k;
        }
        let mut base = self.pow(self.n - 1);
        for i in (0..self.n).rev() {
            let d = digits[i] as usize;
            if d == self.k - 1 {
                out.push(u - (self.k - 1) * base); // k−1 wraps to 0
                out.push(u - base); //                k−1 steps to k−2
            } else if d > 0 {
                out.push(u - base); //                d steps to d−1
            }
            base /= self.k;
        }
        base = 1;
        for &digit in digits.iter().take(self.n) {
            let d = digit as usize;
            if d == 0 {
                out.push(u + base); //                0 steps to 1
                out.push(u + (self.k - 1) * base); // 0 wraps to k−1
            } else if d < self.k - 1 {
                out.push(u + base); //                d steps to d+1
            }
            base *= self.k;
        }
    }
    fn neighbors_sorted_until(&self, u: NodeId, visit: &mut dyn FnMut(NodeId) -> bool) {
        // The ascending emission of `neighbors_into_sorted`, one value at
        // a time; the growth sweep's witness scan usually stops within
        // the first dimension or two, skipping most of the 2n deltas.
        let mut digits = [0u32; 64];
        let mut rest = u;
        for slot in digits.iter_mut().take(self.n) {
            *slot = (rest % self.k) as u32;
            rest /= self.k;
        }
        let mut base = self.pow(self.n - 1);
        for i in (0..self.n).rev() {
            let d = digits[i] as usize;
            if d == self.k - 1 {
                if !visit(u - (self.k - 1) * base) || !visit(u - base) {
                    return;
                }
            } else if d > 0 && !visit(u - base) {
                return;
            }
            base /= self.k;
        }
        base = 1;
        for &digit in digits.iter().take(self.n) {
            let d = digit as usize;
            if d == 0 {
                if !visit(u + base) || !visit(u + (self.k - 1) * base) {
                    return;
                }
            } else if d < self.k - 1 && !visit(u + base) {
                return;
            }
            base *= self.k;
        }
    }
    fn degree(&self, _u: NodeId) -> usize {
        2 * self.n
    }
    fn max_degree(&self) -> usize {
        2 * self.n
    }
    fn min_degree(&self) -> usize {
        2 * self.n
    }
    fn diagnosability(&self) -> usize {
        2 * self.n
    }
    fn connectivity(&self) -> usize {
        2 * self.n
    }
    fn name(&self) -> String {
        format!("Q^{}_{}", self.k, self.n)
    }
}

impl Partitionable for KAryNCube {
    fn part_count(&self) -> usize {
        self.pow(self.n - self.m)
    }
    fn part_of(&self, u: NodeId) -> usize {
        u / self.pow(self.m)
    }
    fn representative(&self, part: usize) -> NodeId {
        part * self.pow(self.m)
    }
    fn part_size(&self, _part: usize) -> usize {
        self.pow(self.m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::validate_partition;
    use crate::verify::assert_family_structure;

    #[test]
    fn q3_2_is_3x3_torus() {
        let g = KAryNCube::with_partition_dim(3, 2, 1);
        assert_family_structure(&g, 9, 4, true);
    }

    #[test]
    fn q4_2_and_q3_3_structure() {
        assert_family_structure(&KAryNCube::with_partition_dim(4, 2, 1), 16, 4, true);
        assert_family_structure(&KAryNCube::with_partition_dim(3, 3, 1), 27, 6, true);
    }

    #[test]
    fn q5_2_structure() {
        assert_family_structure(&KAryNCube::with_partition_dim(5, 2, 1), 25, 4, true);
    }

    #[test]
    fn k3_digit_wraparound() {
        let g = KAryNCube::with_partition_dim(3, 2, 1);
        // node (0,0) = 0: neighbours (0,1)=3, (0,2)=6, (1,0)=1, (2,0)=2
        let mut nb = g.neighbors(0);
        nb.sort_unstable();
        assert_eq!(nb, vec![1, 2, 3, 6]);
    }

    #[test]
    fn sorted_neighbors_match_raw_for_every_node() {
        for g in [
            KAryNCube::with_partition_dim(3, 2, 1),
            KAryNCube::with_partition_dim(4, 3, 1),
            KAryNCube::with_partition_dim(5, 2, 1),
            KAryNCube::with_partition_dim(3, 6, 3),
        ] {
            let mut raw = Vec::new();
            let mut srt = Vec::new();
            for u in 0..g.node_count() {
                g.neighbors_into(u, &mut raw);
                raw.sort_unstable();
                g.neighbors_into_sorted(u, &mut srt);
                assert_eq!(srt, raw, "Q^{}_{}: u={u}", g.radix(), g.dim());
            }
        }
    }

    #[test]
    fn excluded_pairs_flagged() {
        assert!(KAryNCube::with_partition_dim(3, 2, 1).is_excluded_pair());
        assert!(!KAryNCube::with_partition_dim(3, 5, 3).is_excluded_pair());
    }

    #[test]
    fn partition_of_q3_5() {
        // δ = 10; m minimal with 3^m > 10 → 3; parts = 9 ≤ 10 → m=3 invalid!
        // minimal_partition_dim must therefore reject (3,5).
        assert!(super::super::minimal_partition_dim(3, 5, 10).is_none());
        // but (3,6) works: m = 3, parts = 27 > 12.
        let g = KAryNCube::new(3, 6);
        assert_eq!(g.m, 3);
        assert_eq!(g.part_count(), 27);
        validate_partition(&g).unwrap();
        g.check_partition_preconditions().unwrap();
    }

    #[test]
    fn partition_of_q4_4() {
        let g = KAryNCube::new(4, 4);
        // δ = 8; 4^2 = 16 > 8, parts = 16 > 8.
        assert_eq!(g.m, 2);
        validate_partition(&g).unwrap();
    }

    #[test]
    #[should_panic(expected = "k ≥ 3")]
    fn binary_radix_rejected() {
        KAryNCube::new(2, 5);
    }

    #[test]
    fn certified_dim_recovers_the_q3_11_hand_pin() {
        use crate::partition::honest_probe_contributors_local;
        // The ROADMAP PR 3 discovery: Q^3_11's Theorem-4 m = 3 gives
        // 27-node parts with 15-internal-node probe trees against bound 22,
        // and the bench catalog hand-pinned m = 4. The capacity-aware
        // chooser must land on the same m = 4 without the pin.
        let g = KAryNCube::new_certified(3, 11);
        assert_eq!(g.m, 4);
        assert!(honest_probe_contributors_local(&g, 0) > 22);
        // Q^3_6's size-minimal m = 3 already certifies bound 12.
        assert_eq!(KAryNCube::new_certified(3, 6).m, 3);
    }
}
